// sbaudit — analyzer for SmartBalance prediction-audit exports.
//
// Reads one or more packed-CSV audit exports (written by sbsim --audit=,
// Simulation::audit_path, or the bench sweeps' --audit=) and reports how
// well the predictor and the SA optimizer actually did:
//
//   * Fig.6-style aggregate prediction error (throughput and power)
//   * per-(src,dst)-core-type residual tables and histograms
//   * decision-regret distribution (predicted ΔJ vs realized ΔJ)
//   * migration ledger (predicted vs realized efficiency gain)
//   * drift events and final detector state
//
// Modes:
//   sbaudit export.csv [more.csv ...]       human-readable report
//   sbaudit --summary=out.json export.csv   machine-readable summary (CI)
//   sbaudit --check --schema=tools/audit_schema.json export.csv
//                                           schema validation, exit != 0 on
//                                           any violation
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader for the schema file (objects / arrays / strings /
// numbers; no escapes beyond \" and \\ — the schema is ours and simple).
// ---------------------------------------------------------------------------
struct JsonValue {
  enum Kind { kNull, kNumber, kString, kArray, kObject } kind = kNull;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* msg) {
    throw std::runtime_error(std::string("schema JSON: ") + msg);
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    skip_ws();
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  std::string string_lit() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        out += s_[pos_++];
      } else {
        out += c;
      }
    }
    return out;
  }
  JsonValue value() {
    skip_ws();
    JsonValue v;
    char c = peek();
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        std::string key = [&] {
          skip_ws();
          return string_lit();
        }();
        expect(':');
        v.fields.emplace_back(std::move(key), value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    } else if (c == '[') {
      ++pos_;
      v.kind = JsonValue::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.items.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        break;
      }
    } else if (c == '"') {
      v.kind = JsonValue::kString;
      v.str = string_lit();
    } else {
      v.kind = JsonValue::kNumber;
      char* end = nullptr;
      v.number = std::strtod(s_.c_str() + pos_, &end);
      if (end == s_.c_str() + pos_) fail("bad number");
      pos_ = static_cast<std::size_t>(end - s_.c_str());
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Export parsing
// ---------------------------------------------------------------------------
struct ThreadRec {
  std::uint64_t epoch;
  long tid;
  int core, src_type, dst_type;
  double pred_gips, obs_gips, pred_w, obs_w, gips_err, power_err;
  // v2: residuals of the pre-adaptation forecast (== gips_err/power_err in
  // v1 exports and unadapted v2 runs).
  double raw_gips_err, raw_power_err;
};
struct EpochRec {
  std::uint64_t epoch;
  double initial_j, final_j;
  int applied;
  double pred_dj, realized_j, realized_dj;
  int realized_valid;
  double regret;
  int migrations, joined, unjoined;
  double healthy_fraction;
  int degraded, sa_iterations, sa_accepted_worse, sa_improved;
  long faults_injected;
};
struct MigrationRec {
  std::uint64_t epoch;
  long tid;
  int src, dst, src_type, dst_type;
  double pred_gain, realized_gain;
  int realized_valid;
};
struct DriftRec {
  std::uint64_t epoch;
  int src_type, dst_type, metric;
  double ewma;
  std::uint64_t joins;
};
struct StateRec {
  int src_type, dst_type;
  std::uint64_t joins;
  double ewma_gips, ewma_power;
  int active;
  // v2: signed residual EWMAs (0 in v1 exports).
  double ewma_gips_signed, ewma_power_signed;
};

struct Export {
  int version = 0;
  std::map<std::string, std::vector<std::string>> columns;
  int runs = 0;             // #run blocks seen
  int declared_runs = -1;   // #summary runs=
  std::vector<ThreadRec> threads;
  std::vector<EpochRec> epochs;
  std::vector<MigrationRec> migrations;
  std::vector<DriftRec> drifts;
  std::vector<StateRec> states;
  std::vector<std::string> errors;  // populated in check mode
};

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

double field(const std::vector<std::string>& f, std::size_t i) {
  double v = 0;
  if (i < f.size()) parse_double(f[i], &v);
  return v;
}

void parse_file(const std::string& path, Export& ex, bool check) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string line;
  int lineno = 0;
  auto err = [&](const std::string& what) {
    ex.errors.push_back(path + ":" + std::to_string(lineno) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("#sb-audit v", 0) == 0) {
        ex.version = std::atoi(line.c_str() + std::strlen("#sb-audit v"));
      } else if (line.rfind("#columns ", 0) == 0) {
        std::istringstream is(line.substr(std::strlen("#columns ")));
        std::string kind, cols;
        is >> kind >> cols;
        ex.columns[kind] = split(cols, ',');
      } else if (line.rfind("#run ", 0) == 0) {
        ++ex.runs;
      } else if (line.rfind("#summary runs=", 0) == 0) {
        ex.declared_runs =
            std::atoi(line.c_str() + std::strlen("#summary runs="));
      } else if (line.rfind("#counters ", 0) == 0) {
        // informational
      } else if (check) {
        err("unknown directive: " + line);
      }
      continue;
    }
    const auto f = split(line, ',');
    const std::string& kind = f[0];
    const auto it = ex.columns.find(kind);
    if (it == ex.columns.end()) {
      if (check) err("row of unknown kind: " + kind);
      continue;
    }
    if (f.size() != it->second.size() + 1) {
      if (check) {
        err(kind + " row has " + std::to_string(f.size() - 1) + " fields, " +
            "columns declare " + std::to_string(it->second.size()));
      }
      continue;
    }
    if (check) {
      for (std::size_t i = 1; i < f.size(); ++i) {
        double v;
        if (!parse_double(f[i], &v) || !std::isfinite(v)) {
          err(kind + " row field '" + it->second[i - 1] +
              "' is not a finite number: " + f[i]);
        }
      }
    }
    if (kind == "thread") {
      ThreadRec r{};
      r.epoch = static_cast<std::uint64_t>(field(f, 1));
      r.tid = static_cast<long>(field(f, 2));
      r.core = static_cast<int>(field(f, 3));
      r.src_type = static_cast<int>(field(f, 4));
      r.dst_type = static_cast<int>(field(f, 5));
      r.pred_gips = field(f, 6);
      r.obs_gips = field(f, 7);
      r.pred_w = field(f, 8);
      r.obs_w = field(f, 9);
      r.gips_err = field(f, 10);
      r.power_err = field(f, 11);
      if (f.size() >= 14) {
        r.raw_gips_err = field(f, 12);
        r.raw_power_err = field(f, 13);
      } else {  // v1 export: no adaptation existed, raw == corrected
        r.raw_gips_err = r.gips_err;
        r.raw_power_err = r.power_err;
      }
      ex.threads.push_back(r);
    } else if (kind == "epoch") {
      EpochRec r{};
      r.epoch = static_cast<std::uint64_t>(field(f, 1));
      r.initial_j = field(f, 2);
      r.final_j = field(f, 3);
      r.applied = static_cast<int>(field(f, 4));
      r.pred_dj = field(f, 5);
      r.realized_j = field(f, 6);
      r.realized_dj = field(f, 7);
      r.realized_valid = static_cast<int>(field(f, 8));
      r.regret = field(f, 9);
      r.migrations = static_cast<int>(field(f, 10));
      r.joined = static_cast<int>(field(f, 11));
      r.unjoined = static_cast<int>(field(f, 12));
      r.healthy_fraction = field(f, 13);
      r.degraded = static_cast<int>(field(f, 14));
      r.sa_iterations = static_cast<int>(field(f, 15));
      r.sa_accepted_worse = static_cast<int>(field(f, 16));
      r.sa_improved = static_cast<int>(field(f, 17));
      r.faults_injected = static_cast<long>(field(f, 18));
      ex.epochs.push_back(r);
    } else if (kind == "migration") {
      MigrationRec r{};
      r.epoch = static_cast<std::uint64_t>(field(f, 1));
      r.tid = static_cast<long>(field(f, 2));
      r.src = static_cast<int>(field(f, 3));
      r.dst = static_cast<int>(field(f, 4));
      r.src_type = static_cast<int>(field(f, 5));
      r.dst_type = static_cast<int>(field(f, 6));
      r.pred_gain = field(f, 7);
      r.realized_gain = field(f, 8);
      r.realized_valid = static_cast<int>(field(f, 9));
      ex.migrations.push_back(r);
    } else if (kind == "drift") {
      DriftRec r{};
      r.epoch = static_cast<std::uint64_t>(field(f, 1));
      r.src_type = static_cast<int>(field(f, 2));
      r.dst_type = static_cast<int>(field(f, 3));
      r.metric = static_cast<int>(field(f, 4));
      r.ewma = field(f, 5);
      r.joins = static_cast<std::uint64_t>(field(f, 6));
      ex.drifts.push_back(r);
    } else if (kind == "state") {
      StateRec r{};
      r.src_type = static_cast<int>(field(f, 1));
      r.dst_type = static_cast<int>(field(f, 2));
      r.joins = static_cast<std::uint64_t>(field(f, 3));
      r.ewma_gips = field(f, 4);
      r.ewma_power = field(f, 5);
      r.active = static_cast<int>(field(f, 6));
      r.ewma_gips_signed = field(f, 7);
      r.ewma_power_signed = field(f, 8);
      ex.states.push_back(r);
    }
  }
  if (check) {
    if (ex.version == 0) ex.errors.push_back(path + ": missing #sb-audit header");
    if (ex.declared_runs < 0) {
      ex.errors.push_back(path + ": missing #summary line");
    }
  }
}

// ---------------------------------------------------------------------------
// Schema check
// ---------------------------------------------------------------------------
int check_schema(const Export& ex, const std::string& schema_path) {
  std::vector<std::string> errors = ex.errors;
  if (!schema_path.empty()) {
    std::ifstream in(schema_path, std::ios::binary);
    if (!in) {
      std::cerr << "sbaudit: cannot open schema " << schema_path << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    JsonValue schema = JsonParser(text).parse();
    const JsonValue* version = schema.get("version");
    if (version == nullptr ||
        static_cast<int>(version->number) != ex.version) {
      errors.push_back("export version " + std::to_string(ex.version) +
                       " does not match schema version");
    }
    const JsonValue* records = schema.get("records");
    if (records == nullptr) {
      errors.push_back("schema has no 'records' object");
    } else {
      for (const auto& [kind, cols] : records->fields) {
        const auto it = ex.columns.find(kind);
        if (it == ex.columns.end()) {
          errors.push_back("export declares no columns for kind '" + kind +
                           "'");
          continue;
        }
        std::vector<std::string> want;
        for (const JsonValue& c : cols.items) want.push_back(c.str);
        if (want != it->second) {
          errors.push_back("column mismatch for kind '" + kind + "'");
        }
      }
      for (const auto& [kind, cols] : ex.columns) {
        if (records->get(kind) == nullptr) {
          errors.push_back("export kind '" + kind + "' not in schema");
        }
      }
    }
  }
  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << "sbaudit: " << e << "\n";
    std::cerr << "sbaudit: check FAILED (" << errors.size() << " error(s))\n";
    return 1;
  }
  std::cout << "sbaudit: check OK (v" << ex.version << ", " << ex.runs
            << " run(s), " << ex.threads.size() << " thread / "
            << ex.epochs.size() << " epoch / " << ex.migrations.size()
            << " migration records)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------
double mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

struct PairStats {
  std::vector<double> gips_err, power_err;
};

constexpr double kHistEdges[] = {1, 2, 5, 10, 20, 50};
constexpr int kHistBins = 7;

void histogram(const std::vector<double>& errs_pct, long* bins) {
  for (int b = 0; b < kHistBins; ++b) bins[b] = 0;
  for (double e : errs_pct) {
    int b = 0;
    while (b < kHistBins - 1 && e >= kHistEdges[b]) ++b;
    ++bins[b];
  }
}

void print_histogram(const char* title, const std::vector<double>& errs_pct) {
  long bins[kHistBins];
  histogram(errs_pct, bins);
  std::printf("    %-18s", title);
  const char* labels[kHistBins] = {"<1%",    "1-2%",   "2-5%",  "5-10%",
                                   "10-20%", "20-50%", ">=50%"};
  for (int b = 0; b < kHistBins; ++b) {
    std::printf(" %s:%ld", labels[b], bins[b]);
  }
  std::printf("\n");
}

void report(const Export& ex, const std::string& summary_path) {
  // Per-(src,dst) residual tables.
  std::map<std::pair<int, int>, PairStats> pairs;
  std::map<int, PairStats> by_dst_type;
  std::vector<double> all_gips, all_power, all_raw_gips, all_raw_power;
  bool corrected = false;  // any record where adaptation moved the forecast
  for (const ThreadRec& r : ex.threads) {
    const double ge = std::abs(r.gips_err) * 100.0;
    const double pe = std::abs(r.power_err) * 100.0;
    all_raw_gips.push_back(std::abs(r.raw_gips_err) * 100.0);
    all_raw_power.push_back(std::abs(r.raw_power_err) * 100.0);
    if (r.raw_gips_err != r.gips_err || r.raw_power_err != r.power_err) {
      corrected = true;
    }
    auto& p = pairs[{r.src_type, r.dst_type}];
    p.gips_err.push_back(ge);
    p.power_err.push_back(pe);
    auto& d = by_dst_type[r.dst_type];
    d.gips_err.push_back(ge);
    d.power_err.push_back(pe);
    all_gips.push_back(ge);
    all_power.push_back(pe);
  }

  std::vector<double> regrets, pred_djs, realized_djs;
  long applied = 0, degraded = 0, valid = 0;
  for (const EpochRec& r : ex.epochs) {
    if (r.applied) ++applied;
    if (r.degraded) ++degraded;
    if (r.realized_valid) {
      ++valid;
      if (r.applied) {
        regrets.push_back(r.regret);
        pred_djs.push_back(r.pred_dj);
        realized_djs.push_back(r.realized_dj);
      }
    }
  }

  long mig_valid = 0, mig_won = 0;
  std::vector<double> mig_pred, mig_real;
  for (const MigrationRec& r : ex.migrations) {
    mig_pred.push_back(r.pred_gain);
    if (r.realized_valid) {
      ++mig_valid;
      mig_real.push_back(r.realized_gain);
      if (r.realized_gain > 0) ++mig_won;
    }
  }

  std::printf("prediction audit: %d run(s), %zu thread / %zu epoch / %zu "
              "migration records\n",
              ex.runs, ex.threads.size(), ex.epochs.size(),
              ex.migrations.size());
  std::printf("\naggregate prediction error (joined forecasts, Fig.6 "
              "analogue):\n");
  std::printf("    throughput: mean %.2f %%  p95 %.2f %%\n", mean(all_gips),
              percentile(all_gips, 0.95));
  std::printf("    power:      mean %.2f %%  p95 %.2f %%\n", mean(all_power),
              percentile(all_power, 0.95));
  if (corrected) {
    std::printf("  pre-adaptation (raw Eq.8 forecasts):\n");
    std::printf("    throughput: mean %.2f %%  p95 %.2f %%\n",
                mean(all_raw_gips), percentile(all_raw_gips, 0.95));
    std::printf("    power:      mean %.2f %%  p95 %.2f %%\n",
                mean(all_raw_power), percentile(all_raw_power, 0.95));
    const double before =
        0.5 * (mean(all_raw_gips) + mean(all_raw_power));
    const double after = 0.5 * (mean(all_gips) + mean(all_power));
    std::printf("    bias/gain correction: combined mean %.2f %% -> %.2f %%\n",
                before, after);
  }

  std::printf("\nper-(src,dst) core-type residuals:\n");
  std::printf("    %3s %3s %8s %12s %12s\n", "src", "dst", "joins",
              "|gips err|%", "|power err|%");
  for (const auto& [key, st] : pairs) {
    std::printf("    %3d %3d %8zu %12.2f %12.2f\n", key.first, key.second,
                st.gips_err.size(), mean(st.gips_err), mean(st.power_err));
  }

  std::printf("\nper-core-type residual histograms (dst type):\n");
  for (const auto& [t, st] : by_dst_type) {
    std::printf("  type %d:\n", t);
    print_histogram("throughput", st.gips_err);
    print_histogram("power", st.power_err);
  }

  std::printf("\ndecision regret (applied allocations, predicted dJ - "
              "realized dJ):\n");
  std::printf("    epochs: %zu  applied: %ld  degraded: %ld  validated: %ld\n",
              ex.epochs.size(), applied, degraded, valid);
  if (!regrets.empty()) {
    std::printf("    regret: mean %+.4f  p50 %+.4f  p90 %+.4f  (n=%zu)\n",
                mean(regrets), percentile(regrets, 0.5),
                percentile(regrets, 0.9), regrets.size());
    std::printf("    predicted dJ mean %+.4f  realized dJ mean %+.4f\n",
                mean(pred_djs), mean(realized_djs));
  } else {
    std::printf("    no validated applied decisions\n");
  }

  std::printf("\nmigration ledger:\n");
  std::printf("    migrations: %zu  validated: %ld  realized>0: %ld\n",
              ex.migrations.size(), mig_valid, mig_won);
  if (!mig_pred.empty()) {
    std::printf("    predicted gain mean %+.4f GIPS/W", mean(mig_pred));
    if (!mig_real.empty()) {
      std::printf("  realized gain mean %+.4f GIPS/W", mean(mig_real));
    }
    std::printf("\n");
  }

  std::printf("\ndrift: %zu event(s)\n", ex.drifts.size());
  for (const DriftRec& d : ex.drifts) {
    std::printf("    epoch %llu: pair (%d -> %d) %s residual EWMA %.3f "
                "(joins %llu)\n",
                static_cast<unsigned long long>(d.epoch), d.src_type,
                d.dst_type, d.metric == 0 ? "throughput" : "power", d.ewma,
                static_cast<unsigned long long>(d.joins));
  }

  if (!summary_path.empty()) {
    std::ofstream js(summary_path, std::ios::binary);
    if (!js) throw std::runtime_error("cannot write " + summary_path);
    js << "{\"schema\":\"sb.audit.summary\",\"version\":1";
    js << ",\"runs\":" << ex.runs;
    js << ",\"thread_records\":" << ex.threads.size();
    js << ",\"epoch_records\":" << ex.epochs.size();
    js << ",\"migration_records\":" << ex.migrations.size();
    char buf[64];
    auto num = [&](double v) {
      std::snprintf(buf, sizeof buf, "%.6g", v);
      js << buf;
    };
    js << ",\"perf_err_pct\":";
    num(mean(all_gips));
    js << ",\"power_err_pct\":";
    num(mean(all_power));
    js << ",\"pairs\":[";
    bool first = true;
    for (const auto& [key, st] : pairs) {
      if (!first) js << ',';
      first = false;
      js << "{\"src\":" << key.first << ",\"dst\":" << key.second
         << ",\"joins\":" << st.gips_err.size() << ",\"gips_err_pct\":";
      num(mean(st.gips_err));
      js << ",\"power_err_pct\":";
      num(mean(st.power_err));
      js << "}";
    }
    js << "],\"regret\":{\"count\":" << regrets.size() << ",\"mean\":";
    num(mean(regrets));
    js << ",\"p50\":";
    num(percentile(regrets, 0.5));
    js << ",\"p90\":";
    num(percentile(regrets, 0.9));
    js << "},\"migrations\":{\"count\":" << ex.migrations.size()
       << ",\"validated\":" << mig_valid << ",\"realized_positive\":"
       << mig_won << ",\"pred_gain_mean\":";
    num(mean(mig_pred));
    js << ",\"realized_gain_mean\":";
    num(mean(mig_real));
    js << "},\"drift_events\":" << ex.drifts.size();
    js << ",\"degraded_epochs\":" << degraded;
    js << "}\n";
    std::cout << "\nsummary written to " << summary_path << "\n";
  }
}

// ---------------------------------------------------------------------------
// Diff mode: before/after Fig.6-style comparison of two exports
// ---------------------------------------------------------------------------
struct DiffSide {
  std::vector<double> gips, power;            // corrected |err| %
  std::vector<double> raw_gips, raw_power;    // pre-adaptation |err| %
  std::map<std::pair<int, int>, PairStats> pairs;
};

DiffSide collect_side(const Export& ex) {
  DiffSide s;
  for (const ThreadRec& r : ex.threads) {
    const double ge = std::abs(r.gips_err) * 100.0;
    const double pe = std::abs(r.power_err) * 100.0;
    s.gips.push_back(ge);
    s.power.push_back(pe);
    s.raw_gips.push_back(std::abs(r.raw_gips_err) * 100.0);
    s.raw_power.push_back(std::abs(r.raw_power_err) * 100.0);
    auto& p = s.pairs[{r.src_type, r.dst_type}];
    p.gips_err.push_back(ge);
    p.power_err.push_back(pe);
  }
  return s;
}

int diff_report(const Export& a, const std::string& pa, const Export& b,
                const std::string& pb, bool require_improvement) {
  // Both inputs were parsed in check mode: structural damage (truncated
  // rows, permuted sections, missing header/summary) fails the diff
  // outright rather than producing a silently wrong comparison.
  std::vector<std::string> errors;
  errors.insert(errors.end(), a.errors.begin(), a.errors.end());
  errors.insert(errors.end(), b.errors.begin(), b.errors.end());
  if (a.threads.empty()) errors.push_back(pa + ": no joined thread records");
  if (b.threads.empty()) errors.push_back(pb + ": no joined thread records");
  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << "sbaudit: " << e << "\n";
    std::cerr << "sbaudit: diff FAILED (" << errors.size() << " error(s))\n";
    return 1;
  }

  const DiffSide da = collect_side(a);
  const DiffSide db = collect_side(b);

  std::printf("prediction-audit diff (Fig.6 analogue, before -> after):\n");
  std::printf("    A: %s (v%d, %zu thread records, %zu drift events)\n",
              pa.c_str(), a.version, a.threads.size(), a.drifts.size());
  std::printf("    B: %s (v%d, %zu thread records, %zu drift events)\n",
              pb.c_str(), b.version, b.threads.size(), b.drifts.size());

  std::printf("\naggregate |err| %% (corrected forecasts):\n");
  std::printf("    %-18s %10s %10s %10s\n", "", "A", "B", "delta");
  auto row = [](const char* name, double va, double vb) {
    std::printf("    %-18s %10.2f %10.2f %+10.2f\n", name, va, vb, vb - va);
  };
  row("throughput mean", mean(da.gips), mean(db.gips));
  row("throughput p95", percentile(da.gips, 0.95),
      percentile(db.gips, 0.95));
  row("power mean", mean(da.power), mean(db.power));
  row("power p95", percentile(da.power, 0.95), percentile(db.power, 0.95));
  const double score_a = 0.5 * (mean(da.gips) + mean(da.power));
  const double score_b = 0.5 * (mean(db.gips) + mean(db.power));
  row("combined mean", score_a, score_b);
  const double raw_b = 0.5 * (mean(db.raw_gips) + mean(db.raw_power));
  if (raw_b != score_b) {
    std::printf("    (B pre-correction combined mean: %.2f %%)\n", raw_b);
  }

  std::printf("\nper-(src,dst) mean |err| %% (A -> B):\n");
  std::printf("    %3s %3s %8s %8s  %8s->%-8s %8s->%-8s\n", "src", "dst",
              "joins A", "joins B", "gips A", "gips B", "power A", "power B");
  std::map<std::pair<int, int>, int> merged;
  for (const auto& kv : da.pairs) merged[kv.first] = 0;
  for (const auto& kv : db.pairs) merged[kv.first] = 0;
  for (const auto& kv : merged) {
    const std::pair<int, int>& k = kv.first;
    const auto ita = da.pairs.find(k);
    const auto itb = db.pairs.find(k);
    const PairStats empty;
    const PairStats& sa = ita != da.pairs.end() ? ita->second : empty;
    const PairStats& sb = itb != db.pairs.end() ? itb->second : empty;
    std::printf("    %3d %3d %8zu %8zu  %8.2f->%-8.2f %8.2f->%-8.2f\n",
                k.first, k.second, sa.gips_err.size(), sb.gips_err.size(),
                mean(sa.gips_err), mean(sb.gips_err), mean(sa.power_err),
                mean(sb.power_err));
  }

  const bool improved = score_b < score_a;
  std::printf("\nverdict: combined mean |err| %.2f %% -> %.2f %% (%s)\n",
              score_a, score_b,
              improved ? "improved" : "NOT improved");
  if (require_improvement && !improved) {
    std::cerr << "sbaudit: diff FAILED (--require-improvement: B must "
                 "strictly reduce combined mean |err|)\n";
    return 1;
  }
  return 0;
}

[[noreturn]] void usage(int code) {
  std::cout << R"(sbaudit — SmartBalance prediction-audit analyzer

  sbaudit [options] <export.csv> [more exports ...]
  sbaudit --diff <before.csv> <after.csv> [--require-improvement]

  --summary=<file>   write a machine-readable JSON summary
  --check            validate the export structure (directives, row arity,
                     finite fields); exit 1 on any violation
  --schema=<file>    with --check: also validate column names and schema
                     version against the schema JSON (tools/audit_schema.json)
  --diff             compare exactly two exports (e.g. adaptation off vs on)
                     and render before/after Fig.6-style error tables; both
                     files are structurally validated first and any damage
                     fails the diff
  --require-improvement
                     with --diff: exit 1 unless the second export strictly
                     reduces the combined mean |err| (gated in CI)
)";
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> inputs;
    std::string summary_path, schema_path;
    bool check = false, diff = false, require_improvement = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") usage(0);
      else if (arg.rfind("--summary=", 0) == 0)
        summary_path = arg.substr(std::strlen("--summary="));
      else if (arg == "--check") check = true;
      else if (arg == "--diff") diff = true;
      else if (arg == "--require-improvement") require_improvement = true;
      else if (arg.rfind("--schema=", 0) == 0)
        schema_path = arg.substr(std::strlen("--schema="));
      else if (arg.rfind("--", 0) == 0) {
        std::cerr << "unknown option: " << arg << "\n";
        usage(2);
      } else {
        inputs.push_back(arg);
      }
    }
    if (require_improvement && !diff) {
      std::cerr << "--require-improvement needs --diff\n";
      usage(2);
    }
    if (diff) {
      if (inputs.size() != 2) {
        std::cerr << "--diff needs exactly two export files\n";
        usage(2);
      }
      Export a, b;
      parse_file(inputs[0], a, /*check=*/true);
      parse_file(inputs[1], b, /*check=*/true);
      return diff_report(a, inputs[0], b, inputs[1], require_improvement);
    }
    if (inputs.empty()) {
      std::cerr << "no export files given\n";
      usage(2);
    }
    Export ex;
    for (const auto& path : inputs) parse_file(path, ex, check);
    if (check) return check_schema(ex, schema_path);
    report(ex, summary_path);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sbaudit: " << e.what() << "\n";
    return 1;
  }
}
