// sbtop — terminal dashboard for SmartBalance `#sb-tsdb v1` exports.
//
// Reads the continuous-telemetry CSV written by `sbsim --timeseries=` (a
// single node or a fleet) and renders the run as it evolved in simulated
// time: per-signal sparklines over the sampled frames, a fleet node-health
// rollup (node.<i>.* gauges), and SLO burn gauges (slo.burn.* against
// slo.breached.*). Like sbaudit, sbtop only parses the export file — it
// deliberately has no dependency on the simulator libraries, so it stays
// honest about `#sb-tsdb v1` being a self-describing interface.
//
// Modes:
//   sbtop export.csv              follow mode: re-read and redraw every
//                                 --interval-ms until interrupted (watch a
//                                 long sweep converge from another shell)
//   sbtop --once export.csv       render one snapshot and exit
//   sbtop --once --check ...      ...and exit nonzero unless the export
//                                 parsed cleanly with >= 1 frame (CI smoke)
//   sbtop --plain ...             ASCII bars instead of Unicode sparklines
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

constexpr int kSparkWidth = 32;

struct Series {
  std::vector<double> values;  // one point per frame, frame order
  double last = 0;
  double lo = 0;
  double hi = 0;
};

struct RunData {
  int index = 0;
  std::string label;
  std::uint64_t window_ns = 0;
  std::uint64_t dropped = 0;
  std::uint64_t first_t_ns = 0;
  std::uint64_t last_t_ns = 0;
  std::size_t frames = 0;
  // Insertion-ordered signal list (the sampler's record order groups
  // related signals together), values keyed by name.
  std::vector<std::string> order;
  std::map<std::string, Series> series;
};

struct Export {
  std::vector<RunData> runs;
  std::string error;  // non-empty: parse failed
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

Export parse(const std::string& path) {
  Export out;
  std::ifstream in(path);
  if (!in) {
    out.error = "cannot open " + path;
    return out;
  }
  std::string line;
  if (!std::getline(in, line) || line != "#sb-tsdb v1") {
    out.error = path + ": not a #sb-tsdb v1 export";
    return out;
  }
  if (!std::getline(in, line) || !starts_with(line, "#columns sample ")) {
    out.error = path + ": missing #columns line";
    return out;
  }
  RunData* cur = nullptr;
  std::uint64_t cur_t = 0;
  bool have_t = false;
  int lineno = 2;
  while (std::getline(in, line)) {
    ++lineno;
    if (starts_with(line, "#run ")) {
      out.runs.emplace_back();
      cur = &out.runs.back();
      std::istringstream ss(line.substr(5));
      ss >> cur->index;
      std::getline(ss >> std::ws, cur->label);
      have_t = false;
    } else if (starts_with(line, "#meta ")) {
      if (cur == nullptr) continue;
      std::istringstream ss(line.substr(6));
      std::string tok;
      ss >> tok;  // run index
      while (ss >> tok) {
        if (starts_with(tok, "window_ns="))
          cur->window_ns = std::strtoull(tok.c_str() + 10, nullptr, 10);
      }
    } else if (starts_with(line, "#counters ")) {
      if (cur == nullptr) continue;
      std::istringstream ss(line.substr(10));
      std::string tok;
      ss >> tok;
      while (ss >> tok) {
        if (starts_with(tok, "dropped="))
          cur->dropped = std::strtoull(tok.c_str() + 8, nullptr, 10);
      }
    } else if (starts_with(line, "sample,")) {
      if (cur == nullptr) {
        out.error = path + ":" + std::to_string(lineno) +
                    ": sample row before any #run";
        return out;
      }
      const std::size_t c1 = line.find(',', 7);
      const std::size_t c2 =
          c1 == std::string::npos ? c1 : line.find(',', c1 + 1);
      if (c2 == std::string::npos) {
        out.error = path + ":" + std::to_string(lineno) + ": malformed row";
        return out;
      }
      const std::uint64_t t_ns =
          std::strtoull(line.c_str() + 7, nullptr, 10);
      const std::string signal = line.substr(c1 + 1, c2 - c1 - 1);
      const double value = std::strtod(line.c_str() + c2 + 1, nullptr);
      if (!have_t || t_ns != cur_t) {
        if (!have_t) cur->first_t_ns = t_ns;
        have_t = true;
        cur_t = t_ns;
        cur->last_t_ns = t_ns;
        ++cur->frames;
      }
      auto [it, fresh] = cur->series.try_emplace(signal);
      if (fresh) it->second.lo = it->second.hi = value;
      if (fresh) cur->order.push_back(signal);
      Series& s = it->second;
      s.values.push_back(value);
      s.last = value;
      if (std::isfinite(value)) {
        s.lo = std::min(s.lo, value);
        s.hi = std::max(s.hi, value);
      }
    }
    // #summary and unknown directives are ignored: sbtop is a viewer, the
    // strict validator is tools/check_timeseries.py.
  }
  if (out.runs.empty()) out.error = path + ": no run blocks";
  return out;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

const char* const kSparks[] = {"\xe2\x96\x81", "\xe2\x96\x82", "\xe2\x96\x83",
                               "\xe2\x96\x84", "\xe2\x96\x85", "\xe2\x96\x86",
                               "\xe2\x96\x87", "\xe2\x96\x88"};
const char* const kPlain[] = {".", ":", "-", "=", "+", "*", "#", "@"};

std::string sparkline(const std::vector<double>& v, bool plain) {
  if (v.empty()) return "";
  const std::size_t n = std::min<std::size_t>(v.size(), kSparkWidth);
  const std::size_t begin = v.size() - n;
  double lo = v[begin], hi = v[begin];
  for (std::size_t i = begin; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) continue;
    lo = std::min(lo, v[i]);
    hi = std::max(hi, v[i]);
  }
  const double span = hi - lo;
  std::string out;
  for (std::size_t i = begin; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      out += "?";
      continue;
    }
    const int bucket =
        span <= 0 ? 0
                  : std::min(7, static_cast<int>((v[i] - lo) / span * 7.999));
    out += (plain ? kPlain : kSparks)[bucket];
  }
  return out;
}

std::string fmt(double v) {
  char buf[32];
  const double a = std::fabs(v);
  if (!std::isfinite(v))
    std::snprintf(buf, sizeof buf, "%g", v);
  else if (a != 0 && (a >= 1e6 || a < 1e-2))
    std::snprintf(buf, sizeof buf, "%.3e", v);
  else if (a >= 100 || v == static_cast<std::int64_t>(v))
    std::snprintf(buf, sizeof buf, "%.0f", v);
  else
    std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string burn_gauge(double burn, bool breached, bool plain) {
  constexpr int kWidth = 20;
  const int fill = std::clamp(static_cast<int>(burn * kWidth + 0.5), 0,
                              kWidth);
  std::string bar = "[";
  for (int i = 0; i < kWidth; ++i) bar += i < fill ? (plain ? "#" : "\xe2\x96\x88") : " ";
  bar += "]";
  bar += breached ? " BREACHED" : " ok";
  return bar;
}

void render(const Export& e, const std::string& path, bool plain) {
  for (const RunData& run : e.runs) {
    std::printf("sbtop — %s  run %d%s%s\n", path.c_str(), run.index,
                run.label.empty() ? "" : "  ", run.label.c_str());
    std::printf(
        "  window %.1f ms   frames %zu   span %.1f–%.1f ms   dropped %llu\n",
        run.window_ns / 1e6, run.frames, run.first_t_ns / 1e6,
        run.last_t_ns / 1e6,
        static_cast<unsigned long long>(run.dropped));

    // Headline signals: everything that is not per-node health or SLO
    // bookkeeping, in sampler record order.
    std::printf("  %-22s %-*s %12s %12s %12s\n", "signal", kSparkWidth,
                "trend", "last", "min", "max");
    for (const std::string& name : run.order) {
      if (starts_with(name, "node.") || starts_with(name, "slo.")) continue;
      const Series& s = run.series.at(name);
      std::printf("  %-22s %-*s %12s %12s %12s\n", name.c_str(), kSparkWidth,
                  sparkline(s.values, plain).c_str(), fmt(s.last).c_str(),
                  fmt(s.lo).c_str(), fmt(s.hi).c_str());
    }

    // Fleet node health rollup: node.<i>.<gauge> -> one line per node.
    std::map<int, std::vector<std::pair<std::string, const Series*>>> nodes;
    for (const std::string& name : run.order) {
      if (!starts_with(name, "node.")) continue;
      const std::size_t dot = name.find('.', 5);
      if (dot == std::string::npos) continue;
      const int node = std::atoi(name.c_str() + 5);
      nodes[node].emplace_back(name.substr(dot + 1), &run.series.at(name));
    }
    if (!nodes.empty()) {
      std::printf("  nodes:\n");
      for (const auto& [node, gauges] : nodes) {
        std::printf("    node %-3d", node);
        for (const auto& [gauge, s] : gauges)
          std::printf(" %s=%s", gauge.c_str(), fmt(s->last).c_str());
        std::printf("\n");
      }
    }

    // SLO burn gauges: the engine records slo.burn.<signal> per frame and
    // slo.breached.<signal> as a 0/1 state line.
    bool slo_header = false;
    for (const std::string& name : run.order) {
      if (!starts_with(name, "slo.burn.")) continue;
      if (!slo_header) {
        std::printf("  slo:\n");
        slo_header = true;
      }
      const std::string objective = name.substr(9);
      const Series& burn = run.series.at(name);
      const auto breached = run.series.find("slo.breached." + objective);
      const bool is_breached =
          breached != run.series.end() && breached->second.last != 0;
      std::printf("    %-20s burn %-6s %s\n", objective.c_str(),
                  fmt(burn.last).c_str(),
                  burn_gauge(burn.last, is_breached, plain).c_str());
    }
    std::printf("\n");
  }
}

void usage() {
  std::fprintf(
      stderr,
      "usage: sbtop [--once] [--check] [--plain] [--interval-ms=N] "
      "<export.csv>\n"
      "  --once           render one snapshot and exit\n"
      "  --check          exit nonzero unless the export parsed with >= 1 "
      "frame\n"
      "  --plain          ASCII art only (no Unicode sparklines)\n"
      "  --interval-ms=N  follow-mode refresh cadence (default 1000)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false, check = false, plain = false;
  int interval_ms = 1000;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--plain") {
      plain = true;
    } else if (starts_with(arg, "--interval-ms=")) {
      interval_ms = std::atoi(arg.c_str() + 14);
      if (interval_ms <= 0) {
        std::fprintf(stderr, "sbtop: bad --interval-ms\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sbtop: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "sbtop: more than one export path\n");
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  while (true) {
    const Export e = parse(path);
    if (!e.error.empty()) {
      std::fprintf(stderr, "sbtop: %s\n", e.error.c_str());
      if (once || check) return 1;
    } else {
      if (!once) std::printf("\x1b[2J\x1b[H");  // clear, home
      render(e, path, plain);
      if (check) {
        for (const RunData& run : e.runs) {
          if (run.frames == 0) {
            std::fprintf(stderr, "sbtop: run %d has no frames\n", run.index);
            return 1;
          }
        }
      }
    }
    if (once) return e.error.empty() ? 0 : 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
