// sbsim — command-line driver for the SmartBalance simulator.
//
// Runs an arbitrary platform/policy/workload combination and prints the
// full metrics report; the one-stop tool for exploring the system without
// writing C++.
//
// Examples:
//   sbsim --platform=quad --policy=smartbalance --bench=bodytrack:4
//   sbsim --platform=biglittle --policy=gts --bench=canneal:8
//         --duration-ms=1000 --seed=7
//   sbsim --platform=quad --compare --bench=swaptions:2 --bench=canneal:2
//   sbsim --platform=quad --policy=smartbalance --mix=6:2 --thermal
//         --trace=run.csv
//   sbsim --platform=scaled:4 --policy=smartbalance --bench=ferret:32
//         --dvfs --governor=ondemand
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "arch/platform_loader.h"
#include "core/predictor.h"
#include "fleet/fleet.h"
#include "obs/audit_writer.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "os/dvfs_governor.h"
#include "os/iks_balancer.h"
#include "os/utilaware_balancer.h"
#include "os/vanilla_balancer.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulation.h"
#include "workload/trace_loader.h"

namespace {

using namespace sb;

[[noreturn]] void usage(int code) {
  std::cout << R"(sbsim — SmartBalance heterogeneous-MPSoC simulator

  --platform=quad | biglittle | scaled:<per-type> | homogeneous:<n> |
             gen:<big>x<LITTLE>[:clusters]   synthetic large platform
                            (e.g. gen:32x96:8 = 1024 cores in 8 clusters)
  --platform-file=<desc.txt>   custom platform (see arch/platform_loader.h)
  --policy=none | vanilla | gts | iks | utilaware | smartbalance |
           smartbalance-eq11                     (default: smartbalance)
  --compare                 run vanilla, gts*, and smartbalance side by side
  --bench=<name>:<threads>  add a benchmark (repeatable); names: PARSEC
                            (bodytrack, canneal, ...), x264_{H,L}_{crew,bow},
                            IMB_{H,M,L}T{H,M,L}I
  --bench-at=<ms>:<name>:<threads>  deferred arrival
  --mix=<id>:<threads-per-member>   Table 3 mix (repeatable)
  --fleet=N[:policy[:rate]]  simulate a fleet of N nodes (each a full
                            simulation of --platform under --policy, which
                            must be smartbalance or vanilla) fed by a bursty
                            Zipf job stream at <rate> jobs/s, placed by the
                            fleet dispatch <policy>: rr | least | energy.
                            Excludes --bench/--mix/--bench-at/--compare.
                            e.g. --fleet=8:energy:450
  --duration-ms=<n>         simulated window (default 600)
  --seed=<n>                RNG seed (default 1234)
  --dvfs                    enable 4-point OPP tables
  --governor=ondemand | performance | powersave   (requires --dvfs)
  --thermal                 enable the RC thermal model
  --trace=<file>            .json: Chrome trace-event epoch trace (open in
                            Perfetto / chrome://tracing); anything else:
                            per-core CSV time series. SB_TRACE in the
                            environment supplies a default .json path.
  --metrics                 collect the observability metrics registry
                            (embedded as "metrics" in --json output)
  --metrics=<file>          ...and also write it (merged across --compare
                            runs) as standalone JSON to <file>
  --timeseries=<file>       sample the continuous telemetry plane (J_E,
                            per-type watts/GIPS, migrations, degraded/drift,
                            SA accept rate, wake-to-run tail; fleet runs add
                            queue depth, job counters and per-node health)
                            and write the `#sb-tsdb v1` export (.json: JSON
                            rendering). Byte-identical across --jobs; watch
                            live with sbtop
  --obs-window=<ms>[:cap]   sampling cadence in simulated ms and ring
                            capacity for --timeseries/--slo (default 10)
  --slo=<spec>              burn-rate SLO objectives over the sampled
                            signals (implies sampling), e.g.
                            "p99_wake_us<2000:burn=0.02,je>55e6"; breaches
                            emit slo.breach trace instants + slo.* counters
  --slo-strict              exit with status 3 if any SLO objective ever
                            breached (requires --slo)
  --prom=<file>             write a Prometheus text-exposition snapshot of
                            the fleet metrics (fleet runs only; forces
                            --metrics, nodes labelled node="i")
  --audit=<file>            record the prediction-audit flight recorder and
                            write its packed-CSV export (merged across
                            --compare runs; see obs/audit_writer.h; analyze
                            with sbaudit)
  --adapt=<spec>            online predictor adaptation for smartbalance
                            policies (see core/adapt.h), e.g.
                            "bias", "bias:0.25:0.5,rls:0.995", "rls"
  --shards=K[:jobs[:moves]] sharded hierarchical balancing for smartbalance
                            policies (see core/shard.h): K cluster-local SA
                            passes in parallel on <jobs> workers (0 = auto)
                            plus a global exchange of up to <moves> threads
                            per epoch (default auto). --shards=1 replays
                            the unsharded trajectory bit for bit
  --faults=<spec>           deterministic sensor-fault plan (fault/
                            fault_plan.h), e.g. "noise:0.8:8,wrap:0.05"
  --defenses=auto|on|off    sensing-defense activation (default auto:
                            on exactly when --faults is non-empty)
  --thread-trace=<csv>:<name>:<count>  spawn threads from a phase-trace CSV
                            (see workload/trace_loader.h for the format)
  --replay=<csv>            replay a recorded scheduler trace (perf-sched
                            style spawn/wake/sleep/exit events; see
                            workload/sched_replay.h for the grammar) as the
                            workload; phase refs resolve relative to the
                            trace file
  --replay-ips=<x>          replay calibration: instructions per busy
                            nanosecond when compiling the trace (default 1)
  --fleet-arrivals=mmpp | replay:<csv>   fleet arrival source (with --fleet):
                            the default bursty MMPP clock, or a scheduler
                            trace whose spawn events become job arrivals
                            (looped by its span; class = hash of task name)
  --save-model=<file>       train the predictor for this platform and save it
  --load-model=<file>       use a previously saved predictor (smartbalance)
  --json=<file>             dump the (last) run's full metrics as JSON
  --quiet                   headline numbers only
  (* gts/iks/utilaware need a big.LITTLE-style two-type platform)
)";
  std::exit(code);
}

struct Args {
  std::string platform = "quad";
  std::string platform_file;
  std::string policy = "smartbalance";
  std::string fleet;  // FleetConfig::parse spec (empty = single-node mode)
  bool compare = false;
  std::vector<std::pair<std::string, int>> benches;
  std::vector<std::tuple<TimeNs, std::string, int>> arrivals;
  std::vector<std::pair<int, int>> mixes;
  TimeNs duration = milliseconds(600);
  std::uint64_t seed = 1234;
  bool dvfs = false;
  std::string governor;
  bool thermal = false;
  std::string trace;         // per-core CSV time series
  std::string chrome_trace;  // Chrome trace-event JSON (epoch tracer)
  bool metrics = false;
  std::string metrics_out;   // standalone metrics JSON file
  std::string audit;         // prediction-audit export (packed CSV)
  std::string timeseries;    // #sb-tsdb export path (CSV, .json = JSON)
  std::string obs_window;    // TimeseriesConfig::parse spec ("<ms>[:cap]")
  std::string slo;           // SloConfig::parse spec
  bool slo_strict = false;   // exit 3 when any objective breached
  std::string prom;          // Prometheus exposition snapshot (fleet only)
  std::string adapt;         // AdaptationConfig::parse spec
  std::string shards;        // ShardingConfig::parse spec
  std::string faults;        // FaultPlan::parse spec
  std::string defenses;      // auto | on | off
  std::vector<std::tuple<std::string, std::string, int>> thread_traces;
  std::string replay;          // sched-replay trace CSV (single-node)
  double replay_ips = 1.0;     // compile calibration (instructions per ns)
  std::string fleet_arrivals;  // "mmpp" (default) or "replay:<csv>"
  std::string save_model;
  std::string load_model;
  std::string json_out;
  bool quiet = false;
};

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg.rfind("--platform=", 0) == 0) a.platform = value("--platform=");
    else if (arg.rfind("--platform-file=", 0) == 0)
      a.platform_file = value("--platform-file=");
    else if (arg.rfind("--policy=", 0) == 0) a.policy = value("--policy=");
    else if (arg.rfind("--fleet=", 0) == 0) a.fleet = value("--fleet=");
    else if (arg == "--compare") a.compare = true;
    else if (arg.rfind("--bench=", 0) == 0) {
      const auto parts = split(value("--bench="), ':');
      if (parts.size() != 2) usage(2);
      a.benches.emplace_back(parts[0], std::atoi(parts[1].c_str()));
    } else if (arg.rfind("--bench-at=", 0) == 0) {
      const auto parts = split(value("--bench-at="), ':');
      if (parts.size() != 3) usage(2);
      a.arrivals.emplace_back(milliseconds(std::atoll(parts[0].c_str())),
                              parts[1], std::atoi(parts[2].c_str()));
    } else if (arg.rfind("--mix=", 0) == 0) {
      const auto parts = split(value("--mix="), ':');
      if (parts.size() != 2) usage(2);
      a.mixes.emplace_back(std::atoi(parts[0].c_str()),
                           std::atoi(parts[1].c_str()));
    } else if (arg.rfind("--duration-ms=", 0) == 0) {
      a.duration = milliseconds(std::atoll(value("--duration-ms=").c_str()));
    } else if (arg.rfind("--seed=", 0) == 0) {
      a.seed = std::strtoull(value("--seed=").c_str(), nullptr, 10);
    } else if (arg == "--dvfs") a.dvfs = true;
    else if (arg.rfind("--governor=", 0) == 0) a.governor = value("--governor=");
    else if (arg == "--thermal") a.thermal = true;
    else if (arg.rfind("--thread-trace=", 0) == 0) {
      const auto parts = split(value("--thread-trace="), ':');
      if (parts.size() != 3) usage(2);
      a.thread_traces.emplace_back(parts[0], parts[1],
                                   std::atoi(parts[2].c_str()));
    } else if (arg.rfind("--replay=", 0) == 0) {
      a.replay = value("--replay=");
    } else if (arg.rfind("--replay-ips=", 0) == 0) {
      a.replay_ips = std::atof(value("--replay-ips=").c_str());
    } else if (arg.rfind("--fleet-arrivals=", 0) == 0) {
      a.fleet_arrivals = value("--fleet-arrivals=");
    } else if (arg.rfind("--save-model=", 0) == 0) {
      a.save_model = value("--save-model=");
    } else if (arg.rfind("--load-model=", 0) == 0) {
      a.load_model = value("--load-model=");
    } else if (arg.rfind("--json=", 0) == 0) {
      a.json_out = value("--json=");
    }
    else if (arg.rfind("--trace=", 0) == 0) {
      // One flag, two formats: .json selects the epoch tracer's Chrome
      // trace-event output, anything else the legacy per-core CSV series.
      const std::string path = value("--trace=");
      if (path.ends_with(".json")) a.chrome_trace = path;
      else a.trace = path;
    }
    else if (arg == "--metrics") a.metrics = true;
    else if (arg.rfind("--metrics=", 0) == 0) {
      a.metrics_out = value("--metrics=");
      a.metrics = true;
    } else if (arg.rfind("--audit=", 0) == 0) a.audit = value("--audit=");
    else if (arg.rfind("--timeseries=", 0) == 0)
      a.timeseries = value("--timeseries=");
    else if (arg.rfind("--obs-window=", 0) == 0)
      a.obs_window = value("--obs-window=");
    else if (arg.rfind("--slo=", 0) == 0) a.slo = value("--slo=");
    else if (arg == "--slo-strict") a.slo_strict = true;
    else if (arg.rfind("--prom=", 0) == 0) a.prom = value("--prom=");
    else if (arg.rfind("--adapt=", 0) == 0) a.adapt = value("--adapt=");
    else if (arg.rfind("--shards=", 0) == 0) a.shards = value("--shards=");
    else if (arg.rfind("--faults=", 0) == 0) a.faults = value("--faults=");
    else if (arg.rfind("--defenses=", 0) == 0)
      a.defenses = value("--defenses=");
    else if (arg == "--quiet") a.quiet = true;
    else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }
  if (a.chrome_trace.empty()) {
    if (const char* env = std::getenv("SB_TRACE")) a.chrome_trace = env;
  }
  if (!a.fleet.empty()) {
    // The fleet generates its own workload; the single-node workload flags
    // would silently do nothing, so reject the combination outright.
    if (!a.benches.empty() || !a.mixes.empty() || !a.arrivals.empty() ||
        !a.thread_traces.empty() || !a.replay.empty() || a.compare) {
      std::cerr << "--fleet generates its own job stream; it cannot be "
                   "combined with --bench/--mix/--bench-at/--thread-trace/"
                   "--replay/--compare\n";
      usage(2);
    }
  } else if (a.benches.empty() && a.mixes.empty() && a.arrivals.empty() &&
             a.thread_traces.empty() && a.replay.empty() &&
             a.save_model.empty()) {
    std::cerr << "no workload given (need --bench/--mix/--bench-at/"
                 "--thread-trace/--replay/--fleet)\n";
    usage(2);
  }
  if (!a.fleet_arrivals.empty() && a.fleet.empty()) {
    std::cerr << "--fleet-arrivals only applies to --fleet runs\n";
    usage(2);
  }
  if (!a.prom.empty() && a.fleet.empty()) {
    std::cerr << "--prom only applies to --fleet runs\n";
    usage(2);
  }
  if (a.slo_strict && a.slo.empty()) {
    std::cerr << "--slo-strict requires --slo\n";
    usage(2);
  }
  if (!a.obs_window.empty() && a.timeseries.empty() && a.slo.empty()) {
    std::cerr << "--obs-window requires --timeseries or --slo\n";
    usage(2);
  }
  return a;
}

arch::Platform make_platform(const std::string& spec) {
  if (spec == "quad") return arch::Platform::quad_heterogeneous();
  if (spec == "biglittle") return arch::Platform::octa_big_little();
  if (spec.rfind("gen:", 0) == 0) {
    return arch::generate_platform(spec.substr(4));
  }
  const auto parts = split(spec, ':');
  if (parts.size() == 2 && parts[0] == "scaled") {
    return arch::Platform::scaled_heterogeneous(std::atoi(parts[1].c_str()));
  }
  if (parts.size() == 2 && parts[0] == "homogeneous") {
    return arch::Platform::homogeneous(arch::medium_core(),
                                       std::atoi(parts[1].c_str()));
  }
  std::cerr << "unknown platform: " << spec << "\n";
  usage(2);
}

core::SmartBalanceConfig sb_config(const Args& a) {
  core::SmartBalanceConfig cfg;
  // Parse errors surface as std::invalid_argument -> main's catch -> exit 1.
  if (!a.adapt.empty()) cfg.adaptation = core::AdaptationConfig::parse(a.adapt);
  if (!a.shards.empty()) cfg.sharding = core::ShardingConfig::parse(a.shards);
  if (!a.faults.empty()) cfg.fault_plan = fault::FaultPlan::parse(a.faults);
  if (a.defenses == "on") {
    cfg.defenses = core::SmartBalanceConfig::Defenses::kOn;
  } else if (a.defenses == "off") {
    cfg.defenses = core::SmartBalanceConfig::Defenses::kOff;
  } else if (!a.defenses.empty() && a.defenses != "auto") {
    std::cerr << "unknown --defenses value: " << a.defenses << "\n";
    usage(2);
  }
  return cfg;
}

obs::TimeseriesConfig ts_config(const Args& a) {
  obs::TimeseriesConfig cfg;
  if (!a.obs_window.empty()) cfg = obs::TimeseriesConfig::parse(a.obs_window);
  cfg.enabled = true;
  return cfg;
}

/// Total SLO breach transitions across a merged run set (0 without --slo).
std::uint64_t slo_breaches(const std::vector<const obs::RunObs*>& runs) {
  std::uint64_t total = 0;
  for (const obs::RunObs* r : runs) {
    if (r == nullptr) continue;
    const auto it = r->metrics.counters().find("slo.breaches");
    if (it != r->metrics.counters().end()) total += it->second.value;
  }
  return total;
}

int strict_exit(const std::vector<const obs::RunObs*>& runs) {
  const std::uint64_t breaches = slo_breaches(runs);
  if (breaches == 0) return 0;
  std::cerr << "sbsim: --slo-strict: " << breaches
            << " SLO breach(es) during the run\n";
  return 3;
}

sim::BalancerFactory make_policy(const Args& a, const std::string& name) {
  if (name == "none") {
    return [](const sim::Simulation&) {
      return std::make_unique<os::NullBalancer>();
    };
  }
  if (name == "vanilla") return sim::vanilla_factory();
  if (name == "gts") return sim::gts_factory(0);
  if (name == "iks") {
    return [](const sim::Simulation&) {
      return std::make_unique<os::IksBalancer>();
    };
  }
  if (name == "utilaware") {
    return [](const sim::Simulation&) {
      return std::make_unique<os::UtilAwareBalancer>();
    };
  }
  if (name == "smartbalance") return sim::smartbalance_factory(sb_config(a));
  if (name == "smartbalance-eq11") {
    return sim::smartbalance_factory(sb_config(a),
                                     /*paper_eq11_objective=*/true);
  }
  std::cerr << "unknown policy: " << name << "\n";
  usage(2);
}

sim::BalancerFactory policy_for(const Args& a, const std::string& name) {
  if (name == "smartbalance" && !a.load_model.empty()) {
    return sim::smartbalance_factory_with_model(
        core::PredictorModel::load_from_file(a.load_model), sb_config(a));
  }
  return make_policy(a, name);
}

sim::SimulationResult run_once(const Args& a, const arch::Platform& platform,
                               const std::string& policy) {
  sim::SimulationConfig cfg;
  cfg.duration = a.duration;
  cfg.seed = a.seed;
  cfg.label = "sbsim";
  cfg.kernel.enable_dvfs = a.dvfs;
  cfg.thermal_enabled = a.thermal;
  cfg.trace_path = a.trace;
  // The merged Chrome trace (one process per policy under --compare) is
  // written once from main(); here we only turn the tracer on.
  cfg.obs.trace = !a.chrome_trace.empty();
  cfg.obs.metrics = a.metrics;
  cfg.obs.audit = !a.audit.empty();
  // The merged #sb-tsdb export (one run block per policy under --compare)
  // is written once from main(); here we only turn the sampler on.
  if (!a.timeseries.empty() || !a.slo.empty()) {
    cfg.obs.timeseries = ts_config(a);
    if (!a.slo.empty()) cfg.obs.slo = obs::SloConfig::parse(a.slo);
  }
  sim::Simulation s(platform, cfg);
  s.set_balancer(policy_for(a, policy)(s));
  if (!a.governor.empty()) {
    if (a.governor == "ondemand") {
      s.kernel().set_governor(std::make_unique<os::OndemandGovernor>());
    } else if (a.governor == "performance") {
      s.kernel().set_governor(std::make_unique<os::PerformanceGovernor>());
    } else if (a.governor == "powersave") {
      s.kernel().set_governor(std::make_unique<os::PowersaveGovernor>());
    } else {
      std::cerr << "unknown governor: " << a.governor << "\n";
      usage(2);
    }
  }
  for (const auto& [name, threads] : a.benches) s.add_benchmark(name, threads);
  for (const auto& [id, per] : a.mixes) s.add_mix(id, per);
  for (const auto& [at, name, threads] : a.arrivals) {
    s.add_benchmark_at(at, name, threads);
  }
  for (const auto& [path, name, count] : a.thread_traces) {
    const auto tb = workload::load_thread_trace_file(path, name);
    for (int i = 0; i < count; ++i) {
      auto copy = tb;
      copy.name = name + "/" + std::to_string(i);
      s.add_thread(std::move(copy));
    }
  }
  if (!a.replay.empty()) {
    const auto trace = workload::load_replay_trace_file(a.replay);
    workload::ReplayCompileOptions opts;
    opts.ips_hint = a.replay_ips;
    const std::size_t slash = a.replay.find_last_of('/');
    if (slash != std::string::npos) opts.base_dir = a.replay.substr(0, slash);
    s.add_replay(workload::compile_replay_schedule(trace, opts));
  }
  auto r = s.run();
  r.policy = policy;
  return r;
}

int run_fleet(const Args& a, const arch::Platform& platform) {
  fleet::FleetConfig cfg = fleet::FleetConfig::parse(a.fleet);
  cfg.duration = a.duration;
  cfg.seed = a.seed;
  cfg.node_policy = a.policy;  // validate() rejects anything but
                               // smartbalance/vanilla
  cfg.trace = !a.chrome_trace.empty();
  cfg.metrics = a.metrics;
  cfg.node_obs = a.metrics;
  cfg.timeseries = !a.timeseries.empty();
  if (!a.obs_window.empty()) {
    const obs::TimeseriesConfig tw = obs::TimeseriesConfig::parse(a.obs_window);
    cfg.obs_window = tw.window;
    cfg.obs_capacity = tw.capacity;
  }
  cfg.slo = a.slo;
  if (!a.prom.empty()) {
    // The exposition snapshot reads the metrics registries; collect them
    // (and the per-node ones, for node="i" labels) even without --metrics.
    cfg.metrics = true;
    cfg.node_obs = true;
  }
  if (!a.fleet_arrivals.empty() && a.fleet_arrivals != "mmpp") {
    constexpr std::string_view kReplay = "replay:";
    if (a.fleet_arrivals.rfind(kReplay, 0) != 0 ||
        a.fleet_arrivals.size() == kReplay.size()) {
      std::cerr << "--fleet-arrivals: want mmpp or replay:<file>, got '"
                << a.fleet_arrivals << "'\n";
      usage(2);
    }
    cfg.arrival_replay = a.fleet_arrivals.substr(kReplay.size());
  }
  fleet::FleetSimulation f(cfg, {platform});
  const fleet::FleetResult r = f.run();

  std::cout << "fleet: " << r.nodes << " nodes (" << a.platform << ", "
            << r.node_policy << "), dispatch=" << r.dispatch_policy
            << ", " << to_millis(r.simulated) << " ms simulated\n"
            << "jobs: " << r.jobs_arrived << " arrived, "
            << r.jobs_dispatched << " dispatched, " << r.jobs_completed
            << " completed, " << r.jobs_deferred << " deferrals\n"
            << "fleet J_E: " << r.je_inst_per_joule / 1e6
            << " M inst/J  (" << r.instructions / 1e9 << " G inst, "
            << r.energy_j << " J)\n";
  if (!a.quiet) {
    auto tail = [](const char* name, const fleet::LatencyTail& t) {
      std::cout << name << ": p50 " << t.p50_ns / 1e6 << " ms, p95 "
                << t.p95_ns / 1e6 << " ms, p99 " << t.p99_ns / 1e6
                << " ms (n=" << t.count << ")\n";
    };
    tail("queue", r.queue);
    tail("wake-to-run", r.wake);
    tail("sojourn", r.sojourn);
    std::cout << "p99 arrival-to-run: " << r.p99_dispatch_to_run_ns / 1e6
              << " ms\n";
  }

  // Observability exports: the fleet run is pid 0, nodes are pid 1..N.
  std::vector<const obs::RunObs*> runs;
  if (r.obs) runs.push_back(r.obs.get());
  for (const auto& n : r.node_obs) runs.push_back(n.get());
  if (!a.chrome_trace.empty()) {
    obs::write_chrome_trace_file(a.chrome_trace, runs);
    std::cout << "trace written to " << a.chrome_trace << "\n";
  }
  if (!a.metrics_out.empty()) {
    std::ofstream ms(a.metrics_out);
    if (!ms) throw std::runtime_error("cannot write " + a.metrics_out);
    obs::merge_metrics(runs).write_json(ms);
    ms << '\n';
    std::cout << "metrics written to " << a.metrics_out << "\n";
  }
  if (!a.json_out.empty()) {
    std::ofstream js(a.json_out);
    if (!js) throw std::runtime_error("cannot write " + a.json_out);
    fleet::write_fleet_json(js, r);
    js << '\n';
    std::cout << "metrics written to " << a.json_out << "\n";
  }
  if (!a.timeseries.empty()) {
    obs::write_timeseries_file(a.timeseries, runs);
    std::cout << "timeseries written to " << a.timeseries << "\n";
  }
  if (!a.prom.empty()) {
    obs::write_prometheus_file(a.prom, runs);
    std::cout << "prometheus snapshot written to " << a.prom << "\n";
  }
  if (a.slo_strict) return strict_exit(runs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    const auto platform = a.platform_file.empty()
                              ? make_platform(a.platform)
                              : arch::load_platform_file(a.platform_file);

    if (!a.fleet.empty()) return run_fleet(a, platform);

    if (!a.save_model.empty()) {
      sim::Simulation probe(platform, sim::SimulationConfig{});
      const auto model =
          sim::train_default_model(probe.perf_model(), probe.power_model());
      model.save_to_file(a.save_model);
      std::cout << "trained predictor saved to " << a.save_model << "\n";
      if (a.benches.empty() && a.mixes.empty() && a.arrivals.empty() &&
          a.thread_traces.empty()) {
        return 0;
      }
    }

    std::vector<std::string> policies;
    if (a.compare) {
      policies = {"vanilla", "smartbalance"};
      if (platform.num_types() == 2) policies.insert(policies.begin() + 1, "gts");
    } else {
      policies = {a.policy};
    }

    std::vector<sim::SimulationResult> results;
    for (const auto& p : policies) {
      results.push_back(run_once(a, platform, p));
      if (a.quiet) {
        const auto& r = results.back();
        std::cout << r.policy << ": " << r.ips_per_watt / 1e6 << " MIPS/W ("
                  << r.ips / 1e9 << " GIPS, " << r.watts << " W)\n";
      } else {
        sim::print_result(std::cout, results.back());
        if (a.thermal && !results.back().final_temp_c.empty()) {
          std::cout << "peak temperature: " << results.back().max_temp_c
                    << " C\n";
        }
        std::cout << '\n';
      }
    }
    // Merged per-policy observability exports: run index = policy order.
    std::vector<const obs::RunObs*> runs;
    if (!a.chrome_trace.empty() || !a.audit.empty() ||
        !a.metrics_out.empty() || !a.timeseries.empty() || !a.slo.empty()) {
      int idx = 0;
      for (auto& r : results) {
        if (r.obs) {
          r.obs->run = idx++;
          r.obs->label = r.policy;
          runs.push_back(r.obs.get());
        }
      }
    }
    if (!a.chrome_trace.empty()) {
      obs::write_chrome_trace_file(a.chrome_trace, runs);
      std::cout << "trace written to " << a.chrome_trace << "\n";
    }
    if (!a.audit.empty()) {
      obs::write_audit_file(a.audit, runs);
      std::cout << "audit export written to " << a.audit << "\n";
    }
    if (!a.timeseries.empty()) {
      obs::write_timeseries_file(a.timeseries, runs);
      std::cout << "timeseries written to " << a.timeseries << "\n";
    }
    if (!a.metrics_out.empty()) {
      std::ofstream ms(a.metrics_out);
      if (!ms) throw std::runtime_error("cannot write " + a.metrics_out);
      obs::merge_metrics(runs).write_json(ms);
      ms << '\n';
      std::cout << "metrics written to " << a.metrics_out << "\n";
    }
    if (!a.json_out.empty()) {
      std::ofstream js(a.json_out);
      if (!js) throw std::runtime_error("cannot write " + a.json_out);
      sim::write_json(js, results.back());
      std::cout << "metrics written to " << a.json_out << "\n";
    }
    if (results.size() > 1) {
      const double gain =
          100.0 * (sim::efficiency_ratio(results.back(), results.front()) - 1);
      std::cout << results.back().policy << " vs " << results.front().policy
                << ": " << gain << " % energy-efficiency gain\n";
    }
    if (a.slo_strict) return strict_exit(runs);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sbsim: " << e.what() << "\n";
    return 1;
  }
}
