#!/usr/bin/env bash
# Regenerates the committed perf baselines (the BENCH_*.json files at the
# repo root) from N interleaved repetitions of the release-mode benchmark
# harnesses, taking the best-of envelope on every gated metric.
#
# Why interleaved best-of: a single benchmark run bakes whatever thermal /
# frequency / cache state the machine happened to be in into the committed
# numbers, and a slow baseline silently loosens the regression gate forever.
# Running the harnesses alternately N times and keeping the per-metric
# minimum (maximum for rate metrics) approximates the machine's true
# steady-state capability: transient noise can only make a repetition
# slower, never faster.
#
# The harness roster lives in the HARNESSES table below — one line per
# harness: its binary, its extra arguments, and the BENCH files it writes.
# Adding a benchmark to the committed baseline set means adding one line.
#
# Envelope rules (matching tools/check_bench.py's gates):
#   min over reps   ns_per_iteration, ns_per_call, total_us, min_pass_ns,
#                   pass_cost_index, allocs_per_call, allocs_per_pass,
#                   sense_us, predict_us, optimize_us, migrate_us
#   max over reps   iterations_per_sec
#   first rep       everything else (descriptions, counts, derived
#                   percentages — informational, not gated)
#
# Usage:
#   tools/rebaseline.sh [-n REPS] [-b BUILD_DIR]
#     -n REPS       repetitions (default 5)
#     -b BUILD_DIR  existing or to-be-created Release build (default
#                   build-rel)
# Run from the repo root. Review the diff, then commit the refreshed
# BENCH_*.json files together with a note of the machine they came from.
set -euo pipefail

# "binary;extra args;BENCH files written" — ';'-separated because benchmark
# filters contain '|'. The run order below is the interleave order.
HARNESSES=(
  "micro_benchmarks;--benchmark_filter=BM_SaOptimize|BM_BuildCharacterization --benchmark_min_time=0.05;BENCH_sa.json BENCH_obs.json"
  "fig7_overhead_scalability;;BENCH_epoch.json"
  "fig_shard_scaling;;BENCH_shard.json"
  "fig_fleet;;BENCH_fleet.json"
  "fig_latency;;BENCH_latency.json"
  "fig_slo;;BENCH_slo.json"
)

REPS=5
BUILD_DIR=build-rel
while getopts "n:b:h" opt; do
  case "$opt" in
    n) REPS="$OPTARG" ;;
    b) BUILD_DIR="$OPTARG" ;;
    h|*) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
  esac
done

if [[ ! -f CMakeLists.txt || ! -d tools ]]; then
  echo "rebaseline.sh: run from the repository root" >&2
  exit 2
fi

BINARIES=()
BENCH_FILES=()
for spec in "${HARNESSES[@]}"; do
  BINARIES+=("${spec%%;*}")
  files=${spec##*;}
  for f in $files; do BENCH_FILES+=("$f"); done
done

need_build=0
for bin in "${BINARIES[@]}"; do
  [[ -x "$BUILD_DIR/bench/$bin" ]] || need_build=1
done
if [[ "$need_build" == 1 ]]; then
  echo "== configuring + building $BUILD_DIR (Release)"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target "${BINARIES[@]}"
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
ROOT=$(pwd)

for rep in $(seq 1 "$REPS"); do
  echo "== repetition $rep/$REPS"
  mkdir -p "$WORK/rep$rep"
  # Interleave the harnesses so slow machine phases hit all of them equally.
  for spec in "${HARNESSES[@]}"; do
    bin=${spec%%;*}
    rest=${spec#*;}
    args=${rest%%;*}
    # shellcheck disable=SC2086  # intentional word splitting of the args
    (cd "$WORK/rep$rep" && "$ROOT/$BUILD_DIR/bench/$bin" $args >/dev/null)
  done
  for f in "${BENCH_FILES[@]}"; do
    [[ -f "$WORK/rep$rep/$f" ]] ||
        { echo "rebaseline.sh: rep $rep did not produce $f" >&2; exit 1; }
  done
done

echo "== merging best-of envelope over $REPS repetitions"
REBASELINE_FILES="${BENCH_FILES[*]}" python3 - "$WORK" "$REPS" <<'PY'
import json
import os
import sys

work, reps = sys.argv[1], int(sys.argv[2])
MIN_KEYS = {"ns_per_iteration", "ns_per_call", "total_us", "min_pass_ns",
            "pass_cost_index", "allocs_per_call", "allocs_per_pass",
            "sense_us", "predict_us", "optimize_us", "migrate_us",
            "opt_exchange_us_per_core", "sa_cpu_us_per_pass",
            "exchange_us_per_pass", "sublinear_violations",
            "advantage_lost_pct"}
MAX_KEYS = {"iterations_per_sec"}

for name in os.environ["REBASELINE_FILES"].split():
    docs = []
    for rep in range(1, reps + 1):
        with open(f"{work}/rep{rep}/{name}") as f:
            docs.append(json.load(f))
    merged = docs[0]
    for section, body in merged.items():
        if not isinstance(body, dict):
            continue
        others = [d.get(section) for d in docs[1:]]
        for key, value in body.items():
            pool = [value] + [o[key] for o in others
                              if isinstance(o, dict) and key in o]
            if key in MIN_KEYS:
                body[key] = min(pool)
            elif key in MAX_KEYS:
                body[key] = max(pool)
    # Match the emitters' 6-decimal float style so diffs stay readable.
    def fmt(obj):
        if isinstance(obj, float):
            return round(obj, 6)
        if isinstance(obj, dict):
            return {k: fmt(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [fmt(v) for v in obj]
        return obj
    with open(name, "w") as f:
        json.dump(fmt(merged), f, indent=2)
        f.write("\n")
    print(f"  wrote {name}")
PY

echo "== done; review with: git diff ${BENCH_FILES[*]}"
