#!/usr/bin/env python3
"""Perf-regression gate over the machine-readable bench trajectories.

Compares freshly generated BENCH_*.json files (micro_benchmarks emits
BENCH_sa.json and BENCH_obs.json, fig7_overhead_scalability emits
BENCH_epoch.json, fig_shard_scaling emits BENCH_shard.json) against the
baselines committed at the repo root.
Fails when a hot-path time metric regresses by more than --max-regress
(default 25%), or when the allocation count per optimizer call / epoch
pass increases at all -- the zero-alloc inner loop is a hard invariant,
not a soft budget.

A baseline section may carry its own "max_regress" key, which overrides
the command-line value for that section. BENCH_obs.json uses this to
hold the observability-off epoch pass to a 1% budget over the
pre-observability (PR 2) hot path. Because absolute pass times are not
comparable across runners, the gated metric there is pass_cost_index --
the minimum pass CPU time divided by the minimum CPU time of a fixed
integer yardstick loop measured interleaved in the same run. Machine
speed cancels in the ratio, so a 1% budget is meaningful even when the
fresh run executes on different hardware than the committed baseline.

Usage:
    check_bench.py [--max-regress 0.25] [--step-summary "$GITHUB_STEP_SUMMARY"]
                   BASELINE FRESH [BASELINE FRESH ...]

Exit status: 0 when every gated metric is within bounds, 1 otherwise.
"""

import argparse
import json
import sys

# Time (or normalized-time) metrics gated by --max-regress. Per-phase
# microsecond splits (sense_us, optimize_us, ...) are reported but not
# gated: they jitter too much on shared CI runners, while the aggregates
# below are stable. pass_cost_index is dimensionless (yardstick-normalized
# CPU time), which is what lets BENCH_obs pin it to a 1% section budget.
RATIO_METRICS = ("ns_per_iteration", "total_us", "pass_cost_index",
                 "opt_exchange_us_per_core")
# Metrics where any increase is a failure. sublinear_violations counts
# scale steps in the sharded-scaling sweep where optimize+exchange CPU
# per core failed to drop -- the tentpole claim of the sharded balancer
# is that this stays at zero, so any increase over the committed
# baseline (itself zero) is a hard failure.
EXACT_METRICS = ("allocs_per_call", "allocs_per_pass", "sublinear_violations")
# Tolerance for float noise in "exact" comparisons.
EPSILON = 1e-9


def sections(doc):
    """Yields (name, dict) for every benchmark section in a BENCH json."""
    for key, value in doc.items():
        if isinstance(value, dict):
            yield key, value


def compare(baseline_path, fresh_path, max_regress, rows):
    """Gates one baseline/fresh pair. Appends per-metric result rows
    (metric label, baseline, fresh, bound label, ok) to `rows` for the
    --step-summary table and returns the list of violations."""
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    name = baseline.get("bench", baseline_path)
    failures = []
    checked = 0

    fresh_sections = dict(sections(fresh))
    for sec_name, base_sec in sections(baseline):
        fresh_sec = fresh_sections.get(sec_name)
        if fresh_sec is None:
            failures.append(f"{name}/{sec_name}: section missing from fresh run")
            continue
        # A baseline section may pin its own regression budget (the
        # observability-off path is held to 1% regardless of the CLI).
        sec_regress = base_sec.get("max_regress", max_regress)
        for metric in RATIO_METRICS:
            if metric not in base_sec or metric not in fresh_sec:
                continue
            base_v, fresh_v = base_sec[metric], fresh_sec[metric]
            checked += 1
            limit = base_v * (1.0 + sec_regress)
            status = "FAIL" if fresh_v > limit else "ok"
            print(f"  [{status}] {name}/{sec_name}/{metric}: "
                  f"{base_v:.3f} -> {fresh_v:.3f} "
                  f"({(fresh_v / base_v - 1.0) * 100.0:+.1f}%, "
                  f"limit {limit:.3f})")
            rows.append((f"{name}/{sec_name}/{metric}", f"{base_v:.3f}",
                         f"{fresh_v:.3f}",
                         f"≤ +{sec_regress * 100.0:.0f}%",
                         fresh_v <= limit))
            if fresh_v > limit:
                failures.append(
                    f"{name}/{sec_name}/{metric}: {fresh_v:.3f} exceeds "
                    f"{base_v:.3f} by more than {sec_regress * 100.0:.0f}%")
        for metric in EXACT_METRICS:
            if metric not in base_sec or metric not in fresh_sec:
                continue
            base_v, fresh_v = base_sec[metric], fresh_sec[metric]
            checked += 1
            status = "FAIL" if fresh_v > base_v + EPSILON else "ok"
            print(f"  [{status}] {name}/{sec_name}/{metric}: "
                  f"{base_v:g} -> {fresh_v:g} (no increase allowed)")
            rows.append((f"{name}/{sec_name}/{metric}", f"{base_v:g}",
                         f"{fresh_v:g}", "no increase",
                         fresh_v <= base_v + EPSILON))
            if fresh_v > base_v + EPSILON:
                failures.append(
                    f"{name}/{sec_name}/{metric}: increased "
                    f"{base_v:g} -> {fresh_v:g}")
        # A baseline section may pin absolute ceilings on chosen metrics
        # ("max_allowed": {"advantage_lost_pct": 5.0}). Unlike the ratio
        # gates these do not compare against the baseline value -- they
        # bound the fresh value directly, which is the right shape for
        # quality metrics that must never exceed a spec'd budget no
        # matter what the committed run happened to measure.
        for metric, ceiling in base_sec.get("max_allowed", {}).items():
            fresh_v = fresh_sec.get(metric)
            if fresh_v is None:
                failures.append(
                    f"{name}/{sec_name}/{metric}: ceiling {ceiling:g} set "
                    "but metric missing from fresh run")
                continue
            checked += 1
            status = "FAIL" if fresh_v > ceiling + EPSILON else "ok"
            print(f"  [{status}] {name}/{sec_name}/{metric}: "
                  f"{fresh_v:g} (ceiling {ceiling:g})")
            rows.append((f"{name}/{sec_name}/{metric}", "—", f"{fresh_v:g}",
                         f"≤ {ceiling:g}", fresh_v <= ceiling + EPSILON))
            if fresh_v > ceiling + EPSILON:
                failures.append(
                    f"{name}/{sec_name}/{metric}: {fresh_v:g} exceeds "
                    f"ceiling {ceiling:g}")
    if checked == 0:
        failures.append(f"{name}: no gated metrics found -- "
                        "baseline/fresh schema mismatch?")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", metavar="BASELINE FRESH",
                        help="alternating baseline/fresh json paths")
    parser.add_argument("--max-regress", type=float, default=0.25,
                        help="max fractional time regression (default 0.25)")
    parser.add_argument("--step-summary",
                        help="append a markdown results table to this file "
                             "(pass $GITHUB_STEP_SUMMARY in CI)")
    args = parser.parse_args()

    if len(args.files) % 2 != 0:
        parser.error("expected an even number of paths: BASELINE FRESH ...")

    all_failures = []
    rows = []
    for i in range(0, len(args.files), 2):
        baseline, fresh = args.files[i], args.files[i + 1]
        print(f"{baseline} vs {fresh}:")
        all_failures += compare(baseline, fresh, args.max_regress, rows)

    if args.step_summary:
        with open(args.step_summary, "a") as f:
            f.write("### Perf gate\n\n")
            f.write("| Metric | Baseline | Fresh | Bound | Status |\n")
            f.write("|---|---|---|---|---|\n")
            for metric, base_v, fresh_v, bound, ok in rows:
                f.write(f"| `{metric}` | {base_v} | {fresh_v} | {bound} "
                        f"| {'✅' if ok else '❌'} |\n")
            f.write(f"\n**{len(rows)} metric(s) checked, "
                    f"{len(all_failures)} violation(s).**\n\n")

    if all_failures:
        print(f"\nPERF GATE FAILED ({len(all_failures)} violation(s)):",
              file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
