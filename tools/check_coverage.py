#!/usr/bin/env python3
"""Line-coverage gate over a gcov-instrumented build (no gcovr needed).

Walks a build tree for .gcda files (produced by running the test suite in
a build configured with --coverage), shells out to `gcov --json-format
--stdout` for each, and aggregates per-source-line execution counts --
taking the max across translation units, so a header exercised by any TU
counts as covered.

Gates (any failing exits 1):
  --min-obs PCT     minimum line coverage for src/obs/ (default 90)
  --min-adapt PCT   minimum line coverage for src/core/adapt.* (default 0)
  --min-shard PCT   minimum line coverage for src/core/shard.* (default 0)
  --min-total PCT   minimum overall line coverage for src/ (default 0)

--json FILE writes the per-file numbers for the CI artifact.

Usage:
    check_coverage.py --build-dir build-cov [--source-root .]
                      [--min-obs 90] [--min-total 80] [--json coverage.json]
"""

import argparse
import json
import os
import subprocess
import sys


def gcov_reports(build_dir):
    """Yields parsed gcov JSON documents for every .gcda under build_dir."""
    gcda = []
    for root, _dirs, files in os.walk(build_dir):
        gcda += [os.path.join(root, f) for f in files if f.endswith(".gcda")]
    if not gcda:
        sys.exit(f"no .gcda files under {build_dir} -- did the tests run in "
                 "a --coverage build?")
    for path in sorted(gcda):
        # Run gcov inside the .gcda's own directory (where the matching
        # .gcno notes file lives) and hand it the bare filename.
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.basename(path)],
            capture_output=True, text=True,
            cwd=os.path.dirname(os.path.abspath(path)))
        if proc.returncode != 0:
            print(f"warning: gcov failed on {path}: {proc.stderr.strip()}",
                  file=sys.stderr)
            continue
        # One JSON document per input file; tolerate trailing noise lines.
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def aggregate(build_dir, source_root):
    """Returns {rel_source_path: {line_number: max_count}}."""
    source_root = os.path.realpath(source_root)
    lines_by_file = {}
    for doc in gcov_reports(build_dir):
        for entry in doc.get("files", []):
            path = os.path.realpath(
                os.path.join(doc.get("current_working_directory", "."),
                             entry["file"]))
            if not path.startswith(source_root + os.sep):
                continue
            rel = os.path.relpath(path, source_root)
            counts = lines_by_file.setdefault(rel, {})
            for ln in entry.get("lines", []):
                n = ln["line_number"]
                counts[n] = max(counts.get(n, 0), ln["count"])
    return lines_by_file


def coverage_of(files):
    covered = sum(1 for c in files.values() for n in c.values() if n > 0)
    total = sum(len(c) for c in files.values())
    return covered, total, (100.0 * covered / total if total else 100.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--min-obs", type=float, default=90.0,
                        help="min line coverage %% for src/obs/ (default 90)")
    parser.add_argument("--min-adapt", type=float, default=0.0,
                        help="min line coverage %% for src/core/adapt.* "
                             "(default 0)")
    parser.add_argument("--min-shard", type=float, default=0.0,
                        help="min line coverage %% for src/core/shard.* "
                             "(default 0)")
    parser.add_argument("--min-total", type=float, default=0.0,
                        help="min line coverage %% for src/ (default 0)")
    parser.add_argument("--json", help="write per-file numbers to this file")
    args = parser.parse_args()

    lines = aggregate(args.build_dir, args.source_root)
    src = {f: c for f, c in lines.items() if f.startswith("src" + os.sep)}
    obs = {f: c for f, c in src.items()
           if f.startswith(os.path.join("src", "obs") + os.sep)}
    adapt = {f: c for f, c in src.items()
             if f.startswith(os.path.join("src", "core", "adapt."))}
    shard = {f: c for f, c in src.items()
             if f.startswith(os.path.join("src", "core", "shard."))}

    per_file = {}
    for f in sorted(src):
        cov, tot, pct = coverage_of({f: src[f]})
        per_file[f] = {"covered": cov, "lines": tot, "pct": round(pct, 2)}
        print(f"  {pct:6.2f}%  {cov:5d}/{tot:<5d}  {f}")

    obs_cov, obs_tot, obs_pct = coverage_of(obs)
    adapt_cov, adapt_tot, adapt_pct = coverage_of(adapt)
    shard_cov, shard_tot, shard_pct = coverage_of(shard)
    tot_cov, tot_tot, tot_pct = coverage_of(src)
    print(f"\nsrc/obs/: {obs_pct:.2f}% ({obs_cov}/{obs_tot} lines)")
    print(f"src/core/adapt.*: {adapt_pct:.2f}% ({adapt_cov}/{adapt_tot} lines)")
    print(f"src/core/shard.*: {shard_pct:.2f}% ({shard_cov}/{shard_tot} lines)")
    print(f"src/ overall: {tot_pct:.2f}% ({tot_cov}/{tot_tot} lines)")

    if args.json:
        with open(args.json, "w") as f:
            json.dump({"files": per_file,
                       "src_obs_pct": round(obs_pct, 2),
                       "src_adapt_pct": round(adapt_pct, 2),
                       "src_shard_pct": round(shard_pct, 2),
                       "src_total_pct": round(tot_pct, 2)}, f, indent=1,
                      sort_keys=True)
            f.write("\n")

    failures = []
    if not obs:
        failures.append("no coverage data for src/obs/ at all")
    if obs_pct < args.min_obs:
        failures.append(f"src/obs/ coverage {obs_pct:.2f}% < "
                        f"required {args.min_obs:.2f}%")
    if args.min_adapt > 0 and not adapt:
        failures.append("no coverage data for src/core/adapt.* at all")
    if adapt_pct < args.min_adapt:
        failures.append(f"src/core/adapt.* coverage {adapt_pct:.2f}% < "
                        f"required {args.min_adapt:.2f}%")
    if args.min_shard > 0 and not shard:
        failures.append("no coverage data for src/core/shard.* at all")
    if shard_pct < args.min_shard:
        failures.append(f"src/core/shard.* coverage {shard_pct:.2f}% < "
                        f"required {args.min_shard:.2f}%")
    if tot_pct < args.min_total:
        failures.append(f"src/ coverage {tot_pct:.2f}% < "
                        f"required {args.min_total:.2f}%")
    if failures:
        print(f"\nCOVERAGE GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\ncoverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
