#!/usr/bin/env python3
"""Line-coverage gate over a gcov-instrumented build (no gcovr needed).

Walks a build tree for .gcda files (produced by running the test suite in
a build configured with --coverage), shells out to `gcov --json-format
--stdout` for each, and aggregates per-source-line execution counts --
taking the max across translation units, so a header exercised by any TU
counts as covered.

Gates (any failing exits 1):
  --min-obs PCT     minimum line coverage for src/obs/ (default 90)
  --min-adapt PCT   minimum line coverage for src/core/adapt.* (default 0)
  --min-shard PCT   minimum line coverage for src/core/shard.* (default 0)
  --min-fleet PCT   minimum line coverage for src/fleet/ (default 0)
  --min-replay PCT  minimum line coverage for src/workload/sched_replay.*
                    (default 0)
  --min-tsdb PCT    minimum line coverage for the telemetry plane
                    (src/obs/timeseries.* + src/obs/slo.*, default 0)
  --min-total PCT   minimum overall line coverage for src/ (default 0)

--json FILE writes the per-file numbers for the CI artifact.
--step-summary FILE appends a markdown summary table (pass $GITHUB_STEP_SUMMARY
in CI to surface the area percentages on the run page).

Usage:
    check_coverage.py --build-dir build-cov [--source-root .]
                      [--min-obs 90] [--min-total 80] [--json coverage.json]
                      [--step-summary "$GITHUB_STEP_SUMMARY"]
"""

import argparse
import json
import os
import subprocess
import sys

# Gated areas: (name, path prefix — or tuple of prefixes — relative to the
# source root). A prefix ending in a separator selects a directory subtree;
# otherwise it is a filename-prefix match (e.g. src/core/adapt. matches
# adapt.h/.cc). Adding an area here is the whole change: the CLI flag, the
# report line, the JSON key and the step-summary row all derive from this
# table.
AREAS = [
    ("obs", os.path.join("src", "obs") + os.sep),
    ("adapt", os.path.join("src", "core", "adapt.")),
    ("shard", os.path.join("src", "core", "shard.")),
    ("fleet", os.path.join("src", "fleet") + os.sep),
    ("replay", os.path.join("src", "workload", "sched_replay.")),
    # The telemetry plane (timeseries recorder + SLO engine) spans two file
    # stems inside src/obs/ and carries its own, stricter bar.
    ("tsdb", (os.path.join("src", "obs", "timeseries."),
              os.path.join("src", "obs", "slo."))),
]
DEFAULT_MINIMUMS = {"obs": 90.0}


def gcov_reports(build_dir):
    """Yields parsed gcov JSON documents for every .gcda under build_dir."""
    gcda = []
    for root, _dirs, files in os.walk(build_dir):
        gcda += [os.path.join(root, f) for f in files if f.endswith(".gcda")]
    if not gcda:
        sys.exit(f"no .gcda files under {build_dir} -- did the tests run in "
                 "a --coverage build?")
    for path in sorted(gcda):
        # Run gcov inside the .gcda's own directory (where the matching
        # .gcno notes file lives) and hand it the bare filename.
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.basename(path)],
            capture_output=True, text=True,
            cwd=os.path.dirname(os.path.abspath(path)))
        if proc.returncode != 0:
            print(f"warning: gcov failed on {path}: {proc.stderr.strip()}",
                  file=sys.stderr)
            continue
        # One JSON document per input file; tolerate trailing noise lines.
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def aggregate(build_dir, source_root):
    """Returns {rel_source_path: {line_number: max_count}}."""
    source_root = os.path.realpath(source_root)
    lines_by_file = {}
    for doc in gcov_reports(build_dir):
        for entry in doc.get("files", []):
            path = os.path.realpath(
                os.path.join(doc.get("current_working_directory", "."),
                             entry["file"]))
            if not path.startswith(source_root + os.sep):
                continue
            rel = os.path.relpath(path, source_root)
            counts = lines_by_file.setdefault(rel, {})
            for ln in entry.get("lines", []):
                n = ln["line_number"]
                counts[n] = max(counts.get(n, 0), ln["count"])
    return lines_by_file


def coverage_of(files):
    covered = sum(1 for c in files.values() for n in c.values() if n > 0)
    total = sum(len(c) for c in files.values())
    return covered, total, (100.0 * covered / total if total else 100.0)


def area_label(name, prefix):
    if name == "total":
        return "src/ overall"
    parts = prefix if isinstance(prefix, tuple) else (prefix,)
    return ", ".join(p.replace(os.sep, "/")
                     + ("*" if not p.endswith(os.sep) else "")
                     for p in parts)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", default=".")
    for name, _prefix in AREAS:
        parser.add_argument(f"--min-{name}", type=float,
                            default=DEFAULT_MINIMUMS.get(name, 0.0),
                            help=f"min line coverage %% for the {name} area "
                                 f"(default {DEFAULT_MINIMUMS.get(name, 0.0)})")
    parser.add_argument("--min-total", type=float, default=0.0,
                        help="min line coverage %% for src/ (default 0)")
    parser.add_argument("--json", help="write per-file numbers to this file")
    parser.add_argument("--step-summary",
                        help="append a markdown summary table to this file")
    args = parser.parse_args()

    lines = aggregate(args.build_dir, args.source_root)
    src = {f: c for f, c in lines.items() if f.startswith("src" + os.sep)}

    per_file = {}
    for f in sorted(src):
        cov, tot, pct = coverage_of({f: src[f]})
        per_file[f] = {"covered": cov, "lines": tot, "pct": round(pct, 2)}
        print(f"  {pct:6.2f}%  {cov:5d}/{tot:<5d}  {f}")

    # name -> (minimum, label, covered, total, pct); src/ overall rides along
    # as the final pseudo-area.
    results = {}
    for name, prefix in AREAS + [("total", "src" + os.sep)]:
        files = {f: c for f, c in src.items() if f.startswith(prefix)}
        minimum = getattr(args, f"min_{name}")
        cov, tot, pct = coverage_of(files)
        results[name] = (minimum, area_label(name, prefix), cov, tot, pct)

    print()
    for _name, (_minimum, label, cov, tot, pct) in results.items():
        print(f"{label}: {pct:.2f}% ({cov}/{tot} lines)")

    if args.json:
        doc = {"files": per_file}
        for name, (_minimum, _label, _cov, _tot, pct) in results.items():
            doc[f"src_{name}_pct"] = round(pct, 2)
        with open(args.json, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")

    failures = []
    for name, (minimum, label, _cov, tot, pct) in results.items():
        if minimum > 0 and tot == 0:
            failures.append(f"no coverage data for {label} at all")
        if pct < minimum:
            failures.append(f"{label} coverage {pct:.2f}% < "
                            f"required {minimum:.2f}%")

    if args.step_summary:
        with open(args.step_summary, "a") as f:
            f.write("### Coverage gate\n\n")
            f.write("| Area | Coverage | Lines | Required | Status |\n")
            f.write("|---|---|---|---|---|\n")
            for _name, (minimum, label, cov, tot, pct) in results.items():
                required = f"{minimum:.2f}%" if minimum > 0 else "—"
                status = "✅" if (pct >= minimum and (minimum == 0 or tot > 0)) \
                    else "❌"
                f.write(f"| `{label}` | {pct:.2f}% | {cov}/{tot} "
                        f"| {required} | {status} |\n")
            f.write("\n")

    if failures:
        print(f"\nCOVERAGE GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\ncoverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
