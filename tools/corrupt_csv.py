#!/usr/bin/env python3
"""Deterministic corrupters for #sb-audit export files.

Used by the ctest wiring to assert that `sbaudit --diff` (and --check)
fails *cleanly nonzero* on damaged inputs instead of diffing garbage:

    corrupt_csv.py truncate in.csv out.csv   drop the trailing 40% of lines
                                             (and the last line's tail), so
                                             the #summary footer and record
                                             arity checks must both trip
    corrupt_csv.py permute  in.csv out.csv   deterministically shuffle the
                                             record lines and reverse every
                                             field order, so rows no longer
                                             match any known record kind

No RNG: both transforms are pure functions of the input, so the fixtures
are reproducible byte for byte.
"""
import sys


def truncate(lines):
    keep = max(1, (len(lines) * 6) // 10)
    out = lines[:keep]
    if out:
        # Also chop the final kept line mid-field: arity checks must fire
        # even when the line count alone would pass.
        out[-1] = out[-1][: max(1, len(out[-1]) * 2 // 3)]
    return out


def permute(lines):
    header = [ln for ln in lines if ln.startswith("#")]
    records = [ln for ln in lines if not ln.startswith("#")]
    # Deterministic shuffle: sort by a field-reversed key, then reverse the
    # fields of every record so the kind tag lands in the last column.
    records.sort(key=lambda ln: ",".join(reversed(ln.split(","))))
    mangled = [",".join(reversed(ln.split(","))) for ln in records]
    return header + mangled


def main(argv):
    if len(argv) != 4 or argv[1] not in ("truncate", "permute"):
        print(f"usage: {argv[0]} truncate|permute <in.csv> <out.csv>",
              file=sys.stderr)
        return 2
    with open(argv[2], "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    out = truncate(lines) if argv[1] == "truncate" else permute(lines)
    with open(argv[3], "w", encoding="utf-8") as f:
        f.write("\n".join(out) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
