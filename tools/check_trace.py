#!/usr/bin/env python3
"""Validates a SmartBalance Chrome trace-event JSON export.

Two layers of checking, both stdlib-only (CI has no jsonschema package):

1. Structural: the file validates against the checked-in minimal schema
   (tools/trace_schema.json) -- a small subset of JSON Schema draft-07
   (type / required / properties / items / enum / minimum) interpreted
   by this script.
2. Semantic (beyond what a schema can say): 'X' events carry ts+dur,
   'i' events carry ts+s, every event's args include the epoch number,
   and the summary block's event count matches the payload.

With --require-epoch the trace must additionally contain at least one
sense, predict and balance span and at least one migration instant --
the acceptance shape of a fig4a-style SmartBalance run.

Whenever shard.pass / shard.exchange spans are present (a --shards=K
run), each one must nest strictly inside the 'epoch' span of its own
(pid, epoch) pair, and spans sharing a (pid, epoch, args.worker) lane
must not overlap. --require-shards makes the presence of at least one
shard.pass span mandatory.

Whenever fleet.quantum / fleet.dispatch events are present (a --fleet=N
run), every dispatch instant must land inside the fleet.quantum span of
its own (pid, epoch) pair and the quantum spans of one pid must not
overlap. --require-fleet makes their presence mandatory.

Usage:
    check_trace.py TRACE.json [--schema tools/trace_schema.json]
                   [--require-epoch] [--require-shards] [--require-fleet]

Exit status: 0 if valid, 1 otherwise (violations on stderr).
"""

import argparse
import json
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def validate(value, schema, path, errors):
    """Checks `value` against the schema subset; appends messages to errors."""
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for req in schema.get("required", ()):
            if req not in value:
                errors.append(f"{path}: missing required key '{req}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def semantic_checks(doc, errors):
    """Constraints the schema subset can't express."""
    events = doc.get("traceEvents", [])
    payload = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        path = f"traceEvents[{i}]"
        ph = ev.get("ph")
        if ph == "X":
            payload += 1
            for key in ("ts", "dur"):
                if key not in ev:
                    errors.append(f"{path}: span missing '{key}'")
        elif ph == "i":
            payload += 1
            if "ts" not in ev:
                errors.append(f"{path}: instant missing 'ts'")
            if ev.get("s") not in ("t", "p", "g"):
                errors.append(f"{path}: instant missing scope 's'")
        if ph in ("X", "i"):
            args = ev.get("args")
            if not isinstance(args, dict) or "epoch" not in args:
                errors.append(f"{path}: args missing 'epoch'")
    summary = doc.get("smartbalance", {})
    if isinstance(summary, dict) and summary.get("events") != payload:
        errors.append(f"smartbalance.events={summary.get('events')} but the "
                      f"payload holds {payload} span/instant events")


def shard_shape_checks(doc, errors, required):
    """Per-shard span nesting under sharded balancing.

    Every 'shard.pass' span must sit strictly inside the 'epoch' span of
    its own (pid, epoch) pair, and spans sharing a worker lane -- same
    (pid, epoch, args.worker) -- must not overlap: one worker thread
    executes its shard passes sequentially, so overlap means the span
    layout lies about the schedule.
    """
    epochs = {}       # (pid, epoch) -> (ts, ts+dur)
    shard_spans = []  # ((pid, epoch, worker), name, ts, ts+dur, index)
    for i, ev in enumerate(doc.get("traceEvents", [])):
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        args = ev.get("args") or {}
        key = (ev.get("pid"), args.get("epoch"))
        ts, dur = ev.get("ts", 0), ev.get("dur", 0)
        if ev.get("name") == "epoch":
            epochs[key] = (ts, ts + dur)
        elif ev.get("name") in ("shard.pass", "shard.exchange"):
            shard_spans.append((key + (args.get("worker"),),
                                ev.get("name"), ts, ts + dur, i))
    if required and not any(n == "shard.pass" for _, n, _, _, _ in shard_spans):
        errors.append("--require-shards: no 'shard.pass' span ('X') events")
        return
    for (pid, epoch, worker), name, ts, end, i in shard_spans:
        enclosing = epochs.get((pid, epoch))
        if enclosing is None:
            errors.append(f"traceEvents[{i}]: '{name}' has no enclosing "
                          f"'epoch' span for (pid={pid}, epoch={epoch})")
        elif ts < enclosing[0] - 1e-3 or end > enclosing[1] + 1e-3:
            errors.append(
                f"traceEvents[{i}]: '{name}' [{ts}, {end}] escapes its "
                f"'epoch' span [{enclosing[0]}, {enclosing[1]}]")
    by_lane = {}
    for lane, name, ts, end, i in shard_spans:
        by_lane.setdefault(lane, []).append((ts, end, name, i))
    for lane, spans in by_lane.items():
        spans.sort()
        for (ts_a, end_a, name_a, i_a), (ts_b, end_b, name_b, i_b) in \
                zip(spans, spans[1:]):
            # Chained spans share boundaries; ns->us conversion can push the
            # predecessor's end a few ulps past the successor's start.
            if ts_b < end_a - 1e-3:
                errors.append(
                    f"traceEvents[{i_b}]: '{name_b}' [{ts_b}, {end_b}] "
                    f"overlaps '{name_a}' [{ts_a}, {end_a}] on worker lane "
                    f"(pid={lane[0]}, epoch={lane[1]}, worker={lane[2]})")


def fleet_shape_checks(doc, errors, required):
    """Fleet dispatch-layer span anatomy (a --fleet=N run).

    Every 'fleet.dispatch' instant must land inside the 'fleet.quantum'
    span of its own (pid, epoch) pair -- jobs are only placed at quantum
    boundaries, so a dispatch outside its quantum means the fleet timeline
    lies about when placement happened. fleet.quantum spans of one pid form
    a single sequential lane (one dispatcher), so they must not overlap.
    """
    quanta = {}      # (pid, epoch) -> (ts, ts+dur, index)
    dispatches = []  # ((pid, epoch), ts, index)
    for i, ev in enumerate(doc.get("traceEvents", [])):
        if not isinstance(ev, dict):
            continue
        args = ev.get("args") or {}
        key = (ev.get("pid"), args.get("epoch"))
        if ev.get("ph") == "X" and ev.get("name") == "fleet.quantum":
            ts, dur = ev.get("ts", 0), ev.get("dur", 0)
            quanta[key] = (ts, ts + dur, i)
        elif ev.get("ph") == "i" and ev.get("name") == "fleet.dispatch":
            dispatches.append((key, ev.get("ts", 0), i))
    if required:
        if not quanta:
            errors.append("--require-fleet: no 'fleet.quantum' span ('X') "
                          "events")
        if not dispatches:
            errors.append("--require-fleet: no 'fleet.dispatch' instant "
                          "('i') events")
        if not quanta:
            return
    for key, ts, i in dispatches:
        enclosing = quanta.get(key)
        if enclosing is None:
            errors.append(f"traceEvents[{i}]: 'fleet.dispatch' has no "
                          f"enclosing 'fleet.quantum' span for (pid={key[0]}, "
                          f"epoch={key[1]})")
        elif ts < enclosing[0] - 1e-3 or ts > enclosing[1] + 1e-3:
            errors.append(
                f"traceEvents[{i}]: 'fleet.dispatch' at {ts} escapes its "
                f"'fleet.quantum' span [{enclosing[0]}, {enclosing[1]}]")
    by_pid = {}
    for (pid, _), (ts, end, i) in quanta.items():
        by_pid.setdefault(pid, []).append((ts, end, i))
    for pid, spans in by_pid.items():
        spans.sort()
        for (ts_a, end_a, i_a), (ts_b, end_b, i_b) in zip(spans, spans[1:]):
            if ts_b < end_a - 1e-3:
                errors.append(
                    f"traceEvents[{i_b}]: 'fleet.quantum' [{ts_b}, {end_b}] "
                    f"overlaps 'fleet.quantum' [{ts_a}, {end_a}] on pid {pid}")


def sched_shape_checks(doc, errors, required):
    """Wake-to-run latency instants (an interactive / replayed run).

    'sched.wake' marks a Sleeping->Runnable transition, 'sched.run' the
    woken task's first dispatch. Every instant must carry args.tid;
    'sched.run' additionally carries the measured args.wait_ns (>= 0).
    Dispatches never outnumber wakes for one (pid, tid): each run instant
    consumes exactly one preceding wake (the trailing wake of a task still
    queued at the end of the run stays unconsumed).
    """
    wakes = {}  # (pid, tid) -> count
    runs = {}   # (pid, tid) -> count
    seen = False
    for i, ev in enumerate(doc.get("traceEvents", [])):
        if not isinstance(ev, dict) or ev.get("ph") != "i":
            continue
        name = ev.get("name")
        if name not in ("sched.wake", "sched.run"):
            continue
        seen = True
        args = ev.get("args") or {}
        if "tid" not in args:
            errors.append(f"traceEvents[{i}]: '{name}' args missing 'tid'")
            continue
        key = (ev.get("pid"), args.get("tid"))
        if name == "sched.wake":
            wakes[key] = wakes.get(key, 0) + 1
        else:
            runs[key] = runs.get(key, 0) + 1
            wait = args.get("wait_ns")
            if not isinstance(wait, (int, float)) or isinstance(wait, bool) \
                    or wait < 0:
                errors.append(f"traceEvents[{i}]: 'sched.run' args.wait_ns "
                              f"must be a number >= 0, got {wait!r}")
    if required and not seen:
        errors.append("--require-sched: no 'sched.wake'/'sched.run' instant "
                      "('i') events")
    for key, n in runs.items():
        if n > wakes.get(key, 0):
            errors.append(
                f"(pid={key[0]}, tid={key[1]}): {n} 'sched.run' instants "
                f"but only {wakes.get(key, 0)} 'sched.wake' instants")


def epoch_shape_checks(doc, errors):
    """--require-epoch: the canonical SmartBalance epoch anatomy."""
    by_name = {}
    for ev in doc.get("traceEvents", []):
        if isinstance(ev, dict) and ev.get("ph") in ("X", "i"):
            by_name.setdefault((ev.get("name"), ev.get("ph")), 0)
            by_name[(ev.get("name"), ev.get("ph"))] += 1
    for name in ("sense", "predict", "balance"):
        if not by_name.get((name, "X")):
            errors.append(f"--require-epoch: no '{name}' span ('X') events")
    if not by_name.get(("migration", "i")):
        errors.append("--require-epoch: no 'migration' instant ('i') events")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--schema",
                        default=os.path.join(os.path.dirname(__file__),
                                             "trace_schema.json"),
                        help="schema file (default: tools/trace_schema.json)")
    parser.add_argument("--require-epoch", action="store_true",
                        help="require sense/predict/balance spans and a "
                             "migration instant")
    parser.add_argument("--require-shards", action="store_true",
                        help="require shard.pass spans (sharded balancing "
                             "run); nesting checks always apply when shard "
                             "spans are present")
    parser.add_argument("--require-fleet", action="store_true",
                        help="require fleet.quantum spans and fleet.dispatch "
                             "instants (a --fleet=N run); nesting checks "
                             "always apply when fleet spans are present")
    parser.add_argument("--require-sched", action="store_true",
                        help="require sched.wake/sched.run instants (an "
                             "interactive or replayed run); tid/wait_ns "
                             "checks always apply when sched instants are "
                             "present")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        print(f"{args.trace}: not valid JSON: {e}", file=sys.stderr)
        return 1

    errors = []
    validate(doc, schema, "$", errors)
    semantic_checks(doc, errors)
    if args.require_epoch:
        epoch_shape_checks(doc, errors)
    shard_shape_checks(doc, errors, args.require_shards)
    fleet_shape_checks(doc, errors, args.require_fleet)
    sched_shape_checks(doc, errors, args.require_sched)

    if errors:
        print(f"{args.trace}: INVALID ({len(errors)} violation(s)):",
              file=sys.stderr)
        for e in errors[:50]:
            print(f"  {e}", file=sys.stderr)
        if len(errors) > 50:
            print(f"  ... and {len(errors) - 50} more", file=sys.stderr)
        return 1

    n = len(doc.get("traceEvents", []))
    summary = doc.get("smartbalance", {})
    print(f"{args.trace}: valid ({n} trace events, "
          f"{summary.get('runs', '?')} run(s), "
          f"{summary.get('dropped_events', '?')} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
