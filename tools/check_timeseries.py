#!/usr/bin/env python3
"""Validate a SmartBalance `#sb-tsdb v1` telemetry export.

Checks the CSV rendering (``--timeseries=<file>``) or the JSON rendering
(``--timeseries=<file>.json``) against tools/timeseries_schema.json plus
semantic invariants the schema language cannot express:

  * header ``#sb-tsdb v1`` and a ``#columns`` line matching the schema;
  * run blocks ordered by strictly increasing run index, each with a
    ``#meta <idx> window_ns=<ns>`` line (window > 0);
  * sample rows shaped ``sample,<t_ns>,<signal>,<value>`` with
    nondecreasing timestamps inside a run block and timestamps aligned to
    frame boundaries (every t_ns appears in a contiguous group);
  * ``#counters`` bookkeeping: samples == rows held in the block, frames
    >= distinct frame timestamps held, dropped consistent with that gap;
  * ``#summary runs=N`` equal to the number of run blocks.

Exits 0 when valid, 1 with per-line errors otherwise.  Stdlib only, like
check_trace.py / check_audit.py — usable as a ctest fixture and in CI.

Usage:
  tools/check_timeseries.py export.csv [--schema tools/timeseries_schema.json]
      [--require-signals je,gips.big] [--min-frames 10] [--require-slo]
      [--require-runs 1] [--quiet]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

MAX_ERRORS = 50


def load_schema(path: Path) -> dict:
    with path.open() as f:
        schema = json.load(f)
    if schema.get("schema") != "sb-tsdb":
        raise SystemExit(f"{path}: not a sb-tsdb schema document")
    return schema


# ---------------------------------------------------------------------------
# Minimal JSON-schema subset interpreter (same dialect as check_trace.py):
# type / required / properties / items / enum / minimum.
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate(value, schema, path, errors):
    if len(errors) >= MAX_ERRORS:
        return
    t = schema.get("type")
    if t is not None:
        expected = _TYPES[t]
        ok = isinstance(value, expected)
        if t in ("number", "integer") and isinstance(value, bool):
            ok = False
        if t == "number" and isinstance(value, int):
            ok = True
        if not ok:
            errors.append(f"{path}: expected {t}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


# ---------------------------------------------------------------------------
# CSV rendering
# ---------------------------------------------------------------------------

class RunBlock:
    def __init__(self, index, label, lineno):
        self.index = index
        self.label = label
        self.lineno = lineno
        self.window_ns = None
        self.rows = []          # (lineno, t_ns, signal, value)
        self.counters = None    # dict samples/frames/dropped


def parse_csv(path: Path, schema: dict, errors: list) -> list:
    columns = ",".join(schema["columns"]["sample"])
    counter_keys = schema["counters"]
    lines = path.read_text().splitlines()
    if not lines:
        errors.append(f"{path}: empty file")
        return []
    if lines[0] != f"#sb-tsdb v{schema['version']}":
        errors.append(f"line 1: bad header {lines[0]!r} "
                      f"(want '#sb-tsdb v{schema['version']}')")
        return []
    if len(lines) < 2 or lines[1] != f"#columns sample {columns}":
        errors.append(f"line 2: bad #columns line "
                      f"(want '#columns sample {columns}')")
        return []

    runs = []
    cur = None
    summary_runs = None
    for lineno, line in enumerate(lines[2:], start=3):
        if len(errors) >= MAX_ERRORS:
            break
        if line.startswith("#run "):
            parts = line.split(" ", 2)
            try:
                idx = int(parts[1])
            except (IndexError, ValueError):
                errors.append(f"line {lineno}: malformed #run line")
                continue
            label = parts[2] if len(parts) > 2 else ""
            if runs and idx <= runs[-1].index:
                errors.append(f"line {lineno}: run index {idx} not "
                              f"increasing (prev {runs[-1].index})")
            cur = RunBlock(idx, label, lineno)
            runs.append(cur)
        elif line.startswith("#meta "):
            parts = line.split()
            if cur is None or len(parts) < 3 or parts[1] != str(cur.index):
                errors.append(f"line {lineno}: #meta outside run block or "
                              "index mismatch")
                continue
            for kv in parts[2:]:
                k, _, v = kv.partition("=")
                if k == "window_ns":
                    try:
                        cur.window_ns = int(v)
                    except ValueError:
                        errors.append(f"line {lineno}: bad window_ns {v!r}")
            if cur.window_ns is None or cur.window_ns <= 0:
                errors.append(f"line {lineno}: #meta missing positive "
                              "window_ns")
        elif line.startswith("#counters "):
            parts = line.split()
            if cur is None or len(parts) < 2 or parts[1] != str(cur.index):
                errors.append(f"line {lineno}: #counters outside run block "
                              "or index mismatch")
                continue
            vals = {}
            for kv in parts[2:]:
                k, _, v = kv.partition("=")
                try:
                    vals[k] = int(v)
                except ValueError:
                    errors.append(f"line {lineno}: bad counter {kv!r}")
            for key in counter_keys:
                if key not in vals:
                    errors.append(f"line {lineno}: #counters missing "
                                  f"'{key}'")
            cur.counters = vals
        elif line.startswith("#summary "):
            _, _, kv = line.partition(" ")
            k, _, v = kv.partition("=")
            if k != "runs":
                errors.append(f"line {lineno}: malformed #summary line")
                continue
            try:
                summary_runs = int(v)
            except ValueError:
                errors.append(f"line {lineno}: bad runs count {v!r}")
        elif line.startswith("sample,"):
            if cur is None:
                errors.append(f"line {lineno}: sample row before any #run")
                continue
            fields = line.split(",", 3)
            if len(fields) != 4:
                errors.append(f"line {lineno}: expected 4 fields, got "
                              f"{len(fields)}")
                continue
            try:
                t_ns = int(fields[1])
            except ValueError:
                errors.append(f"line {lineno}: bad t_ns {fields[1]!r}")
                continue
            if not fields[2]:
                errors.append(f"line {lineno}: empty signal name")
                continue
            try:
                value = float(fields[3])
            except ValueError:
                errors.append(f"line {lineno}: bad value {fields[3]!r}")
                continue
            cur.rows.append((lineno, t_ns, fields[2], value))
        elif line.startswith("#"):
            errors.append(f"line {lineno}: unknown directive {line!r}")
        else:
            errors.append(f"line {lineno}: unrecognized row {line!r}")

    if summary_runs is None:
        errors.append(f"{path}: missing #summary line")
    elif summary_runs != len(runs):
        errors.append(f"#summary runs={summary_runs} but {len(runs)} run "
                      "block(s) present")
    return runs


def check_csv_semantics(runs: list, errors: list):
    for run in runs:
        if run.window_ns is None:
            errors.append(f"run {run.index}: no #meta line")
        if run.counters is None:
            errors.append(f"run {run.index}: no #counters line")
        prev_t = -1
        frame_ts = []
        for lineno, t_ns, _signal, _value in run.rows:
            if t_ns < prev_t:
                errors.append(f"line {lineno}: t_ns {t_ns} decreases "
                              f"(prev {prev_t}) in run {run.index}")
            if t_ns != prev_t:
                if t_ns in frame_ts:
                    errors.append(f"line {lineno}: frame t_ns {t_ns} "
                                  f"reopened in run {run.index} (rows of one "
                                  "frame must be contiguous)")
                frame_ts.append(t_ns)
            prev_t = t_ns
        if run.counters is not None:
            samples = run.counters.get("samples")
            frames = run.counters.get("frames")
            dropped = run.counters.get("dropped", 0)
            if samples is not None and samples != len(run.rows):
                errors.append(f"run {run.index}: #counters samples="
                              f"{samples} but {len(run.rows)} rows held")
            if frames is not None and frames < len(frame_ts):
                errors.append(f"run {run.index}: #counters frames={frames} "
                              f"< {len(frame_ts)} distinct frame timestamps")
            if dropped == 0 and frames is not None and run.rows and \
                    frames > len(frame_ts):
                errors.append(f"run {run.index}: frames={frames} exceeds "
                              f"{len(frame_ts)} held frames with dropped=0")


def csv_signals(runs: list) -> set:
    return {signal for run in runs for (_, _, signal, _) in run.rows}


def csv_frames(runs: list) -> int:
    counts = []
    for run in runs:
        counts.append(len({t for (_, t, _, _) in run.rows}))
    return min(counts) if counts else 0


# ---------------------------------------------------------------------------
# JSON rendering
# ---------------------------------------------------------------------------

def parse_json(path: Path, schema: dict, errors: list) -> list:
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        errors.append(f"{path}: invalid JSON: {e}")
        return []
    validate(doc, schema["json"], "$", errors)
    if errors:
        return []
    if doc["version"] != schema["version"]:
        errors.append(f"$.version: {doc['version']} != schema version "
                      f"{schema['version']}")
    runs = []
    prev_idx = -1
    for i, run in enumerate(doc["runs"]):
        if run["run"] <= prev_idx:
            errors.append(f"$.runs[{i}].run: index {run['run']} not "
                          f"increasing (prev {prev_idx})")
        prev_idx = run["run"]
        block = RunBlock(run["run"], run["label"], 0)
        block.window_ns = run["window_ns"]
        block.counters = {"samples": len(run["samples"]),
                          "frames": run["frames"],
                          "dropped": run["dropped"]}
        prev_t = -1
        for j, row in enumerate(run["samples"]):
            where = f"$.runs[{i}].samples[{j}]"
            if len(row) != 3:
                errors.append(f"{where}: expected [t_ns, signal, value]")
                continue
            t_ns, signal, value = row
            if not isinstance(t_ns, int) or isinstance(t_ns, bool) \
                    or t_ns < 0:
                errors.append(f"{where}[0]: bad t_ns {t_ns!r}")
                continue
            if not isinstance(signal, str) or not signal:
                errors.append(f"{where}[1]: bad signal {signal!r}")
                continue
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, (int, float))):
                errors.append(f"{where}[2]: bad value {value!r}")
                continue
            if t_ns < prev_t:
                errors.append(f"{where}: t_ns decreases ({t_ns} < {prev_t})")
            prev_t = t_ns
            block.rows.append((0, t_ns, signal,
                               math.nan if value is None else float(value)))
        runs.append(block)
    return runs


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="Validate a #sb-tsdb telemetry export")
    ap.add_argument("export", type=Path, help="CSV or .json export path")
    ap.add_argument("--schema", type=Path,
                    default=Path(__file__).parent / "timeseries_schema.json")
    ap.add_argument("--require-signals", default="",
                    help="comma-separated signal names that must appear")
    ap.add_argument("--min-frames", type=int, default=0,
                    help="minimum distinct frame timestamps per run block")
    ap.add_argument("--require-slo", action="store_true",
                    help="require slo.burn.* rows (an SLO engine ran)")
    ap.add_argument("--require-runs", type=int, default=1,
                    help="minimum number of run blocks (default 1)")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    schema = load_schema(args.schema)
    errors: list = []
    if not args.export.exists():
        print(f"error: {args.export}: no such file", file=sys.stderr)
        return 1
    if args.export.suffix == ".json":
        runs = parse_json(args.export, schema, errors)
    else:
        runs = parse_csv(args.export, schema, errors)
        check_csv_semantics(runs, errors)

    if not errors:
        if len(runs) < args.require_runs:
            errors.append(f"{len(runs)} run block(s), need >= "
                          f"{args.require_runs}")
        signals = csv_signals(runs)
        for name in filter(None, args.require_signals.split(",")):
            if name not in signals:
                errors.append(f"required signal '{name}' absent "
                              f"(have {len(signals)} signals)")
        if args.require_slo and not any(s.startswith("slo.burn.")
                                        for s in signals):
            errors.append("--require-slo: no slo.burn.* rows present")
        if args.min_frames > 0:
            frames = csv_frames(runs)
            if frames < args.min_frames:
                errors.append(f"min held frames per run {frames} < "
                              f"--min-frames {args.min_frames}")

    if errors:
        for e in errors[:MAX_ERRORS]:
            print(f"error: {e}", file=sys.stderr)
        if len(errors) > MAX_ERRORS:
            print(f"... {len(errors) - MAX_ERRORS} more", file=sys.stderr)
        return 1
    if not args.quiet:
        total_rows = sum(len(r.rows) for r in runs)
        print(f"{args.export}: OK ({len(runs)} run(s), {total_rows} "
              f"sample(s), {len(csv_signals(runs))} signal(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
