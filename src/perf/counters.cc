#include "perf/counters.h"

#include <algorithm>

namespace sb::perf {

namespace {

template <typename Fn>
void for_each_field(HpcCounters& c, Fn fn) {
  fn(c.cy_busy);
  fn(c.cy_idle);
  fn(c.cy_sleep);
  fn(c.inst_total);
  fn(c.inst_mem);
  fn(c.inst_branch);
  fn(c.branch_mispred);
  fn(c.l1i_access);
  fn(c.l1i_miss);
  fn(c.l1d_access);
  fn(c.l1d_miss);
  fn(c.itlb_access);
  fn(c.itlb_miss);
  fn(c.dtlb_access);
  fn(c.dtlb_miss);
}

}  // namespace

HpcCounters& HpcCounters::operator+=(const HpcCounters& o) {
  cy_busy += o.cy_busy;
  cy_idle += o.cy_idle;
  cy_sleep += o.cy_sleep;
  inst_total += o.inst_total;
  inst_mem += o.inst_mem;
  inst_branch += o.inst_branch;
  branch_mispred += o.branch_mispred;
  l1i_access += o.l1i_access;
  l1i_miss += o.l1i_miss;
  l1d_access += o.l1d_access;
  l1d_miss += o.l1d_miss;
  itlb_access += o.itlb_access;
  itlb_miss += o.itlb_miss;
  dtlb_access += o.dtlb_access;
  dtlb_miss += o.dtlb_miss;
  return *this;
}

void HpcCounters::saturate_fields(std::uint64_t ceiling) {
  for_each_field(*this, [ceiling](std::uint64_t& f) { f = std::min(f, ceiling); });
}

bool HpcCounters::any_field_at_or_above(std::uint64_t ceiling) const {
  bool hit = false;
  for_each_field(const_cast<HpcCounters&>(*this),
                 [&](std::uint64_t& f) { hit = hit || f >= ceiling; });
  return hit;
}

}  // namespace sb::perf
