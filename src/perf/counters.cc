#include "perf/counters.h"

namespace sb::perf {

HpcCounters& HpcCounters::operator+=(const HpcCounters& o) {
  cy_busy += o.cy_busy;
  cy_idle += o.cy_idle;
  cy_sleep += o.cy_sleep;
  inst_total += o.inst_total;
  inst_mem += o.inst_mem;
  inst_branch += o.inst_branch;
  branch_mispred += o.branch_mispred;
  l1i_access += o.l1i_access;
  l1i_miss += o.l1i_miss;
  l1d_access += o.l1d_access;
  l1d_miss += o.l1d_miss;
  itlb_access += o.itlb_access;
  itlb_miss += o.itlb_miss;
  dtlb_access += o.dtlb_access;
  dtlb_miss += o.dtlb_miss;
  return *this;
}

}  // namespace sb::perf
