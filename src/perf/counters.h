// Hardware performance counters (HPCs).
//
// Exactly the counter set the paper samples at every context switch (§4.1):
//   - cycle counters: cyBusy, cyIdle, cySleep
//   - instruction counters: I_total, I_mem, I_branch
//   - performance-event counters: branch mispredictions, L1I/L1D and
//     ITLB/DTLB misses+accesses
// plus the derived ratios used as the predictor's characterization vector:
//   I_msh, I_bsh, mr_b, mr_$i, mr_$d, mr_itlb, mr_dtlb.
#pragma once

#include <cstdint>

namespace sb::perf {

struct HpcCounters {
  // --- Cycle counters ---
  std::uint64_t cy_busy = 0;   // cycles doing useful dispatch/commit work
  std::uint64_t cy_idle = 0;   // stall cycles (misses, mispredictions)
  std::uint64_t cy_sleep = 0;  // quiescent cycles (core had nothing to run)

  // --- Instruction counters ---
  std::uint64_t inst_total = 0;
  std::uint64_t inst_mem = 0;     // committed loads + stores
  std::uint64_t inst_branch = 0;  // committed branches

  // --- Performance event counters ---
  std::uint64_t branch_mispred = 0;
  std::uint64_t l1i_access = 0;
  std::uint64_t l1i_miss = 0;
  std::uint64_t l1d_access = 0;
  std::uint64_t l1d_miss = 0;
  std::uint64_t itlb_access = 0;
  std::uint64_t itlb_miss = 0;
  std::uint64_t dtlb_access = 0;
  std::uint64_t dtlb_miss = 0;

  HpcCounters& operator+=(const HpcCounters& o);
  friend HpcCounters operator+(HpcCounters a, const HpcCounters& b) {
    return a += b;
  }

  void reset() { *this = HpcCounters{}; }

  /// The readout ceiling of a 32-bit hardware event register. Real PMCs are
  /// 32-48 bits wide; an epoch delta at or above this value is either a
  /// wraparound artefact or a saturated read, never a genuine count.
  static constexpr std::uint64_t k32BitCeiling = 0xFFFFFFFFull;

  /// Clamps every field to `ceiling` — the saturating-read model of a
  /// narrow event register (counts beyond the ceiling are lost).
  void saturate_fields(std::uint64_t ceiling);

  /// True when any field is at or above `ceiling`: the cheap plausibility
  /// screen the sensing layer runs before trusting an epoch delta.
  bool any_field_at_or_above(std::uint64_t ceiling) const;

  bool empty() const { return inst_total == 0 && cy_busy == 0 && cy_idle == 0; }

  // --- Derived characterization ratios (0 when the denominator is 0) ---
  double imsh() const { return ratio(inst_mem, inst_total); }
  double ibsh() const { return ratio(inst_branch, inst_total); }
  double mr_branch() const { return ratio(branch_mispred, inst_branch); }
  double mr_l1i() const { return ratio(l1i_miss, l1i_access); }
  double mr_l1d() const { return ratio(l1d_miss, l1d_access); }
  double mr_itlb() const { return ratio(itlb_miss, itlb_access); }
  double mr_dtlb() const { return ratio(dtlb_miss, dtlb_access); }

  /// Non-sleep cycles: the denominator of IPC per the paper
  /// (IPS_j = I_total * F / (cyBusy + cyIdle)).
  std::uint64_t active_cycles() const { return cy_busy + cy_idle; }

  /// Instructions per active cycle.
  double ipc() const { return ratio(inst_total, active_cycles()); }

 private:
  static double ratio(std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
  }
};

}  // namespace sb::perf
