#include "perf/perf_model.h"

#include <algorithm>
#include <cmath>

namespace sb::perf {

PerfModel::PerfModel(const arch::Platform& platform, IntervalModel::Config cfg)
    : platform_(platform), model_(cfg) {
  platform_.validate();
  peak_ipc_by_type_.reserve(static_cast<std::size_t>(platform_.num_types()));
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    peak_ipc_by_type_.push_back(model_.peak_ipc(platform_.params_of_type(t)));
  }
}

PerfBreakdown PerfModel::evaluate(const workload::WorkloadProfile& profile,
                                  CoreId c, double mem_latency_ns,
                                  double warmup_factor,
                                  double freq_mhz_override) const {
  return model_.evaluate(profile, platform_.params_of(c), mem_latency_ns,
                         warmup_factor, freq_mhz_override);
}

PerfBreakdown PerfModel::evaluate_on_type(
    const workload::WorkloadProfile& profile, CoreTypeId t,
    double mem_latency_ns, double warmup_factor,
    double freq_mhz_override) const {
  return model_.evaluate(profile, platform_.params_of_type(t), mem_latency_ns,
                         warmup_factor, freq_mhz_override);
}

double PerfModel::peak_ipc(CoreTypeId t) const {
  return peak_ipc_by_type_.at(static_cast<std::size_t>(t));
}

void PerfModel::accumulate_counters(HpcCounters& c, const PerfBreakdown& b,
                                    const workload::WorkloadProfile& profile,
                                    double insts, double cycles) {
  if (insts <= 0 || cycles <= 0) return;
  auto u = [](double v) {
    return static_cast<std::uint64_t>(std::llround(std::max(0.0, v)));
  };
  const double busy = std::min(cycles, insts * b.cpi_base);
  c.cy_busy += u(busy);
  c.cy_idle += u(cycles - busy);

  const double mem = insts * profile.mem_share;
  const double br = insts * profile.branch_share;
  c.inst_total += u(insts);
  c.inst_mem += u(mem);
  c.inst_branch += u(br);
  c.branch_mispred += u(br * b.mr_branch);
  c.l1i_access += u(insts);
  c.l1i_miss += u(insts * b.mr_l1i);
  c.l1d_access += u(mem);
  c.l1d_miss += u(mem * b.mr_l1d);
  c.itlb_access += u(insts);
  c.itlb_miss += u(insts * b.mr_itlb);
  c.dtlb_access += u(mem);
  c.dtlb_miss += u(mem * b.mr_dtlb);
}

}  // namespace sb::perf
