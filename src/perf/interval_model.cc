#include "perf/interval_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sb::perf {

workload::WorkloadProfile peak_probe_profile() {
  workload::WorkloadProfile p;
  p.name = "peak_probe";
  p.ilp = 6.0;
  p.mem_share = 0.20;
  p.branch_share = 0.10;
  p.mispredict_rate = 0.005;
  p.footprint_i_kb = 4.0;
  p.footprint_d_kb = 8.0;
  p.locality_alpha = 1.5;
  p.mr_l1i_ref = 0.001;
  p.mr_l1d_ref = 0.010;
  p.mr_itlb_ref = 0.0001;
  p.mr_dtlb_ref = 0.0005;
  p.l2_miss_ratio = 0.20;
  p.mlp = 3.0;
  p.activity = 1.2;
  p.validate();
  return p;
}

PerfBreakdown IntervalModel::evaluate(const workload::WorkloadProfile& wp,
                                      const arch::CoreParams& core,
                                      double mem_latency_ns,
                                      double warmup_factor,
                                      double freq_mhz_override) const {
  if (mem_latency_ns <= 0) {
    throw std::invalid_argument("IntervalModel: non-positive memory latency");
  }
  warmup_factor = std::max(1.0, warmup_factor);

  PerfBreakdown out;
  const double width = core.issue_width;

  // --- Dispatch-limited base throughput -------------------------------
  // A wide core only sustains its width if the ROB and IQ can hold enough
  // in-flight work; the saturating exponentials model that window pressure.
  const double rob_eff =
      1.0 - std::exp(-static_cast<double>(core.rob_size) /
                     (cfg_.rob_fill_per_issue * width));
  const double iq_eff =
      1.0 - std::exp(-static_cast<double>(core.iq_size) /
                     (cfg_.iq_fill_per_issue * width));
  const double sustain_width = width * rob_eff * iq_eff;
  const double base_ipc = std::min(sustain_width, wp.ilp);
  out.cpi_base = 1.0 / base_ipc;

  // --- Effective event rates on this core -----------------------------
  out.mr_l1i = std::min(1.0, arch::cache_miss_rate(wp.mr_l1i_ref,
                                                   wp.footprint_i_kb,
                                                   core.l1i_kb,
                                                   wp.locality_alpha) *
                                 warmup_factor);
  out.mr_l1d = std::min(1.0, arch::cache_miss_rate(wp.mr_l1d_ref,
                                                   wp.footprint_d_kb,
                                                   core.l1d_kb,
                                                   wp.locality_alpha) *
                                 warmup_factor);
  out.mr_itlb =
      std::min(1.0, arch::tlb_miss_rate(wp.mr_itlb_ref, wp.footprint_i_kb,
                                        core.tlb_entries) *
                        warmup_factor);
  out.mr_dtlb =
      std::min(1.0, arch::tlb_miss_rate(wp.mr_dtlb_ref, wp.footprint_d_kb,
                                        core.tlb_entries) *
                        warmup_factor);
  out.mr_branch = std::min(0.5, wp.mispredict_rate * core.predictor_quality);

  // --- Penalty components ----------------------------------------------
  const double freq_ghz =
      freq_mhz_override > 0 ? freq_mhz_override / 1000.0 : core.freq_ghz();
  const double mem_latency_cyc = mem_latency_ns * freq_ghz;

  // Memory-level parallelism is bounded by the load-queue capacity: small
  // in-order cores cannot overlap misses the way a Huge core can.
  const double mlp_cap = 1.0 + static_cast<double>(core.lq_size) / 16.0;
  const double mlp_eff = std::clamp(wp.mlp, 1.0, mlp_cap);

  // Instruction-side misses stall the front end; mostly unhidden.
  out.cpi_l1i = out.mr_l1i * cfg_.l2_latency_cyc;

  // Data-side: L2 hits partially hidden by OoO issue; memory misses hidden
  // by MLP overlap.
  out.cpi_l1d = wp.mem_share * out.mr_l1d *
                (cfg_.l2_latency_cyc / mlp_eff +
                 wp.l2_miss_ratio * mem_latency_cyc / mlp_eff);

  // Branch misprediction: pipeline flush plus front-end refill.
  out.cpi_branch = wp.branch_share * out.mr_branch *
                   (static_cast<double>(core.pipeline_depth) +
                    cfg_.refill_penalty * width);

  // TLB walks on both sides.
  out.cpi_tlb =
      (out.mr_itlb + wp.mem_share * out.mr_dtlb) * cfg_.tlb_walk_cyc;

  out.ipc = std::min(width, 1.0 / out.total_cpi());

  out.mem_misses_per_inst =
      wp.mem_share * out.mr_l1d * wp.l2_miss_ratio + 0.3 * out.mr_l1i;
  return out;
}

double IntervalModel::peak_ipc(const arch::CoreParams& core) const {
  return evaluate(peak_probe_profile(), core).ipc;
}

}  // namespace sb::perf
