// Mechanistic out-of-order core performance model (interval analysis).
//
// Plays the role gem5's cycle-accurate CPU models played in the paper: maps
// a workload's intrinsic characterization onto a concrete core type and
// produces IPC plus all per-event rates needed to synthesize hardware
// counters. The model follows the interval-analysis decomposition
// (Eyerman/Eeckhout): a dispatch-limited base CPI plus additive penalty
// terms for I-cache, D-cache, TLB and branch-misprediction events.
//
// Crucially for the reproduction, the model is *nonlinear* in the workload
// features (saturating structure terms, frequency-dependent memory-latency
// cycles, MLP clamping), so the paper's linear cross-core predictor (Eq. 8)
// exhibits realistic few-percent residuals rather than being trivially
// exact.
#pragma once

#include "arch/cache_model.h"
#include "arch/core_params.h"
#include "workload/profile.h"

namespace sb::perf {

/// Full output of one model evaluation.
struct PerfBreakdown {
  double ipc = 0;        // committed instructions per active cycle
  double cpi_base = 0;   // dispatch-limited component
  double cpi_l1i = 0;    // instruction-fetch miss component
  double cpi_l1d = 0;    // data miss component (L2 + memory)
  double cpi_branch = 0; // misprediction flush component
  double cpi_tlb = 0;    // page-walk component

  // Effective event rates on *this* core (after cache sizing, predictor
  // quality and warmup), used for counter synthesis:
  double mr_l1i = 0;    // per instruction fetch
  double mr_l1d = 0;    // per memory access
  double mr_branch = 0; // per branch
  double mr_itlb = 0;   // per instruction fetch
  double mr_dtlb = 0;   // per memory access

  /// L2->memory transactions per committed instruction (bus traffic).
  double mem_misses_per_inst = 0;

  double total_cpi() const {
    return cpi_base + cpi_l1i + cpi_l1d + cpi_branch + cpi_tlb;
  }
};

class IntervalModel {
 public:
  struct Config {
    double l2_latency_cyc = 12.0;   // private L2 hit latency
    double tlb_walk_cyc = 30.0;     // page-table walk
    double rob_fill_per_issue = 24; // ROB entries needed per issue slot to
                                    // sustain full width
    double iq_fill_per_issue = 3.0; // IQ entries per issue slot
    double refill_penalty = 1.0;    // front-end refill per mispredict, in
                                    // multiples of issue width
  };

  IntervalModel() = default;
  explicit IntervalModel(Config cfg) : cfg_(cfg) {}

  /// Evaluates `profile` on `core` with the given effective memory latency
  /// (shared-bus inflated) and cache-warmup multiplier (>= 1 right after a
  /// migration). `freq_mhz_override` > 0 evaluates the core at a DVFS
  /// operating point other than nominal (memory latency in *cycles* shrinks
  /// with the clock, so IPC rises slightly at lower frequencies).
  PerfBreakdown evaluate(const workload::WorkloadProfile& profile,
                         const arch::CoreParams& core,
                         double mem_latency_ns = 80.0,
                         double warmup_factor = 1.0,
                         double freq_mhz_override = 0.0) const;

  /// Peak sustainable IPC of a core type: the model evaluated on the
  /// high-ILP, cache-resident probe workload (Table 2's "Peak Throughput"
  /// row was derived the same way from gem5 runs of tuned kernels).
  double peak_ipc(const arch::CoreParams& core) const;

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
};

/// The probe used for peak-throughput and peak-power calibration.
workload::WorkloadProfile peak_probe_profile();

}  // namespace sb::perf
