// Facade over the interval model for a concrete platform, plus hardware
// counter synthesis. This is the boundary between "what the silicon does"
// (ground truth) and "what the OS can observe" (counters).
#pragma once

#include <vector>

#include "arch/platform.h"
#include "perf/counters.h"
#include "perf/interval_model.h"

namespace sb::perf {

class PerfModel {
 public:
  explicit PerfModel(const arch::Platform& platform)
      : PerfModel(platform, IntervalModel::Config()) {}
  PerfModel(const arch::Platform& platform, IntervalModel::Config cfg);

  /// Evaluates `profile` on physical core `c`; `freq_mhz_override` > 0
  /// evaluates at a non-nominal DVFS operating point.
  PerfBreakdown evaluate(const workload::WorkloadProfile& profile, CoreId c,
                         double mem_latency_ns = 80.0,
                         double warmup_factor = 1.0,
                         double freq_mhz_override = 0.0) const;

  /// Evaluates `profile` on core *type* `t` (used by offline profiling);
  /// `freq_mhz_override` > 0 evaluates at a non-nominal DVFS point.
  PerfBreakdown evaluate_on_type(const workload::WorkloadProfile& profile,
                                 CoreTypeId t, double mem_latency_ns = 80.0,
                                 double warmup_factor = 1.0,
                                 double freq_mhz_override = 0.0) const;

  /// Cached peak IPC per core type (Table 2 "Peak Throughput" analogue).
  double peak_ipc(CoreTypeId t) const;

  const arch::Platform& platform() const { return platform_; }
  const IntervalModel& interval_model() const { return model_; }

  /// Adds the events implied by executing `insts` instructions over
  /// `cycles` core cycles with behaviour `b` into `c`. Busy cycles are the
  /// dispatch-limited share (insts × cpi_base); the remainder of the active
  /// cycles are stalls (idle).
  static void accumulate_counters(HpcCounters& c, const PerfBreakdown& b,
                                  const workload::WorkloadProfile& profile,
                                  double insts, double cycles);

 private:
  const arch::Platform& platform_;
  IntervalModel model_;
  std::vector<double> peak_ipc_by_type_;
};

}  // namespace sb::perf
