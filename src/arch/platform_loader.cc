#include "arch/platform_loader.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "arch/core_params.h"
#include "common/types.h"

namespace sb::arch {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::runtime_error("platform description line " +
                           std::to_string(line) + ": " + why);
}

/// Field accessors keyed by name (shared by the loader and the writer).
struct Field {
  double CoreParams::* dmember = nullptr;
  int CoreParams::* imember = nullptr;
};

const std::map<std::string, Field>& fields() {
  static const std::map<std::string, Field> kFields = {
      {"issue_width", {nullptr, &CoreParams::issue_width}},
      {"lq_size", {nullptr, &CoreParams::lq_size}},
      {"sq_size", {nullptr, &CoreParams::sq_size}},
      {"iq_size", {nullptr, &CoreParams::iq_size}},
      {"rob_size", {nullptr, &CoreParams::rob_size}},
      {"num_regs", {nullptr, &CoreParams::num_regs}},
      {"pipeline_depth", {nullptr, &CoreParams::pipeline_depth}},
      {"tlb_entries", {nullptr, &CoreParams::tlb_entries}},
      {"l1i_kb", {&CoreParams::l1i_kb, nullptr}},
      {"l1d_kb", {&CoreParams::l1d_kb, nullptr}},
      {"freq_mhz", {&CoreParams::freq_mhz, nullptr}},
      {"vdd", {&CoreParams::vdd, nullptr}},
      {"area_mm2", {&CoreParams::area_mm2, nullptr}},
      {"predictor_quality", {&CoreParams::predictor_quality, nullptr}},
      {"peak_power_w", {&CoreParams::peak_power_w, nullptr}},
  };
  return kFields;
}

}  // namespace

Platform load_platform(std::istream& is) {
  Platform platform;
  CoreParams current = medium_core();
  int count = 0;
  bool in_block = false;
  std::size_t lineno = 0;

  auto flush = [&]() {
    if (!in_block) return;
    platform.add_cores(current, count);
    in_block = false;
  };

  std::string line;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and whitespace.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank

    if (key == "core") {
      flush();
      std::string name, count_tok;
      if (!(ls >> name >> count_tok) || count_tok.size() < 2 ||
          count_tok[0] != 'x') {
        fail(lineno, "expected 'core <name> x<count>'");
      }
      count = std::atoi(count_tok.c_str() + 1);
      if (count <= 0) fail(lineno, "core count must be positive");
      current = medium_core();  // defaults
      current.name = name;
      in_block = true;
      continue;
    }

    if (!in_block) fail(lineno, "field before any 'core' block: " + key);
    const auto it = fields().find(key);
    if (it == fields().end()) fail(lineno, "unknown field: " + key);
    double value = 0;
    if (!(ls >> value)) fail(lineno, "missing numeric value for " + key);
    std::string extra;
    if (ls >> extra) fail(lineno, "trailing junk after " + key);
    if (it->second.dmember) {
      current.*(it->second.dmember) = value;
    } else {
      current.*(it->second.imember) = static_cast<int>(value);
    }
  }
  flush();
  platform.validate();
  return platform;
}

Platform load_platform_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read platform file: " + path);
  return load_platform(is);
}

Platform generate_platform(const std::string& spec) {
  auto bad = [&spec](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument("generate_platform: " + why + " in '" +
                                 spec + "' (expected <big>x<LITTLE>[:clusters])");
  };
  auto parse_count = [&](const std::string& tok, const char* what, long lo) {
    if (tok.empty()) throw bad(std::string("empty ") + what);
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || v < lo || v > kMaxCores) {
      throw bad(std::string("bad ") + what + " '" + tok + "'");
    }
    return static_cast<int>(v);
  };

  std::string counts = spec;
  int clusters = 1;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    counts = spec.substr(0, colon);
    clusters = parse_count(spec.substr(colon + 1), "cluster count", 1);
  }
  const auto x = counts.find('x');
  if (x == std::string::npos) throw bad("missing 'x'");
  const int big = parse_count(counts.substr(0, x), "big count", 0);
  const int little = parse_count(counts.substr(x + 1), "LITTLE count", 0);
  const long total = static_cast<long>(big + little) * clusters;
  if (total < 1) throw bad("empty platform");
  if (total > kMaxCores) {
    throw bad("total of " + std::to_string(total) + " cores exceeds kMaxCores");
  }

  // Type-major layout (see header): one contiguous block per type, so the
  // generated platform round-trips through save_platform byte for byte.
  Platform platform;
  if (big > 0) platform.add_cores(big_core(), big * clusters);
  if (little > 0) platform.add_cores(small_core(), little * clusters);
  platform.validate();
  return platform;
}

void save_platform(std::ostream& os, const Platform& platform) {
  for (CoreTypeId t = 0; t < platform.num_types(); ++t) {
    const CoreParams& p = platform.params_of_type(t);
    os << "core " << p.name << " x" << platform.cores_of_type(t).size()
       << "\n";
    const CoreParams defaults = [] {
      auto d = medium_core();
      return d;
    }();
    for (const auto& [name, field] : fields()) {
      double v, dv;
      if (field.dmember) {
        v = p.*(field.dmember);
        dv = defaults.*(field.dmember);
      } else {
        v = p.*(field.imember);
        dv = defaults.*(field.imember);
      }
      if (v != dv) os << "  " << name << ' ' << v << "\n";
    }
  }
}

}  // namespace sb::arch
