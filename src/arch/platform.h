// Platform: the set of cores C = {c_1..c_n} and core types R = {r_1..r_q}
// with the typing function γ : C → R (paper §3).
//
// A Platform is immutable once built; builders below construct the two
// evaluation platforms of the paper (quad-core 4-type HMP and octa-core
// big.LITTLE) plus arbitrary custom configurations.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "arch/core_params.h"
#include "common/types.h"

namespace sb::arch {

class Platform {
 public:
  /// Registers a core type; returns its id. Types with identical names must
  /// have identical microarchitectures (name is the identity key).
  CoreTypeId add_core_type(const CoreParams& params);

  /// Instantiates `count` cores of an existing type.
  void add_cores(CoreTypeId type, int count);

  /// Convenience: registers the type (or reuses it by name) and adds cores.
  void add_cores(const CoreParams& params, int count);

  // --- Queries ---
  int num_cores() const { return static_cast<int>(core_types_.size()); }
  int num_types() const { return static_cast<int>(types_.size()); }

  /// γ(c): the type of core `c`.
  CoreTypeId type_of(CoreId c) const { return core_types_.at(checked(c)); }

  const CoreParams& params_of(CoreId c) const {
    return types_.at(static_cast<std::size_t>(type_of(c)));
  }
  const CoreParams& params_of_type(CoreTypeId t) const {
    return types_.at(static_cast<std::size_t>(t));
  }

  /// All cores of a given type, ascending core id.
  std::vector<CoreId> cores_of_type(CoreTypeId t) const;

  /// Looks a type up by name; throws std::out_of_range if absent.
  CoreTypeId type_by_name(const std::string& name) const;

  /// Total die area of all cores (for reporting).
  double total_area_mm2() const;

  /// Throws std::logic_error unless the platform has >= 1 core.
  void validate() const;

  // --- Builders for the paper's evaluation platforms ---

  /// One core of each Table 2 type: Huge, Big, Medium, Small (ids 0..3).
  /// This is the paper's primary 4-core 4-type HMP (Figs. 4a/4b, 6, 7a).
  static Platform quad_heterogeneous();

  /// `per_type` cores of each Table 2 type (used by the scalability study).
  static Platform scaled_heterogeneous(int per_type);

  /// 4×A15 + 4×A7 octa-core big.LITTLE (Fig. 5). Cores 0-3 are big.
  static Platform octa_big_little();

  /// n identical cores (baseline sanity configurations).
  static Platform homogeneous(const CoreParams& params, int n);

 private:
  std::size_t checked(CoreId c) const {
    if (c < 0 || c >= num_cores()) throw std::out_of_range("bad CoreId");
    return static_cast<std::size_t>(c);
  }

  std::vector<CoreParams> types_;
  std::vector<CoreTypeId> core_types_;  // index = CoreId
};

}  // namespace sb::arch
