#include "arch/memory_system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sb::arch {

SharedBus::SharedBus(int num_cores, Config config)
    : config_(config), core_bw_gbps_(static_cast<std::size_t>(num_cores), 0.0) {
  if (num_cores <= 0) throw std::invalid_argument("SharedBus: no cores");
  if (config_.bandwidth_gbps <= 0 || config_.base_latency_ns <= 0) {
    throw std::invalid_argument("SharedBus: bad config");
  }
}

void SharedBus::record_traffic(CoreId c, double misses, TimeNs window) {
  if (c < 0 || static_cast<std::size_t>(c) >= core_bw_gbps_.size()) {
    throw std::out_of_range("SharedBus: bad core");
  }
  if (window <= 0) return;
  const double bytes = misses * config_.line_bytes;
  const double gbps = bytes / static_cast<double>(window);  // B/ns == GB/s
  // Exponential smoothing keeps the contention estimate stable across the
  // fine-grained scheduling segments that report here.
  constexpr double kAlpha = 0.3;
  auto& slot = core_bw_gbps_[static_cast<std::size_t>(c)];
  slot = (1.0 - kAlpha) * slot + kAlpha * gbps;
}

double SharedBus::utilization() const {
  double total = 0.0;
  for (double bw : core_bw_gbps_) total += bw;
  return std::clamp(total / config_.bandwidth_gbps, 0.0, 1.0);
}

double SharedBus::inflation() const {
  const double u = utilization();
  const double f = 1.0 + (config_.max_inflation - 1.0) *
                             std::pow(u, config_.contention_exponent);
  return std::min(f, config_.max_inflation);
}

double SharedBus::effective_latency_ns() const {
  return config_.base_latency_ns * inflation();
}

void SharedBus::reset() {
  std::fill(core_bw_gbps_.begin(), core_bw_gbps_.end(), 0.0);
}

}  // namespace sb::arch
