#include "arch/cache_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sb::arch {

double cache_miss_rate(double ref_rate, double footprint_kb, double size_kb,
                       double alpha, double floor, double cap) {
  if (size_kb <= 0 || footprint_kb < 0) {
    throw std::invalid_argument("cache_miss_rate: non-positive size");
  }
  if (ref_rate <= 0) return floor;
  const double pressure = std::min(1.0, footprint_kb / size_kb);
  const double mr = ref_rate * std::pow(pressure, alpha);
  return std::clamp(mr, floor, cap);
}

double tlb_miss_rate(double ref_rate, double footprint_kb, int entries,
                     double page_kb, double floor, double cap) {
  if (entries <= 0 || page_kb <= 0) {
    throw std::invalid_argument("tlb_miss_rate: non-positive reach");
  }
  const double reach_kb = static_cast<double>(entries) * page_kb;
  const double pressure = std::min(1.0, footprint_kb / reach_kb);
  // TLB locality falls off faster than cache locality (pages are coarse),
  // hence the squared pressure term.
  const double mr = ref_rate * pressure * pressure;
  return std::clamp(mr, floor, cap);
}

double CacheWarmupModel::miss_factor(std::uint64_t insts_since_migration) const {
  if (insts_since_migration >= window_insts_ || window_insts_ == 0) return 1.0;
  const double progress = static_cast<double>(insts_since_migration) /
                          static_cast<double>(window_insts_);
  // Linear decay of the *excess* factor: simple, monotone, and cheap to
  // evaluate once per scheduling segment.
  return cold_factor_ - (cold_factor_ - 1.0) * progress;
}

}  // namespace sb::arch
