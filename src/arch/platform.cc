#include "arch/platform.h"

#include <stdexcept>

namespace sb::arch {

CoreTypeId Platform::add_core_type(const CoreParams& params) {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == params.name) {
      if (!types_[i].same_microarchitecture(params)) {
        throw std::logic_error("core type name reused with different parameters: " +
                               params.name);
      }
      return static_cast<CoreTypeId>(i);
    }
  }
  types_.push_back(params);
  return static_cast<CoreTypeId>(types_.size() - 1);
}

void Platform::add_cores(CoreTypeId type, int count) {
  if (type < 0 || type >= num_types()) throw std::out_of_range("bad CoreTypeId");
  if (count < 0) throw std::invalid_argument("negative core count");
  for (int i = 0; i < count; ++i) core_types_.push_back(type);
}

void Platform::add_cores(const CoreParams& params, int count) {
  add_cores(add_core_type(params), count);
}

std::vector<CoreId> Platform::cores_of_type(CoreTypeId t) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (core_types_[static_cast<std::size_t>(c)] == t) out.push_back(c);
  }
  return out;
}

CoreTypeId Platform::type_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<CoreTypeId>(i);
  }
  throw std::out_of_range("unknown core type: " + name);
}

double Platform::total_area_mm2() const {
  double a = 0.0;
  for (CoreId c = 0; c < num_cores(); ++c) a += params_of(c).area_mm2;
  return a;
}

void Platform::validate() const {
  if (num_cores() == 0) throw std::logic_error("platform has no cores");
  for (const auto& t : types_) {
    if (t.freq_mhz <= 0 || t.vdd <= 0 || t.issue_width <= 0 ||
        t.rob_size <= 0 || t.l1i_kb <= 0 || t.l1d_kb <= 0 ||
        t.area_mm2 <= 0 || t.peak_power_w <= 0) {
      throw std::logic_error("invalid core parameters for type " + t.name);
    }
  }
}

Platform Platform::quad_heterogeneous() {
  Platform p;
  p.add_cores(huge_core(), 1);
  p.add_cores(big_core(), 1);
  p.add_cores(medium_core(), 1);
  p.add_cores(small_core(), 1);
  p.validate();
  return p;
}

Platform Platform::scaled_heterogeneous(int per_type) {
  Platform p;
  p.add_cores(huge_core(), per_type);
  p.add_cores(big_core(), per_type);
  p.add_cores(medium_core(), per_type);
  p.add_cores(small_core(), per_type);
  p.validate();
  return p;
}

Platform Platform::octa_big_little() {
  Platform p;
  p.add_cores(a15_core(), 4);
  p.add_cores(a7_core(), 4);
  p.validate();
  return p;
}

Platform Platform::homogeneous(const CoreParams& params, int n) {
  Platform p;
  p.add_cores(params, n);
  p.validate();
  return p;
}

}  // namespace sb::arch
