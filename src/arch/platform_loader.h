// Text-format platform descriptions.
//
// Lets users define custom heterogeneous platforms without recompiling
// (sbsim --platform-file=...). Format: '#' comments, blank lines ignored;
// each core type is a block started by `core <name> x<count>` followed by
// `key value` lines; unspecified keys keep the defaults of a Medium-class
// core. Example:
//
//   # 2 prime + 4 efficiency cores
//   core Prime x2
//     issue_width 6
//     rob_size 256
//     freq_mhz 2800
//     vdd 0.95
//     area_mm2 8.0
//     peak_power_w 4.5
//   core Eff x4
//     issue_width 2
//     freq_mhz 1400
//     peak_power_w 0.4
#pragma once

#include <iosfwd>
#include <string>

#include "arch/platform.h"

namespace sb::arch {

/// Parses a platform description; throws std::runtime_error with a line
/// number on malformed input, std::logic_error via Platform::validate() on
/// physically invalid parameters.
Platform load_platform(std::istream& is);
Platform load_platform_file(const std::string& path);

/// Writes `platform` in the same format (round-trips with load_platform).
void save_platform(std::ostream& os, const Platform& platform);

/// Synthetic large-platform generator (sbsim --platform=gen:<spec>): spec is
/// `<big>x<LITTLE>[:clusters]`, e.g. "2x2" (one cluster of 2 big + 2
/// LITTLE) or "32x96:8" (8 clusters totalling 256 big + 768 LITTLE = 1024
/// cores). Cores are laid out type-major (all big cores first, then all
/// LITTLEs) so the description round-trips through save_platform /
/// load_platform, which group by type; cluster c owns big cores
/// [c·big, (c+1)·big) and LITTLEs clusters·big + [c·little, (c+1)·little).
/// Throws std::invalid_argument on a malformed spec or a total core count
/// of 0 or beyond kMaxCores.
Platform generate_platform(const std::string& spec);

}  // namespace sb::arch
