// Heterogeneous core-type descriptions.
//
// A core type r (paper §3) is "the combination of micro-architectural
// features and their nominal performance and power (voltage/frequency)".
// CoreParams carries exactly the Table 2 parameter set (x1..x7, F, Vdd,
// area) plus the few pipeline-quality knobs the mechanistic performance
// model needs that gem5 configures implicitly (pipeline depth, branch
// predictor quality, TLB reach).
#pragma once

#include <string>

#include "common/types.h"

namespace sb::arch {

struct CoreParams {
  std::string name;

  // --- Table 2 microarchitectural features (x1..x7) ---
  int issue_width = 1;       // x1
  int lq_size = 8;           // x2 (load queue)
  int sq_size = 8;           // x2 (store queue)
  int iq_size = 16;          // x3 (instruction queue)
  int rob_size = 64;         // x4 (reorder buffer)
  int num_regs = 64;         // x5 (int = float physical registers)
  double l1i_kb = 16;        // x6
  double l1d_kb = 16;        // x7

  // --- Nominal operating point ---
  double freq_mhz = 500;     // F
  double vdd = 0.6;          // V_DD

  // --- Physical ---
  double area_mm2 = 2.0;     // A (22 nm, McPAT-style estimate)

  // --- Pipeline-quality knobs (implicit in the paper's gem5 configs) ---
  int pipeline_depth = 10;          // branch misprediction flush penalty base
  double predictor_quality = 1.0;   // multiplier on a workload's intrinsic
                                    // mispredict rate (<1 = better predictor)
  int tlb_entries = 32;             // unified I/D TLB entries per side

  // --- Calibration target (Table 2 "Peak Power") ---
  // The power model solves for effective switched capacitance such that the
  // core dissipates this at peak IPC; see sb::power::PowerModel.
  double peak_power_w = 0.1;

  double freq_ghz() const { return freq_mhz / 1000.0; }

  /// Cycles elapsed in `dt` nanoseconds at nominal frequency.
  double cycles_in(TimeNs dt) const {
    return static_cast<double>(dt) * freq_ghz();
  }

  /// Nanoseconds needed to retire `cycles` cycles.
  double ns_for_cycles(double cycles) const { return cycles / freq_ghz(); }

  /// Structural equality on every field except name.
  bool same_microarchitecture(const CoreParams& o) const;
};

/// Table 2 "Huge" core: 8-wide, 192-entry ROB, 64 KB L1s, 2 GHz @ 1.0 V.
CoreParams huge_core();
/// Table 2 "Big" core: 4-wide, 128-entry ROB, 32 KB L1s, 1.5 GHz @ 0.8 V.
CoreParams big_core();
/// Table 2 "Medium" core: 2-wide, 64-entry ROB, 16 KB L1s, 1 GHz @ 0.7 V.
CoreParams medium_core();
/// Table 2 "Small" core: 1-wide, 64-entry ROB, 16 KB L1s, 500 MHz @ 0.6 V.
CoreParams small_core();

/// Cortex-A15-class "big" core for the big.LITTLE comparison (Fig. 5).
CoreParams a15_core();
/// Cortex-A7-class "LITTLE" core for the big.LITTLE comparison (Fig. 5).
CoreParams a7_core();

}  // namespace sb::arch
