#include "arch/core_params.h"

namespace sb::arch {

bool CoreParams::same_microarchitecture(const CoreParams& o) const {
  return issue_width == o.issue_width && lq_size == o.lq_size &&
         sq_size == o.sq_size && iq_size == o.iq_size &&
         rob_size == o.rob_size && num_regs == o.num_regs &&
         l1i_kb == o.l1i_kb && l1d_kb == o.l1d_kb && freq_mhz == o.freq_mhz &&
         vdd == o.vdd && pipeline_depth == o.pipeline_depth &&
         predictor_quality == o.predictor_quality &&
         tlb_entries == o.tlb_entries;
}

CoreParams huge_core() {
  CoreParams p;
  p.name = "Huge";
  p.issue_width = 8;
  p.lq_size = 32;
  p.sq_size = 32;
  p.iq_size = 64;
  p.rob_size = 192;
  p.num_regs = 256;
  p.l1i_kb = 64;
  p.l1d_kb = 64;
  p.freq_mhz = 2000;
  p.vdd = 1.0;
  p.area_mm2 = 11.99;
  p.pipeline_depth = 18;
  p.predictor_quality = 0.55;
  p.tlb_entries = 64;
  p.peak_power_w = 8.62;
  return p;
}

CoreParams big_core() {
  CoreParams p;
  p.name = "Big";
  p.issue_width = 4;
  p.lq_size = 16;
  p.sq_size = 16;
  p.iq_size = 32;
  p.rob_size = 128;
  p.num_regs = 128;
  p.l1i_kb = 32;
  p.l1d_kb = 32;
  p.freq_mhz = 1500;
  p.vdd = 0.8;
  p.area_mm2 = 5.08;
  p.pipeline_depth = 15;
  p.predictor_quality = 0.75;
  p.tlb_entries = 64;
  p.peak_power_w = 1.41;
  return p;
}

CoreParams medium_core() {
  CoreParams p;
  p.name = "Medium";
  p.issue_width = 2;
  p.lq_size = 8;
  p.sq_size = 8;
  p.iq_size = 16;
  p.rob_size = 64;
  p.num_regs = 64;
  p.l1i_kb = 16;
  p.l1d_kb = 16;
  p.freq_mhz = 1000;
  p.vdd = 0.7;
  p.area_mm2 = 3.04;
  p.pipeline_depth = 12;
  p.predictor_quality = 1.0;
  p.tlb_entries = 32;
  p.peak_power_w = 0.53;
  return p;
}

CoreParams small_core() {
  CoreParams p;
  p.name = "Small";
  p.issue_width = 1;
  p.lq_size = 8;
  p.sq_size = 8;
  p.iq_size = 16;
  p.rob_size = 64;
  p.num_regs = 64;
  p.l1i_kb = 16;
  p.l1d_kb = 16;
  p.freq_mhz = 500;
  p.vdd = 0.6;
  p.area_mm2 = 2.27;
  p.pipeline_depth = 8;
  p.predictor_quality = 1.3;
  p.tlb_entries = 32;
  p.peak_power_w = 0.095;
  return p;
}

CoreParams a15_core() {
  // Cortex-A15-class out-of-order triple-issue core; numbers follow public
  // A15 descriptions scaled into the same modeling framework as Table 2.
  CoreParams p;
  p.name = "A15";
  p.issue_width = 3;
  p.lq_size = 16;
  p.sq_size = 16;
  p.iq_size = 48;
  p.rob_size = 128;
  p.num_regs = 128;
  p.l1i_kb = 32;
  p.l1d_kb = 32;
  p.freq_mhz = 1600;
  p.vdd = 0.9;
  p.area_mm2 = 4.5;
  p.pipeline_depth = 15;
  p.predictor_quality = 0.7;
  p.tlb_entries = 64;
  p.peak_power_w = 1.8;
  return p;
}

CoreParams a7_core() {
  // Cortex-A7-class partial-dual-issue in-order core.
  CoreParams p;
  p.name = "A7";
  p.issue_width = 1;
  p.lq_size = 8;
  p.sq_size = 8;
  p.iq_size = 16;
  p.rob_size = 48;
  p.num_regs = 64;
  p.l1i_kb = 32;
  p.l1d_kb = 32;
  p.freq_mhz = 1000;
  p.vdd = 0.7;
  p.area_mm2 = 0.9;
  p.pipeline_depth = 8;
  p.predictor_quality = 1.2;
  p.tlb_entries = 32;
  p.peak_power_w = 0.28;
  return p;
}

}  // namespace sb::arch
