#include "arch/dvfs.h"

#include <cmath>
#include <stdexcept>

namespace sb::arch {

OppTable::OppTable(std::vector<OperatingPoint> points)
    : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("OppTable: empty");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].freq_mhz <= 0 || points_[i].vdd <= 0) {
      throw std::invalid_argument("OppTable: non-positive point");
    }
    if (i > 0) {
      if (points_[i].freq_mhz <= points_[i - 1].freq_mhz) {
        throw std::invalid_argument("OppTable: frequencies must increase");
      }
      if (points_[i].vdd < points_[i - 1].vdd) {
        throw std::invalid_argument("OppTable: voltage must not decrease");
      }
    }
  }
}

OppTable OppTable::nominal_only(const CoreParams& params) {
  return OppTable({OperatingPoint{params.freq_mhz, params.vdd}});
}

OppTable OppTable::typical_for(const CoreParams& params) {
  std::vector<OperatingPoint> pts;
  for (double r : {0.4, 0.6, 0.8, 1.0}) {
    OperatingPoint p;
    p.freq_mhz = params.freq_mhz * r;
    // Affine V/f: ~70% of nominal voltage at the lowest frequency.
    p.vdd = params.vdd * (0.5 + 0.5 * r);
    pts.push_back(p);
  }
  return OppTable(std::move(pts));
}

const OperatingPoint& OppTable::at(std::size_t i) const {
  if (i >= points_.size()) throw std::out_of_range("OppTable::at");
  return points_[i];
}

std::size_t OppTable::index_for_at_least(double freq_mhz) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].freq_mhz >= freq_mhz) return i;
  }
  return points_.size() - 1;
}

double dynamic_scale(const OperatingPoint& opp, const CoreParams& nominal) {
  if (nominal.freq_mhz <= 0 || nominal.vdd <= 0) {
    throw std::invalid_argument("dynamic_scale: bad nominal");
  }
  const double v = opp.vdd / nominal.vdd;
  const double f = opp.freq_mhz / nominal.freq_mhz;
  return v * v * f;
}

double leakage_scale(const OperatingPoint& opp, const CoreParams& nominal) {
  if (nominal.vdd <= 0) throw std::invalid_argument("leakage_scale: bad nominal");
  const double v = opp.vdd / nominal.vdd;
  return v * v * v;
}

}  // namespace sb::arch
