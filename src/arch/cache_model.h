// Analytic private-cache and TLB miss behaviour.
//
// The paper's platform has private L1/L2 per core (§5); the load balancer
// observes only *miss rates*. We model a workload's per-access miss rate as
// a power law in the ratio of its working-set footprint to the cache size —
// the classic sqrt/power-law locality rule — capped to [floor, cap]. This
// yields the property Eq. 8's predictor depends on: miss rates on different
// core types are smooth, correlated functions of the same workload.
#pragma once

#include <cstdint>

namespace sb::arch {

/// Per-access miss rate of a workload with `footprint_kb` working set and
/// locality exponent `alpha` (≈0.5 streaming … ≈2 highly local) on a cache
/// of `size_kb`, where `ref_rate` is the workload's miss rate when the cache
/// exactly fits half the footprint... more precisely:
///
///   mr(size) = ref_rate * min(1, footprint/size)^alpha
///
/// so a cache larger than the footprint drives misses toward zero (cold
/// misses only, modeled by `floor`).
double cache_miss_rate(double ref_rate, double footprint_kb, double size_kb,
                       double alpha, double floor = 1e-5, double cap = 0.5);

/// TLB miss rate given reach: entries × page size versus footprint.
double tlb_miss_rate(double ref_rate, double footprint_kb, int entries,
                     double page_kb = 4.0, double floor = 1e-7,
                     double cap = 0.2);

/// Post-migration cache-warmup transient. After a thread migrates, its
/// private-cache state is cold: miss rates are multiplied by a factor that
/// decays from `cold_factor` to 1 over `window_insts` retired instructions.
/// This is the physical cost that makes thrashing migrations expensive and
/// is charged to every policy identically (vanilla, GTS, SmartBalance).
class CacheWarmupModel {
 public:
  CacheWarmupModel(double cold_factor = 3.0,
                   std::uint64_t window_insts = 400'000)
      : cold_factor_(cold_factor), window_insts_(window_insts) {}

  /// Miss-rate multiplier (≥ 1) after `insts_since_migration` instructions.
  double miss_factor(std::uint64_t insts_since_migration) const;

  double cold_factor() const { return cold_factor_; }
  std::uint64_t window_insts() const { return window_insts_; }

 private:
  double cold_factor_;
  std::uint64_t window_insts_;
};

}  // namespace sb::arch
