// Shared-bus main-memory model.
//
// The paper's platform connects all cores to main memory through a shared
// bus (§5). We model bus contention analytically: each core reports its
// recent miss bandwidth; the effective memory latency seen by every core is
// the base DRAM latency inflated by a convex function of total bus
// utilization. This couples cores (a Huge core thrashing memory slows the
// Small cores) without needing per-transaction simulation.
#pragma once

#include <vector>

#include "common/types.h"

namespace sb::arch {

class SharedBus {
 public:
  struct Config {
    double base_latency_ns = 80.0;   // unloaded DRAM round trip
    double bandwidth_gbps = 12.8;    // saturation bandwidth
    double contention_exponent = 2.0;
    double max_inflation = 4.0;      // latency factor ceiling at saturation
    double line_bytes = 64.0;        // bytes transferred per L2 miss
  };

  explicit SharedBus(int num_cores) : SharedBus(num_cores, Config()) {}
  SharedBus(int num_cores, Config config);

  /// Records that core `c` generated `misses` memory transactions over the
  /// last `window` of simulated time (a scheduling segment).
  void record_traffic(CoreId c, double misses, TimeNs window);

  /// Utilization in [0,1]: total demanded bandwidth / capacity (clamped).
  double utilization() const;

  /// Effective memory latency including contention, in nanoseconds.
  double effective_latency_ns() const;

  /// Latency inflation factor in [1, max_inflation].
  double inflation() const;

  const Config& config() const { return config_; }

  /// Forgets traffic history (e.g., between experiment repetitions).
  void reset();

 private:
  Config config_;
  std::vector<double> core_bw_gbps_;  // exponentially averaged per core
};

}  // namespace sb::arch
