// Dynamic voltage/frequency scaling support.
//
// The paper fixes all cores' voltages and frequencies "to show the effect
// of architectural heterogeneity" but notes the approach "is not limited by
// the voltage and frequency of the cores" (§5). This module provides the
// machinery to lift that restriction: per-core-type operating-point (OPP)
// tables and the voltage/frequency scaling rules the power model applies.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/core_params.h"

namespace sb::arch {

/// One DVFS operating point.
struct OperatingPoint {
  double freq_mhz = 0;
  double vdd = 0;

  bool operator==(const OperatingPoint&) const = default;
};

/// An ordered (ascending frequency) table of operating points for one core
/// type. Immutable after construction.
class OppTable {
 public:
  /// Points must be non-empty with strictly increasing frequency and
  /// non-decreasing voltage; throws std::invalid_argument otherwise.
  explicit OppTable(std::vector<OperatingPoint> points);

  /// Single-point table at the core's nominal operating point (the paper's
  /// fixed-V/f configuration).
  static OppTable nominal_only(const CoreParams& params);

  /// A typical 4-level table: {40%, 60%, 80%, 100%} of nominal frequency
  /// with near-affine voltage scaling down to ~70% of nominal Vdd.
  static OppTable typical_for(const CoreParams& params);

  std::size_t size() const { return points_.size(); }
  const OperatingPoint& at(std::size_t i) const;
  const OperatingPoint& lowest() const { return points_.front(); }
  const OperatingPoint& highest() const { return points_.back(); }

  /// Index of the slowest point with freq >= `freq_mhz` (size()-1 if none).
  std::size_t index_for_at_least(double freq_mhz) const;

  const std::vector<OperatingPoint>& points() const { return points_; }

 private:
  std::vector<OperatingPoint> points_;
};

/// Dynamic-power scale factor of running at `opp` relative to nominal:
/// (V² f) / (V_nom² f_nom).
double dynamic_scale(const OperatingPoint& opp, const CoreParams& nominal);

/// Leakage scale factor: (V / V_nom)³ (the same V³ law the PowerModel's
/// calibration uses).
double leakage_scale(const OperatingPoint& opp, const CoreParams& nominal);

}  // namespace sb::arch
