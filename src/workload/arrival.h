// Fleet-level job-arrival process: a seeded Zipf popularity distribution
// over job classes combined with a bursty (two-state Markov-modulated
// Poisson) interarrival clock.
//
// Datacenter request streams are skewed — a handful of job classes receive
// most of the traffic (rank-popularity ~ 1/rank^theta) — and they arrive in
// bursts, not as a smooth Poisson stream. Both properties matter to a
// dispatcher: skew concentrates the predictor's work on a few classes, and
// bursts are what separate load-aware placement from blind round-robin.
// Every draw comes from one private Rng, so a process is a deterministic
// function of its Config (the fleet determinism contract).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace sb::workload {

/// Zipf(theta) sampler over ranks [0, n): P(rank k) ~ 1/(k+1)^theta,
/// drawn by inverse-CDF over the precomputed normalized harmonic partial
/// sums. theta = 0 degenerates to uniform; theta ~ 0.99 is the classic
/// YCSB/memcached skew.
class ZipfGenerator {
 public:
  /// Throws std::invalid_argument for n < 1, theta < 0 or theta > 16.
  ZipfGenerator(int n, double theta, std::uint64_t seed);

  /// Next rank in [0, size()).
  int next();

  /// Exact probability mass of `rank` (the chi-squared test's expectation).
  double probability(int rank) const;

  int size() const { return static_cast<int>(cdf_.size()); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
  Rng rng_;
};

/// One job hitting the fleet: `at` is its (strictly increasing) arrival
/// time, `job_class` the Zipf-popularity rank into the dispatch catalog.
struct JobArrival {
  std::uint64_t id = 0;
  TimeNs at = 0;
  int job_class = 0;
};

/// Two-state bursty Poisson arrival stream of Zipf-distributed job classes.
///
/// The clock alternates between a calm and a burst state with exponentially
/// distributed dwell times (mean calm_mean / burst_mean); interarrivals are
/// exponential at the state's rate, with the burst state `burst_factor`
/// times faster. The calm rate is chosen so the long-run mean rate equals
/// rate_hz regardless of the burst knobs.
class ArrivalProcess {
 public:
  struct Config {
    double rate_hz = 300.0;     // long-run mean arrival rate
    double burst_factor = 4.0;  // rate multiplier while bursting (>= 1)
    TimeNs burst_mean = milliseconds(40);
    TimeNs calm_mean = milliseconds(160);
    int num_classes = 8;
    double zipf_theta = 0.99;
    std::uint64_t seed = 1234;

    /// Throws std::invalid_argument on out-of-range knobs.
    void validate() const;
  };

  explicit ArrivalProcess(Config cfg);

  /// Next arrival; `at` is strictly greater than the previous one.
  JobArrival next();

  /// True while the modulating state is in a burst.
  bool bursting() const { return bursting_; }
  const Config& config() const { return cfg_; }
  const ZipfGenerator& zipf() const { return zipf_; }

 private:
  TimeNs exponential_ns(double rate_hz);

  Config cfg_;
  ZipfGenerator zipf_;
  Rng rng_;
  double calm_rate_hz_ = 0;
  TimeNs now_ = 0;
  bool bursting_ = false;
  TimeNs state_until_ = 0;
  std::uint64_t next_id_ = 0;
};

}  // namespace sb::workload
