#include "workload/arrival.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sb::workload {

ZipfGenerator::ZipfGenerator(int n, double theta, std::uint64_t seed)
    : theta_(theta), rng_(seed) {
  if (n < 1) throw std::invalid_argument("ZipfGenerator: n must be >= 1");
  if (theta < 0 || theta > 16.0) {
    throw std::invalid_argument("ZipfGenerator: theta out of [0, 16]");
  }
  cdf_.resize(static_cast<std::size_t>(n));
  double sum = 0;
  for (int k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[static_cast<std::size_t>(k)] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding in the last bucket
}

int ZipfGenerator::next() {
  const double u = rng_.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto k = static_cast<int>(it - cdf_.begin());
  return std::min(k, size() - 1);
}

double ZipfGenerator::probability(int rank) const {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("ZipfGenerator::probability: bad rank");
  }
  const auto k = static_cast<std::size_t>(rank);
  return rank == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

void ArrivalProcess::Config::validate() const {
  if (!(rate_hz > 0) || !(rate_hz <= 1e7)) {
    throw std::invalid_argument("ArrivalProcess: rate_hz out of (0, 1e7]");
  }
  if (!(burst_factor >= 1.0) || !(burst_factor <= 1e3)) {
    throw std::invalid_argument("ArrivalProcess: burst_factor out of [1, 1e3]");
  }
  if (burst_mean <= 0 || calm_mean <= 0) {
    throw std::invalid_argument("ArrivalProcess: state dwell means must be > 0");
  }
  if (num_classes < 1 || num_classes > 1'000'000) {
    throw std::invalid_argument("ArrivalProcess: num_classes out of [1, 1e6]");
  }
  if (zipf_theta < 0 || zipf_theta > 16.0) {
    throw std::invalid_argument("ArrivalProcess: zipf_theta out of [0, 16]");
  }
}

ArrivalProcess::ArrivalProcess(Config cfg)
    : cfg_((cfg.validate(), cfg)),
      zipf_(cfg.num_classes, cfg.zipf_theta, cfg.seed ^ 0x7a69'7066ULL),
      rng_(cfg.seed ^ 0x6172'7276ULL) {
  // Duty cycle d of the burst state; solve
  //   calm_rate * (1 - d) + calm_rate * burst_factor * d == rate_hz.
  const double d = to_seconds(cfg_.burst_mean) /
                   (to_seconds(cfg_.burst_mean) + to_seconds(cfg_.calm_mean));
  calm_rate_hz_ = cfg_.rate_hz / (1.0 - d + cfg_.burst_factor * d);
  state_until_ = exponential_ns(1.0 / to_seconds(cfg_.calm_mean));
}

TimeNs ArrivalProcess::exponential_ns(double rate_hz) {
  const double u = rng_.uniform();
  const double secs = -std::log(1.0 - u) / rate_hz;
  return std::max<TimeNs>(1, static_cast<TimeNs>(secs * 1e9));
}

JobArrival ArrivalProcess::next() {
  for (;;) {
    const double rate =
        bursting_ ? calm_rate_hz_ * cfg_.burst_factor : calm_rate_hz_;
    const TimeNs dt = exponential_ns(rate);
    if (now_ + dt >= state_until_) {
      // The draw crosses a state boundary: jump to it, flip the state and
      // redraw (the exponential is memoryless, so discarding the partial
      // draw keeps the process exact).
      now_ = state_until_;
      bursting_ = !bursting_;
      const TimeNs mean = bursting_ ? cfg_.burst_mean : cfg_.calm_mean;
      state_until_ = now_ + exponential_ns(1.0 / to_seconds(mean));
      continue;
    }
    now_ += dt;
    return JobArrival{next_id_++, now_, zipf_.next()};
  }
}

}  // namespace sb::workload
