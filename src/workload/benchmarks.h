// Benchmark library: PARSEC-like multithreaded workloads, the x264
// rate/input variants of Table 3, and the paper's 9 interactive
// microbenchmarks (IMB, §6: {H,M,L} throughput × {H,M,L} interactivity).
//
// Profiles are synthetic but their characterization vectors follow the
// published PARSEC characterization (Bienia et al., PACT'08): blackscholes
// and swaptions are small-footprint compute kernels, canneal and
// streamcluster are memory-bound with large working sets, x264's behaviour
// depends strongly on input and rate settings, etc. See DESIGN.md §2 for
// why this substitution preserves the balancer-visible surface.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/profile.h"

namespace sb::workload {

/// A benchmark is a template from which N worker threads are spawned.
struct Benchmark {
  std::string name;
  /// Per-thread phase sequence (cycled at runtime).
  std::vector<Phase> phases;
  /// Instructions each thread retires before exiting; 0 = run forever.
  std::uint64_t per_thread_instructions = 0;
  /// Interactivity (0 = CPU-bound).
  std::uint64_t burst_instructions = 0;
  TimeNs sleep_mean_ns = 0;
  /// Sibling-thread heterogeneity: relative sigma of profile jitter.
  double thread_jitter = 0.05;

  /// Spawns `nthreads` worker ThreadBehaviors with jittered profiles.
  std::vector<ThreadBehavior> spawn(int nthreads, Rng& rng) const;
};

/// Interactivity / throughput levels for the IMB generator.
enum class Level { Low, Medium, High };

char level_letter(Level l);
Level level_from_letter(char c);

class BenchmarkLibrary {
 public:
  /// PARSEC-like benchmarks: blackscholes, bodytrack, canneal, dedup,
  /// ferret, fluidanimate, freqmine, streamcluster, swaptions, vips.
  static std::vector<std::string> parsec_names();

  /// x264 variants per Table 3: x264_{H,L}_{crew,bow}.
  static std::vector<std::string> x264_names();

  /// All nine IMB configurations: IMB_{H,M,L}T{H,M,L}I.
  static std::vector<std::string> imb_names();

  /// Looks up any benchmark by name (PARSEC, x264 variant, or IMB).
  /// Throws std::out_of_range for unknown names.
  static Benchmark get(const std::string& name);

  /// The interactive microbenchmark with the given knobs (paper §6):
  /// throughput controls load and burst size, interactivity controls the
  /// sleep/wait periods.
  static Benchmark imb(Level throughput, Level interactivity);
};

}  // namespace sb::workload
