#include "workload/profile.h"

#include <algorithm>
#include <stdexcept>

namespace sb::workload {
namespace {

void check_range(double v, double lo, double hi, const char* what) {
  if (v < lo || v > hi) {
    throw std::invalid_argument(std::string("WorkloadProfile: ") + what +
                                " out of range");
  }
}

double jitter_clamped(double v, double sigma, double lo, double hi,
                      JitterSource& src) {
  return std::clamp(v * (1.0 + sigma * src.gaussian()), lo, hi);
}

}  // namespace

void WorkloadProfile::validate() const {
  check_range(ilp, 0.1, 16.0, "ilp");
  check_range(mem_share, 0.0, 0.8, "mem_share");
  check_range(branch_share, 0.0, 0.6, "branch_share");
  check_range(mem_share + branch_share, 0.0, 1.0, "mem_share+branch_share");
  check_range(mispredict_rate, 0.0, 0.5, "mispredict_rate");
  check_range(footprint_i_kb, 0.5, 1 << 16, "footprint_i_kb");
  check_range(footprint_d_kb, 0.5, 1 << 20, "footprint_d_kb");
  check_range(locality_alpha, 0.1, 4.0, "locality_alpha");
  check_range(mr_l1i_ref, 0.0, 0.5, "mr_l1i_ref");
  check_range(mr_l1d_ref, 0.0, 0.5, "mr_l1d_ref");
  check_range(mr_itlb_ref, 0.0, 0.1, "mr_itlb_ref");
  check_range(mr_dtlb_ref, 0.0, 0.1, "mr_dtlb_ref");
  check_range(l2_miss_ratio, 0.0, 1.0, "l2_miss_ratio");
  check_range(mlp, 1.0, 16.0, "mlp");
  check_range(activity, 0.2, 2.0, "activity");
}

WorkloadProfile WorkloadProfile::jittered(double relative_sigma,
                                          JitterSource& src) const {
  WorkloadProfile p = *this;
  p.ilp = jitter_clamped(ilp, relative_sigma, 0.1, 16.0, src);
  p.mem_share = jitter_clamped(mem_share, relative_sigma, 0.01, 0.8, src);
  p.branch_share = jitter_clamped(branch_share, relative_sigma, 0.01, 0.6, src);
  p.mispredict_rate =
      jitter_clamped(mispredict_rate, relative_sigma, 0.001, 0.5, src);
  p.footprint_d_kb =
      jitter_clamped(footprint_d_kb, relative_sigma, 0.5, 1 << 20, src);
  p.mr_l1d_ref = jitter_clamped(mr_l1d_ref, relative_sigma, 1e-4, 0.5, src);
  p.activity = jitter_clamped(activity, relative_sigma, 0.2, 2.0, src);
  // Renormalize in case jitter pushed the mix over 1.
  if (p.mem_share + p.branch_share > 0.95) {
    const double scale = 0.95 / (p.mem_share + p.branch_share);
    p.mem_share *= scale;
    p.branch_share *= scale;
  }
  p.validate();
  return p;
}

void ThreadBehavior::validate() const {
  if (phases.empty()) throw std::invalid_argument("ThreadBehavior: no phases");
  for (const auto& ph : phases) {
    ph.profile.validate();
    if (ph.instructions == 0) {
      throw std::invalid_argument("ThreadBehavior: empty phase");
    }
  }
  if (burst_instructions > 0 && sleep_mean_ns <= 0) {
    throw std::invalid_argument(
        "ThreadBehavior: interactive thread needs sleep_mean_ns > 0");
  }
  if (sleep_jitter < 0.0 || sleep_jitter > 1.0) {
    throw std::invalid_argument("ThreadBehavior: sleep_jitter out of [0,1]");
  }
}

}  // namespace sb::workload
