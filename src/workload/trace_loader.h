// Trace-driven workloads.
//
// Downstream users characterize their own applications (e.g. from perf
// counters on real hardware) and feed the per-phase characterization in as
// CSV; each row is one phase. This closes the loop for people reproducing
// the paper's methodology on their own workloads instead of the bundled
// PARSEC-like profiles.
//
// CSV columns (header required, in this order):
//   instructions,ilp,mem_share,branch_share,mispredict_rate,
//   footprint_i_kb,footprint_d_kb,locality_alpha,mr_l1i_ref,mr_l1d_ref,
//   l2_miss_ratio,mlp,activity
#pragma once

#include <iosfwd>
#include <string>

#include "workload/profile.h"

namespace sb::workload {

/// The exact header line expected/produced by the trace format.
const std::string& trace_csv_header();

/// Parses a phase trace into a ThreadBehavior named `name`. Interactivity
/// and lifetime fields are left at defaults (set them on the result).
/// Throws std::runtime_error with a line number on malformed input.
ThreadBehavior load_thread_trace(std::istream& is, const std::string& name);
ThreadBehavior load_thread_trace_file(const std::string& path,
                                      const std::string& name);

/// Writes a behaviour's phases in the same format (round-trips with load).
void save_thread_trace(std::ostream& os, const ThreadBehavior& behavior);
void save_thread_trace_file(const std::string& path,
                            const ThreadBehavior& behavior);

}  // namespace sb::workload
