#include "workload/trace_loader.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sb::workload {
namespace {

constexpr std::size_t kColumns = 13;

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::runtime_error("thread trace line " + std::to_string(line) + ": " +
                           why);
}

}  // namespace

const std::string& trace_csv_header() {
  static const std::string kHeader =
      "instructions,ilp,mem_share,branch_share,mispredict_rate,"
      "footprint_i_kb,footprint_d_kb,locality_alpha,mr_l1i_ref,mr_l1d_ref,"
      "l2_miss_ratio,mlp,activity";
  return kHeader;
}

ThreadBehavior load_thread_trace(std::istream& is, const std::string& name) {
  std::string line;
  if (!std::getline(is, line)) fail(1, "empty input");
  if (line != trace_csv_header()) fail(1, "unexpected header");

  ThreadBehavior tb;
  tb.name = name;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::vector<double> v;
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      try {
        std::size_t used = 0;
        const double d = std::stod(cell, &used);
        if (used != cell.size()) fail(lineno, "trailing junk in '" + cell + "'");
        v.push_back(d);
      } catch (const std::invalid_argument&) {
        fail(lineno, "non-numeric cell '" + cell + "'");
      } catch (const std::out_of_range&) {
        fail(lineno, "out-of-range cell '" + cell + "'");
      }
    }
    if (v.size() != kColumns) {
      fail(lineno, "expected " + std::to_string(kColumns) + " columns, got " +
                       std::to_string(v.size()));
    }
    Phase ph;
    // Range-check before the float→integer cast: a negative, huge or
    // non-finite instruction count would be undefined behaviour in the
    // static_cast, not just a bad value (same over-range leak class
    // FaultPlan::parse fixed).
    if (!std::isfinite(v[0]) || v[0] < 0 || v[0] >= 1e18) {
      fail(lineno, "instruction count out of [0, 1e18)");
    }
    ph.instructions = static_cast<std::uint64_t>(v[0]);
    WorkloadProfile& p = ph.profile;
    p.name = name + ".phase" + std::to_string(tb.phases.size());
    p.ilp = v[1];
    p.mem_share = v[2];
    p.branch_share = v[3];
    p.mispredict_rate = v[4];
    p.footprint_i_kb = v[5];
    p.footprint_d_kb = v[6];
    p.locality_alpha = v[7];
    p.mr_l1i_ref = v[8];
    p.mr_l1d_ref = v[9];
    p.l2_miss_ratio = v[10];
    p.mlp = v[11];
    p.activity = v[12];
    try {
      p.validate();
    } catch (const std::invalid_argument& e) {
      fail(lineno, e.what());
    }
    if (ph.instructions == 0) fail(lineno, "phase with zero instructions");
    tb.phases.push_back(std::move(ph));
  }
  if (tb.phases.empty()) fail(lineno, "trace contains no phases");
  tb.validate();
  return tb;
}

ThreadBehavior load_thread_trace_file(const std::string& path,
                                      const std::string& name) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read thread trace: " + path);
  return load_thread_trace(is, name);
}

void save_thread_trace(std::ostream& os, const ThreadBehavior& behavior) {
  os << trace_csv_header() << "\n" << std::setprecision(17);
  for (const auto& ph : behavior.phases) {
    const auto& p = ph.profile;
    os << ph.instructions << ',' << p.ilp << ',' << p.mem_share << ','
       << p.branch_share << ',' << p.mispredict_rate << ','
       << p.footprint_i_kb << ',' << p.footprint_d_kb << ','
       << p.locality_alpha << ',' << p.mr_l1i_ref << ',' << p.mr_l1d_ref << ','
       << p.l2_miss_ratio << ',' << p.mlp << ',' << p.activity << "\n";
  }
}

void save_thread_trace_file(const std::string& path,
                            const ThreadBehavior& behavior) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write thread trace: " + path);
  save_thread_trace(os, behavior);
}

}  // namespace sb::workload
