// Workload characterization.
//
// A WorkloadProfile is the *intrinsic*, microarchitecture-independent
// description of what a thread does: its instruction mix, available ILP,
// working-set footprints and locality, branch predictability, and memory-
// level parallelism. The mechanistic performance model (sb::perf) maps a
// profile onto a concrete core type to produce IPC and event rates — the
// same role PARSEC binaries played on gem5 in the paper. The load balancer
// NEVER sees profiles; it sees only the hardware counters they induce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sb::workload {

struct WorkloadProfile {
  std::string name;

  /// Dependency-limited IPC on an ideal (infinitely wide) machine.
  double ilp = 2.0;
  /// Fraction of committed instructions that are loads/stores (I_msh).
  double mem_share = 0.25;
  /// Fraction of committed instructions that are branches (I_bsh).
  double branch_share = 0.15;
  /// Intrinsic per-branch misprediction probability on a reference
  /// predictor; scaled by each core type's predictor_quality.
  double mispredict_rate = 0.03;

  /// Instruction / data working-set footprints.
  double footprint_i_kb = 16.0;
  double footprint_d_kb = 64.0;
  /// Cache locality power-law exponent (higher = more reuse-friendly).
  double locality_alpha = 1.2;

  /// Per-access miss rates when the working set fully overwhelms the cache
  /// (pressure = 1); see sb::arch::cache_miss_rate.
  double mr_l1i_ref = 0.010;
  double mr_l1d_ref = 0.060;
  double mr_itlb_ref = 0.0005;
  double mr_dtlb_ref = 0.004;

  /// Fraction of L1D misses that also miss the private L2 and go to memory.
  double l2_miss_ratio = 0.30;
  /// Memory-level parallelism: average overlapped outstanding misses.
  double mlp = 1.5;

  /// Dynamic-power activity scale relative to a nominal workload (SIMD-heavy
  /// code > 1, stall-heavy code < 1).
  double activity = 1.0;

  /// Throws std::invalid_argument if any field is outside its sane range.
  void validate() const;

  /// Returns a copy with multiplicative jitter applied to the continuous
  /// fields (used to differentiate sibling threads of one process).
  WorkloadProfile jittered(double relative_sigma, class JitterSource& src) const;
};

/// Injectable randomness for profile jittering (avoids coupling the profile
/// type to a concrete RNG).
class JitterSource {
 public:
  virtual ~JitterSource() = default;
  /// A sample from N(0, 1).
  virtual double gaussian() = 0;
};

/// A contiguous program phase: execute `instructions` with `profile`
/// characteristics, then move to the next phase (cyclically).
struct Phase {
  WorkloadProfile profile;
  std::uint64_t instructions = 50'000'000;
};

/// The complete dynamic behaviour of one thread.
///
/// Threads cycle through `phases`. If `burst_instructions` is non-zero the
/// thread is *interactive*: after each burst it sleeps for roughly
/// `sleep_mean_ns` (uniform ±`sleep_jitter`), modeling the IO/think time of
/// the paper's interactive microbenchmarks. `total_instructions == 0` means
/// run until the simulation ends (throughput mode).
struct ThreadBehavior {
  std::string name;
  std::vector<Phase> phases;
  std::uint64_t total_instructions = 0;
  std::uint64_t burst_instructions = 0;
  TimeNs sleep_mean_ns = 0;
  double sleep_jitter = 0.3;
  int nice = 0;

  bool interactive() const { return burst_instructions > 0 && sleep_mean_ns > 0; }
  void validate() const;
};

}  // namespace sb::workload
