// Table 3 benchmark mixes.
//
// | Mix1        | Mix2        | Mix3        | Mix4        | Mix5       | Mix6       |
// | x264_H crew | x264_L crew | x264_L crew | x264_H crew | bodytrack  | bodytrack  |
// | x264_H bow  | x264_L bow  | x264_H bow  | x264_L bow  | x264_H crew| x264_H crew|
// |             |             |             |             |            | x264_L bow |
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/benchmarks.h"

namespace sb::workload {

/// Names of the benchmarks in mix `id` (1..6 as in Table 3).
/// Throws std::out_of_range for other ids.
std::vector<std::string> mix_members(int id);

/// Number of defined mixes (6).
int num_mixes();

/// Spawns `threads_per_benchmark` worker threads for every member of the
/// mix (the paper runs each member with 2, 4 or 8 threads).
std::vector<ThreadBehavior> spawn_mix(int id, int threads_per_benchmark,
                                      Rng& rng);

}  // namespace sb::workload
