// Fluent builder for synthetic workloads.
//
// The paper's interactive microbenchmarks are one instance of a broader
// need: constructing threads with controlled characteristics to probe the
// balancer. This builder exposes the full characterization surface with
// validated defaults, so downstream users can write
//
//   auto bench = SyntheticBuilder("probe").ilp(3.2).memory_share(0.1)
//                    .footprint_kb(16).interactive(2'000'000, ms(5))
//                    .build();
//
// instead of filling WorkloadProfile structs by hand.
#pragma once

#include <string>

#include "workload/benchmarks.h"
#include "workload/profile.h"

namespace sb::workload {

class SyntheticBuilder {
 public:
  explicit SyntheticBuilder(std::string name);

  SyntheticBuilder& ilp(double v);
  SyntheticBuilder& memory_share(double v);
  SyntheticBuilder& branch_share(double v);
  SyntheticBuilder& mispredict_rate(double v);
  SyntheticBuilder& footprint_kb(double data_kb);
  SyntheticBuilder& instruction_footprint_kb(double v);
  SyntheticBuilder& locality(double alpha);
  SyntheticBuilder& miss_rates(double l1i_ref, double l1d_ref);
  SyntheticBuilder& memory_level_parallelism(double mlp);
  SyntheticBuilder& l2_miss_ratio(double v);
  SyntheticBuilder& activity(double v);

  /// Length of the (single) phase in instructions.
  SyntheticBuilder& phase_instructions(std::uint64_t v);
  /// Adds a second phase with a scaled profile (ILP × `ilp_scale`,
  /// footprint × `footprint_scale`) to exercise phase-change adaptivity.
  SyntheticBuilder& second_phase(double ilp_scale, double footprint_scale,
                                 std::uint64_t instructions);

  /// Makes the thread interactive: run `burst` instructions, sleep ~`sleep`.
  SyntheticBuilder& interactive(std::uint64_t burst, TimeNs sleep);
  /// Makes threads exit after `total` instructions (0 = run forever).
  SyntheticBuilder& total_instructions(std::uint64_t total);
  SyntheticBuilder& nice(int level);

  /// Validates and produces the benchmark (throws std::invalid_argument on
  /// out-of-range characteristics).
  Benchmark build() const;

  /// Shortcut: build and spawn `threads` workers.
  std::vector<ThreadBehavior> spawn(int threads, Rng& rng) const {
    return build().spawn(threads, rng);
  }

 private:
  std::string name_;
  WorkloadProfile profile_;
  std::uint64_t phase_insts_ = 40'000'000;
  bool has_second_phase_ = false;
  double second_ilp_scale_ = 1.0;
  double second_fp_scale_ = 1.0;
  std::uint64_t second_insts_ = 0;
  std::uint64_t burst_ = 0;
  TimeNs sleep_ = 0;
  std::uint64_t total_ = 0;
  int nice_ = 0;
};

}  // namespace sb::workload
