#include "workload/benchmarks.h"

#include <algorithm>
#include <stdexcept>

namespace sb::workload {
namespace {

/// Adapter so Benchmark::spawn can jitter profiles from an sb::Rng.
class RngJitter final : public JitterSource {
 public:
  explicit RngJitter(Rng& rng) : rng_(rng) {}
  double gaussian() override { return rng_.gaussian(); }

 private:
  Rng& rng_;
};

// Shorthand for building a profile. Arguments in the order they matter for
// the balancer: ILP, instruction mix, branch behaviour, memory behaviour.
WorkloadProfile prof(const std::string& name, double ilp, double mem_share,
                     double branch_share, double mispredict, double fp_i_kb,
                     double fp_d_kb, double alpha, double mr_i, double mr_d,
                     double l2_ratio, double mlp, double activity) {
  WorkloadProfile p;
  p.name = name;
  p.ilp = ilp;
  p.mem_share = mem_share;
  p.branch_share = branch_share;
  p.mispredict_rate = mispredict;
  p.footprint_i_kb = fp_i_kb;
  p.footprint_d_kb = fp_d_kb;
  p.locality_alpha = alpha;
  p.mr_l1i_ref = mr_i;
  p.mr_l1d_ref = mr_d;
  p.mr_itlb_ref = 0.0004 + 0.002 * (fp_d_kb > 512 ? 1.0 : fp_d_kb / 512.0) * 0.2;
  p.mr_dtlb_ref = 0.001 + 0.006 * (fp_d_kb > 2048 ? 1.0 : fp_d_kb / 2048.0);
  p.l2_miss_ratio = l2_ratio;
  p.mlp = mlp;
  p.activity = activity;
  p.validate();
  return p;
}

Phase phase(WorkloadProfile p, std::uint64_t insts) {
  return Phase{std::move(p), insts};
}

Benchmark blackscholes() {
  // Small-footprint floating-point kernel: high ILP, few branches, tiny
  // working set, very cache friendly.
  Benchmark b;
  b.name = "blackscholes";
  b.phases = {
      phase(prof("bs.price", 3.4, 0.18, 0.08, 0.008, 8, 24, 1.6, 0.002, 0.015,
                 0.15, 2.5, 1.15),
            60'000'000),
      phase(prof("bs.reduce", 2.6, 0.24, 0.12, 0.015, 8, 48, 1.4, 0.003, 0.025,
                 0.20, 2.0, 1.05),
            20'000'000),
  };
  return b;
}

Benchmark bodytrack() {
  // Vision pipeline: alternating compute (particle weights) and branchy
  // tree-walk phases with a mid-sized working set.
  Benchmark b;
  b.name = "bodytrack";
  b.phases = {
      phase(prof("bt.weights", 2.4, 0.26, 0.14, 0.030, 24, 160, 1.2, 0.008,
                 0.045, 0.30, 1.8, 1.0),
            40'000'000),
      phase(prof("bt.track", 1.8, 0.30, 0.19, 0.055, 32, 256, 1.0, 0.012,
                 0.060, 0.35, 1.5, 0.9),
            30'000'000),
  };
  return b;
}

Benchmark canneal() {
  // Simulated annealing over a netlist: pointer chasing over a huge working
  // set — the classic memory-bound, low-ILP PARSEC benchmark.
  Benchmark b;
  b.name = "canneal";
  b.phases = {
      phase(prof("cn.swap", 1.2, 0.38, 0.16, 0.060, 16, 8192, 0.7, 0.004,
                 0.140, 0.65, 1.2, 0.75),
            30'000'000),
      phase(prof("cn.eval", 1.5, 0.33, 0.14, 0.045, 16, 4096, 0.8, 0.004,
                 0.110, 0.55, 1.4, 0.85),
            20'000'000),
  };
  return b;
}

Benchmark dedup() {
  // Pipelined compression: hashing (compute) + chunk store (memory).
  Benchmark b;
  b.name = "dedup";
  b.phases = {
      phase(prof("dd.hash", 2.2, 0.24, 0.11, 0.020, 16, 96, 1.3, 0.005, 0.035,
                 0.25, 2.0, 1.05),
            35'000'000),
      phase(prof("dd.store", 1.4, 0.36, 0.13, 0.035, 24, 1536, 0.9, 0.007,
                 0.095, 0.50, 1.4, 0.85),
            25'000'000),
  };
  return b;
}

Benchmark ferret() {
  // Content-based similarity search pipeline; mixed behaviour.
  Benchmark b;
  b.name = "ferret";
  b.phases = {
      phase(prof("fe.extract", 2.6, 0.22, 0.12, 0.022, 24, 128, 1.3, 0.006,
                 0.040, 0.28, 1.9, 1.0),
            30'000'000),
      phase(prof("fe.rank", 1.7, 0.31, 0.16, 0.040, 32, 768, 1.0, 0.010,
                 0.075, 0.45, 1.5, 0.9),
            30'000'000),
  };
  return b;
}

Benchmark fluidanimate() {
  // SPH fluid dynamics: regular compute with neighbor-list gathers.
  Benchmark b;
  b.name = "fluidanimate";
  b.phases = {
      phase(prof("fl.force", 2.9, 0.27, 0.07, 0.012, 12, 192, 1.4, 0.003,
                 0.050, 0.35, 2.2, 1.1),
            45'000'000),
      phase(prof("fl.rebin", 1.6, 0.34, 0.12, 0.028, 16, 384, 1.0, 0.005,
                 0.070, 0.40, 1.6, 0.9),
            15'000'000),
  };
  return b;
}

Benchmark freqmine() {
  // FP-growth data mining: branchy tree traversal, moderate footprint.
  Benchmark b;
  b.name = "freqmine";
  b.phases = {
      phase(prof("fm.grow", 1.9, 0.29, 0.22, 0.070, 48, 512, 1.0, 0.015,
                 0.065, 0.40, 1.5, 0.9),
            40'000'000),
      phase(prof("fm.scan", 2.3, 0.31, 0.15, 0.035, 32, 256, 1.2, 0.008,
                 0.050, 0.30, 1.8, 1.0),
            20'000'000),
  };
  return b;
}

Benchmark streamcluster() {
  // Online clustering: streaming distance computations — bandwidth-bound
  // with little temporal locality (low alpha).
  Benchmark b;
  b.name = "streamcluster";
  b.phases = {
      phase(prof("sc.dist", 2.0, 0.35, 0.06, 0.010, 8, 4096, 0.5, 0.002,
                 0.120, 0.75, 2.8, 0.95),
            50'000'000),
      phase(prof("sc.center", 2.4, 0.28, 0.10, 0.018, 8, 512, 0.9, 0.003,
                 0.060, 0.45, 2.0, 1.0),
            15'000'000),
  };
  return b;
}

Benchmark swaptions() {
  // Monte-Carlo HJM pricing: the most compute-bound PARSEC member.
  Benchmark b;
  b.name = "swaptions";
  b.phases = {
      phase(prof("sw.sim", 3.8, 0.16, 0.07, 0.006, 8, 16, 1.8, 0.001, 0.010,
                 0.10, 2.5, 1.2),
            70'000'000),
      phase(prof("sw.sort", 2.0, 0.28, 0.16, 0.045, 12, 64, 1.2, 0.004, 0.030,
                 0.25, 1.7, 0.95),
            10'000'000),
  };
  return b;
}

Benchmark vips() {
  // Image transform pipeline: wide SIMD-ish loops over image rows.
  Benchmark b;
  b.name = "vips";
  b.phases = {
      phase(prof("vp.conv", 3.0, 0.30, 0.06, 0.009, 12, 1024, 0.8, 0.003,
                 0.080, 0.55, 2.4, 1.1),
            40'000'000),
      phase(prof("vp.pack", 2.2, 0.33, 0.11, 0.020, 12, 256, 1.1, 0.004,
                 0.050, 0.35, 1.9, 1.0),
            15'000'000),
  };
  return b;
}

// --- x264 variants (Table 3) -------------------------------------------
//
// The paper stresses that a single benchmark exhibits different IPS and
// power depending on configuration (H/L frame processing rate) and input
// video (crew vs bowing). We encode that: crew (high motion) is more
// memory/branch intensive; bowing (static scene) is more compute-regular.
// The H rate raises per-frame work and ILP utilization; the L rate lowers
// load and adds inter-frame waits.

Benchmark x264(bool high_rate, bool crew) {
  Benchmark b;
  b.name = std::string("x264_") + (high_rate ? "H" : "L") + "_" +
           (crew ? "crew" : "bow");
  const double motion = crew ? 1.0 : 0.45;  // motion intensity of the input
  // Motion estimation: data-hungry search, branchy on crew.
  WorkloadProfile me =
      prof(b.name + ".me", 2.1 + (high_rate ? 0.5 : 0.0), 0.30 + 0.06 * motion,
           0.15 + 0.05 * motion, 0.030 + 0.035 * motion, 32,
           512 + 1024 * motion, 1.0, 0.008, 0.055 + 0.040 * motion,
           0.35 + 0.15 * motion, 1.7, 0.95 + 0.15 * (high_rate ? 1 : 0));
  // Transform + entropy coding: compute-regular, small footprint.
  WorkloadProfile enc =
      prof(b.name + ".enc", 2.8 + (high_rate ? 0.4 : 0.0), 0.22, 0.12,
           0.018, 24, 128, 1.3, 0.006, 0.035, 0.25, 2.0,
           1.05 + 0.10 * (high_rate ? 1 : 0));
  const std::uint64_t frame_insts = high_rate ? 30'000'000 : 12'000'000;
  b.phases = {phase(std::move(me), frame_insts),
              phase(std::move(enc), frame_insts / 2)};
  if (!high_rate) {
    // Low frame-rate: the encoder waits for frames — mild interactivity.
    b.burst_instructions = 18'000'000;
    b.sleep_mean_ns = milliseconds(8);
  }
  return b;
}

}  // namespace

char level_letter(Level l) {
  switch (l) {
    case Level::Low:
      return 'L';
    case Level::Medium:
      return 'M';
    case Level::High:
      return 'H';
  }
  return '?';
}

Level level_from_letter(char c) {
  switch (c) {
    case 'L':
      return Level::Low;
    case 'M':
      return Level::Medium;
    case 'H':
      return Level::High;
    default:
      throw std::out_of_range("bad level letter");
  }
}

std::vector<ThreadBehavior> Benchmark::spawn(int nthreads, Rng& rng) const {
  if (nthreads <= 0) throw std::invalid_argument("Benchmark::spawn: nthreads");
  RngJitter jitter(rng);
  std::vector<ThreadBehavior> out;
  out.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    ThreadBehavior tb;
    tb.name = name + "/" + std::to_string(t);
    tb.phases.reserve(phases.size());
    for (const auto& ph : phases) {
      Phase jp = ph;
      jp.profile = ph.profile.jittered(thread_jitter, jitter);
      // Stagger phase lengths slightly so sibling threads desynchronize.
      jp.instructions = static_cast<std::uint64_t>(
          static_cast<double>(ph.instructions) * rng.uniform(0.9, 1.1));
      tb.phases.push_back(std::move(jp));
    }
    // Rotate the starting phase so workers are not in lockstep.
    std::rotate(tb.phases.begin(),
                tb.phases.begin() + (t % static_cast<int>(tb.phases.size())),
                tb.phases.end());
    tb.total_instructions = per_thread_instructions;
    tb.burst_instructions = burst_instructions;
    tb.sleep_mean_ns = sleep_mean_ns;
    tb.validate();
    out.push_back(std::move(tb));
  }
  return out;
}

std::vector<std::string> BenchmarkLibrary::parsec_names() {
  return {"blackscholes", "bodytrack",     "canneal",  "dedup",
          "ferret",       "fluidanimate",  "freqmine", "streamcluster",
          "swaptions",    "vips"};
}

std::vector<std::string> BenchmarkLibrary::x264_names() {
  return {"x264_H_crew", "x264_H_bow", "x264_L_crew", "x264_L_bow"};
}

std::vector<std::string> BenchmarkLibrary::imb_names() {
  std::vector<std::string> names;
  for (char t : {'H', 'M', 'L'}) {
    for (char i : {'H', 'M', 'L'}) {
      names.push_back(std::string("IMB_") + t + "T" + i + "I");
    }
  }
  return names;
}

Benchmark BenchmarkLibrary::imb(Level throughput, Level interactivity) {
  Benchmark b;
  b.name = std::string("IMB_") + level_letter(throughput) + "T" +
           level_letter(interactivity) + "I";

  // Throughput level sets how demanding the compute bursts are.
  double ilp = 1.5, mem = 0.32, fp_d = 768, mr_d = 0.080, act = 0.85;
  std::uint64_t burst = 3'000'000;
  switch (throughput) {
    case Level::High:
      ilp = 3.2;
      mem = 0.20;
      fp_d = 96;
      mr_d = 0.030;
      act = 1.15;
      burst = 20'000'000;
      break;
    case Level::Medium:
      ilp = 2.2;
      mem = 0.27;
      fp_d = 256;
      mr_d = 0.055;
      act = 1.0;
      burst = 8'000'000;
      break;
    case Level::Low:
      break;  // defaults above
  }

  // Interactivity level sets the sleep/wait periods between bursts.
  TimeNs sleep = 0;
  switch (interactivity) {
    case Level::High:
      sleep = milliseconds(24);
      break;
    case Level::Medium:
      sleep = milliseconds(8);
      break;
    case Level::Low:
      sleep = milliseconds(2);
      break;
  }

  b.phases = {
      phase(prof(b.name + ".work", ilp, mem, 0.14, 0.030, 16, fp_d, 1.1,
                 0.006, mr_d, 0.40, 1.8, act),
            burst * 3),
      phase(prof(b.name + ".setup", ilp * 0.7, mem + 0.05, 0.18, 0.045, 24,
                 fp_d * 1.5, 1.0, 0.009, mr_d * 1.3, 0.45, 1.5, act * 0.9),
            burst),
  };
  b.burst_instructions = burst;
  b.sleep_mean_ns = sleep;
  b.thread_jitter = 0.08;
  return b;
}

Benchmark BenchmarkLibrary::get(const std::string& name) {
  if (name == "blackscholes") return blackscholes();
  if (name == "bodytrack") return bodytrack();
  if (name == "canneal") return canneal();
  if (name == "dedup") return dedup();
  if (name == "ferret") return ferret();
  if (name == "fluidanimate") return fluidanimate();
  if (name == "freqmine") return freqmine();
  if (name == "streamcluster") return streamcluster();
  if (name == "swaptions") return swaptions();
  if (name == "vips") return vips();
  if (name == "x264_H_crew") return x264(true, true);
  if (name == "x264_H_bow") return x264(true, false);
  if (name == "x264_L_crew") return x264(false, true);
  if (name == "x264_L_bow") return x264(false, false);
  if (name.rfind("IMB_", 0) == 0 && name.size() == 8 && name[5] == 'T' &&
      name[7] == 'I') {
    return imb(level_from_letter(name[4]), level_from_letter(name[6]));
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace sb::workload
