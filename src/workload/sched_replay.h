// Scheduler-trace replay: real wake/sleep patterns as a workload source.
//
// Downstream users record what their system actually did — `perf sched` /
// ftrace style event streams of task spawns, sleeps, wakes and exits — and
// feed it back in as CSV. The replay compiler turns that event stream plus a
// per-task phase characterization (the trace_loader format, or a builtin
// benchmark) into a deterministic arrival/interactivity schedule that plugs
// in next to the synthetic PARSEC mixes and the fleet's MMPP arrivals. This
// closes the responsiveness loop: the wake-to-run latency report
// (sim/metrics.h) can then be gated on traffic shaped like production, not
// just on synthetic interactive microbenchmarks.
//
// Trace CSV grammar (header required, in this order):
//   event,t_us,task,ref
// where
//   event  one of spawn | wake | sleep | exit
//   t_us   event timestamp in microseconds (up to 0.001 us = 1 ns
//          resolution; non-decreasing across the file, strictly increasing
//          per task; at most 1e9 us so nanosecond round-trips stay exact)
//   task   non-empty task name (one simulated thread per name)
//   ref    spawn only: phase characterization — either `builtin:<name>`
//          (a BenchmarkLibrary entry) or the path of a trace_loader phase
//          CSV, resolved relative to the replay file; empty otherwise
// Per-task lifecycle: spawn first (exactly once), then alternating
// sleep/wake (a spawned task starts awake), optionally ending in exit
// (any state). Malformed input always throws std::runtime_error with a
// line number — never std::out_of_range or UB (fuzzed).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "workload/profile.h"

namespace sb::workload {

/// The exact header line expected/produced by the replay format.
const std::string& replay_csv_header();

struct ReplayEvent {
  enum class Kind { Spawn, Wake, Sleep, Exit };
  Kind kind = Kind::Spawn;
  TimeNs at = 0;
  std::string task;
  std::string ref;  // spawn only; empty otherwise

  bool operator==(const ReplayEvent&) const = default;
};

/// A validated, time-ordered replay event stream.
struct ReplayTrace {
  std::vector<ReplayEvent> events;

  /// Timestamp of the last event (0 for an empty stream — parse never
  /// returns one; there is at least one spawn).
  TimeNs span() const;
  /// Number of distinct tasks (== number of spawn events).
  std::size_t num_tasks() const;

  bool operator==(const ReplayTrace&) const = default;
};

/// Parses and validates a replay trace. `context` names the source in error
/// messages. Throws std::runtime_error with a line number on any malformed,
/// out-of-range or out-of-order input.
ReplayTrace parse_replay_trace(std::istream& is,
                               const std::string& context = "sched replay");
ReplayTrace load_replay_trace_file(const std::string& path);

/// Writes a trace in the same format (bit-exact round-trip with parse:
/// timestamps are printed as fixed-point microseconds with 3 fractional
/// digits, which reparse to the identical nanosecond value).
void save_replay_trace(std::ostream& os, const ReplayTrace& trace);
void save_replay_trace_file(const std::string& path,
                            const ReplayTrace& trace);

/// One compiled task: spawn time plus the ThreadBehavior reproducing the
/// trace's duty cycle (burst/sleep means, zero jitter — the schedule is a
/// pure function of the trace and options).
struct ReplayTask {
  std::string name;
  TimeNs spawn_at = 0;
  ThreadBehavior behavior;

  // Trace-derived statistics (reporting aid; behavior already encodes them).
  std::uint64_t wakes = 0;
  TimeNs busy_ns = 0;   // total awake time covered by the trace
  TimeNs sleep_ns = 0;  // total completed sleep→wake time
  bool exits = false;   // tasks without an exit event run forever
};

struct ReplayCompileOptions {
  /// Calibration: instructions retired per busy nanosecond when mapping the
  /// trace's wall-clock busy intervals onto instruction budgets.
  double ips_hint = 1.0;
  /// Directory for resolving relative phase-CSV refs (typically the replay
  /// file's directory; empty = current directory).
  std::string base_dir;
};

/// Compiles a trace into per-task arrival times + behaviors, resolving each
/// spawn's phase characterization ref. Tasks come out in spawn order (file
/// order for equal timestamps). Throws std::runtime_error when a ref cannot
/// be resolved or the options are out of range.
struct ReplaySchedule {
  std::vector<ReplayTask> tasks;
  TimeNs span = 0;  // trace span (drives fleet arrival looping)
};
ReplaySchedule compile_replay_schedule(const ReplayTrace& trace,
                                       const ReplayCompileOptions& opts = {});

/// Deterministic job-class assignment for fleet replay arrivals: FNV-1a
/// over the task name, reduced mod num_classes. Stable across platforms
/// and runs (part of the fleet determinism contract).
int replay_class_of(std::string_view task, int num_classes);

}  // namespace sb::workload
