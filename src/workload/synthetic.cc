#include "workload/synthetic.h"

#include <algorithm>
#include <stdexcept>

namespace sb::workload {

SyntheticBuilder::SyntheticBuilder(std::string name) : name_(std::move(name)) {
  profile_.name = name_ + ".main";
}

SyntheticBuilder& SyntheticBuilder::ilp(double v) {
  profile_.ilp = v;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::memory_share(double v) {
  profile_.mem_share = v;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::branch_share(double v) {
  profile_.branch_share = v;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::mispredict_rate(double v) {
  profile_.mispredict_rate = v;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::footprint_kb(double data_kb) {
  profile_.footprint_d_kb = data_kb;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::instruction_footprint_kb(double v) {
  profile_.footprint_i_kb = v;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::locality(double alpha) {
  profile_.locality_alpha = alpha;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::miss_rates(double l1i_ref, double l1d_ref) {
  profile_.mr_l1i_ref = l1i_ref;
  profile_.mr_l1d_ref = l1d_ref;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::memory_level_parallelism(double mlp) {
  profile_.mlp = mlp;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::l2_miss_ratio(double v) {
  profile_.l2_miss_ratio = v;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::activity(double v) {
  profile_.activity = v;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::phase_instructions(std::uint64_t v) {
  phase_insts_ = v;
  return *this;
}

SyntheticBuilder& SyntheticBuilder::second_phase(double ilp_scale,
                                                 double footprint_scale,
                                                 std::uint64_t instructions) {
  has_second_phase_ = true;
  second_ilp_scale_ = ilp_scale;
  second_fp_scale_ = footprint_scale;
  second_insts_ = instructions;
  return *this;
}

SyntheticBuilder& SyntheticBuilder::interactive(std::uint64_t burst,
                                                TimeNs sleep) {
  burst_ = burst;
  sleep_ = sleep;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::total_instructions(std::uint64_t total) {
  total_ = total;
  return *this;
}
SyntheticBuilder& SyntheticBuilder::nice(int level) {
  nice_ = level;
  return *this;
}

Benchmark SyntheticBuilder::build() const {
  profile_.validate();
  if (phase_insts_ == 0) {
    throw std::invalid_argument("SyntheticBuilder: empty phase");
  }
  Benchmark b;
  b.name = name_;
  b.phases.push_back(Phase{profile_, phase_insts_});
  if (has_second_phase_) {
    WorkloadProfile p2 = profile_;
    p2.name = name_ + ".alt";
    p2.ilp = std::clamp(p2.ilp * second_ilp_scale_, 0.1, 16.0);
    p2.footprint_d_kb =
        std::clamp(p2.footprint_d_kb * second_fp_scale_, 0.5, double(1 << 20));
    p2.validate();
    if (second_insts_ == 0) {
      throw std::invalid_argument("SyntheticBuilder: empty second phase");
    }
    b.phases.push_back(Phase{std::move(p2), second_insts_});
  }
  b.per_thread_instructions = total_;
  b.burst_instructions = burst_;
  b.sleep_mean_ns = sleep_;
  return b;
}

}  // namespace sb::workload
