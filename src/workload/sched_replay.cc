#include "workload/sched_replay.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "workload/benchmarks.h"
#include "workload/trace_loader.h"

namespace sb::workload {
namespace {

// 1e9 us = 1000 s of trace: far beyond any simulated window, and small
// enough that the fixed-point microsecond round-trip through double stays
// exact to the nanosecond (|t_us * 1000| < 2^51).
constexpr double kMaxTimestampUs = 1e9;

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::runtime_error("sched replay line " + std::to_string(line) + ": " +
                           why);
}

/// Splits on ',' keeping empty fields (including a trailing one).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

ReplayEvent::Kind kind_of(const std::string& s, std::size_t lineno) {
  if (s == "spawn") return ReplayEvent::Kind::Spawn;
  if (s == "wake") return ReplayEvent::Kind::Wake;
  if (s == "sleep") return ReplayEvent::Kind::Sleep;
  if (s == "exit") return ReplayEvent::Kind::Exit;
  fail(lineno, "unknown event '" + s + "'");
}

const char* kind_name(ReplayEvent::Kind k) {
  switch (k) {
    case ReplayEvent::Kind::Spawn: return "spawn";
    case ReplayEvent::Kind::Wake: return "wake";
    case ReplayEvent::Kind::Sleep: return "sleep";
    case ReplayEvent::Kind::Exit: return "exit";
  }
  return "?";
}

TimeNs timestamp_of(const std::string& cell, std::size_t lineno) {
  double t_us = 0;
  try {
    std::size_t used = 0;
    t_us = std::stod(cell, &used);
    if (used != cell.size()) fail(lineno, "trailing junk in '" + cell + "'");
  } catch (const std::invalid_argument&) {
    fail(lineno, "non-numeric timestamp '" + cell + "'");
  } catch (const std::out_of_range&) {
    fail(lineno, "out-of-range timestamp '" + cell + "'");
  }
  if (!std::isfinite(t_us) || t_us < 0 || t_us > kMaxTimestampUs) {
    fail(lineno, "timestamp out of [0, 1e9] us: '" + cell + "'");
  }
  return static_cast<TimeNs>(std::llround(t_us * 1000.0));
}

}  // namespace

const std::string& replay_csv_header() {
  static const std::string kHeader = "event,t_us,task,ref";
  return kHeader;
}

TimeNs ReplayTrace::span() const {
  return events.empty() ? 0 : events.back().at;
}

std::size_t ReplayTrace::num_tasks() const {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.kind == ReplayEvent::Kind::Spawn) ++n;
  }
  return n;
}

ReplayTrace parse_replay_trace(std::istream& is, const std::string& context) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error(context + ": empty input");
  }
  if (line != replay_csv_header()) fail(1, "unexpected header");

  struct TaskState {
    bool asleep = false;
    bool exited = false;
    TimeNs last = 0;
  };
  std::map<std::string, TaskState> tasks;

  ReplayTrace trace;
  TimeNs prev_at = 0;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv(line);
    if (cells.size() != 4) {
      fail(lineno,
           "expected 4 columns, got " + std::to_string(cells.size()));
    }
    ReplayEvent ev;
    ev.kind = kind_of(cells[0], lineno);
    ev.at = timestamp_of(cells[1], lineno);
    ev.task = cells[2];
    ev.ref = cells[3];
    if (ev.task.empty()) fail(lineno, "empty task name");
    if (ev.at < prev_at) {
      fail(lineno, "timestamps must be non-decreasing across the file");
    }
    prev_at = ev.at;

    const auto it = tasks.find(ev.task);
    if (ev.kind == ReplayEvent::Kind::Spawn) {
      if (it != tasks.end()) fail(lineno, "duplicate spawn of '" + ev.task + "'");
      if (ev.ref.empty()) fail(lineno, "spawn needs a phase-trace ref");
      tasks[ev.task] = TaskState{false, false, ev.at};
    } else {
      if (!ev.ref.empty()) {
        fail(lineno, std::string(kind_name(ev.kind)) + " must not carry a ref");
      }
      if (it == tasks.end()) {
        fail(lineno, "'" + ev.task + "' " + kind_name(ev.kind) +
                         " before spawn");
      }
      TaskState& ts = it->second;
      if (ts.exited) fail(lineno, "'" + ev.task + "' already exited");
      if (ev.at <= ts.last) {
        fail(lineno, "per-task timestamps must be strictly increasing");
      }
      switch (ev.kind) {
        case ReplayEvent::Kind::Wake:
          if (!ts.asleep) fail(lineno, "'" + ev.task + "' wake while awake");
          ts.asleep = false;
          break;
        case ReplayEvent::Kind::Sleep:
          if (ts.asleep) fail(lineno, "'" + ev.task + "' sleep while asleep");
          ts.asleep = true;
          break;
        case ReplayEvent::Kind::Exit:
          ts.exited = true;
          break;
        case ReplayEvent::Kind::Spawn:
          break;  // unreachable
      }
      ts.last = ev.at;
    }
    trace.events.push_back(std::move(ev));
  }
  if (tasks.empty()) fail(lineno, "trace contains no spawn");
  return trace;
}

ReplayTrace load_replay_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read sched replay trace: " + path);
  return parse_replay_trace(is, path);
}

void save_replay_trace(std::ostream& os, const ReplayTrace& trace) {
  os << replay_csv_header() << "\n";
  for (const auto& e : trace.events) {
    os << kind_name(e.kind) << ',' << e.at / 1000 << '.' << std::setw(3)
       << std::setfill('0') << e.at % 1000 << std::setfill(' ') << ','
       << e.task << ',' << e.ref << "\n";
  }
}

void save_replay_trace_file(const std::string& path,
                            const ReplayTrace& trace) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot write sched replay trace: " + path);
  }
  save_replay_trace(os, trace);
}

ReplaySchedule compile_replay_schedule(const ReplayTrace& trace,
                                       const ReplayCompileOptions& opts) {
  if (!std::isfinite(opts.ips_hint) || opts.ips_hint <= 0 ||
      opts.ips_hint > 1e3) {
    throw std::runtime_error(
        "sched replay: ips_hint out of (0, 1e3] instructions/ns");
  }

  // Per-task duty-cycle accumulation over the event stream.
  struct Acc {
    TimeNs spawn_at = 0;
    bool asleep = false;
    bool exited = false;
    TimeNs awake_since = 0;   // valid while !asleep && !exited
    TimeNs asleep_since = 0;  // valid while asleep
    TimeNs busy_ns = 0;
    std::uint64_t busy_intervals = 0;
    TimeNs sleep_ns = 0;
    std::uint64_t wakes = 0;
    std::string ref;
  };
  std::map<std::string, Acc> accs;
  std::vector<std::string> order;  // spawn order

  for (const auto& e : trace.events) {
    switch (e.kind) {
      case ReplayEvent::Kind::Spawn: {
        Acc a;
        a.spawn_at = e.at;
        a.awake_since = e.at;
        a.ref = e.ref;
        accs[e.task] = std::move(a);
        order.push_back(e.task);
        break;
      }
      case ReplayEvent::Kind::Sleep: {
        Acc& a = accs[e.task];
        a.busy_ns += e.at - a.awake_since;
        ++a.busy_intervals;
        a.asleep = true;
        a.asleep_since = e.at;
        break;
      }
      case ReplayEvent::Kind::Wake: {
        Acc& a = accs[e.task];
        a.sleep_ns += e.at - a.asleep_since;
        ++a.wakes;
        a.asleep = false;
        a.awake_since = e.at;
        break;
      }
      case ReplayEvent::Kind::Exit: {
        Acc& a = accs[e.task];
        if (!a.asleep) {
          a.busy_ns += e.at - a.awake_since;
          ++a.busy_intervals;
        }
        a.exited = true;
        break;
      }
    }
  }
  // Tasks still awake when the trace ends contribute their truncated final
  // busy interval (better burst estimate for rarely sleeping tasks).
  const TimeNs end = trace.span();
  for (auto& [name, a] : accs) {
    if (!a.exited && !a.asleep && end > a.awake_since) {
      a.busy_ns += end - a.awake_since;
      ++a.busy_intervals;
    }
  }

  ReplaySchedule sched;
  sched.span = end;
  for (const std::string& name : order) {
    const Acc& a = accs[name];
    ReplayTask rt;
    rt.name = name;
    rt.spawn_at = a.spawn_at;
    rt.wakes = a.wakes;
    rt.busy_ns = a.busy_ns;
    rt.sleep_ns = a.sleep_ns;
    rt.exits = a.exited;

    ThreadBehavior& tb = rt.behavior;
    tb.name = name;
    tb.sleep_jitter = 0;  // the schedule is a pure function of the trace

    // Phase characterization from the spawn ref.
    constexpr std::string_view kBuiltin = "builtin:";
    if (a.ref.rfind(kBuiltin, 0) == 0) {
      const std::string bench = a.ref.substr(kBuiltin.size());
      try {
        tb.phases = BenchmarkLibrary::get(bench).phases;
      } catch (const std::out_of_range&) {
        throw std::runtime_error("sched replay: unknown builtin benchmark '" +
                                 bench + "' for task '" + name + "'");
      }
    } else {
      std::string path = a.ref;
      if (!opts.base_dir.empty() && !path.empty() && path.front() != '/') {
        path = opts.base_dir + "/" + path;
      }
      tb.phases = load_thread_trace_file(path, name).phases;
    }

    // Duty cycle: mean busy interval -> burst budget, completed sleep→wake
    // gaps -> deterministic sleep period. Tasks that never completed a
    // sleep/wake cycle replay as CPU-bound.
    if (a.wakes > 0 && a.busy_intervals > 0 && a.busy_ns > 0) {
      const double mean_busy_ns = static_cast<double>(a.busy_ns) /
                                  static_cast<double>(a.busy_intervals);
      const double mean_sleep_ns =
          static_cast<double>(a.sleep_ns) / static_cast<double>(a.wakes);
      tb.burst_instructions = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 std::llround(mean_busy_ns * opts.ips_hint)));
      tb.sleep_mean_ns =
          std::max<TimeNs>(1, static_cast<TimeNs>(std::llround(mean_sleep_ns)));
    }
    if (a.exited) {
      tb.total_instructions = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(
                 static_cast<double>(a.busy_ns) * opts.ips_hint)));
    }
    try {
      tb.validate();
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("sched replay: compiled behavior for '" + name +
                               "' invalid: " + e.what());
    }
    sched.tasks.push_back(std::move(rt));
  }
  return sched;
}

int replay_class_of(std::string_view task, int num_classes) {
  if (num_classes < 1) {
    throw std::invalid_argument("replay_class_of: num_classes < 1");
  }
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64
  for (const char c : task) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<int>(h % static_cast<std::uint64_t>(num_classes));
}

}  // namespace sb::workload
