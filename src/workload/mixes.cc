#include "workload/mixes.h"

#include <stdexcept>

namespace sb::workload {

std::vector<std::string> mix_members(int id) {
  switch (id) {
    case 1:
      return {"x264_H_crew", "x264_H_bow"};
    case 2:
      return {"x264_L_crew", "x264_L_bow"};
    case 3:
      return {"x264_L_crew", "x264_H_bow"};
    case 4:
      return {"x264_H_crew", "x264_L_bow"};
    case 5:
      return {"bodytrack", "x264_H_crew"};
    case 6:
      return {"bodytrack", "x264_H_crew", "x264_L_bow"};
    default:
      throw std::out_of_range("mix id must be 1..6");
  }
}

int num_mixes() { return 6; }

std::vector<ThreadBehavior> spawn_mix(int id, int threads_per_benchmark,
                                      Rng& rng) {
  std::vector<ThreadBehavior> all;
  for (const auto& name : mix_members(id)) {
    auto threads =
        BenchmarkLibrary::get(name).spawn(threads_per_benchmark, rng);
    for (auto& t : threads) all.push_back(std::move(t));
  }
  return all;
}

}  // namespace sb::workload
