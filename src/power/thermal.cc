#include "power/thermal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sb::power {

ThermalModel::ThermalModel(const arch::Platform& platform, Config cfg)
    : platform_(platform), cfg_(cfg) {
  platform_.validate();
  if (cfg_.r_coeff_c_mm2_per_w <= 0 || cfg_.tau_s <= 0 ||
      cfg_.neighbor_coupling < 0 || cfg_.neighbor_coupling >= 1) {
    throw std::invalid_argument("ThermalModel: bad config");
  }
  const auto n = static_cast<std::size_t>(platform_.num_cores());
  temp_c_.assign(n, cfg_.ambient_c);
  r_ja_.reserve(n);
  for (CoreId c = 0; c < platform_.num_cores(); ++c) {
    r_ja_.push_back(cfg_.r_coeff_c_mm2_per_w / platform_.params_of(c).area_mm2);
  }
}

void ThermalModel::step(const std::vector<double>& core_power_w, TimeNs dt) {
  if (core_power_w.size() != temp_c_.size()) {
    throw std::invalid_argument("ThermalModel::step: power vector size");
  }
  if (dt <= 0) return;
  const double alpha = 1.0 - std::exp(-to_seconds(dt) / cfg_.tau_s);

  // Targets first (so the update is order-independent), then relax.
  std::vector<double> target(temp_c_.size());
  for (std::size_t i = 0; i < temp_c_.size(); ++i) {
    double t = cfg_.ambient_c + r_ja_[i] * std::max(0.0, core_power_w[i]);
    double coupled = 0.0;
    int neighbors = 0;
    if (i > 0) {
      coupled += temp_c_[i - 1] - cfg_.ambient_c;
      ++neighbors;
    }
    if (i + 1 < temp_c_.size()) {
      coupled += temp_c_[i + 1] - cfg_.ambient_c;
      ++neighbors;
    }
    if (neighbors > 0) {
      t += cfg_.neighbor_coupling * coupled / neighbors;
    }
    target[i] = t;
  }
  for (std::size_t i = 0; i < temp_c_.size(); ++i) {
    temp_c_[i] += alpha * (target[i] - temp_c_[i]);
  }
}

double ThermalModel::temperature_c(CoreId c) const {
  if (c < 0 || static_cast<std::size_t>(c) >= temp_c_.size()) {
    throw std::out_of_range("ThermalModel::temperature_c");
  }
  return temp_c_[static_cast<std::size_t>(c)];
}

double ThermalModel::max_temperature_c() const {
  return *std::max_element(temp_c_.begin(), temp_c_.end());
}

double ThermalModel::steady_state_c(CoreId c, double power_w) const {
  if (c < 0 || static_cast<std::size_t>(c) >= r_ja_.size()) {
    throw std::out_of_range("ThermalModel::steady_state_c");
  }
  return cfg_.ambient_c + r_ja_[static_cast<std::size_t>(c)] * power_w;
}

void ThermalModel::reset() {
  std::fill(temp_c_.begin(), temp_c_.end(), cfg_.ambient_c);
}

}  // namespace sb::power
