#include "power/power_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "perf/interval_model.h"

namespace sb::power {

PowerModel::PowerModel(const arch::Platform& platform,
                       const perf::PerfModel& perf, Config cfg)
    : platform_(platform), cfg_(cfg) {
  const auto probe = perf::peak_probe_profile();
  calib_.reserve(static_cast<std::size_t>(platform_.num_types()));
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    const auto& p = platform_.params_of_type(t);
    Calib c;
    c.leak_w = cfg_.leak_coeff * p.area_mm2 * p.vdd * p.vdd * p.vdd;
    if (c.leak_w >= p.peak_power_w) {
      throw std::logic_error("PowerModel: leakage exceeds peak power for " +
                             p.name + "; lower Config::leak_coeff");
    }
    c.dyn_peak_w = p.peak_power_w - c.leak_w;
    c.peak_ipc = perf.peak_ipc(t);
    c.probe_activity = probe.activity;
    calib_.push_back(c);
  }
}

double PowerModel::busy_power_w(CoreTypeId t, double ipc,
                                double activity) const {
  const Calib& c = calib(t);
  const double util = std::clamp(ipc / c.peak_ipc, 0.0, 1.25);
  // Dynamic power: a base clock/fetch floor plus a component linear in
  // commit throughput, all scaled by the workload's switching activity
  // relative to the calibration probe.
  const double dyn = c.dyn_peak_w *
                     (cfg_.base_activity + (1.0 - cfg_.base_activity) * util) *
                     (activity / c.probe_activity);
  return c.leak_w + dyn;
}

double PowerModel::busy_power_core_w(CoreId core, double ipc,
                                     double activity) const {
  return busy_power_w(platform_.type_of(core), ipc, activity);
}

double PowerModel::busy_power_at(CoreTypeId t, double ipc, double activity,
                                 const arch::OperatingPoint& opp) const {
  const Calib& c = calib(t);
  const auto& nominal = platform_.params_of_type(t);
  const double util = std::clamp(ipc / c.peak_ipc, 0.0, 1.25);
  const double dyn = c.dyn_peak_w *
                     (cfg_.base_activity + (1.0 - cfg_.base_activity) * util) *
                     (activity / c.probe_activity) *
                     arch::dynamic_scale(opp, nominal);
  return c.leak_w * arch::leakage_scale(opp, nominal) + dyn;
}

double PowerModel::sleep_power_at(CoreTypeId t,
                                  const arch::OperatingPoint& opp) const {
  return sleep_power_w(t) *
         arch::leakage_scale(opp, platform_.params_of_type(t));
}

double PowerModel::idle_power_w(CoreTypeId t) const {
  const Calib& c = calib(t);
  return c.leak_w + cfg_.idle_dyn_fraction * c.dyn_peak_w;
}

double PowerModel::sleep_power_w(CoreTypeId t) const {
  return cfg_.sleep_leak_fraction * calib(t).leak_w;
}

double PowerModel::leakage_w(CoreTypeId t) const { return calib(t).leak_w; }

double PowerModel::dynamic_peak_w(CoreTypeId t) const {
  return calib(t).dyn_peak_w;
}

double PowerModel::peak_ipc(CoreTypeId t) const { return calib(t).peak_ipc; }

double PowerModel::peak_power_w(CoreTypeId t) const {
  const Calib& c = calib(t);
  return busy_power_w(t, c.peak_ipc, c.probe_activity);
}

}  // namespace sb::power
