// Lumped RC thermal model.
//
// The paper's §6.4 points to the authors' companion work on run-time
// thermal estimation & tracking on MPSoCs (Sarma et al., DATE'14) as part
// of the same sensing ecosystem. This module provides the corresponding
// substrate: a first-order RC node per core (junction-to-ambient resistance
// scaling inversely with core area, a common time constant) plus nearest-
// neighbour lateral coupling, driven by the simulator's per-core power.
// It enables the thermal extension experiments (bench/ext_thermal) and
// thermally-motivated custom objectives.
#pragma once

#include <vector>

#include "arch/platform.h"
#include "common/types.h"

namespace sb::power {

class ThermalModel {
 public:
  struct Config {
    double ambient_c = 45.0;
    /// Junction-to-ambient resistance coefficient: R_j = coeff / area_mm².
    /// Default puts the Huge core at ~85 °C under its 8.62 W peak.
    double r_coeff_c_mm2_per_w = 55.0;
    /// RC time constant of a core node.
    double tau_s = 0.05;
    /// Fraction of each neighbour's temperature rise that couples in
    /// laterally (cores are coupled in core-id order, a 1-D floorplan).
    double neighbor_coupling = 0.15;
  };

  explicit ThermalModel(const arch::Platform& platform)
      : ThermalModel(platform, Config()) {}
  ThermalModel(const arch::Platform& platform, Config cfg);

  /// Advances all core temperatures by `dt` given each core's average
  /// power over that interval.
  void step(const std::vector<double>& core_power_w, TimeNs dt);

  double temperature_c(CoreId c) const;
  double max_temperature_c() const;
  const std::vector<double>& temperatures_c() const { return temp_c_; }

  /// Steady-state temperature of core `c` at constant `power_w`,
  /// neglecting lateral coupling (closed-form check for tests).
  double steady_state_c(CoreId c, double power_w) const;

  /// Resets every node to ambient.
  void reset();

  const Config& config() const { return cfg_; }

 private:
  const arch::Platform& platform_;
  Config cfg_;
  std::vector<double> temp_c_;
  std::vector<double> r_ja_;  // per-core junction-to-ambient resistance
};

}  // namespace sb::power
