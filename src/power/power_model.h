// McPAT-substitute power model.
//
// Per core type the model splits the Table 2 peak power into leakage
// (∝ area · Vdd³, the 22 nm-ish scaling that keeps a Small core's leakage
// below its total budget) and a dynamic component C_eff · V² · f scaled by
// pipeline activity. C_eff is *calibrated*: it is solved so that the core
// dissipates exactly its Table 2 peak power when running the peak probe
// workload — the same way the paper's numbers were produced by calibrated
// McPAT runs. Dynamic power is linear in IPC, which is precisely the
// relationship Eq. 9 of the paper exploits.
#pragma once

#include <vector>

#include "arch/dvfs.h"
#include "arch/platform.h"
#include "perf/perf_model.h"

namespace sb::power {

class PowerModel {
 public:
  struct Config {
    /// Leakage density: W per mm² per V³.
    double leak_coeff = 0.05;
    /// Fraction of peak dynamic power burned by clocks/fetch even at IPC→0
    /// while the core is running something.
    double base_activity = 0.30;
    /// Sleep-state (power-gated, retention) leakage fraction.
    double sleep_leak_fraction = 0.30;
    /// Idle-but-awake dynamic fraction (clock gated, no thread).
    double idle_dyn_fraction = 0.05;
  };

  PowerModel(const arch::Platform& platform, const perf::PerfModel& perf)
      : PowerModel(platform, perf, Config()) {}
  PowerModel(const arch::Platform& platform, const perf::PerfModel& perf,
             Config cfg);

  /// Average power while executing a thread at `ipc` with dynamic-activity
  /// scale `activity` (WorkloadProfile::activity) on core type `t`.
  double busy_power_w(CoreTypeId t, double ipc, double activity) const;

  /// Same, at a non-nominal DVFS operating point: dynamic power scales with
  /// V²f and leakage with V³ relative to the type's nominal point.
  double busy_power_at(CoreTypeId t, double ipc, double activity,
                       const arch::OperatingPoint& opp) const;

  /// Sleep power at a DVFS point (retention leakage scales with V³).
  double sleep_power_at(CoreTypeId t, const arch::OperatingPoint& opp) const;

  /// Same, addressed by physical core.
  double busy_power_core_w(CoreId c, double ipc, double activity) const;

  /// Awake with an empty pipeline (between wakeup and dispatch).
  double idle_power_w(CoreTypeId t) const;

  /// Quiescent state: entered when a core has no threads to execute.
  double sleep_power_w(CoreTypeId t) const;

  double leakage_w(CoreTypeId t) const;
  double dynamic_peak_w(CoreTypeId t) const;
  double peak_ipc(CoreTypeId t) const;

  /// Sanity: reproduces Table 2 peak power at the calibration point.
  double peak_power_w(CoreTypeId t) const;

  const Config& config() const { return cfg_; }
  const arch::Platform& platform() const { return platform_; }

 private:
  struct Calib {
    double leak_w = 0;
    double dyn_peak_w = 0;
    double peak_ipc = 1;
    double probe_activity = 1;
  };

  const Calib& calib(CoreTypeId t) const {
    return calib_.at(static_cast<std::size_t>(t));
  }

  const arch::Platform& platform_;
  Config cfg_;
  std::vector<Calib> calib_;
};

}  // namespace sb::power
