#include "power/sensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sb::power {

PowerSensorBank::PowerSensorBank(const EnergyMeter& meter, Config cfg, Rng rng)
    : meter_(meter),
      cfg_(cfg),
      rng_(rng),
      last_total_j_(static_cast<std::size_t>(meter.num_cores()), 0.0) {
  if (cfg_.relative_noise_sigma < 0 || cfg_.quantum_joules < 0) {
    throw std::invalid_argument("PowerSensorBank: bad config");
  }
}

double PowerSensorBank::read_joules(CoreId c) {
  if (c < 0 || static_cast<std::size_t>(c) >= last_total_j_.size()) {
    throw std::out_of_range("PowerSensorBank: bad core");
  }
  const double total = meter_.total_joules(c);
  double delta = total - last_total_j_[static_cast<std::size_t>(c)];
  last_total_j_[static_cast<std::size_t>(c)] = total;

  delta *= 1.0 + cfg_.relative_noise_sigma * rng_.gaussian();
  delta = std::max(0.0, delta);
  if (cfg_.quantum_joules > 0) {
    delta = std::round(delta / cfg_.quantum_joules) * cfg_.quantum_joules;
  }
  if (fault_hook_) {
    delta = std::max(0.0, fault_hook_->transform_energy(c, delta));
  }
  return delta;
}

double PowerSensorBank::read_avg_power_w(CoreId c, TimeNs window) {
  if (window <= 0) return 0.0;
  return read_joules(c) / to_seconds(window);
}

}  // namespace sb::power
