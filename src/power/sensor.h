// Noisy per-core power sensors.
//
// The paper's platform (and the Odroid-XU3 board it cites in §6.4) exposes
// per-core power sensors; SmartBalance reads them each epoch. Real sensors
// quantize and drift, so the closed loop must tolerate error — we model
// multiplicative gaussian noise plus ADC-style quantization on the energy
// delta read out per epoch.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "power/energy_meter.h"

namespace sb::power {

/// Fault hook on the sensor readout path: transforms a raw per-core energy
/// delta into what a degraded rail actually reports (stuck-at repeats,
/// noise bursts, dead zeros). Installed by the fault-injection framework;
/// absent by default.
class SensorFaultHook {
 public:
  virtual ~SensorFaultHook() = default;
  virtual double transform_energy(CoreId core, double joules) = 0;
};

class PowerSensorBank {
 public:
  struct Config {
    double relative_noise_sigma = 0.01;  // 1% multiplicative gaussian
    double quantum_joules = 1e-6;        // 1 µJ ADC step; 0 disables
  };

  PowerSensorBank(const EnergyMeter& meter, Config cfg, Rng rng);

  /// Energy consumed by core `c` since the previous read of core `c`
  /// (noisy, quantized). First read reports energy since construction.
  double read_joules(CoreId c);

  /// Average power over the window since the previous read, given its
  /// duration. Returns 0 for an empty window.
  double read_avg_power_w(CoreId c, TimeNs window);

  const Config& config() const { return cfg_; }

  /// Installs (or clears, with nullptr) a readout fault hook. Not owned.
  void set_fault_hook(SensorFaultHook* hook) { fault_hook_ = hook; }
  SensorFaultHook* fault_hook() const { return fault_hook_; }

 private:
  const EnergyMeter& meter_;
  Config cfg_;
  Rng rng_;
  std::vector<double> last_total_j_;
  SensorFaultHook* fault_hook_ = nullptr;
};

}  // namespace sb::power
