// Per-core energy accounting (ground truth).
//
// The simulator charges every nanosecond of every core to exactly one of
// three states — busy (running a thread), idle (awake, empty pipeline) or
// sleep (quiescent) — so Σ state-durations equals simulated time per core
// and the experiment's global Joule count is conserved.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace sb::power {

class EnergyMeter {
 public:
  explicit EnergyMeter(int num_cores);

  /// Charges `power_w` over `duration` to core `c`'s busy bucket.
  void add_busy(CoreId c, double power_w, TimeNs duration);
  void add_idle(CoreId c, double power_w, TimeNs duration);
  void add_sleep(CoreId c, double power_w, TimeNs duration);

  double busy_joules(CoreId c) const { return at(c).busy_j; }
  double idle_joules(CoreId c) const { return at(c).idle_j; }
  double sleep_joules(CoreId c) const { return at(c).sleep_j; }
  double total_joules(CoreId c) const {
    const auto& e = at(c);
    return e.busy_j + e.idle_j + e.sleep_j;
  }
  double total_joules() const;

  TimeNs busy_time(CoreId c) const { return at(c).busy_ns; }
  TimeNs idle_time(CoreId c) const { return at(c).idle_ns; }
  TimeNs sleep_time(CoreId c) const { return at(c).sleep_ns; }

  int num_cores() const { return static_cast<int>(cores_.size()); }

  void reset();

 private:
  struct PerCore {
    double busy_j = 0, idle_j = 0, sleep_j = 0;
    TimeNs busy_ns = 0, idle_ns = 0, sleep_ns = 0;
  };

  const PerCore& at(CoreId c) const;
  PerCore& at(CoreId c);

  std::vector<PerCore> cores_;
};

}  // namespace sb::power
