#include "power/energy_meter.h"

#include <stdexcept>

namespace sb::power {

EnergyMeter::EnergyMeter(int num_cores)
    : cores_(static_cast<std::size_t>(num_cores)) {
  if (num_cores <= 0) throw std::invalid_argument("EnergyMeter: no cores");
}

const EnergyMeter::PerCore& EnergyMeter::at(CoreId c) const {
  if (c < 0 || static_cast<std::size_t>(c) >= cores_.size()) {
    throw std::out_of_range("EnergyMeter: bad core");
  }
  return cores_[static_cast<std::size_t>(c)];
}

EnergyMeter::PerCore& EnergyMeter::at(CoreId c) {
  return const_cast<PerCore&>(static_cast<const EnergyMeter*>(this)->at(c));
}

void EnergyMeter::add_busy(CoreId c, double power_w, TimeNs duration) {
  if (duration < 0 || power_w < 0) throw std::invalid_argument("negative charge");
  at(c).busy_j += power_w * to_seconds(duration);
  at(c).busy_ns += duration;
}

void EnergyMeter::add_idle(CoreId c, double power_w, TimeNs duration) {
  if (duration < 0 || power_w < 0) throw std::invalid_argument("negative charge");
  at(c).idle_j += power_w * to_seconds(duration);
  at(c).idle_ns += duration;
}

void EnergyMeter::add_sleep(CoreId c, double power_w, TimeNs duration) {
  if (duration < 0 || power_w < 0) throw std::invalid_argument("negative charge");
  at(c).sleep_j += power_w * to_seconds(duration);
  at(c).sleep_ns += duration;
}

double EnergyMeter::total_joules() const {
  double t = 0;
  for (const auto& c : cores_) t += c.busy_j + c.idle_j + c.sleep_j;
  return t;
}

void EnergyMeter::reset() {
  for (auto& c : cores_) c = PerCore{};
}

}  // namespace sb::power
