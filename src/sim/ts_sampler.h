// TimeseriesSampler: snapshots the node-level signal set into the sink's
// TimeseriesRecorder once per --obs-window of simulated time.
//
// Lives in the sim layer (not obs) because the signal set reads the kernel,
// the platform and the policy — layers obs must not depend on. The sampler
// is strictly read-only with respect to the simulation: it reads settled
// kernel state, records into obs buffers, and draws no randomness, so a
// run with sampling enabled stays bit-identical to one without.
//
// Signal names are interned once at construction and every tick() records
// into pre-grown buffers — the sampler adds zero allocations to the epoch
// path (gated by the epoch_pass_tsdb_on section of BENCH_obs.json).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sb::arch {
class Platform;
}
namespace sb::os {
class Kernel;
}
namespace sb::obs {
class Sink;
class Histogram;
}

namespace sb::sim {

class TimeseriesSampler {
 public:
  /// Requires sink.timeseries() != nullptr; interns the signal set.
  TimeseriesSampler(const arch::Platform& platform, obs::Sink& sink);

  /// Records one frame at simulated time `t_ns`. `window` is the elapsed
  /// simulated time since the previous tick (rate signals are deltas over
  /// it); a non-positive window is ignored.
  void tick(const os::Kernel& kernel, TimeNs t_ns, TimeNs window);

 private:
  const arch::Platform& platform_;
  obs::Sink& sink_;
  const obs::Histogram* wake_hist_ = nullptr;

  std::uint32_t je_ = 0;            // cumulative instructions per joule
  std::uint32_t je_w_ = 0;          // windowed instructions per joule
  std::uint32_t gips_ = 0;          // window-rate giga-instructions/s
  std::uint32_t watts_ = 0;         // window-rate power draw
  std::uint32_t migrations_ = 0;    // cumulative migration count
  std::uint32_t degraded_ = 0;      // policy in vanilla-fallback mode (0/1)
  std::uint32_t drift_ = 0;         // predictor drift detector active (0/1)
  std::uint32_t accept_ = 0;        // SA accepted-worse rate, last pass
  std::uint32_t p99_wake_us_ = 0;   // wake-to-run tail estimate
  std::vector<std::uint32_t> type_gips_;   // gips.<type name>
  std::vector<std::uint32_t> type_watts_;  // watts.<type name>

  double prev_insts_ = 0;
  double prev_joules_ = 0;
  std::vector<double> prev_type_insts_;
  std::vector<double> prev_type_joules_;
};

}  // namespace sb::sim
