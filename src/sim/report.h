// Machine-readable result reports.
//
// Emits a SimulationResult as JSON (dependency-free writer) so external
// tooling — plotting scripts, regression dashboards, sweep drivers — can
// consume runs without scraping the human-readable tables. `sbsim --json`
// uses this.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/metrics.h"

namespace sb::sim {

/// Serializes the full result (globals, per-core, per-thread, balancer
/// overheads, DVFS/thermal/latency statistics) as a single JSON object.
void write_json(std::ostream& os, const SimulationResult& r);
std::string to_json(const SimulationResult& r);

/// Escapes a string for embedding in JSON (quotes, control characters).
std::string json_escape(const std::string& s);

}  // namespace sb::sim
