// Experiment helpers: run the same workload under different balancing
// policies and compare energy efficiency — the structure of every figure in
// the paper's evaluation.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/smart_balance.h"
#include "os/load_balancer.h"
#include "sim/simulation.h"

namespace sb::sim {

/// Builds a policy for a concrete simulation (called after the Simulation's
/// models exist, so SmartBalance can be trained against them).
using BalancerFactory = std::function<std::unique_ptr<os::LoadBalancer>(
    const Simulation& sim)>;

/// Populates a Simulation with its workload (threads must be identical
/// across policies; the callable is invoked once per policy run).
using WorkloadBuilder = std::function<void(Simulation& sim)>;

BalancerFactory vanilla_factory();
BalancerFactory gts_factory(CoreTypeId big_type = 0);

/// SmartBalance with a predictor trained (and cached per platform shape)
/// from the default benchmark library profiles. By default the policy
/// optimizes global platform IPS/W (GlobalEfficiencyObjective); pass
/// paper_eq11_objective = true to use Eq. 11's per-core ratio sum verbatim.
BalancerFactory smartbalance_factory(
    core::SmartBalanceConfig cfg = core::SmartBalanceConfig(),
    bool paper_eq11_objective = false);

/// SmartBalance with an explicit (e.g. loaded-from-disk) predictor model
/// instead of training one.
BalancerFactory smartbalance_factory_with_model(
    core::PredictorModel model,
    core::SmartBalanceConfig cfg = core::SmartBalanceConfig(),
    bool paper_eq11_objective = false);

/// Trains the default predictor model for a simulation's platform/models.
/// With `dvfs_aware`, profiling samples a grid of frequency ratios so the
/// FR feature stays calibrated under DVFS governors.
core::PredictorModel train_default_model(const perf::PerfModel& perf,
                                         const power::PowerModel& power,
                                         bool dvfs_aware = false);

/// Seed schedule for replica r of an experiment with base seed `base`.
/// Golden-ratio stride keeps replica seeds well separated; the published
/// CSV golden figures depend on this exact schedule, so it is pinned by a
/// regression test and shared by the sequential and parallel paths.
constexpr std::uint64_t replica_seed(std::uint64_t base, int r) {
  return base + static_cast<std::uint64_t>(r) * 0x9e3779b9ULL;
}

/// Replicated run: executes `workload` under `policy` for `replicas` seeds
/// (replica_seed(cfg.seed, r)) and returns per-replica results (for mean ±
/// stddev reporting). Runs replicas in parallel via ExperimentRunner;
/// results are bit-identical to the sequential path.
std::vector<SimulationResult> run_replicated(
    const arch::Platform& platform, SimulationConfig cfg,
    const WorkloadBuilder& workload, const BalancerFactory& policy,
    int replicas);

struct PolicyRun {
  std::string policy;
  SimulationResult result;
};

/// Runs `workload` once per policy on identical platform/seed/duration.
/// Policies run in parallel via ExperimentRunner; results are returned in
/// `policies` order and are bit-identical to the sequential path.
std::vector<PolicyRun> compare_policies(
    const arch::Platform& platform, const SimulationConfig& cfg,
    const WorkloadBuilder& workload,
    const std::vector<std::pair<std::string, BalancerFactory>>& policies);

}  // namespace sb::sim
