// Experiment helpers: run the same workload under different balancing
// policies and compare energy efficiency — the structure of every figure in
// the paper's evaluation.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/smart_balance.h"
#include "os/load_balancer.h"
#include "sim/simulation.h"

namespace sb::sim {

/// Builds a policy for a concrete simulation (called after the Simulation's
/// models exist, so SmartBalance can be trained against them).
using BalancerFactory = std::function<std::unique_ptr<os::LoadBalancer>(
    const Simulation& sim)>;

/// Populates a Simulation with its workload (threads must be identical
/// across policies; the callable is invoked once per policy run).
using WorkloadBuilder = std::function<void(Simulation& sim)>;

BalancerFactory vanilla_factory();
BalancerFactory gts_factory(CoreTypeId big_type = 0);

/// SmartBalance with a predictor trained (and cached per platform shape)
/// from the default benchmark library profiles. By default the policy
/// optimizes global platform IPS/W (GlobalEfficiencyObjective); pass
/// paper_eq11_objective = true to use Eq. 11's per-core ratio sum verbatim.
BalancerFactory smartbalance_factory(
    core::SmartBalanceConfig cfg = core::SmartBalanceConfig(),
    bool paper_eq11_objective = false);

/// SmartBalance with an explicit (e.g. loaded-from-disk) predictor model
/// instead of training one.
BalancerFactory smartbalance_factory_with_model(
    core::PredictorModel model,
    core::SmartBalanceConfig cfg = core::SmartBalanceConfig(),
    bool paper_eq11_objective = false);

/// Trains the default predictor model for a simulation's platform/models.
/// With `dvfs_aware`, profiling samples a grid of frequency ratios so the
/// FR feature stays calibrated under DVFS governors.
core::PredictorModel train_default_model(const perf::PerfModel& perf,
                                         const power::PowerModel& power,
                                         bool dvfs_aware = false);

/// Replicated run: executes `workload` under `policy` for `replicas` seeds
/// and returns per-replica results (for mean ± stddev reporting).
std::vector<SimulationResult> run_replicated(
    const arch::Platform& platform, SimulationConfig cfg,
    const WorkloadBuilder& workload, const BalancerFactory& policy,
    int replicas);

struct PolicyRun {
  std::string policy;
  SimulationResult result;
};

/// Runs `workload` once per policy on identical platform/seed/duration.
std::vector<PolicyRun> compare_policies(
    const arch::Platform& platform, const SimulationConfig& cfg,
    const WorkloadBuilder& workload,
    const std::vector<std::pair<std::string, BalancerFactory>>& policies);

}  // namespace sb::sim
