#include "sim/simulation.h"

#include <algorithm>

#include <stdexcept>

#include "core/smart_balance.h"
#include "obs/audit_writer.h"

namespace sb::sim {

Simulation::Simulation(const arch::Platform& platform, SimulationConfig cfg)
    : platform_(platform), cfg_(cfg), spawn_rng_(cfg.seed) {
  platform_.validate();
  auto kcfg = cfg_.kernel;
  kcfg.seed = cfg_.seed ^ 0x6b65726eULL;  // "kern"
  perf_ = std::make_unique<perf::PerfModel>(platform_);
  power_ = std::make_unique<power::PowerModel>(platform_, *perf_);
  kernel_ = std::make_unique<os::Kernel>(platform_, *perf_, *power_, kcfg);
  if (!cfg_.chrome_trace_path.empty()) cfg_.obs.trace = true;
  if (!cfg_.audit_path.empty()) cfg_.obs.audit = true;
  if (!cfg_.timeseries_path.empty()) cfg_.obs.timeseries.enabled = true;
  if (cfg_.obs.enabled()) {
    obs_ = std::make_unique<obs::Sink>(cfg_.obs);
    kernel_->set_obs(obs_.get());
  }
}

void Simulation::add_benchmark(const std::string& name, int threads) {
  (void)admit_benchmark(name, threads, 0);
}

std::vector<ThreadId> Simulation::admit_benchmark(
    const std::string& name, int threads,
    std::uint64_t per_thread_instructions) {
  auto bench = workload::BenchmarkLibrary::get(name);
  if (per_thread_instructions > 0) {
    bench.per_thread_instructions = per_thread_instructions;
  }
  std::vector<ThreadId> tids;
  tids.reserve(static_cast<std::size_t>(threads));
  for (auto& tb : bench.spawn(threads, spawn_rng_)) {
    tids.push_back(kernel_->fork(std::move(tb)));
  }
  return tids;
}

void Simulation::add_mix(int mix_id, int threads_per_member) {
  for (auto& tb :
       workload::spawn_mix(mix_id, threads_per_member, spawn_rng_)) {
    kernel_->fork(std::move(tb));
  }
}

void Simulation::add_thread(workload::ThreadBehavior behavior) {
  kernel_->fork(std::move(behavior));
}

void Simulation::add_benchmark_at(TimeNs at, const std::string& name,
                                  int threads) {
  if (ran_) throw std::logic_error("add_benchmark_at: already running");
  // Validate the name eagerly so failures surface at setup time.
  (void)workload::BenchmarkLibrary::get(name);
  arrivals_.push_back({at, name, threads, {}});
}

void Simulation::add_replay(const workload::ReplaySchedule& schedule) {
  if (ran_) throw std::logic_error("add_replay: already running");
  for (const auto& rt : schedule.tasks) {
    if (rt.spawn_at <= 0) {
      kernel_->fork(rt.behavior);
    } else {
      arrivals_.push_back({rt.spawn_at, {}, 0, {rt.behavior}});
    }
  }
}

void Simulation::apply_arrivals() {
  for (auto it = arrivals_.begin(); it != arrivals_.end();) {
    if (it->at <= kernel_->now()) {
      if (!it->behaviors.empty()) {
        for (const auto& tb : it->behaviors) kernel_->fork(tb);
      } else {
        add_benchmark(it->benchmark, it->threads);
      }
      it = arrivals_.erase(it);
    } else {
      ++it;
    }
  }
}

void Simulation::set_balancer(std::unique_ptr<os::LoadBalancer> balancer) {
  kernel_->set_balancer(std::move(balancer));
}

void Simulation::prepare_run() {
  sampled_ = cfg_.thermal_enabled || !cfg_.trace_path.empty();
  if (cfg_.thermal_enabled) {
    thermal_ =
        std::make_unique<power::ThermalModel>(platform_, cfg_.thermal);
    max_temp_seen_c_ = thermal_->max_temperature_c();
  }
  if (!cfg_.trace_path.empty()) {
    trace_ = std::make_unique<CsvWriter>(
        cfg_.trace_path,
        std::vector<std::string>{"time_ms", "core", "power_w", "temp_c",
                                 "nr_running", "freq_mhz"});
  }
  if (sampled_) {
    prev_core_joules_.assign(static_cast<std::size_t>(platform_.num_cores()),
                             0.0);
  }
  if (obs_ && obs_->timeseries() != nullptr) {
    ts_sampler_ = std::make_unique<TimeseriesSampler>(platform_, *obs_);
    ts_last_ = kernel_->now();
    ts_next_ = ts_last_ + obs_->timeseries()->window();
  }
}

// Runs the sampler for every window boundary the last step crossed (the
// stepping loops cap chunks at ts_next_, so this fires at exact boundaries).
void Simulation::ts_tick() {
  if (!ts_sampler_) return;
  while (kernel_->now() >= ts_next_) {
    ts_sampler_->tick(*kernel_, ts_next_, ts_next_ - ts_last_);
    ts_last_ = ts_next_;
    ts_next_ += obs_->timeseries()->window();
  }
}

SimulationResult Simulation::finalize_run() {
  SimulationResult r = snapshot();
  if (!cfg_.chrome_trace_path.empty() && r.obs) {
    obs::write_chrome_trace_file(cfg_.chrome_trace_path, {r.obs.get()});
  }
  if (!cfg_.audit_path.empty() && r.obs) {
    obs::write_audit_file(cfg_.audit_path, {r.obs.get()});
  }
  if (!cfg_.timeseries_path.empty() && r.obs) {
    obs::write_timeseries_file(cfg_.timeseries_path, {r.obs.get()});
  }
  return r;
}

SimulationResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run called twice");
  ran_ = true;
  prepare_run();

  if (cfg_.run_to_completion || sampled_ || ts_sampler_ != nullptr ||
      !arrivals_.empty()) {
    // Advance in steps: fine-grained when sampling, epoch-sized otherwise.
    const TimeNs step = sampled_ ? cfg_.sample_interval : milliseconds(20);
    while (kernel_->now() < cfg_.duration &&
           !(cfg_.run_to_completion && kernel_->all_exited() &&
             arrivals_.empty())) {
      TimeNs chunk = std::min<TimeNs>(step, cfg_.duration - kernel_->now());
      if (ts_sampler_) chunk = std::min(chunk, ts_next_ - kernel_->now());
      for (const Arrival& a : arrivals_) {
        if (a.at > kernel_->now()) {
          chunk = std::min(chunk, a.at - kernel_->now());
        }
      }
      kernel_->run_for(chunk);
      apply_arrivals();
      if (sampled_) sample_tick(chunk);
      ts_tick();
    }
  } else {
    kernel_->run_until(cfg_.duration);
  }
  return finalize_run();
}

void Simulation::begin_service() {
  if (ran_) throw std::logic_error("begin_service: simulation already run");
  ran_ = true;
  service_ = true;
  prepare_run();
}

void Simulation::advance_service(TimeNs dt) {
  if (!service_) throw std::logic_error("advance_service: not in service mode");
  const TimeNs until = kernel_->now() + dt;
  while (kernel_->now() < until) {
    TimeNs chunk = until - kernel_->now();
    if (sampled_) chunk = std::min(chunk, cfg_.sample_interval);
    if (ts_sampler_) chunk = std::min(chunk, ts_next_ - kernel_->now());
    for (const Arrival& a : arrivals_) {
      if (a.at > kernel_->now()) {
        chunk = std::min(chunk, a.at - kernel_->now());
      }
    }
    kernel_->run_for(chunk);
    apply_arrivals();
    if (sampled_) sample_tick(chunk);
    ts_tick();
  }
}

SimulationResult Simulation::finish_service() {
  if (!service_) throw std::logic_error("finish_service: not in service mode");
  service_ = false;
  return finalize_run();
}

void Simulation::sample_tick(TimeNs window) {
  if (window <= 0) return;
  std::vector<double> power(static_cast<std::size_t>(platform_.num_cores()));
  for (CoreId c = 0; c < platform_.num_cores(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    const double joules = kernel_->energy().total_joules(c);
    power[i] = (joules - prev_core_joules_[i]) / to_seconds(window);
    prev_core_joules_[i] = joules;
  }
  if (thermal_) {
    thermal_->step(power, window);
    max_temp_seen_c_ = std::max(max_temp_seen_c_, thermal_->max_temperature_c());
  }
  if (trace_) {
    for (CoreId c = 0; c < platform_.num_cores(); ++c) {
      trace_->row(std::vector<double>{
          to_millis(kernel_->now()), static_cast<double>(c),
          power[static_cast<std::size_t>(c)],
          thermal_ ? thermal_->temperature_c(c) : 0.0,
          static_cast<double>(kernel_->core_nr_running(c)),
          kernel_->core_opp(c).freq_mhz});
    }
  }
}

SimulationResult Simulation::snapshot() const {
  SimulationResult r;
  r.label = cfg_.label;
  r.policy = kernel_->balancer() ? kernel_->balancer()->name() : "none";
  r.simulated = kernel_->now();
  r.instructions = kernel_->total_instructions();
  r.energy_j = kernel_->energy().total_joules();
  const double secs = to_seconds(r.simulated);
  r.ips = secs > 0 ? static_cast<double>(r.instructions) / secs : 0;
  r.watts = secs > 0 ? r.energy_j / secs : 0;
  r.ips_per_watt =
      r.energy_j > 0 ? static_cast<double>(r.instructions) / r.energy_j : 0;
  r.migrations = kernel_->total_migrations();
  r.context_switches = kernel_->context_switches();
  r.balance_passes = kernel_->balance_passes();

  for (CoreId c = 0; c < platform_.num_cores(); ++c) {
    CoreMetrics cm;
    cm.id = c;
    cm.type_name = platform_.params_of(c).name;
    cm.instructions = kernel_->core_instructions(c);
    cm.energy_j = kernel_->energy().total_joules(c);
    cm.busy_ns = kernel_->energy().busy_time(c);
    cm.sleep_ns = kernel_->energy().sleep_time(c);
    cm.avg_power_w = secs > 0 ? cm.energy_j / secs : 0;
    cm.ips = secs > 0 ? static_cast<double>(cm.instructions) / secs : 0;
    cm.ips_per_watt = cm.energy_j > 0
                          ? static_cast<double>(cm.instructions) / cm.energy_j
                          : 0;
    cm.utilization = r.simulated > 0 ? static_cast<double>(cm.busy_ns) /
                                           static_cast<double>(r.simulated)
                                     : 0;
    r.cores.push_back(cm);
  }

  for (std::size_t i = 0; i < kernel_->num_tasks(); ++i) {
    const auto& t = kernel_->task(static_cast<ThreadId>(i));
    ThreadMetrics tm;
    tm.tid = t.tid;
    tm.name = t.name;
    tm.instructions = t.lifetime_insts;
    tm.energy_j = t.lifetime_energy_j;
    tm.runtime = t.lifetime_runtime;
    tm.migrations = t.migrations;
    tm.completed = t.state == os::TaskState::Exited;
    tm.completion_time = t.exited_at;
    if (t.dispatches > 0) {
      tm.avg_wait_us = static_cast<double>(t.total_wait) /
                       static_cast<double>(t.dispatches) / 1e3;
    }
    tm.max_wait_us = static_cast<double>(t.max_wait) / 1e3;
    r.threads.push_back(tm);
  }
  {
    double wait_sum = 0;
    std::uint64_t dispatches = 0;
    for (const auto& tm : r.threads) {
      r.max_sched_latency_us = std::max(r.max_sched_latency_us, tm.max_wait_us);
    }
    for (std::size_t i = 0; i < kernel_->num_tasks(); ++i) {
      const auto& t = kernel_->task(static_cast<ThreadId>(i));
      wait_sum += static_cast<double>(t.total_wait);
      dispatches += t.dispatches;
    }
    if (dispatches > 0) {
      r.avg_sched_latency_us = wait_sum / static_cast<double>(dispatches) / 1e3;
    }
  }

  {
    const auto& waits = kernel_->wake_latencies();
    std::vector<std::uint64_t> sample;
    sample.reserve(waits.size());
    for (TimeNs w : waits) sample.push_back(static_cast<std::uint64_t>(w));
    r.wake_to_run = tail_of(sample);
  }

  r.dvfs_transitions = kernel_->dvfs_transitions();
  if (thermal_) {
    r.max_temp_c = max_temp_seen_c_;
    r.final_temp_c = thermal_->temperatures_c();
  }

  if (const auto* sb = dynamic_cast<const core::SmartBalancePolicy*>(
          kernel_->balancer())) {
    r.avg_sense_us = sb->sense_ns().mean() / 1e3;
    r.avg_predict_us = sb->predict_ns().mean() / 1e3;
    r.avg_optimize_us = sb->optimize_ns().mean() / 1e3;
    r.avg_migrations_per_pass = sb->migrations_per_pass().mean();
    if (sb->injector()) {
      r.faults_injected = sb->injector()->stats().total();
    }
    r.faults_detected = sb->faults_detected();
    r.faults_absorbed = sb->faults_absorbed();
    r.degraded_passes = sb->degraded_passes();
    if (sb->defenses_enabled()) {
      r.healthy_fraction = sb->sensing_health().healthy_fraction;
    }
    if (const auto* adapter = sb->adapter()) {
      r.adapt_joins = adapter->joins();
      r.adapt_rls_updates = adapter->rls_updates();
      r.adapt_cov_resets = adapter->cov_resets();
    }
    if (const auto* sharded = sb->sharded()) {
      r.shards = sharded->partition().num_shards();
      r.shard_passes = sharded->shard_passes_total();
      r.shard_exchange_moves = sharded->exchange_moves_total();
      r.avg_exchange_us = sharded->exchange_ns().mean() / 1e3;
    }
  }
  r.migrations_rejected = kernel_->migrations_rejected();
  r.migrations_deferred = kernel_->migrations_deferred();
  if (obs_) {
    r.obs = std::make_shared<obs::RunObs>(obs_->snapshot(cfg_.label));
  }
  return r;
}

}  // namespace sb::sim
