// Parallel deterministic experiment runner.
//
// Every figure in the paper's evaluation is a sweep over (workload × policy
// × replica-seed) configurations, and each configuration is an independent
// Simulation. ExperimentRunner executes a batch of such configurations
// across a pool of worker threads and returns results in submission order.
//
// Determinism is a hard guarantee: each spec's Simulation derives all of
// its randomness from the spec's own cfg.seed (every stochastic component
// owns a private Rng — see common/rng.h), so a batch produces bit-identical
// SimulationResults regardless of worker count or completion order. The
// only cross-spec shared state in the library is the predictor-model cache
// inside smartbalance_factory (mutex-guarded, and training is deterministic
// per platform shape) and the global log level (atomic; log lines are
// emitted under a mutex so they cannot interleave).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace sb::sim {

/// One unit of work: a fully-specified simulation. The platform is held by
/// value so a spec stays valid independently of its builder's lifetime.
struct ExperimentSpec {
  arch::Platform platform;
  SimulationConfig cfg;
  WorkloadBuilder workload;
  BalancerFactory policy;
  /// Experiment label, surfaced as ExperimentResult::label.
  std::string label;
  /// Non-empty: stamped onto SimulationResult::policy (compare_policies
  /// semantics).
  std::string policy_name;
};

/// Outcome of one spec. A spec that throws reports the exception message in
/// `error` without poisoning the rest of the batch.
struct ExperimentResult {
  std::string label;
  SimulationResult result;
  /// Host wall-clock of this run, milliseconds.
  double wall_ms = 0;
  /// Empty on success; the exception's what() otherwise.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Aggregate accounting for one batch.
struct BatchSummary {
  std::size_t total = 0;
  std::size_t failed = 0;
  /// Worker threads actually used.
  int threads = 0;
  /// End-to-end host wall-clock of the batch, milliseconds.
  double wall_ms = 0;
  /// Sum of per-run wall-clocks (the sequential-equivalent cost); the ratio
  /// cpu_ms / wall_ms approximates the achieved parallel speedup.
  double cpu_ms = 0;

  double speedup() const { return wall_ms > 0 ? cpu_ms / wall_ms : 0; }
};

struct BatchResult {
  /// One entry per spec, in submission order.
  std::vector<ExperimentResult> runs;
  BatchSummary summary;
};

/// Thread-pool executor for batches of ExperimentSpecs.
///
/// Worker count resolution, in priority order:
///   1. Config::threads, when > 0;
///   2. the SB_JOBS environment variable, when set to an integer > 0;
///   3. std::thread::hardware_concurrency() (at least 1).
class ExperimentRunner {
 public:
  struct Config {
    /// 0 = resolve from SB_JOBS / hardware concurrency.
    int threads = 0;
  };

  ExperimentRunner();
  explicit ExperimentRunner(Config cfg);

  /// The resolved worker count this runner will use.
  int threads() const { return threads_; }

  /// SB_JOBS if set and positive, otherwise hardware_concurrency() (>= 1).
  static int default_threads();

  /// Executes the batch; results come back in submission order with
  /// per-run timing. Never throws for spec failures (see
  /// ExperimentResult::error); an empty batch returns an empty result.
  BatchResult run(const std::vector<ExperimentSpec>& specs) const;

 private:
  int threads_ = 1;
};

/// Full cross-product sweep (workload × policy × replica) executed through
/// `runner`. Replica r of every configuration runs with
/// replica_seed(cfg.seed, r); labels are "<workload>/<policy>" (with "#r"
/// appended when replicas > 1). Order: workload-major, then policy, then
/// replica — matching the nested loops of the sequential bench harnesses.
BatchResult run_sweep(
    const arch::Platform& platform, const SimulationConfig& cfg,
    const std::vector<std::pair<std::string, WorkloadBuilder>>& workloads,
    const std::vector<std::pair<std::string, BalancerFactory>>& policies,
    int replicas = 1, const ExperimentRunner& runner = ExperimentRunner());

}  // namespace sb::sim
