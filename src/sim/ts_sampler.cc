#include "sim/ts_sampler.h"

#include <string>

#include "arch/platform.h"
#include "core/smart_balance.h"
#include "obs/sink.h"
#include "os/kernel.h"

namespace sb::sim {

TimeseriesSampler::TimeseriesSampler(const arch::Platform& platform,
                                     obs::Sink& sink)
    : platform_(platform), sink_(sink) {
  obs::TimeseriesRecorder& rec = *sink_.timeseries();
  je_ = rec.intern("je");
  je_w_ = rec.intern("je_w");
  gips_ = rec.intern("gips");
  watts_ = rec.intern("watts");
  migrations_ = rec.intern("migrations");
  degraded_ = rec.intern("degraded");
  drift_ = rec.intern("drift");
  accept_ = rec.intern("sa_accept_rate");
  p99_wake_us_ = rec.intern("p99_wake_us");
  const auto ntypes = static_cast<std::size_t>(platform_.num_types());
  type_gips_.reserve(ntypes);
  type_watts_.reserve(ntypes);
  for (std::size_t t = 0; t < ntypes; ++t) {
    const std::string& name =
        platform_.params_of_type(static_cast<CoreTypeId>(t)).name;
    type_gips_.push_back(rec.intern("gips." + name));
    type_watts_.push_back(rec.intern("watts." + name));
  }
  prev_type_insts_.assign(ntypes, 0.0);
  prev_type_joules_.assign(ntypes, 0.0);
  // The kernel records wake-to-run latencies into this histogram whenever a
  // sink is attached; holding the reference keeps tick() lookup-free.
  wake_hist_ = &sink_.metrics().histogram("sched.wake_to_run_ns");
}

void TimeseriesSampler::tick(const os::Kernel& kernel, TimeNs t_ns,
                             TimeNs window) {
  if (window <= 0) return;
  obs::TimeseriesRecorder& rec = *sink_.timeseries();
  rec.begin_frame(static_cast<std::uint64_t>(t_ns));

  const double secs = to_seconds(window);
  const auto insts = static_cast<double>(kernel.total_instructions());
  const double joules = kernel.energy().total_joules();
  rec.record(je_, joules > 0 ? insts / joules : 0.0);
  // Windowed inst/J: no cold-start ramp, tracks the current operating
  // point — the natural target for burn-rate SLO floors.
  const double d_joules = joules - prev_joules_;
  rec.record(je_w_, d_joules > 0 ? (insts - prev_insts_) / d_joules : 0.0);
  rec.record(gips_, (insts - prev_insts_) / secs / 1e9);
  rec.record(watts_, (joules - prev_joules_) / secs);
  prev_insts_ = insts;
  prev_joules_ = joules;

  // Per-type rates: accumulate core totals into the type slots, then delta.
  const auto ntypes = type_gips_.size();
  for (std::size_t t = 0; t < ntypes; ++t) {
    double ti = 0;
    double tj = 0;
    for (CoreId c = 0; c < platform_.num_cores(); ++c) {
      if (static_cast<std::size_t>(platform_.type_of(c)) != t) continue;
      ti += static_cast<double>(kernel.core_instructions(c));
      tj += kernel.energy().total_joules(c);
    }
    rec.record(type_gips_[t], (ti - prev_type_insts_[t]) / secs / 1e9);
    rec.record(type_watts_[t], (tj - prev_type_joules_[t]) / secs);
    prev_type_insts_[t] = ti;
    prev_type_joules_[t] = tj;
  }

  rec.record(migrations_, static_cast<double>(kernel.total_migrations()));
  if (const auto* sb = dynamic_cast<const core::SmartBalancePolicy*>(
          kernel.balancer())) {
    rec.record(degraded_, sb->degraded_active() ? 1.0 : 0.0);
    rec.record(accept_, sb->last_accept_rate());
  }
  if (const obs::AuditRecorder* audit = sink_.audit()) {
    rec.record(drift_, audit->drift_active() ? 1.0 : 0.0);
  }
  rec.record(p99_wake_us_,
             wake_hist_->count() > 0
                 ? static_cast<double>(wake_hist_->quantile(0.99)) / 1e3
                 : 0.0);

  sink_.complete_frame();
}

}  // namespace sb::sim
