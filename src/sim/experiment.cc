#include "sim/experiment.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "core/smart_balance.h"
#include "sim/runner.h"
#include "core/trainer.h"
#include "os/gts_balancer.h"
#include "os/vanilla_balancer.h"

namespace sb::sim {
namespace {

/// Cache key: the multiset of core-type names fully determines the trained
/// model (training is deterministic for a platform's type set).
std::string platform_key(const arch::Platform& p) {
  std::string key;
  for (CoreTypeId t = 0; t < p.num_types(); ++t) {
    key += p.params_of_type(t).name;
    key += ';';
  }
  return key;
}

}  // namespace

core::PredictorModel train_default_model(const perf::PerfModel& perf,
                                         const power::PowerModel& power,
                                         bool dvfs_aware) {
  core::PredictorTrainer::Config cfg;
  if (dvfs_aware) {
    cfg.training_freq_ratios = {0.4, 0.7, 1.0};
    cfg.replicas = 4;  // the OPP grid multiplies samples 9x; rebalance cost
  }
  core::PredictorTrainer trainer(perf, power, cfg);
  return trainer.train(core::PredictorTrainer::default_training_profiles());
}

BalancerFactory vanilla_factory() {
  return [](const Simulation&) {
    return std::make_unique<os::VanillaBalancer>();
  };
}

BalancerFactory gts_factory(CoreTypeId big_type) {
  return [big_type](const Simulation&) {
    os::GtsBalancer::Config cfg;
    cfg.big_type = big_type;
    return std::make_unique<os::GtsBalancer>(cfg);
  };
}

BalancerFactory smartbalance_factory(core::SmartBalanceConfig cfg,
                                     bool paper_eq11_objective) {
  // Model cache: repeated comparisons on the same platform shape reuse the
  // trained predictor instead of re-running the profiling regression.
  auto cache =
      std::make_shared<std::map<std::string, core::PredictorModel>>();
  auto mutex = std::make_shared<std::mutex>();
  return [cfg, cache, mutex, paper_eq11_objective](const Simulation& sim) {
    const bool dvfs = sim.config().kernel.enable_dvfs;
    const std::string key =
        platform_key(sim.platform()) + (dvfs ? "+dvfs" : "");
    std::lock_guard<std::mutex> lock(*mutex);
    auto it = cache->find(key);
    if (it == cache->end()) {
      it = cache
               ->emplace(key, train_default_model(sim.perf_model(),
                                                  sim.power_model(), dvfs))
               .first;
    }
    std::unique_ptr<core::BalanceObjective> objective;
    if (!paper_eq11_objective) {
      std::vector<double> sleep_w;
      for (CoreId c = 0; c < sim.platform().num_cores(); ++c) {
        sleep_w.push_back(
            sim.power_model().sleep_power_w(sim.platform().type_of(c)));
      }
      objective =
          std::make_unique<core::GlobalEfficiencyObjective>(std::move(sleep_w));
    }
    return std::make_unique<core::SmartBalancePolicy>(
        sim.platform(), it->second, cfg, std::move(objective));
  };
}

BalancerFactory smartbalance_factory_with_model(core::PredictorModel model,
                                                core::SmartBalanceConfig cfg,
                                                bool paper_eq11_objective) {
  auto shared = std::make_shared<core::PredictorModel>(std::move(model));
  return [shared, cfg, paper_eq11_objective](const Simulation& sim) {
    std::unique_ptr<core::BalanceObjective> objective;
    if (!paper_eq11_objective) {
      std::vector<double> sleep_w;
      for (CoreId c = 0; c < sim.platform().num_cores(); ++c) {
        sleep_w.push_back(
            sim.power_model().sleep_power_w(sim.platform().type_of(c)));
      }
      objective =
          std::make_unique<core::GlobalEfficiencyObjective>(std::move(sleep_w));
    }
    return std::make_unique<core::SmartBalancePolicy>(
        sim.platform(), *shared, cfg, std::move(objective));
  };
}

std::vector<SimulationResult> run_replicated(const arch::Platform& platform,
                                             SimulationConfig cfg,
                                             const WorkloadBuilder& workload,
                                             const BalancerFactory& policy,
                                             int replicas) {
  if (replicas <= 0) throw std::invalid_argument("run_replicated: replicas");
  std::vector<ExperimentSpec> specs;
  specs.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    ExperimentSpec spec;
    spec.platform = platform;
    spec.cfg = cfg;
    spec.cfg.seed = replica_seed(cfg.seed, r);
    spec.workload = workload;
    spec.policy = policy;
    spec.label = "replica#" + std::to_string(r);
    specs.push_back(std::move(spec));
  }
  const auto batch = ExperimentRunner().run(specs);
  std::vector<SimulationResult> out;
  out.reserve(batch.runs.size());
  for (const auto& run : batch.runs) {
    if (!run.ok()) throw std::runtime_error("run_replicated: " + run.error);
    out.push_back(run.result);
  }
  return out;
}

std::vector<PolicyRun> compare_policies(
    const arch::Platform& platform, const SimulationConfig& cfg,
    const WorkloadBuilder& workload,
    const std::vector<std::pair<std::string, BalancerFactory>>& policies) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(policies.size());
  for (const auto& [name, factory] : policies) {
    ExperimentSpec spec;
    spec.platform = platform;
    spec.cfg = cfg;
    spec.workload = workload;
    spec.policy = factory;
    spec.label = name;
    spec.policy_name = name;
    specs.push_back(std::move(spec));
  }
  const auto batch = ExperimentRunner().run(specs);
  std::vector<PolicyRun> out;
  out.reserve(batch.runs.size());
  for (const auto& run : batch.runs) {
    if (!run.ok()) {
      throw std::runtime_error("compare_policies[" + run.label +
                               "]: " + run.error);
    }
    PolicyRun pr;
    pr.policy = run.label;
    pr.result = run.result;
    out.push_back(std::move(pr));
  }
  return out;
}

}  // namespace sb::sim
