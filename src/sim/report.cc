#include "sim/report.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/trace.h"

namespace sb::sim {
namespace {

/// JSON has no NaN/Infinity; degrade to null.
void number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(std::ostream& os, const SimulationResult& r) {
  os << std::setprecision(12);
  os << "{";
  os << "\"label\":\"" << json_escape(r.label) << "\",";
  os << "\"policy\":\"" << json_escape(r.policy) << "\",";
  os << "\"simulated_ms\":";
  number(os, to_millis(r.simulated));
  os << ",\"instructions\":" << r.instructions;
  os << ",\"energy_j\":";
  number(os, r.energy_j);
  os << ",\"ips\":";
  number(os, r.ips);
  os << ",\"watts\":";
  number(os, r.watts);
  os << ",\"ips_per_watt\":";
  number(os, r.ips_per_watt);
  os << ",\"migrations\":" << r.migrations;
  os << ",\"context_switches\":" << r.context_switches;
  os << ",\"balance_passes\":" << r.balance_passes;
  os << ",\"dvfs_transitions\":" << r.dvfs_transitions;
  os << ",\"avg_sched_latency_us\":";
  number(os, r.avg_sched_latency_us);
  os << ",\"max_sched_latency_us\":";
  number(os, r.max_sched_latency_us);

  os << ",\"balancer_overhead_us\":{\"sense\":";
  number(os, r.avg_sense_us);
  os << ",\"predict\":";
  number(os, r.avg_predict_us);
  os << ",\"optimize\":";
  number(os, r.avg_optimize_us);
  os << ",\"migrations_per_pass\":";
  number(os, r.avg_migrations_per_pass);
  os << "}";

  // Fault block only when something actually happened — clean runs keep
  // byte-identical reports.
  if (r.faults_injected || r.faults_detected || r.faults_absorbed ||
      r.degraded_passes || r.migrations_rejected || r.migrations_deferred) {
    os << ",\"faults\":{\"injected\":" << r.faults_injected
       << ",\"detected\":" << r.faults_detected
       << ",\"absorbed\":" << r.faults_absorbed
       << ",\"degraded_passes\":" << r.degraded_passes
       << ",\"migrations_rejected\":" << r.migrations_rejected
       << ",\"migrations_deferred\":" << r.migrations_deferred
       << ",\"healthy_fraction\":";
    number(os, r.healthy_fraction);
    os << "}";
  }

  // Latency block only when a wake ever happened — purely CPU-bound runs
  // (no interactive tasks) keep byte-identical reports. Percentiles are
  // exact nearest-rank over every wake→first-dispatch delta.
  if (r.wake_to_run.count > 0) {
    os << ",\"latency\":{\"wakes\":" << r.wake_to_run.count
       << ",\"mean_us\":";
    number(os, r.wake_to_run.mean_ns / 1e3);
    os << ",\"p50_us\":";
    number(os, static_cast<double>(r.wake_to_run.p50_ns) / 1e3);
    os << ",\"p95_us\":";
    number(os, static_cast<double>(r.wake_to_run.p95_ns) / 1e3);
    os << ",\"p99_us\":";
    number(os, static_cast<double>(r.wake_to_run.p99_ns) / 1e3);
    os << ",\"max_us\":";
    number(os, static_cast<double>(r.wake_to_run.max_ns) / 1e3);
    os << "}";
  }

  // Shards block only when sharded balancing ran — the unsharded path
  // keeps byte-identical reports.
  if (r.shards > 0) {
    os << ",\"shards\":{\"count\":" << r.shards
       << ",\"passes\":" << r.shard_passes
       << ",\"exchange_moves\":" << r.shard_exchange_moves
       << ",\"avg_exchange_us\":";
    number(os, r.avg_exchange_us);
    os << "}";
  }

  // Metrics block only when observability collected something — default
  // runs keep byte-identical reports.
  if (r.obs && r.obs->metrics_enabled && !r.obs->metrics.empty()) {
    os << ",\"metrics\":";
    r.obs->metrics.write_json(os);
  }

  // Audit block only when the flight recorder ran — same bit-identity rule.
  if (r.obs && r.obs->audit_enabled) {
    const obs::AuditSnapshot& a = r.obs->audit;
    os << ",\"audit\":{\"joined\":" << a.joined
       << ",\"unjoined\":" << a.unjoined
       << ",\"predictions\":" << a.predictions
       << ",\"thread_records\":" << a.threads.size()
       << ",\"epoch_records\":" << a.epochs.size()
       << ",\"migration_records\":" << a.migrations.size()
       << ",\"drift_events\":" << a.drift_events.size();
    // Retained-ledger residual summary, corrected vs raw: in an unadapted
    // run the two pairs coincide; under online adaptation their gap is the
    // bias/gain correction's contribution, visible without the CSV export.
    double g = 0, p = 0, rg = 0, rp = 0;
    for (const obs::ThreadAuditRecord& t : a.threads) {
      g += std::abs(t.gips_err);
      p += std::abs(t.power_err);
      rg += std::abs(t.raw_gips_err);
      rp += std::abs(t.raw_power_err);
    }
    const double n = a.threads.empty()
                         ? 1.0
                         : static_cast<double>(a.threads.size());
    os << ",\"mean_abs_gips_err\":";
    number(os, g / n);
    os << ",\"mean_abs_power_err\":";
    number(os, p / n);
    os << ",\"raw_mean_abs_gips_err\":";
    number(os, rg / n);
    os << ",\"raw_mean_abs_power_err\":";
    number(os, rp / n);
    if (r.adapt_joins || r.adapt_rls_updates || r.adapt_cov_resets) {
      os << ",\"adapt\":{\"joins\":" << r.adapt_joins
         << ",\"rls_updates\":" << r.adapt_rls_updates
         << ",\"cov_resets\":" << r.adapt_cov_resets << "}";
    }
    os << "}";
  }

  if (!r.final_temp_c.empty()) {
    os << ",\"thermal\":{\"max_temp_c\":";
    number(os, r.max_temp_c);
    os << ",\"final_temp_c\":[";
    for (std::size_t i = 0; i < r.final_temp_c.size(); ++i) {
      if (i) os << ',';
      number(os, r.final_temp_c[i]);
    }
    os << "]}";
  }

  os << ",\"cores\":[";
  for (std::size_t i = 0; i < r.cores.size(); ++i) {
    const auto& c = r.cores[i];
    if (i) os << ',';
    os << "{\"id\":" << c.id << ",\"type\":\"" << json_escape(c.type_name)
       << "\",\"instructions\":" << c.instructions << ",\"energy_j\":";
    number(os, c.energy_j);
    os << ",\"busy_ms\":";
    number(os, to_millis(c.busy_ns));
    os << ",\"sleep_ms\":";
    number(os, to_millis(c.sleep_ns));
    os << ",\"ips_per_watt\":";
    number(os, c.ips_per_watt);
    os << ",\"utilization\":";
    number(os, c.utilization);
    os << "}";
  }
  os << "]";

  os << ",\"threads\":[";
  for (std::size_t i = 0; i < r.threads.size(); ++i) {
    const auto& t = r.threads[i];
    if (i) os << ',';
    os << "{\"tid\":" << t.tid << ",\"name\":\"" << json_escape(t.name)
       << "\",\"instructions\":" << t.instructions << ",\"energy_j\":";
    number(os, t.energy_j);
    os << ",\"runtime_ms\":";
    number(os, to_millis(t.runtime));
    os << ",\"migrations\":" << t.migrations
       << ",\"completed\":" << (t.completed ? "true" : "false")
       << ",\"avg_wait_us\":";
    number(os, t.avg_wait_us);
    os << ",\"max_wait_us\":";
    number(os, t.max_wait_us);
    os << "}";
  }
  os << "]}";
}

std::string to_json(const SimulationResult& r) {
  std::ostringstream os;
  write_json(os, r);
  return os.str();
}

}  // namespace sb::sim
