// Simulation façade: wires a Platform, the performance/power models, the
// kernel and a workload into one runnable experiment. This is the primary
// public entry point of the library (see examples/quickstart.cpp).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "common/csv.h"
#include "common/rng.h"
#include "obs/sink.h"
#include "os/kernel.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "power/thermal.h"
#include "sim/metrics.h"
#include "sim/ts_sampler.h"
#include "workload/benchmarks.h"
#include "workload/mixes.h"
#include "workload/sched_replay.h"

namespace sb::sim {

struct SimulationConfig {
  os::KernelConfig kernel;
  /// Simulated run window; with run_to_completion the window is a cap.
  TimeNs duration = milliseconds(600);
  bool run_to_completion = false;
  std::uint64_t seed = 1234;
  std::string label;

  /// Enables the per-core RC thermal model (sampled every sample_interval);
  /// results gain max/final core temperatures.
  bool thermal_enabled = false;
  power::ThermalModel::Config thermal;
  /// Non-empty: writes a long-format per-core time series
  /// (time_ms, core, power_w, temp_c, nr_running, freq_mhz) as CSV.
  std::string trace_path;
  /// Sampling period for thermal stepping and trace rows.
  TimeNs sample_interval = milliseconds(5);

  /// Observability: metrics registry and/or epoch tracer (see src/obs/).
  /// Off by default — a disabled run is bit-identical to a pre-obs build.
  obs::ObsConfig obs;
  /// Non-empty: writes the run's epoch trace as Chrome trace-event JSON at
  /// the end of run() (implies obs.trace).
  std::string chrome_trace_path;
  /// Non-empty: writes the run's prediction-audit export (packed CSV, see
  /// obs/audit_writer.h) at the end of run() (implies obs.audit).
  std::string audit_path;
  /// Non-empty: writes the run's `#sb-tsdb v1` timeseries export (CSV, or
  /// JSON for a .json path) at the end of run() (implies obs.timeseries).
  /// Cadence and capacity come from obs.timeseries (--obs-window).
  std::string timeseries_path;
};

class Simulation {
 public:
  /// The platform is copied; models and kernel are built over the copy.
  Simulation(const arch::Platform& platform, SimulationConfig cfg);
  explicit Simulation(const arch::Platform& platform)
      : Simulation(platform, SimulationConfig()) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // --- Workload population (before run()) ---
  /// Spawns `threads` workers of a library benchmark (PARSEC/x264/IMB name).
  void add_benchmark(const std::string& name, int threads);
  /// Spawns a Table 3 mix with `threads_per_member` workers per member.
  void add_mix(int mix_id, int threads_per_member);
  void add_thread(workload::ThreadBehavior behavior);

  /// Defers a benchmark's fork until simulated time `at` — the paper's §3
  /// dynamic thread model ("threads can enter and leave the system at any
  /// time"). Arrivals are applied during run().
  void add_benchmark_at(TimeNs at, const std::string& name, int threads);

  /// Populates the run from a compiled scheduler-trace replay (see
  /// workload/sched_replay.h): tasks spawning at t=0 fork immediately, the
  /// rest become deferred arrivals at their traced spawn times.
  void add_replay(const workload::ReplaySchedule& schedule);

  /// Installs the balancing policy (must be called before run()).
  void set_balancer(std::unique_ptr<os::LoadBalancer> balancer);

  /// Runs to the configured duration (or until every task exits, if
  /// run_to_completion). Returns the final metrics; callable once.
  SimulationResult run();

  // --- Service mode (incremental driving; used by the fleet layer) ---
  // begin_service() performs run()'s setup without the batch loop, after
  // which advance_service() steps the kernel in arbitrary increments and
  // jobs can be admitted at the current simulated time between steps.
  // finish_service() finalizes the run (writing any configured exports)
  // and returns the final metrics. Mutually exclusive with run().

  /// Enters service mode; throws std::logic_error if already run.
  void begin_service();

  /// Advances simulated time by `dt`, honoring deferred arrivals and the
  /// sampling cadence exactly like run()'s stepping loop.
  void advance_service(TimeNs dt);

  /// Forks `threads` workers of a library benchmark at the current
  /// simulated time, overriding each worker's instruction budget when
  /// `per_thread_instructions` > 0 (so service jobs terminate). Returns
  /// the forked thread ids for completion tracking.
  std::vector<ThreadId> admit_benchmark(const std::string& name, int threads,
                                        std::uint64_t per_thread_instructions);

  /// Leaves service mode, writes configured exports, returns final metrics.
  SimulationResult finish_service();

  /// Metrics of the run so far (valid after run(), or mid-run for tools
  /// driving the kernel directly).
  SimulationResult snapshot() const;

  os::Kernel& kernel() { return *kernel_; }
  const arch::Platform& platform() const { return platform_; }
  const perf::PerfModel& perf_model() const { return *perf_; }
  const power::PowerModel& power_model() const { return *power_; }
  const SimulationConfig& config() const { return cfg_; }

  /// Thermal state (only when thermal_enabled); valid after/while running.
  const power::ThermalModel* thermal() const { return thermal_.get(); }

  /// Observability sink (null unless cfg.obs enabled something).
  obs::Sink* obs() { return obs_.get(); }

 private:
  void prepare_run();
  SimulationResult finalize_run();
  void sample_tick(TimeNs window);
  void ts_tick();
  void apply_arrivals();

  struct Arrival {
    TimeNs at;
    std::string benchmark;
    int threads;
    /// Replay arrivals carry fully compiled behaviors instead of a
    /// benchmark name (benchmark is empty then).
    std::vector<workload::ThreadBehavior> behaviors;
  };
  std::vector<Arrival> arrivals_;

  arch::Platform platform_;
  SimulationConfig cfg_;
  std::unique_ptr<perf::PerfModel> perf_;
  std::unique_ptr<power::PowerModel> power_;
  std::unique_ptr<os::Kernel> kernel_;
  std::unique_ptr<power::ThermalModel> thermal_;
  std::unique_ptr<obs::Sink> obs_;
  std::unique_ptr<CsvWriter> trace_;
  /// Telemetry-plane sampler (null unless obs.timeseries is on); ticks at
  /// window boundaries of simulated time, so exports are a deterministic
  /// function of the run.
  std::unique_ptr<TimeseriesSampler> ts_sampler_;
  TimeNs ts_next_ = 0;
  TimeNs ts_last_ = 0;
  std::vector<double> prev_core_joules_;
  double max_temp_seen_c_ = 0;
  Rng spawn_rng_;
  bool ran_ = false;
  bool service_ = false;
  bool sampled_ = false;
};

}  // namespace sb::sim
