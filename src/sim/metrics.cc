#include "sim/metrics.h"

#include <ostream>
#include <stdexcept>

#include "common/table.h"

namespace sb::sim {

void print_result(std::ostream& os, const SimulationResult& r, bool per_core) {
  os << r.label << " [" << r.policy << "] simulated "
     << to_millis(r.simulated) << " ms: " << r.instructions << " insts, "
     << r.energy_j << " J, " << r.ips / 1e9 << " GIPS, " << r.watts << " W, "
     << r.ips_per_watt / 1e6 << " MIPS/W"
     << " (migrations=" << r.migrations
     << ", ctx=" << r.context_switches << ")\n";
  if (r.wake_to_run.count > 0) {
    os << "  wake-to-run over " << r.wake_to_run.count
       << " wakes: p50=" << static_cast<double>(r.wake_to_run.p50_ns) / 1e3
       << " us, p95=" << static_cast<double>(r.wake_to_run.p95_ns) / 1e3
       << " us, p99=" << static_cast<double>(r.wake_to_run.p99_ns) / 1e3
       << " us, max=" << static_cast<double>(r.wake_to_run.max_ns) / 1e3
       << " us\n";
  }
  if (!per_core) return;
  TextTable t({"core", "type", "Minsts", "J", "busy%", "sleep%", "MIPS",
               "MIPS/W"});
  for (const auto& c : r.cores) {
    const double window = to_seconds(r.simulated);
    t.add_row(std::to_string(c.id) + " " + c.type_name,
              {static_cast<double>(c.instructions) / 1e6, c.energy_j,
               100.0 * static_cast<double>(c.busy_ns) /
                   static_cast<double>(r.simulated),
               100.0 * static_cast<double>(c.sleep_ns) /
                   static_cast<double>(r.simulated),
               window > 0 ? static_cast<double>(c.instructions) / window / 1e6
                          : 0,
               c.ips_per_watt / 1e6});
  }
  os << t;
}

double efficiency_ratio(const SimulationResult& a, const SimulationResult& b) {
  if (b.ips_per_watt <= 0) throw std::invalid_argument("efficiency_ratio: b");
  return a.ips_per_watt / b.ips_per_watt;
}

}  // namespace sb::sim
