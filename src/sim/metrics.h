// End-of-run metrics: everything the paper's evaluation reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/percentile.h"
#include "common/types.h"

namespace sb::obs {
struct RunObs;
}  // namespace sb::obs

namespace sb::sim {

struct CoreMetrics {
  CoreId id = kInvalidCore;
  std::string type_name;
  std::uint64_t instructions = 0;
  double energy_j = 0;
  TimeNs busy_ns = 0;
  TimeNs sleep_ns = 0;
  double avg_power_w = 0;     // energy over the whole run window
  double ips = 0;             // instructions / run window
  double ips_per_watt = 0;    // instructions / joule
  double utilization = 0;     // busy fraction of the window
};

struct ThreadMetrics {
  ThreadId tid = kInvalidThread;
  std::string name;
  std::uint64_t instructions = 0;
  double energy_j = 0;
  TimeNs runtime = 0;
  std::uint64_t migrations = 0;
  bool completed = false;
  TimeNs completion_time = kTimeNever;
  /// Scheduling latency: runqueue wait per dispatch.
  double avg_wait_us = 0;
  double max_wait_us = 0;
};

struct SimulationResult {
  std::string label;
  std::string policy;
  TimeNs simulated = 0;
  std::uint64_t instructions = 0;
  double energy_j = 0;

  /// Global throughput: instructions per second of simulated time.
  double ips = 0;
  /// Average platform power over the window.
  double watts = 0;
  /// The paper's headline metric: throughput per watt == instructions per
  /// joule (IPS/W).
  double ips_per_watt = 0;

  std::uint64_t migrations = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t balance_passes = 0;

  std::vector<CoreMetrics> cores;
  std::vector<ThreadMetrics> threads;

  /// Balancer host-time overheads (SmartBalance fills these).
  double avg_sense_us = 0;
  double avg_predict_us = 0;
  double avg_optimize_us = 0;
  double avg_migrations_per_pass = 0;

  /// DVFS statistics (0 when DVFS is disabled).
  std::uint64_t dvfs_transitions = 0;

  /// Scheduling latency across all threads (efficiency policies that park
  /// threads on slow cores pay here — reported so the trade is visible).
  double avg_sched_latency_us = 0;
  double max_sched_latency_us = 0;

  /// Interactive responsiveness: exact nearest-rank tail of every
  /// Sleeping→Runnable wake → first-dispatch delta (count is 0 for purely
  /// CPU-bound workloads — the JSON report emits its `latency` block only
  /// when a wake ever happened).
  LatencyTail wake_to_run;

  /// Thermal statistics (only when SimulationConfig::thermal_enabled).
  double max_temp_c = 0;               // hottest any core got, any time
  std::vector<double> final_temp_c;    // per-core at the end of the run

  /// Fault-resilience statistics (all zero unless a fault plan and/or the
  /// sensing defenses were active; see src/fault/).
  std::uint64_t faults_injected = 0;   // events the injector actually fired
  std::uint64_t faults_detected = 0;   // measurements rejected by defenses
  std::uint64_t faults_absorbed = 0;   // stale-cache / neutral-prior serves
  std::uint64_t degraded_passes = 0;   // passes delegated to the fallback
  std::uint64_t migrations_rejected = 0;  // balancer migrations that failed
  std::uint64_t migrations_deferred = 0;  // ... that landed one epoch late
  double healthy_fraction = 1.0;       // sensing health at end of run

  /// Online predictor adaptation (all zero unless SmartBalanceConfig::
  /// adaptation enabled a tier; see src/core/adapt.h).
  std::uint64_t adapt_joins = 0;        // forecasts validated by the adapter
  std::uint64_t adapt_rls_updates = 0;  // RLS samples absorbed into Θ
  std::uint64_t adapt_cov_resets = 0;   // drift-triggered covariance resets

  /// Sharded balancing (all zero unless SmartBalanceConfig::sharding is on;
  /// see src/core/shard.h).
  int shards = 0;                          // configured shard count
  std::uint64_t shard_passes = 0;          // cluster-local SA passes run
  std::uint64_t shard_exchange_moves = 0;  // threads traded between shards
  double avg_exchange_us = 0;              // mean exchange-phase host time

  /// Observability snapshot (metrics registry + drained trace); null unless
  /// SimulationConfig::obs enabled it. Shared so results stay copyable.
  std::shared_ptr<obs::RunObs> obs;
};

/// Human-readable one-result summary.
void print_result(std::ostream& os, const SimulationResult& r,
                  bool per_core = true);

/// Ratio of energy efficiency (a / b).
double efficiency_ratio(const SimulationResult& a, const SimulationResult& b);

}  // namespace sb::sim
