#include "sim/runner.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/parallel.h"

namespace sb::sim {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Runs one spec, filling `out`. All exceptions are contained here so a bad
/// spec cannot poison the batch or tear down a worker thread.
void run_one(const ExperimentSpec& spec, ExperimentResult& out) {
  out.label = spec.label;
  const auto start = Clock::now();
  try {
    Simulation sim(spec.platform, spec.cfg);
    sim.set_balancer(spec.policy(sim));
    spec.workload(sim);
    out.result = sim.run();
    if (!spec.policy_name.empty()) out.result.policy = spec.policy_name;
    if (out.result.label.empty()) out.result.label = spec.label;
  } catch (const std::exception& e) {
    out.error = e.what();
    if (out.error.empty()) out.error = "unknown std::exception";
  } catch (...) {
    out.error = "unknown exception";
  }
  out.wall_ms = ms_since(start);
}

}  // namespace

int ExperimentRunner::default_threads() { return common::resolve_jobs(0); }

ExperimentRunner::ExperimentRunner() : ExperimentRunner(Config()) {}

ExperimentRunner::ExperimentRunner(Config cfg)
    : threads_(cfg.threads > 0 ? cfg.threads : default_threads()) {}

BatchResult ExperimentRunner::run(
    const std::vector<ExperimentSpec>& specs) const {
  BatchResult batch;
  batch.runs.resize(specs.size());
  batch.summary.total = specs.size();
  const auto start = Clock::now();

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads_), specs.size()));
  batch.summary.threads = std::max(workers, specs.empty() ? 0 : 1);

  // Each result lands in its submission slot and every spec is self-seeded,
  // so the batch output is independent of the worker schedule.
  common::parallel_for(specs.size(), workers, [&](std::size_t i, int) {
    run_one(specs[i], batch.runs[i]);
  });

  batch.summary.wall_ms = ms_since(start);
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    auto& r = batch.runs[i];
    batch.summary.cpu_ms += r.wall_ms;
    if (!r.ok()) ++batch.summary.failed;
    // Stamp each observability snapshot with its submission index: the key
    // that makes merged traces deterministic regardless of worker schedule.
    if (r.result.obs) {
      r.result.obs->run = static_cast<int>(i);
      if (r.result.obs->label.empty()) r.result.obs->label = r.label;
    }
  }
  return batch;
}

BatchResult run_sweep(
    const arch::Platform& platform, const SimulationConfig& cfg,
    const std::vector<std::pair<std::string, WorkloadBuilder>>& workloads,
    const std::vector<std::pair<std::string, BalancerFactory>>& policies,
    int replicas, const ExperimentRunner& runner) {
  if (replicas <= 0) throw std::invalid_argument("run_sweep: replicas");
  std::vector<ExperimentSpec> specs;
  specs.reserve(workloads.size() * policies.size() *
                static_cast<std::size_t>(replicas));
  for (const auto& [wname, workload] : workloads) {
    for (const auto& [pname, policy] : policies) {
      for (int r = 0; r < replicas; ++r) {
        ExperimentSpec spec;
        spec.platform = platform;
        spec.cfg = cfg;
        spec.cfg.seed = replica_seed(cfg.seed, r);
        spec.workload = workload;
        spec.policy = policy;
        spec.policy_name = pname;
        spec.label = wname + "/" + pname;
        if (replicas > 1) spec.label += "#" + std::to_string(r);
        specs.push_back(std::move(spec));
      }
    }
  }
  return runner.run(specs);
}

}  // namespace sb::sim
