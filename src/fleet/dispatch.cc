#include "fleet/dispatch.h"

#include <limits>

namespace sb::fleet {

namespace {

class RoundRobinDispatcher final : public Dispatcher {
 public:
  const char* name() const override { return "rr"; }
  int pick(const JobView&, const std::vector<NodeView>& views) override {
    if (views.empty()) return -1;
    const int n = static_cast<int>(views.size());
    const int choice = next_ % n;
    next_ = (next_ + 1) % n;
    return views[static_cast<std::size_t>(choice)].index;
  }

 private:
  int next_ = 0;
};

double load_per_core(const NodeView& v) {
  return v.cores > 0 ? static_cast<double>(v.runnable_threads) / v.cores
                     : std::numeric_limits<double>::infinity();
}

class LeastLoadedDispatcher final : public Dispatcher {
 public:
  const char* name() const override { return "least"; }
  int pick(const JobView&, const std::vector<NodeView>& views) override {
    int best = -1;
    double best_load = std::numeric_limits<double>::infinity();
    for (const auto& v : views) {
      const double load = load_per_core(v);
      if (load < best_load) {
        best_load = load;
        best = v.index;
      }
    }
    return best;
  }
};

class EnergyAwareDispatcher final : public Dispatcher {
 public:
  EnergyAwareDispatcher(double load_cap, double consolidation_bias)
      : load_cap_(load_cap), bias_(consolidation_bias) {}

  const char* name() const override { return "energy"; }

  int pick(const JobView& job, const std::vector<NodeView>& views) override {
    // Lexicographic ranking: (tier, predicted energy, load). Tier 0 nodes
    // can absorb every thread of the job on a free core — placement there
    // costs no time-sharing, so they rank purely by predicted marginal
    // joules. Tier 1 nodes are below the cap but would time-share; their
    // energy score is stretched by the contention the placement creates
    // (the static power the rack burns while the job drags). Equal-energy
    // candidates (identical shapes) fall back to least-loaded, which keeps
    // the latency tail honest when efficiency cannot discriminate.
    int best = -1;
    int best_tier = 2;
    double best_score = std::numeric_limits<double>::infinity();
    double best_load = std::numeric_limits<double>::infinity();
    for (const auto& v : views) {
      if (v.cores <= 0) continue;
      // Saturation guard: placing here would push the node past the cap,
      // so the job queues at the fleet instead of bloating a runqueue.
      if (v.runnable_threads + job.threads >
          static_cast<int>(load_cap_ * v.cores)) {
        continue;
      }
      const double load =
          static_cast<double>(v.runnable_threads + job.threads) / v.cores;
      const int tier = v.runnable_threads + job.threads <= v.cores ? 0 : 1;
      // Predicted marginal joules of running the job on this node's best
      // *available* core type; without a prediction, rank by load alone so
      // the policy degrades to least-loaded rather than arbitrary placement.
      double score =
          v.best_eff_ipj > 0
              ? static_cast<double>(job.total_instructions) / v.best_eff_ipj
              : 1e18;
      if (tier == 1) score *= 1.0 + load;
      // Consolidation bias: an idle node pays a relative energy surcharge,
      // so traffic packs onto already-awake nodes while idle ones drain.
      if (v.idle) score *= 1.0 + bias_;
      if (tier < best_tier ||
          (tier == best_tier &&
           (score < best_score ||
            (score == best_score && load < best_load)))) {
        best_tier = tier;
        best_score = score;
        best_load = load;
        best = v.index;
      }
    }
    return best;  // -1 when every node is saturated: defer the job
  }

 private:
  double load_cap_;
  double bias_;
};

}  // namespace

std::unique_ptr<Dispatcher> make_round_robin() {
  return std::make_unique<RoundRobinDispatcher>();
}

std::unique_ptr<Dispatcher> make_least_loaded() {
  return std::make_unique<LeastLoadedDispatcher>();
}

std::unique_ptr<Dispatcher> make_energy_aware(double load_cap,
                                              double consolidation_bias) {
  return std::make_unique<EnergyAwareDispatcher>(load_cap, consolidation_bias);
}

std::unique_ptr<Dispatcher> make_dispatcher(const FleetConfig& cfg) {
  switch (cfg.policy) {
    case DispatchPolicy::kRoundRobin: return make_round_robin();
    case DispatchPolicy::kLeastLoaded: return make_least_loaded();
    case DispatchPolicy::kEnergyAware:
      return make_energy_aware(cfg.load_cap, cfg.consolidation_bias);
  }
  return make_round_robin();
}

}  // namespace sb::fleet
