#include "fleet/fleet_config.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace sb::fleet {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

int parse_nodes(const std::string& tok) {
  if (tok.empty() || tok.size() > 5) {
    throw std::invalid_argument("--fleet: bad node count '" + tok + "'");
  }
  for (char c : tok) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("--fleet: bad node count '" + tok + "'");
    }
  }
  const long n = std::strtol(tok.c_str(), nullptr, 10);
  if (n < 1 || n > 1024) {
    throw std::invalid_argument("--fleet: node count must be in [1, 1024]");
  }
  return static_cast<int>(n);
}

double parse_rate(const std::string& tok) {
  if (tok.empty()) {
    throw std::invalid_argument("--fleet: empty rate");
  }
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end != tok.c_str() + tok.size() || !std::isfinite(v)) {
    throw std::invalid_argument("--fleet: bad rate '" + tok + "'");
  }
  if (!(v > 0) || !(v <= 1e7)) {
    throw std::invalid_argument("--fleet: rate must be in (0, 1e7]");
  }
  return v;
}

}  // namespace

const char* to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kRoundRobin: return "rr";
    case DispatchPolicy::kLeastLoaded: return "least";
    case DispatchPolicy::kEnergyAware: return "energy";
  }
  return "?";
}

DispatchPolicy dispatch_policy_from(const std::string& name) {
  if (name == "rr" || name == "roundrobin" || name == "round-robin") {
    return DispatchPolicy::kRoundRobin;
  }
  if (name == "least" || name == "least-loaded" || name == "leastloaded") {
    return DispatchPolicy::kLeastLoaded;
  }
  if (name == "energy" || name == "energy-aware" || name == "energyaware") {
    return DispatchPolicy::kEnergyAware;
  }
  throw std::invalid_argument("--fleet: unknown dispatch policy '" + name +
                              "' (want rr | least | energy)");
}

FleetConfig FleetConfig::parse(const std::string& text) {
  const auto parts = split(text, ':');
  if (parts.size() > 3) {
    throw std::invalid_argument("--fleet: too many fields in '" + text +
                                "' (grammar: N[:policy[:rate]])");
  }
  FleetConfig cfg;
  cfg.nodes = parse_nodes(parts[0]);
  if (parts.size() >= 2) cfg.policy = dispatch_policy_from(parts[1]);
  if (parts.size() >= 3) cfg.rate_hz = parse_rate(parts[2]);
  cfg.validate();
  return cfg;
}

std::string FleetConfig::canonical() const {
  std::string rate = std::to_string(rate_hz);
  // Trim trailing zeros of the default %f formatting (keep "300", "450.5").
  while (!rate.empty() && rate.back() == '0') rate.pop_back();
  if (!rate.empty() && rate.back() == '.') rate.pop_back();
  return std::to_string(nodes) + ":" + to_string(policy) + ":" + rate;
}

void FleetConfig::validate() const {
  if (nodes < 1 || nodes > 1024) {
    throw std::invalid_argument("FleetConfig: nodes out of [1, 1024]");
  }
  if (!(rate_hz > 0) || !(rate_hz <= 1e7)) {
    throw std::invalid_argument("FleetConfig: rate_hz out of (0, 1e7]");
  }
  if (duration <= 0) {
    throw std::invalid_argument("FleetConfig: duration must be > 0");
  }
  if (quantum <= 0 || quantum > duration) {
    throw std::invalid_argument("FleetConfig: quantum out of (0, duration]");
  }
  if (node_policy != "smartbalance" && node_policy != "vanilla") {
    throw std::invalid_argument(
        "FleetConfig: node_policy must be smartbalance or vanilla");
  }
  if (!(burst_factor >= 1.0) || !(burst_factor <= 1e3)) {
    throw std::invalid_argument("FleetConfig: burst_factor out of [1, 1e3]");
  }
  if (zipf_theta < 0 || zipf_theta > 16.0) {
    throw std::invalid_argument("FleetConfig: zipf_theta out of [0, 16]");
  }
  if (!(load_cap >= 0.5) || !(load_cap <= 64.0)) {
    throw std::invalid_argument("FleetConfig: load_cap out of [0.5, 64]");
  }
  if (consolidation_bias < 0 || consolidation_bias > 10.0) {
    throw std::invalid_argument(
        "FleetConfig: consolidation_bias out of [0, 10]");
  }
}

}  // namespace sb::fleet
