// Fleet configuration and the sbsim `--fleet=N[:policy[:rate]]` grammar.
//
// Parsed FaultPlan-style: a compact colon-separated spec covers the knobs a
// CLI user reaches for (node count, dispatch policy, mean arrival rate);
// everything else — quantum, duration, catalog, consolidation tuning — is
// an API field the harnesses set directly. parse() throws
// std::invalid_argument with a message naming the offending token, and
// canonical() round-trips through parse() for the config fuzz tests.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace sb::fleet {

/// Fleet-level job placement policies (see fleet/dispatch.h).
enum class DispatchPolicy { kRoundRobin, kLeastLoaded, kEnergyAware };

const char* to_string(DispatchPolicy p);

/// Accepts the canonical names ("rr", "least", "energy") plus the common
/// long spellings; throws std::invalid_argument otherwise.
DispatchPolicy dispatch_policy_from(const std::string& name);

struct FleetConfig {
  // --- CLI grammar fields: "N[:policy[:rate]]" ---
  int nodes = 4;
  DispatchPolicy policy = DispatchPolicy::kEnergyAware;
  /// Long-run mean job arrival rate for the whole fleet (jobs/second).
  double rate_hz = 300.0;

  // --- API knobs (not part of the grammar) ---
  /// Simulated window; jobs still queued or running at the end are counted
  /// as dispatched/arrived but not completed.
  TimeNs duration = milliseconds(1500);
  /// Dispatch cadence: arrivals are admitted and placed at every quantum
  /// boundary, and nodes advance in lockstep quanta between boundaries.
  TimeNs quantum = milliseconds(5);
  std::uint64_t seed = 1234;
  /// Worker threads for the per-quantum node stepping (0 = SB_JOBS env or
  /// hardware concurrency). Results are identical for any value.
  int step_jobs = 0;
  /// Per-node balancing policy: "smartbalance" or "vanilla".
  std::string node_policy = "smartbalance";
  /// Arrival-process shape (see workload/arrival.h).
  double burst_factor = 4.0;
  double zipf_theta = 0.99;
  /// Energy-aware placement: a node is saturated (ineligible) once its
  /// live fleet threads would exceed load_cap * cores.
  double load_cap = 2.0;
  /// Relative energy surcharge for waking an idle node — the consolidation
  /// bias that keeps idle nodes drainable.
  double consolidation_bias = 0.25;
  /// Non-empty: replace the MMPP arrival clock with a scheduler-trace
  /// replay (workload/sched_replay.h) — spawn events become job arrivals at
  /// their traced timestamps (job class = stable hash of the task name into
  /// the catalog), looping the trace by its span until the window closes.
  /// Set via sbsim --fleet-arrivals=replay:<file>.
  std::string arrival_replay;
  /// Fleet-level observability (fleet.quantum spans, fleet.dispatch
  /// instants, job latency histograms).
  bool trace = false;
  bool metrics = false;
  /// Also collect each node's metrics registry (merged into exports).
  bool node_obs = false;
  /// Continuous telemetry plane (obs/timeseries.h): samples the fleet —
  /// and, with node_obs, every node — at obs_window cadence of simulated
  /// time. Exports stay byte-identical across step_jobs worker counts.
  bool timeseries = false;
  TimeNs obs_window = milliseconds(10);
  std::size_t obs_capacity = std::size_t{1} << 16;
  /// Non-empty: SLO burn-rate objectives over the fleet's sampled signals
  /// (obs/slo.h grammar, e.g. "p99_wake_us<2000:burn=0.02"); implies
  /// timeseries.
  std::string slo;

  /// Parses "N[:policy[:rate]]", e.g. "8", "8:rr", "8:energy:450".
  static FleetConfig parse(const std::string& text);

  /// The grammar string that parses back to the grammar fields.
  std::string canonical() const;

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

}  // namespace sb::fleet
