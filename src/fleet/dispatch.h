// Fleet-level job placement policies.
//
// A Dispatcher sees only NodeView summaries — deterministic per-quantum
// digests of each node's simulation state plus (for the energy-aware
// policy) the predicted best-case energy efficiency of placing the
// incoming job class there. Keeping the policies pure functions of their
// views makes them unit-testable without spinning up simulations and
// guarantees placement decisions are independent of the node-stepping
// worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/fleet_config.h"

namespace sb::fleet {

/// Dispatcher-visible summary of one node at a quantum boundary.
struct NodeView {
  int index = 0;
  int cores = 0;
  /// Live (not yet exited) threads of fleet jobs currently on the node.
  int runnable_threads = 0;
  /// True when the node hosts no live fleet job — dispatching here wakes it.
  bool idle = true;
  /// Predicted marginal instructions-per-joule of placing the incoming job
  /// class on this node: harmonic-mean efficiency over the cores still
  /// free, since the node's own balancer decides the actual core placement
  /// (0 = no prediction available).
  double best_eff_ipj = 0;
};

/// Dispatcher-visible summary of the job being placed.
struct JobView {
  int job_class = 0;
  int threads = 1;
  std::uint64_t total_instructions = 0;
};

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;
  virtual const char* name() const = 0;
  /// Picks the destination node index for `job`, or -1 to defer the job to
  /// the next quantum (fleet-level queueing; only the energy-aware policy
  /// defers, and only when every node is saturated).
  virtual int pick(const JobView& job, const std::vector<NodeView>& views) = 0;
};

/// Round-robin: the blind baseline — cycles node indices, ignoring load,
/// platform and job class entirely.
std::unique_ptr<Dispatcher> make_round_robin();

/// Least-loaded: minimum runnable-threads-per-core, ties to the lowest
/// node index.
std::unique_ptr<Dispatcher> make_least_loaded();

/// Energy-aware: minimum predicted marginal energy-delay — job
/// instructions / best predicted IPJ, stretched by the contention the
/// placement creates (runnable threads per core) — with an idle-node
/// surcharge of `consolidation_bias` (keeps idle nodes drainable) and
/// saturation exclusion above `load_cap` threads per core (protects the
/// latency tail). Falls back to least-loaded scoring among eligible nodes
/// when no prediction is available; defers (-1) when every node is
/// saturated.
std::unique_ptr<Dispatcher> make_energy_aware(double load_cap,
                                              double consolidation_bias);

/// Factory keyed by the FleetConfig's policy + tuning fields.
std::unique_ptr<Dispatcher> make_dispatcher(const FleetConfig& cfg);

}  // namespace sb::fleet
