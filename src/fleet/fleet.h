// Fleet simulation: a rack of independent MPSoC nodes, each a full
// sim::Simulation driven in service mode, fed by one fleet-level dispatcher.
//
// The fleet layer owns three things the per-node simulator does not:
//   * a streaming job-arrival process (Zipf class popularity over a bursty
//     Poisson clock, see workload/arrival.h);
//   * a placement decision per job (fleet/dispatch.h) made from per-node
//     NodeView digests at every dispatch quantum;
//   * fleet-wide accounting — energy efficiency across nodes and exact
//     job-latency tails (queueing, wake-to-run, sojourn).
//
// Determinism contract: every stochastic component (arrival process, node
// spawn jitter, predictor synthesis) owns a private seeded Rng; nodes are
// stepped with common::parallel_for but each quantum writes only node-local
// state, so results are bit-identical for any --jobs worker count and the
// arrival stream is identical across dispatch policies (policy comparisons
// see the same jobs).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "common/percentile.h"
#include "fleet/dispatch.h"
#include "fleet/fleet_config.h"
#include "obs/sink.h"
#include "sim/metrics.h"
#include "workload/arrival.h"

namespace sb::sim {
class Simulation;
}  // namespace sb::sim

namespace sb::fleet {

/// One entry of the dispatch catalog: the benchmark a job class runs, how
/// many worker threads it forks, and the per-thread instruction budget that
/// makes the job terminate.
struct JobClass {
  std::string benchmark;
  int threads = 1;
  std::uint64_t per_thread_instructions = 10'000'000;
};

/// The default 8-class catalog: CPU-bound PARSEC/x264 jobs spanning small
/// compute kernels to memory-bound multi-thread jobs. Zipf rank 0 (most
/// popular) is the lightest class, mirroring real request skew.
std::vector<JobClass> default_catalog();

/// Lifecycle record of one job (all times are fleet-simulated ns;
/// kTimeNever where the stage was never reached).
struct JobRecord {
  std::uint64_t id = 0;
  int job_class = 0;
  int node = -1;            // -1: still queued at the fleet when time ran out
  TimeNs arrival = 0;
  TimeNs admitted = kTimeNever;   // dispatch time (queue = admitted - arrival)
  TimeNs first_run = kTimeNever;  // earliest thread dispatch on a core
  TimeNs completed = kTimeNever;  // last thread exit
};

/// Exact latency tails now live in common/percentile.h (shared with the
/// per-node wake-to-run latency report); re-exported here for the fleet
/// call sites and the determinism-matrix tests.
using sb::LatencyTail;
using sb::nearest_rank;
using sb::tail_of;

struct FleetResult {
  std::string dispatch_policy;
  std::string node_policy;
  int nodes = 0;
  TimeNs simulated = 0;

  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_dispatched = 0;
  std::uint64_t jobs_completed = 0;
  /// Placement attempts the dispatcher declined (job retried next quantum).
  std::uint64_t jobs_deferred = 0;

  /// Fleet-wide totals and the headline metric: instructions per joule
  /// across every node (the fleet analogue of IPS/W).
  std::uint64_t instructions = 0;
  double energy_j = 0;
  double je_inst_per_joule = 0;

  /// queue: arrival → dispatch; wake: dispatch → first thread on a core;
  /// sojourn: arrival → last thread exit (completed jobs only).
  LatencyTail queue;
  LatencyTail wake;
  LatencyTail sojourn;
  /// The gated tail: p99 of (queue + wake) over every dispatched job that
  /// started running — the latency a fleet operator actually promises.
  std::uint64_t p99_dispatch_to_run_ns = 0;

  /// Per-node final metrics, index order.
  std::vector<sim::SimulationResult> node_results;
  std::vector<JobRecord> jobs;

  /// Fleet-level observability (null unless trace/metrics enabled):
  /// fleet.quantum spans, fleet.dispatch instants, fleet.job.* histograms.
  std::shared_ptr<obs::RunObs> obs;
  /// Per-node metrics registries (node_obs only), run = node index + 1.
  std::vector<std::shared_ptr<obs::RunObs>> node_obs;
};

/// Serializes a FleetResult as a single deterministic JSON object
/// (fleet-level summary, latency tails, per-node rollup, job counts).
void write_fleet_json(std::ostream& os, const FleetResult& r);

class FleetSimulation {
 public:
  /// `node_platforms` is either one platform (replicated to cfg.nodes) or
  /// exactly cfg.nodes platforms (heterogeneous fleet shapes). The catalog
  /// must have >= 1 class; the arrival process draws classes modulo its
  /// size. Throws std::invalid_argument on shape mismatches.
  FleetSimulation(FleetConfig cfg,
                  std::vector<arch::Platform> node_platforms,
                  std::vector<JobClass> catalog = default_catalog());
  ~FleetSimulation();

  FleetSimulation(const FleetSimulation&) = delete;
  FleetSimulation& operator=(const FleetSimulation&) = delete;

  /// Runs the full window (cfg.duration in cfg.quantum steps) and returns
  /// the fleet metrics; callable once.
  FleetResult run();

  const FleetConfig& config() const { return cfg_; }
  const std::vector<JobClass>& catalog() const { return catalog_; }

 private:
  struct Node;
  struct PendingJob;

  void build_nodes(const std::vector<arch::Platform>& platforms);
  /// Predicted marginal instructions-per-joule of `job_class` on `node`:
  /// the free-core-count-weighted harmonic mean of the per-type
  /// predictions (the node's own balancer spreads load over the whole
  /// node, so the expected energy is the average joules-per-instruction
  /// across the cores still free, not the best single core's). Falls back
  /// to all cores when the node is fully busy; 0 when no prediction
  /// exists. The per-type table is cached per platform shape; the
  /// availability scan reads the node's live thread->core assignment,
  /// which is what makes the dispatcher sensing-driven rather than static.
  double best_eff_ipj(int node, int job_class);
  NodeView view_of(int node, int job_class);
  void pull_arrivals(TimeNs until);
  void dispatch_pending(TimeNs now, std::uint64_t quantum_idx);
  void step_nodes(TimeNs dt);
  void scan_completions();
  /// Records fleet-level telemetry frames for every --obs-window boundary
  /// crossed up to `now`. Runs after the step_nodes join, so it reads only
  /// settled node state — deterministic for any step_jobs worker count.
  void sample_timeseries(TimeNs now);

  FleetConfig cfg_;
  std::vector<JobClass> catalog_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Dispatcher> dispatcher_;
  workload::ArrivalProcess arrivals_;
  bool arrivals_done_ = false;
  workload::JobArrival next_arrival_{};
  bool have_next_arrival_ = false;
  /// Replay arrival source (cfg.arrival_replay): one trace pass of spawn
  /// events, looped by the trace span. Empty = MMPP clock.
  std::vector<workload::JobArrival> replay_base_;
  TimeNs replay_span_ = 0;
  std::size_t replay_idx_ = 0;
  TimeNs replay_offset_ = 0;
  std::uint64_t replay_next_id_ = 0;
  workload::JobArrival next_arrival_event();

  std::vector<PendingJob> pending_;   // FIFO fleet queue
  std::vector<JobRecord> jobs_;       // by arrival order; jobs_[i].id == i
  /// Predicted IPJ per job class per core type, cached by platform shape
  /// key — the table is a pure function of (shape, catalog), so permuting
  /// node order or policies cannot change any entry.
  std::map<std::string, std::vector<std::vector<double>>> eff_cache_;
  std::uint64_t jobs_deferred_ = 0;
  std::unique_ptr<obs::Sink> obs_;
  /// Telemetry-plane cadence state (cfg.timeseries / cfg.slo).
  TimeNs ts_next_ = 0;
  TimeNs ts_last_ = 0;
  double ts_prev_insts_ = 0;
  double ts_prev_joules_ = 0;
  bool ran_ = false;
};

}  // namespace sb::fleet
