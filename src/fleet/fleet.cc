#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/smart_balance.h"
#include "core/trainer.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulation.h"
#include "workload/benchmarks.h"
#include "workload/sched_replay.h"

namespace sb::fleet {

namespace {

/// Shape key for the eff-table cache: per-core type name + nominal
/// frequency fully determines the trained model and every synthesized
/// observation (training and synthesis are deterministic per shape).
std::string shape_key_of(const arch::Platform& p) {
  std::string key;
  for (CoreId c = 0; c < p.num_cores(); ++c) {
    const auto& params = p.params_of(c);
    key += params.name;
    key += '@';
    key += std::to_string(params.freq_mhz);
    key += ';';
  }
  return key;
}

workload::ArrivalProcess::Config make_arrival_config(const FleetConfig& cfg,
                                                     int num_classes) {
  workload::ArrivalProcess::Config acfg;
  acfg.rate_hz = cfg.rate_hz;
  acfg.burst_factor = cfg.burst_factor;
  acfg.num_classes = num_classes;
  acfg.zipf_theta = cfg.zipf_theta;
  acfg.seed = cfg.seed ^ 0x61727276ULL;  // "arrv"
  return acfg;
}

std::vector<JobClass> validated_catalog(std::vector<JobClass> catalog) {
  if (catalog.empty()) {
    throw std::invalid_argument("FleetSimulation: empty job catalog");
  }
  for (const auto& jc : catalog) {
    // Validate names eagerly so failures surface at construction time.
    (void)workload::BenchmarkLibrary::get(jc.benchmark);
    if (jc.threads < 1 || jc.threads > 256) {
      throw std::invalid_argument("FleetSimulation: job class '" +
                                  jc.benchmark +
                                  "' threads out of [1, 256]");
    }
    if (jc.per_thread_instructions == 0) {
      throw std::invalid_argument("FleetSimulation: job class '" +
                                  jc.benchmark +
                                  "' needs a finite instruction budget");
    }
  }
  return catalog;
}

}  // namespace

std::vector<JobClass> default_catalog() {
  // Zipf rank 0 is the most popular class; keep the head light (small
  // request-like kernels) and the tail heavier (batch-like multi-thread
  // jobs) — the skew real request streams show.
  return {
      {"blackscholes", 1, 8'000'000},
      {"swaptions", 2, 6'000'000},
      {"bodytrack", 2, 10'000'000},
      {"ferret", 1, 16'000'000},
      {"canneal", 1, 10'000'000},
      {"streamcluster", 2, 12'000'000},
      {"freqmine", 4, 8'000'000},
      {"x264_H_crew", 2, 14'000'000},
  };
}

// --- FleetSimulation ------------------------------------------------------

struct FleetSimulation::PendingJob {
  std::uint64_t id = 0;
};

struct FleetSimulation::Node {
  arch::Platform platform;
  std::string shape_key;
  std::unique_ptr<sim::Simulation> sim;
  /// Trained predictor of this node's SmartBalance policy (null for
  /// vanilla nodes — the eff table then uses direct model synthesis).
  const core::PredictorModel* model = nullptr;

  struct Active {
    std::uint64_t job = 0;
    std::vector<ThreadId> tids;
  };
  std::vector<Active> active;
  /// Live (not yet exited) fleet-job threads, refreshed every quantum.
  int live_threads = 0;
  /// Core count per type (index = CoreTypeId), for the availability scan.
  std::vector<int> type_cores;
};

FleetSimulation::FleetSimulation(FleetConfig cfg,
                                 std::vector<arch::Platform> node_platforms,
                                 std::vector<JobClass> catalog)
    : cfg_((cfg.validate(), cfg)),
      catalog_(validated_catalog(std::move(catalog))),
      dispatcher_(make_dispatcher(cfg_)),
      arrivals_(make_arrival_config(cfg_, static_cast<int>(catalog_.size()))) {
  if (node_platforms.empty()) {
    throw std::invalid_argument("FleetSimulation: no node platforms");
  }
  if (node_platforms.size() != 1 &&
      node_platforms.size() != static_cast<std::size_t>(cfg_.nodes)) {
    throw std::invalid_argument(
        "FleetSimulation: need 1 platform (replicated) or exactly "
        "cfg.nodes platforms");
  }
  const bool want_ts = cfg_.timeseries || !cfg_.slo.empty();
  if (cfg_.trace || cfg_.metrics || want_ts) {
    obs::ObsConfig ocfg;
    ocfg.metrics = cfg_.metrics;
    ocfg.trace = cfg_.trace;
    ocfg.timeseries.enabled = want_ts;
    ocfg.timeseries.window = cfg_.obs_window;
    ocfg.timeseries.capacity = cfg_.obs_capacity;
    if (!cfg_.slo.empty()) ocfg.slo = obs::SloConfig::parse(cfg_.slo);
    obs_ = std::make_unique<obs::Sink>(ocfg);
    ts_next_ = cfg_.obs_window;
  }
  if (!cfg_.arrival_replay.empty()) {
    // Replace the MMPP clock with the trace's spawn instants. The trace is
    // pure data, so the stream stays identical across dispatch policies and
    // worker counts — the same determinism contract the MMPP source keeps.
    const workload::ReplayTrace trace =
        workload::load_replay_trace_file(cfg_.arrival_replay);
    replay_span_ = trace.span();
    const int classes = static_cast<int>(catalog_.size());
    for (const auto& e : trace.events) {
      if (e.kind != workload::ReplayEvent::Kind::Spawn) continue;
      workload::JobArrival a;
      a.at = e.at;
      a.job_class = workload::replay_class_of(e.task, classes);
      replay_base_.push_back(a);
    }
  }
  build_nodes(node_platforms);
}

FleetSimulation::~FleetSimulation() = default;

void FleetSimulation::build_nodes(
    const std::vector<arch::Platform>& platforms) {
  // One factory for the whole fleet: smartbalance_factory caches its
  // trained model per platform shape, so a 16-node fleet of two shapes
  // trains exactly twice.
  const sim::BalancerFactory factory = cfg_.node_policy == "vanilla"
                                           ? sim::vanilla_factory()
                                           : sim::smartbalance_factory();
  nodes_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (int i = 0; i < cfg_.nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->platform =
        platforms.size() == 1 ? platforms[0]
                              : platforms[static_cast<std::size_t>(i)];
    node->shape_key = shape_key_of(node->platform);
    node->type_cores.assign(
        static_cast<std::size_t>(node->platform.num_types()), 0);
    for (CoreId c = 0; c < node->platform.num_cores(); ++c) {
      ++node->type_cores[static_cast<std::size_t>(node->platform.type_of(c))];
    }
    sim::SimulationConfig scfg;
    // Golden-ratio stride keeps node seeds well separated while staying a
    // pure function of (fleet seed, node index) — never of the policy.
    scfg.seed = cfg_.seed + static_cast<std::uint64_t>(i + 1) *
                                0x9e3779b97f4a7c15ULL;
    scfg.label = "node" + std::to_string(i);
    scfg.obs.metrics = cfg_.node_obs;
    // With node_obs, every node runs its own sampler at the fleet cadence;
    // the per-node series ride into the export as run = node index + 1.
    // SLO objectives stay fleet-level (they score the fleet's signals).
    if (cfg_.node_obs && (cfg_.timeseries || !cfg_.slo.empty())) {
      scfg.obs.timeseries.enabled = true;
      scfg.obs.timeseries.window = cfg_.obs_window;
      scfg.obs.timeseries.capacity = cfg_.obs_capacity;
    }
    node->sim = std::make_unique<sim::Simulation>(node->platform, scfg);
    node->sim->set_balancer(factory(*node->sim));
    if (const auto* sb = dynamic_cast<const core::SmartBalancePolicy*>(
            node->sim->kernel().balancer())) {
      node->model = &sb->model();
    }
    node->sim->begin_service();
    nodes_.push_back(std::move(node));
  }
}

double FleetSimulation::best_eff_ipj(int node, int job_class) {
  Node& n = *nodes_[static_cast<std::size_t>(node)];
  auto it = eff_cache_.find(n.shape_key);
  if (it == eff_cache_.end()) {
    // Build the full per-class x per-type table for this shape in one
    // pass. Synthesis is noise-free (counter_noise = 0) and every call
    // gets a fresh fixed-seed Rng, so the table is independent of
    // evaluation order.
    core::PredictorTrainer::Config tcfg;
    tcfg.counter_noise = 0.0;
    const core::PredictorTrainer trainer(n.sim->perf_model(),
                                         n.sim->power_model(), tcfg);
    std::vector<std::vector<double>> effs(
        catalog_.size(),
        std::vector<double>(static_cast<std::size_t>(n.platform.num_types()),
                            0.0));
    for (std::size_t c = 0; c < catalog_.size(); ++c) {
      const auto bench = workload::BenchmarkLibrary::get(catalog_[c].benchmark);
      const workload::WorkloadProfile& profile = bench.phases.front().profile;
      if (n.model != nullptr) {
        // SmartBalance node: score with *its* trained predictor — the same
        // model its balancer migrates by, so fleet placement and node
        // balancing agree on what efficient means.
        Rng rng(0x666c6565ULL ^ (static_cast<std::uint64_t>(c) << 8));
        const core::ThreadObservation obs =
            trainer.synthesize_observation(profile, 0, rng);
        for (CoreTypeId t = 0; t < n.platform.num_types(); ++t) {
          const double freq = n.platform.params_of_type(t).freq_mhz;
          const double ipc_hat =
              n.model->predict_ipc(obs, t, obs.freq_mhz, freq);
          const double p_hat = n.model->predict_power(t, ipc_hat);
          if (p_hat <= 0) continue;
          effs[c][static_cast<std::size_t>(t)] = ipc_hat * freq * 1e6 / p_hat;
        }
      } else {
        // Vanilla node: no trained predictor; fall back to the mechanistic
        // profile evaluation per type (instructions/s over watts).
        for (CoreTypeId t = 0; t < n.platform.num_types(); ++t) {
          Rng rng(0x76616e00ULL ^ (static_cast<std::uint64_t>(c) << 8) ^
                  static_cast<std::uint64_t>(t));
          const core::ThreadObservation obs =
              trainer.synthesize_observation(profile, t, rng);
          if (obs.power_w > 0) {
            effs[c][static_cast<std::size_t>(t)] = obs.ips / obs.power_w;
          }
        }
      }
    }
    it = eff_cache_.emplace(n.shape_key, std::move(effs)).first;
  }
  const auto& per_type =
      it->second[static_cast<std::size_t>(job_class) % catalog_.size()];

  // Availability scan: count the node's cores currently hosting a live
  // fleet thread, per type. A node whose efficient cores are all taken
  // should not keep winning placements on their reputation.
  std::vector<int> busy(per_type.size(), 0);
  for (const auto& a : n.active) {
    for (const ThreadId tid : a.tids) {
      const auto& t = n.sim->kernel().task(tid);
      if (t.alive() && t.cpu != kInvalidCore) {
        ++busy[static_cast<std::size_t>(n.platform.type_of(t.cpu))];
      }
    }
  }
  // The node's balancer — not the fleet — decides which cores the job's
  // threads actually run on, and SmartBalance spreads load across the whole
  // node. The honest marginal efficiency is therefore the harmonic mean of
  // the per-type predictions over the cores still free (free-core-count
  // weighted): joules per instruction average linearly, efficiency does
  // not. Falls back to all cores when the node is fully busy.
  for (int pass = 0; pass < 2; ++pass) {
    double weight = 0.0;
    double joules_per_inst = 0.0;
    for (CoreTypeId t = 0; t < n.platform.num_types(); ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const int count = pass == 0
                            ? std::max(0, n.type_cores[ti] - busy[ti])
                            : n.type_cores[ti];
      if (count <= 0 || per_type[ti] <= 0) continue;
      weight += count;
      joules_per_inst += count / per_type[ti];
    }
    if (weight > 0) return weight / joules_per_inst;
  }
  return 0.0;
}

NodeView FleetSimulation::view_of(int node, int job_class) {
  const Node& n = *nodes_[static_cast<std::size_t>(node)];
  NodeView v;
  v.index = node;
  v.cores = n.platform.num_cores();
  v.runnable_threads = n.live_threads;
  v.idle = n.active.empty();
  v.best_eff_ipj = best_eff_ipj(node, job_class);
  return v;
}

workload::JobArrival FleetSimulation::next_arrival_event() {
  if (replay_base_.empty()) return arrivals_.next();
  if (replay_idx_ >= replay_base_.size()) {
    if (replay_span_ <= 0) {
      // A zero-span trace (every spawn at one instant) cannot loop; close
      // the stream by handing back an arrival beyond the window.
      workload::JobArrival done;
      done.at = cfg_.duration;
      return done;
    }
    replay_idx_ = 0;
    replay_offset_ += replay_span_;
  }
  workload::JobArrival a = replay_base_[replay_idx_++];
  a.at += replay_offset_;
  a.id = replay_next_id_++;
  return a;
}

void FleetSimulation::pull_arrivals(TimeNs until) {
  while (!arrivals_done_) {
    if (!have_next_arrival_) {
      next_arrival_ = next_arrival_event();
      have_next_arrival_ = true;
      if (next_arrival_.at >= cfg_.duration) {
        // The stream is infinite; stop drawing once it leaves the window.
        arrivals_done_ = true;
        break;
      }
    }
    if (next_arrival_.at > until) break;
    JobRecord rec;
    rec.id = next_arrival_.id;
    rec.job_class = next_arrival_.job_class;
    rec.arrival = next_arrival_.at;
    jobs_.push_back(rec);
    pending_.push_back(PendingJob{rec.id});
    if (obs_) obs_->metrics().counter("fleet.jobs.arrived").add();
    have_next_arrival_ = false;
  }
}

void FleetSimulation::dispatch_pending(TimeNs now, std::uint64_t quantum_idx) {
  while (!pending_.empty()) {
    JobRecord& rec = jobs_[static_cast<std::size_t>(pending_.front().id)];
    const JobClass& jc =
        catalog_[static_cast<std::size_t>(rec.job_class) % catalog_.size()];
    JobView jv;
    jv.job_class = rec.job_class;
    jv.threads = jc.threads;
    jv.total_instructions =
        jc.per_thread_instructions * static_cast<std::uint64_t>(jc.threads);
    std::vector<NodeView> views;
    views.reserve(nodes_.size());
    for (int i = 0; i < cfg_.nodes; ++i) {
      views.push_back(view_of(i, rec.job_class));
    }
    const int picked = dispatcher_->pick(jv, views);
    if (picked < 0 || picked >= cfg_.nodes) {
      // FIFO head-of-line: a deferred head blocks the queue so job order
      // (and therefore per-node admission order) stays deterministic.
      ++jobs_deferred_;
      if (obs_) obs_->metrics().counter("fleet.jobs.deferred").add();
      break;
    }
    Node& n = *nodes_[static_cast<std::size_t>(picked)];
    Node::Active active;
    active.job = rec.id;
    active.tids =
        n.sim->admit_benchmark(jc.benchmark, jc.threads,
                               jc.per_thread_instructions);
    n.active.push_back(std::move(active));
    n.live_threads += jc.threads;
    rec.node = picked;
    rec.admitted = now;
    if (obs_) {
      obs_->metrics().counter("fleet.jobs.dispatched").add();
      obs_->metrics()
          .histogram("fleet.job.queue_ns")
          .record(static_cast<std::uint64_t>(rec.admitted - rec.arrival));
      if (auto* tracer = obs_->tracer()) {
        tracer->instant("fleet.dispatch", static_cast<std::uint64_t>(now),
                        quantum_idx,
                        {{"node", static_cast<double>(picked)},
                         {"class", static_cast<double>(rec.job_class)},
                         {"queue_ns",
                          static_cast<double>(rec.admitted - rec.arrival)}});
      }
    }
    pending_.erase(pending_.begin());
  }
}

void FleetSimulation::step_nodes(TimeNs dt) {
  const int workers = common::resolve_jobs(cfg_.step_jobs);
  // parallel_for workers run detached: an escaping exception would
  // terminate the process, so contain per-node failures and rethrow the
  // lowest-indexed one after the join.
  std::vector<std::exception_ptr> errors(nodes_.size());
  common::parallel_for(nodes_.size(), workers,
                       [&](std::size_t i, int /*worker*/) {
                         try {
                           nodes_[i]->sim->advance_service(dt);
                         } catch (...) {
                           errors[i] = std::current_exception();
                         }
                       });
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void FleetSimulation::sample_timeseries(TimeNs now) {
  if (!obs_ || obs_->timeseries() == nullptr) return;
  obs::TimeseriesRecorder& rec = *obs_->timeseries();
  obs::MetricsRegistry& m = obs_->metrics();
  while (ts_next_ <= now) {
    double insts = 0;
    double joules = 0;
    for (const auto& np : nodes_) {
      insts += static_cast<double>(np->sim->kernel().total_instructions());
      joules += np->sim->kernel().energy().total_joules();
    }
    const double secs = to_seconds(ts_next_ - ts_last_);
    rec.begin_frame(static_cast<std::uint64_t>(ts_next_));
    rec.record("je", joules > 0 ? insts / joules : 0.0);
    // Windowed efficiency: inst/J over this frame alone. Unlike cumulative
    // J_E it has no cold-start ramp and tracks the rack's *current*
    // operating point — the natural target for burn-rate SLO floors.
    const double d_joules = joules - ts_prev_joules_;
    rec.record("je_w",
               d_joules > 0 ? (insts - ts_prev_insts_) / d_joules : 0.0);
    rec.record("gips", (insts - ts_prev_insts_) / secs / 1e9);
    rec.record("watts", (joules - ts_prev_joules_) / secs);
    ts_prev_insts_ = insts;
    ts_prev_joules_ = joules;
    rec.record("fleet.pending", static_cast<double>(pending_.size()));
    rec.record("fleet.jobs.arrived", static_cast<double>(jobs_.size()));
    rec.record("fleet.jobs.dispatched",
               static_cast<double>(m.counter("fleet.jobs.dispatched").value));
    rec.record("fleet.jobs.completed",
               static_cast<double>(m.counter("fleet.jobs.completed").value));
    rec.record("fleet.jobs.deferred", static_cast<double>(jobs_deferred_));
    const obs::Histogram& wake = m.histogram("fleet.job.wake_to_run_ns");
    rec.record("p99_wake_us",
               wake.count() > 0
                   ? static_cast<double>(wake.quantile(0.99)) / 1e3
                   : 0.0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::string prefix = "node." + std::to_string(i);
      rec.record(prefix + ".live_threads",
                 static_cast<double>(nodes_[i]->live_threads));
      rec.record(prefix + ".active_jobs",
                 static_cast<double>(nodes_[i]->active.size()));
    }
    obs_->complete_frame();
    ts_last_ = ts_next_;
    ts_next_ += cfg_.obs_window;
  }
}

void FleetSimulation::scan_completions() {
  for (auto& node_ptr : nodes_) {
    Node& n = *node_ptr;
    int live = 0;
    for (auto it = n.active.begin(); it != n.active.end();) {
      JobRecord& rec = jobs_[static_cast<std::size_t>(it->job)];
      bool all_exited = true;
      TimeNs latest_exit = 0;
      TimeNs earliest_run = kTimeNever;
      for (ThreadId tid : it->tids) {
        const os::Task& t = n.sim->kernel().task(tid);
        if (t.first_dispatched_at != kTimeNever) {
          earliest_run = std::min(earliest_run, t.first_dispatched_at);
        }
        if (t.alive()) {
          all_exited = false;
          ++live;
        } else {
          latest_exit = std::max(latest_exit, t.exited_at);
        }
      }
      if (rec.first_run == kTimeNever && earliest_run != kTimeNever) {
        rec.first_run = earliest_run;
        if (obs_) {
          obs_->metrics()
              .histogram("fleet.job.wake_to_run_ns")
              .record(static_cast<std::uint64_t>(rec.first_run -
                                                 rec.admitted));
        }
      }
      if (all_exited) {
        rec.completed = latest_exit;
        if (obs_) {
          obs_->metrics().counter("fleet.jobs.completed").add();
          obs_->metrics()
              .histogram("fleet.job.sojourn_ns")
              .record(static_cast<std::uint64_t>(rec.completed -
                                                 rec.arrival));
        }
        it = n.active.erase(it);
      } else {
        ++it;
      }
    }
    n.live_threads = live;
  }
}

FleetResult FleetSimulation::run() {
  if (ran_) throw std::logic_error("FleetSimulation::run called twice");
  ran_ = true;

  TimeNs t = 0;
  std::uint64_t quantum_idx = 0;
  while (t < cfg_.duration) {
    const TimeNs step = std::min(cfg_.quantum, cfg_.duration - t);
    if (obs_) obs_->begin_epoch(quantum_idx, static_cast<std::uint64_t>(t));
    pull_arrivals(t);
    const std::size_t queued_before = pending_.size();
    dispatch_pending(t, quantum_idx);
    const std::size_t dispatched_now = queued_before - pending_.size();
    step_nodes(step);
    scan_completions();
    sample_timeseries(t + step);
    if (obs_ && obs_->tracer() != nullptr) {
      // Simulated timeline, simulated duration: the span is a deterministic
      // function of the run, unlike the wall-clock spans of the balancing
      // loop — the fleet trace diffs clean across worker counts.
      obs_->tracer()->span(
          "fleet.quantum", static_cast<std::uint64_t>(t),
          static_cast<std::uint64_t>(step), quantum_idx,
          {{"dispatched", static_cast<double>(dispatched_now)},
           {"queued", static_cast<double>(pending_.size())},
           {"nodes", static_cast<double>(cfg_.nodes)}});
    }
    t += step;
    ++quantum_idx;
  }

  FleetResult r;
  r.dispatch_policy = dispatcher_->name();
  r.node_policy = cfg_.node_policy;
  r.nodes = cfg_.nodes;
  r.simulated = t;
  r.jobs_arrived = jobs_.size();
  r.jobs_deferred = jobs_deferred_;

  std::vector<std::uint64_t> queue_ns, wake_ns, sojourn_ns, arrival_to_run_ns;
  for (const JobRecord& j : jobs_) {
    if (j.admitted == kTimeNever) continue;
    ++r.jobs_dispatched;
    queue_ns.push_back(static_cast<std::uint64_t>(j.admitted - j.arrival));
    if (j.first_run == kTimeNever) continue;
    wake_ns.push_back(static_cast<std::uint64_t>(j.first_run - j.admitted));
    arrival_to_run_ns.push_back(
        static_cast<std::uint64_t>(j.first_run - j.arrival));
    if (j.completed == kTimeNever) continue;
    ++r.jobs_completed;
    sojourn_ns.push_back(static_cast<std::uint64_t>(j.completed - j.arrival));
  }
  r.queue = tail_of(queue_ns);
  r.wake = tail_of(wake_ns);
  r.sojourn = tail_of(sojourn_ns);
  r.p99_dispatch_to_run_ns = nearest_rank(arrival_to_run_ns, 0.99);
  r.jobs = jobs_;

  r.node_results.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    sim::SimulationResult res = nodes_[i]->sim->finish_service();
    r.instructions += res.instructions;
    r.energy_j += res.energy_j;
    if (res.obs) {
      auto node_obs = std::make_shared<obs::RunObs>(*res.obs);
      node_obs->run = static_cast<int>(i) + 1;  // 0 is the fleet itself
      r.node_obs.push_back(std::move(node_obs));
    }
    r.node_results.push_back(std::move(res));
  }
  r.je_inst_per_joule =
      r.energy_j > 0 ? static_cast<double>(r.instructions) / r.energy_j : 0;

  if (obs_) {
    auto& m = obs_->metrics();
    m.gauge("fleet.nodes").set(static_cast<double>(cfg_.nodes));
    m.gauge("fleet.je_inst_per_joule").set(r.je_inst_per_joule);
    r.obs = std::make_shared<obs::RunObs>(obs_->snapshot("fleet"));
    r.obs->run = 0;
  }
  return r;
}

// --- JSON export ----------------------------------------------------------

namespace {

void tail_json(std::ostream& os, const char* key, const LatencyTail& t) {
  os << "\"" << key << "\":{\"count\":" << t.count << ",\"mean_ns\":"
     << t.mean_ns << ",\"p50_ns\":" << t.p50_ns << ",\"p95_ns\":" << t.p95_ns
     << ",\"p99_ns\":" << t.p99_ns << ",\"max_ns\":" << t.max_ns << "}";
}

}  // namespace

void write_fleet_json(std::ostream& os, const FleetResult& r) {
  os << std::setprecision(12);
  os << "{\"dispatch_policy\":\"" << sim::json_escape(r.dispatch_policy)
     << "\",\"node_policy\":\"" << sim::json_escape(r.node_policy)
     << "\",\"nodes\":" << r.nodes << ",\"simulated_ms\":"
     << to_millis(r.simulated) << ",\"jobs\":{\"arrived\":" << r.jobs_arrived
     << ",\"dispatched\":" << r.jobs_dispatched
     << ",\"completed\":" << r.jobs_completed
     << ",\"deferred\":" << r.jobs_deferred << "}";
  os << ",\"instructions\":" << r.instructions << ",\"energy_j\":"
     << r.energy_j << ",\"je_inst_per_joule\":" << r.je_inst_per_joule;
  os << ",";
  tail_json(os, "queue", r.queue);
  os << ",";
  tail_json(os, "wake_to_run", r.wake);
  os << ",";
  tail_json(os, "sojourn", r.sojourn);
  os << ",\"p99_dispatch_to_run_ns\":" << r.p99_dispatch_to_run_ns;
  os << ",\"node_results\":[";
  for (std::size_t i = 0; i < r.node_results.size(); ++i) {
    const auto& n = r.node_results[i];
    if (i) os << ",";
    os << "{\"label\":\"" << sim::json_escape(n.label)
       << "\",\"policy\":\"" << sim::json_escape(n.policy)
       << "\",\"instructions\":" << n.instructions << ",\"energy_j\":"
       << n.energy_j << ",\"ips_per_watt\":" << n.ips_per_watt
       << ",\"migrations\":" << n.migrations << "}";
  }
  os << "]}";
}

}  // namespace sb::fleet
