// Prediction-audit flight recorder: deterministic sim-time telemetry that
// closes the sense → predict → balance loop on *decision quality*.
//
// Every epoch the balancer commits two kinds of forecasts: per-thread
// predicted GIPS/watts on the core each thread will run on next (the S/P
// characterization columns), and a predicted objective gain ΔJ_E for the
// allocation it applies. One epoch later the sensing layer reports what
// actually happened. The recorder joins the two streams by thread id and
// produces three record ledgers:
//
//   thread     predicted vs observed GIPS / power for a thread whose next
//              epoch landed on the predicted core (signed relative residual)
//   epoch      SA trajectory summary + decision regret (predicted ΔJ vs the
//              realized ΔJ measured one epoch later) + health/degraded state
//   migration  per-migration attribution: predicted efficiency gain vs the
//              first warmed-up measurement on the destination core
//
// Online per-(src,dst)-core-type EWMAs of the absolute residuals feed a
// drift detector; a rising edge above the threshold yields a drift event
// the caller surfaces as a `predictor.drift` trace instant (and may escalate
// through the degraded-mode machinery).
//
// Everything here is sim-time only — epochs, tids, cores, objective values.
// No host clocks, no RNG, no feedback into the simulation: like the rest of
// the obs layer the recorder is strictly read-only, and its export is a
// deterministic function of the simulated run (bit-identical across --jobs).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace sb::obs {

struct AuditConfig {
  /// Per-ledger ring capacity (records); oldest records drop on overflow.
  std::size_t capacity = 4096;
  /// EWMA smoothing for the per-(src,dst) residual trackers.
  double ewma_alpha = 0.25;
  /// |relative residual| EWMA level that trips the drift detector.
  double drift_threshold = 0.25;
  /// Joins a (src,dst) pair must accumulate before it may trip (debounce:
  /// the first few joins after a migration carry cold-start noise).
  std::uint64_t drift_min_joins = 8;
  /// Epochs a pending migration waits for a warmed-up measurement on its
  /// destination core before being closed out unvalidated (must exceed the
  /// balancer's migration cooldown, during which sensing serves the cached
  /// pre-migration characterization).
  std::uint64_t migration_join_max_age = 6;
};

/// One joined thread prediction: forecast at `epoch - 1`, validated against
/// the observation sensed at `epoch`. Residuals are signed and relative to
/// the observed value: err = (obs - pred) / obs.
struct ThreadAuditRecord {
  std::uint64_t epoch = 0;
  std::int64_t tid = 0;
  std::int32_t core = -1;      // core the thread was observed on (== predicted)
  std::int32_t src_type = -1;  // core type the forecast extrapolated from
  std::int32_t dst_type = -1;  // core type forecast / observed on
  double pred_gips = 0;
  double obs_gips = 0;
  double pred_w = 0;
  double obs_w = 0;
  double gips_err = 0;
  double power_err = 0;
  /// Residuals of the *raw* (pre-adaptation) Eq. 8 forecast, so a single
  /// export scores the online bias/gain correction as a first-class column
  /// (raw == corrected, and these equal gips_err/power_err, when the
  /// balancer runs unadapted).
  double raw_gips_err = 0;
  double raw_power_err = 0;
};

/// One balance pass: SA trajectory, applied decision, and — filled in one
/// epoch later — the realized objective delta and regret.
struct EpochAuditRecord {
  std::uint64_t epoch = 0;
  double initial_j = 0;  // objective of the incumbent allocation (predicted)
  double final_j = 0;    // objective of the SA result (predicted)
  std::int32_t applied = 0;  // 1 when the allocation was actually applied
  double pred_dj = 0;        // predicted ΔJ of the applied allocation (0 if not)
  double realized_j = 0;     // observed objective when this pass sensed
  double realized_dj = 0;    // realized_j(epoch+1) - realized_j(epoch)
  std::int32_t realized_valid = 0;
  double regret = 0;  // pred_dj - realized_dj (valid iff realized_valid)
  std::int32_t migrations = 0;
  std::int32_t joined = 0;    // thread predictions from this pass that joined
  std::int32_t unjoined = 0;  // …and that could not be validated
  double healthy_fraction = 1.0;
  std::int32_t degraded = 0;
  std::int32_t sa_iterations = 0;
  std::int32_t sa_accepted_worse = 0;
  std::int32_t sa_improved = 0;
  std::int64_t faults_injected = 0;  // injector deltas attributed to this pass
};

/// One migration: predicted efficiency gain at decision time vs the first
/// warmed-up measurement on the destination core (within the join window).
struct MigrationAuditRecord {
  std::uint64_t epoch = 0;  // pass that performed the migration
  std::int64_t tid = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t src_type = -1;
  std::int32_t dst_type = -1;
  double pred_gain = 0;  // predicted GIPS/W on dst minus measured on src
  double realized_gain = 0;
  std::int32_t realized_valid = 0;
};

/// Drift-detector rising edge for one (src,dst) core-type pair.
struct DriftEvent {
  std::uint64_t epoch = 0;
  std::int32_t src_type = -1;
  std::int32_t dst_type = -1;
  std::int32_t metric = 0;  // 0 = throughput residual, 1 = power residual
  double ewma = 0;
  std::uint64_t joins = 0;
};

/// Final state of one (src,dst) residual tracker.
struct DriftState {
  std::int32_t src_type = -1;
  std::int32_t dst_type = -1;
  std::uint64_t joins = 0;
  double ewma_gips = 0;
  double ewma_power = 0;
  std::int32_t active = 0;
  /// Signed residual EWMAs (the drift EWMAs above track |residual|): their
  /// sign says which way the predictor leans, which is exactly what the
  /// online bias/gain corrector consumes.
  double ewma_gips_signed = 0;
  double ewma_power_signed = 0;
};

/// The observation subset the recorder joins against — mirrors the fields
/// of core::ThreadObservation the audit needs, without depending on core/.
struct AuditObservation {
  std::int64_t tid = 0;
  std::int32_t core = -1;
  std::int32_t core_type = -1;
  double gips = 0;
  double watts = 0;
  bool measured = false;
};

/// Per-thread forecast registered after a balance pass: where the thread
/// will run next epoch and what S/P predict for it there.
struct ThreadPrediction {
  std::int64_t tid = 0;
  std::int32_t core = -1;
  std::int32_t src_type = -1;
  std::int32_t dst_type = -1;
  double pred_gips = 0;
  double pred_w = 0;
  /// Pre-adaptation forecast for the same cell. Callers that don't adapt
  /// may leave these 0: record_prediction backfills them from
  /// pred_gips/pred_w so raw == corrected in unadapted exports.
  double raw_pred_gips = 0;
  double raw_pred_w = 0;
};

/// Decision summary registered after a balance pass (epoch ledger input).
struct EpochDecision {
  std::uint64_t epoch = 0;
  double initial_j = 0;
  double final_j = 0;
  bool applied = false;
  double pred_dj = 0;
  int migrations = 0;
  double healthy_fraction = 1.0;
  bool degraded = false;
  int sa_iterations = 0;
  int sa_accepted_worse = 0;
  int sa_improved = 0;
  std::int64_t faults_injected = 0;
};

/// Migration registered at apply time; `src_eff` is the thread's measured
/// GIPS/W on the source core, the baseline the realized gain is against.
struct MigrationPrediction {
  std::int64_t tid = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t src_type = -1;
  std::int32_t dst_type = -1;
  double pred_gain = 0;
  double src_eff = 0;
};

/// Everything the recorder produced for one run, detached and mergeable —
/// carried alongside the metrics registry and trace snapshot in RunObs.
struct AuditSnapshot {
  std::vector<ThreadAuditRecord> threads;
  std::vector<EpochAuditRecord> epochs;
  std::vector<MigrationAuditRecord> migrations;
  std::vector<DriftEvent> drift_events;
  std::vector<DriftState> drift_states;  // keyed (src,dst), map order
  std::uint64_t joined = 0;
  std::uint64_t unjoined = 0;
  std::uint64_t predictions = 0;
  std::uint64_t dropped_threads = 0;
  std::uint64_t dropped_epochs = 0;
  std::uint64_t dropped_migrations = 0;
};

class AuditRecorder {
 public:
  explicit AuditRecorder(AuditConfig cfg);

  const AuditConfig& config() const { return cfg_; }

  /// Phase A of every pass, right after sensing: joins the predictions
  /// registered last pass against this pass's observations, finalizes the
  /// previous epoch record (realized ΔJ / regret), closes out matured
  /// migrations and advances the drift EWMAs. `realized_j` is the observed
  /// objective computed from the same observations. Returns the drift
  /// rising edges this join produced (usually empty).
  std::vector<DriftEvent> join(std::uint64_t epoch,
                               const std::vector<AuditObservation>& obs,
                               double realized_j);

  /// Phase B: the pass's decision summary (opens the epoch ledger entry).
  void record_decision(const EpochDecision& d);
  /// Phase B: one forecast per balanced thread.
  void record_prediction(const ThreadPrediction& p);
  /// Phase B: one entry per applied migration.
  void record_migration(const MigrationPrediction& m);

  /// True while any (src,dst) residual EWMA sits above the threshold.
  bool drift_active() const;

  std::uint64_t joined() const { return joined_; }
  std::uint64_t unjoined() const { return unjoined_; }
  std::uint64_t predictions() const { return predictions_; }

  AuditSnapshot snapshot() const;

 private:
  /// Drop-oldest ring with stable sequence numbers, so a pending entry can
  /// be finalized in place later if (and only if) it is still retained.
  template <class T>
  class Ring {
   public:
    explicit Ring(std::size_t capacity) : capacity_(capacity) {}

    /// Returns the pushed record's sequence number.
    std::uint64_t push(T rec) {
      if (buf_.size() < capacity_) {
        buf_.push_back(std::move(rec));
      } else {
        buf_[head_] = std::move(rec);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
      }
      return seq_++;
    }

    /// Still-retained record by sequence number, else nullptr.
    T* find(std::uint64_t seq) {
      if (seq >= seq_ || seq < dropped_) return nullptr;
      const std::size_t idx = (head_ + (seq - dropped_)) % buf_.size();
      return &buf_[idx];
    }

    std::uint64_t dropped() const { return dropped_; }

    std::vector<T> drain_copy() const {
      std::vector<T> out;
      out.reserve(buf_.size());
      for (std::size_t i = 0; i < buf_.size(); ++i) {
        out.push_back(buf_[(head_ + i) % buf_.size()]);
      }
      return out;
    }

   private:
    std::size_t capacity_;
    std::vector<T> buf_;
    std::size_t head_ = 0;     // index of the oldest retained record
    std::uint64_t seq_ = 0;    // total records ever pushed
    std::uint64_t dropped_ = 0;
  };

  struct PendingMigration {
    MigrationPrediction pred;
    std::uint64_t epoch = 0;  // pass that migrated
    std::uint64_t seq = 0;    // ring slot of its (open) ledger record
  };

  struct PairTracker {
    std::uint64_t joins = 0;
    double ewma_gips = 0;
    double ewma_power = 0;
    double sewma_gips = 0;  // signed (drift tracking stays on |residual|)
    double sewma_power = 0;
    bool active = false;
  };

  AuditConfig cfg_;
  Ring<ThreadAuditRecord> threads_;
  Ring<EpochAuditRecord> epochs_;
  Ring<MigrationAuditRecord> migrations_;
  std::vector<DriftEvent> drift_events_;

  /// Forecasts awaiting next epoch's observations.
  std::vector<ThreadPrediction> pending_preds_;
  std::uint64_t pending_epoch_ = 0;  // pass the forecasts were made at
  bool pending_valid_ = false;
  /// The previous pass's (still open) epoch ledger entry.
  std::uint64_t open_epoch_seq_ = 0;
  bool open_epoch_valid_ = false;
  double open_epoch_realized_j_ = 0;
  /// Migrations awaiting a warmed-up destination measurement.
  std::vector<PendingMigration> pending_migrations_;

  std::map<std::pair<std::int32_t, std::int32_t>, PairTracker> pairs_;

  std::uint64_t joined_ = 0;
  std::uint64_t unjoined_ = 0;
  std::uint64_t predictions_ = 0;
};

}  // namespace sb::obs
