#include "obs/timeseries.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/trace.h"

namespace sb::obs {

namespace {

constexpr char kSampleCols[] = "t_ns,signal,value";

/// Shortest round-trip double (see obs/audit_writer.cc for rationale).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf");
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

std::uint64_t parse_u64(std::string_view token, std::string_view what,
                        std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t v = 0;
  const auto res = std::from_chars(token.data(), token.data() + token.size(), v);
  if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
    throw std::invalid_argument("timeseries config: bad " + std::string(what) +
                                " '" + std::string(token) + "'");
  }
  if (v < lo || v > hi) {
    throw std::invalid_argument("timeseries config: " + std::string(what) +
                                " " + std::string(token) + " out of [" +
                                std::to_string(lo) + ", " + std::to_string(hi) +
                                "]");
  }
  return v;
}

/// Ordered, deduped run list for the exporters: stamped run index is the
/// merge key, exactly like the audit writer.
std::vector<const RunObs*> ordered_runs(const std::vector<const RunObs*>& runs,
                                        bool timeseries_only) {
  std::vector<const RunObs*> ordered;
  ordered.reserve(runs.size());
  for (const RunObs* r : runs) {
    if (r == nullptr) continue;
    if (timeseries_only && !r->timeseries_enabled) continue;
    ordered.push_back(r);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RunObs* a, const RunObs* b) {
                     return a->run < b->run;
                   });
  return ordered;
}

}  // namespace

TimeseriesConfig TimeseriesConfig::parse(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("timeseries config: empty spec");
  }
  TimeseriesConfig cfg;
  cfg.enabled = true;
  const std::size_t colon = text.find(':');
  const std::string_view window_tok =
      std::string_view(text).substr(0, colon);
  // Integer milliseconds round-trip exactly (no float ms -> ns drift).
  cfg.window = milliseconds(static_cast<std::int64_t>(
      parse_u64(window_tok, "window ms", 1, 60'000)));
  if (colon != std::string::npos) {
    const std::string_view cap_tok = std::string_view(text).substr(colon + 1);
    cfg.capacity = static_cast<std::size_t>(
        parse_u64(cap_tok, "capacity", 64, std::size_t{1} << 24));
    if (text.find(':', colon + 1) != std::string::npos) {
      throw std::invalid_argument(
          "timeseries config: want <window_ms>[:<capacity>], got '" + text +
          "'");
    }
  }
  return cfg;
}

std::string TimeseriesConfig::canonical() const {
  std::string out;
  append_u64(out, static_cast<std::uint64_t>(window / milliseconds(1)));
  out += ':';
  append_u64(out, capacity);
  return out;
}

TimeseriesRecorder::TimeseriesRecorder(TimeseriesConfig cfg)
    : cfg_(cfg) {
  cfg_.capacity = std::max<std::size_t>(cfg_.capacity, 1);
  if (cfg_.window <= 0) cfg_.window = milliseconds(10);
  // Pre-grow everything the record path touches: sampling must stay
  // allocation-free so the tsdb-on epoch-pass alloc gate is exact.
  ring_.reserve(std::min<std::size_t>(cfg_.capacity, std::size_t{1} << 16));
  frame_.reserve(64);
}

std::uint32_t TimeseriesRecorder::intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string(name), id);
  return id;
}

void TimeseriesRecorder::begin_frame(std::uint64_t t_ns) {
  frame_t_ns_ = t_ns;
  frame_.clear();
  ++frames_;
}

void TimeseriesRecorder::record(std::uint32_t signal, double value) {
  TimeseriesSample s;
  s.t_ns = frame_t_ns_;
  s.signal = signal;
  s.value = value;
  if (ring_.size() < cfg_.capacity) {
    ring_.push_back(s);
  } else {
    // Sample k lives at slot k % capacity, so the slot of the oldest held
    // sample (seq_ - capacity) is exactly seq_ % capacity.
    ring_[static_cast<std::size_t>(seq_ % cfg_.capacity)] = s;
    ++dropped_;
  }
  ++seq_;
  frame_.emplace_back(signal, value);
}

double TimeseriesRecorder::frame_value(std::uint32_t signal,
                                       double fallback) const {
  for (auto it = frame_.rbegin(); it != frame_.rend(); ++it) {
    if (it->first == signal) return it->second;
  }
  return fallback;
}

TimeseriesRecorder::Snapshot TimeseriesRecorder::snapshot() const {
  Snapshot out;
  out.names = names_;
  out.dropped = dropped_;
  out.frames = frames_;
  out.window = cfg_.window;
  out.samples.reserve(ring_.size());
  if (ring_.size() < cfg_.capacity) {
    out.samples = ring_;
  } else {
    const std::size_t head = static_cast<std::size_t>(seq_ % cfg_.capacity);
    out.samples.insert(out.samples.end(), ring_.begin() + head, ring_.end());
    out.samples.insert(out.samples.end(), ring_.begin(), ring_.begin() + head);
  }
  return out;
}

// --- exporters ------------------------------------------------------------

const char* timeseries_sample_columns() { return kSampleCols; }

void write_timeseries(std::ostream& os,
                      const std::vector<const RunObs*>& runs) {
  os << "#sb-tsdb v" << kTimeseriesSchemaVersion << '\n';
  os << "#columns sample " << kSampleCols << '\n';
  const auto ordered = ordered_runs(runs, /*timeseries_only=*/true);
  std::string line;
  for (const RunObs* r : ordered) {
    const auto& ts = r->timeseries;
    os << "#run " << r->run << ' ' << (r->label.empty() ? "run" : r->label)
       << '\n';
    os << "#meta " << r->run << " window_ns=" << ts.window << '\n';
    for (const TimeseriesSample& s : ts.samples) {
      line = "sample,";
      append_u64(line, s.t_ns);
      line += ',';
      line += ts.name_of(s.signal);
      line += ',';
      append_double(line, s.value);
      line += '\n';
      os << line;
    }
    os << "#counters " << r->run << " samples=" << ts.samples.size()
       << " frames=" << ts.frames << " dropped=" << ts.dropped << '\n';
  }
  os << "#summary runs=" << ordered.size() << '\n';
}

void write_timeseries_json(std::ostream& os,
                           const std::vector<const RunObs*>& runs) {
  const auto ordered = ordered_runs(runs, /*timeseries_only=*/true);
  os << "{\"schema\":\"sb-tsdb\",\"version\":" << kTimeseriesSchemaVersion
     << ",\"runs\":[";
  bool first_run = true;
  std::string num;
  for (const RunObs* r : ordered) {
    const auto& ts = r->timeseries;
    if (!first_run) os << ',';
    first_run = false;
    os << "{\"run\":" << r->run << ",\"label\":\""
       << (r->label.empty() ? "run" : r->label) << "\",\"window_ns\":"
       << ts.window << ",\"frames\":" << ts.frames << ",\"dropped\":"
       << ts.dropped << ",\"samples\":[";
    bool first = true;
    for (const TimeseriesSample& s : ts.samples) {
      if (!first) os << ',';
      first = false;
      os << "[" << s.t_ns << ",\"" << ts.name_of(s.signal) << "\",";
      num.clear();
      append_double(num, s.value);
      // JSON has no inf/nan literals; the recorder never produces them,
      // render defensively as null.
      os << (std::isfinite(s.value) ? num : "null") << ']';
    }
    os << "]}";
  }
  os << "]}\n";
}

void write_timeseries_file(const std::string& path,
                           const std::vector<const RunObs*>& runs) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open timeseries export: " + path);
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    write_timeseries_json(os, runs);
  } else {
    write_timeseries(os, runs);
  }
}

// --- Prometheus exposition ------------------------------------------------

namespace {

/// Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// (dots, dashes) maps to '_', prefixed "sb_".
std::string prom_name(std::string_view name) {
  std::string out = "sb_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Label set for a run: run 0 is the fleet itself (no labels); run i > 0
/// is node i-1.
std::string prom_labels(int run) {
  if (run <= 0) return {};
  return "{node=\"" + std::to_string(run - 1) + "\"}";
}

std::string prom_quantile_labels(int run, const char* q) {
  std::string out = "{";
  if (run > 0) out += "node=\"" + std::to_string(run - 1) + "\",";
  out += "quantile=\"";
  out += q;
  out += "\"}";
  return out;
}

void prom_value(std::ostream& os, double v) {
  std::string num;
  append_double(num, v);
  os << num;
}

}  // namespace

void write_prometheus(std::ostream& os,
                      const std::vector<const RunObs*>& runs) {
  const auto ordered = ordered_runs(runs, /*timeseries_only=*/false);
  // One HELP/TYPE block per metric name, then one sample line per run that
  // carries the metric — the exposition-format shape scrapers expect.
  std::map<std::string, char> kinds;  // name -> 'c' | 'g' | 'h'
  for (const RunObs* r : ordered) {
    for (const auto& [name, c] : r->metrics.counters()) kinds[name] = 'c';
    for (const auto& [name, g] : r->metrics.gauges()) kinds[name] = 'g';
    for (const auto& [name, h] : r->metrics.histograms()) kinds[name] = 'h';
  }
  for (const auto& [name, kind] : kinds) {
    const std::string pname = prom_name(name);
    os << "# HELP " << pname << " smartbalance metric " << name << '\n';
    os << "# TYPE " << pname << ' '
       << (kind == 'c' ? "counter" : kind == 'g' ? "gauge" : "summary")
       << '\n';
    for (const RunObs* r : ordered) {
      if (kind == 'c') {
        const auto it = r->metrics.counters().find(name);
        if (it == r->metrics.counters().end()) continue;
        os << pname << prom_labels(r->run) << ' ' << it->second.value << '\n';
      } else if (kind == 'g') {
        const auto it = r->metrics.gauges().find(name);
        if (it == r->metrics.gauges().end()) continue;
        os << pname << prom_labels(r->run) << ' ';
        prom_value(os, it->second.value);
        os << '\n';
      } else {
        const auto it = r->metrics.histograms().find(name);
        if (it == r->metrics.histograms().end()) continue;
        const Histogram& h = it->second;
        os << pname << prom_quantile_labels(r->run, "0.5") << ' '
           << h.quantile(0.50) << '\n';
        os << pname << prom_quantile_labels(r->run, "0.9") << ' '
           << h.quantile(0.90) << '\n';
        os << pname << prom_quantile_labels(r->run, "0.99") << ' '
           << h.quantile(0.99) << '\n';
        os << pname << "_sum" << prom_labels(r->run) << ' ' << h.sum() << '\n';
        os << pname << "_count" << prom_labels(r->run) << ' ' << h.count()
           << '\n';
      }
    }
  }
}

void write_prometheus_file(const std::string& path,
                           const std::vector<const RunObs*>& runs) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open prometheus export: " + path);
  write_prometheus(os, runs);
}

}  // namespace sb::obs
