#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace sb::obs {

int Histogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  const int e = 63 - std::countl_zero(v);  // floor(log2 v), >= kSubBucketBits
  const int shift = e - kSubBucketBits;
  const auto sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return ((e - kSubBucketBits + 1) << kSubBucketBits) + sub;
}

std::uint64_t Histogram::bucket_lower(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int g = index >> kSubBucketBits;
  const int sub = index & (kSubBuckets - 1);
  const int e = g + kSubBucketBits - 1;
  return (std::uint64_t{1} << e) +
         (static_cast<std::uint64_t>(sub) << (e - kSubBucketBits));
}

std::uint64_t Histogram::bucket_upper(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index) + 1;
  const int g = index >> kSubBucketBits;
  const int e = g + kSubBucketBits - 1;
  const std::uint64_t lower = bucket_lower(index);
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBucketBits);
  // The very last bucket's upper edge is 2^64; saturate.
  return lower > std::numeric_limits<std::uint64_t>::max() - width
             ? std::numeric_limits<std::uint64_t>::max()
             : lower + width;
}

void Histogram::record(std::uint64_t v) {
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

int Histogram::quantile_bucket(double q) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= rank) return i;
  }
  return kNumBuckets - 1;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  return std::min(bucket_upper(quantile_bucket(q)) - 1, max_);
}

std::uint64_t Histogram::quantile_lower(double q) const {
  if (count_ == 0) return 0;
  return std::max(bucket_lower(quantile_bucket(q)), min());
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other,
                            std::int64_t other_run) {
  for (const auto& [name, c] : other.counters_) counter(name).value += c.value;
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauge(name);
    if (g.updates > 0) {
      // A registry that is itself a merge result carries per-gauge stamps;
      // take the stronger of those and the caller-supplied run index.
      const std::int64_t stamp = std::max(g.last_run, other_run);
      if (stamp >= mine.last_run) {
        mine.value = g.value;
        mine.last_run = stamp;
      }
    }
    mine.updates += g.updates;
  }
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
}

namespace {

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':' << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ':';
    json_number(os, g.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    json_string(os, name);
    os << ":{\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"min\":" << h.min() << ",\"max\":" << h.max() << ",\"mean\":";
    json_number(os, h.mean());
    os << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
       << ",\"p99\":" << h.quantile(0.99) << '}';
  }
  os << "}}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace sb::obs
