#include "obs/audit.h"

#include <algorithm>
#include <cmath>

namespace sb::obs {
namespace {

/// Signed relative residual, guarded against tiny observed values (a thread
/// that retired essentially nothing says nothing about the predictor).
double relative_residual(double observed, double predicted) {
  if (!(std::abs(observed) > 1e-12)) return 0.0;
  return (observed - predicted) / observed;
}

}  // namespace

AuditRecorder::AuditRecorder(AuditConfig cfg)
    : cfg_(cfg),
      threads_(cfg.capacity),
      epochs_(cfg.capacity),
      migrations_(cfg.capacity) {}

std::vector<DriftEvent> AuditRecorder::join(
    std::uint64_t epoch, const std::vector<AuditObservation>& obs,
    double realized_j) {
  std::vector<DriftEvent> edges;

  // A gap in the pass sequence (e.g. an epoch that sensed nothing) breaks
  // the one-epoch-later contract: the previous entry stays unvalidated and
  // its forecasts are written off as unjoined.
  const bool contiguous = pending_valid_ && epoch == pending_epoch_ + 1;

  // Join last pass's per-thread forecasts against this pass's observations.
  int joined_now = 0;
  int unjoined_now = 0;
  if (pending_valid_) {
    if (contiguous) {
      for (const ThreadPrediction& p : pending_preds_) {
        const AuditObservation* match = nullptr;
        for (const AuditObservation& o : obs) {
          if (o.tid == p.tid) {
            match = &o;
            break;
          }
        }
        // Validate only when the thread really ran (and was measured) on
        // the predicted core: sensing serves cached pre-migration rows
        // while caches warm, and those would score the wrong core type.
        if (match == nullptr || !match->measured || match->core != p.core ||
            match->core_type != p.dst_type) {
          ++unjoined_now;
          continue;
        }
        ThreadAuditRecord rec;
        rec.epoch = epoch;
        rec.tid = p.tid;
        rec.core = p.core;
        rec.src_type = p.src_type;
        rec.dst_type = p.dst_type;
        rec.pred_gips = p.pred_gips;
        rec.obs_gips = match->gips;
        rec.pred_w = p.pred_w;
        rec.obs_w = match->watts;
        rec.gips_err = relative_residual(match->gips, p.pred_gips);
        rec.power_err = relative_residual(match->watts, p.pred_w);
        rec.raw_gips_err = relative_residual(match->gips, p.raw_pred_gips);
        rec.raw_power_err = relative_residual(match->watts, p.raw_pred_w);
        threads_.push(rec);
        ++joined_now;

        PairTracker& t = pairs_[{p.src_type, p.dst_type}];
        ++t.joins;
        const double a = cfg_.ewma_alpha;
        t.ewma_gips =
            (1.0 - a) * t.ewma_gips + a * std::abs(rec.gips_err);
        t.ewma_power =
            (1.0 - a) * t.ewma_power + a * std::abs(rec.power_err);
        t.sewma_gips = (1.0 - a) * t.sewma_gips + a * rec.gips_err;
        t.sewma_power = (1.0 - a) * t.sewma_power + a * rec.power_err;
        const bool over = t.ewma_gips > cfg_.drift_threshold ||
                          t.ewma_power > cfg_.drift_threshold;
        if (over && !t.active && t.joins >= cfg_.drift_min_joins) {
          t.active = true;
          DriftEvent ev;
          ev.epoch = epoch;
          ev.src_type = p.src_type;
          ev.dst_type = p.dst_type;
          ev.metric = t.ewma_gips > cfg_.drift_threshold ? 0 : 1;
          ev.ewma = std::max(t.ewma_gips, t.ewma_power);
          ev.joins = t.joins;
          drift_events_.push_back(ev);
          edges.push_back(ev);
        } else if (!over && t.active) {
          t.active = false;  // recovery: re-arm the rising-edge detector
        }
      }
    } else {
      unjoined_now += static_cast<int>(pending_preds_.size());
    }
  }
  joined_ += static_cast<std::uint64_t>(joined_now);
  unjoined_ += static_cast<std::uint64_t>(unjoined_now);

  // Finalize the forecasting pass's epoch ledger entry: realized ΔJ and
  // regret (only when contiguous) plus the join outcome of its forecasts.
  if (open_epoch_valid_) {
    if (EpochAuditRecord* rec = epochs_.find(open_epoch_seq_)) {
      rec->joined = joined_now;
      rec->unjoined = unjoined_now;
      if (contiguous) {
        rec->realized_dj = realized_j - open_epoch_realized_j_;
        rec->realized_valid = 1;
        rec->regret = rec->pred_dj - rec->realized_dj;
      }
    }
  }
  open_epoch_valid_ = false;
  pending_preds_.clear();
  pending_valid_ = false;

  // Close out matured migrations: the first warmed-up measurement on the
  // destination core validates the predicted gain; entries that outlive the
  // join window stay realized_valid = 0 in the ledger.
  for (auto it = pending_migrations_.begin();
       it != pending_migrations_.end();) {
    const PendingMigration& pm = *it;
    const AuditObservation* match = nullptr;
    for (const AuditObservation& o : obs) {
      if (o.tid == pm.pred.tid) {
        match = &o;
        break;
      }
    }
    bool done = false;
    if (match != nullptr && match->measured && match->core == pm.pred.dst &&
        match->core_type == pm.pred.dst_type) {
      if (MigrationAuditRecord* rec = migrations_.find(pm.seq)) {
        const double obs_eff =
            match->watts > 0 ? match->gips / match->watts : 0.0;
        rec->realized_gain = obs_eff - pm.pred.src_eff;
        rec->realized_valid = 1;
      }
      done = true;
    } else if (match == nullptr ||
               epoch - pm.epoch >= cfg_.migration_join_max_age) {
      // Thread exited or the window expired (sensing keeps serving the
      // cached pre-migration row while caches warm, so an observation on
      // the source core does NOT mean the thread moved back).
      done = true;
    }
    it = done ? pending_migrations_.erase(it) : it + 1;
  }

  open_epoch_realized_j_ = realized_j;
  return edges;
}

void AuditRecorder::record_decision(const EpochDecision& d) {
  EpochAuditRecord rec;
  rec.epoch = d.epoch;
  rec.initial_j = d.initial_j;
  rec.final_j = d.final_j;
  rec.applied = d.applied ? 1 : 0;
  rec.pred_dj = d.pred_dj;
  rec.realized_j = open_epoch_realized_j_;
  rec.migrations = d.migrations;
  rec.healthy_fraction = d.healthy_fraction;
  rec.degraded = d.degraded ? 1 : 0;
  rec.sa_iterations = d.sa_iterations;
  rec.sa_accepted_worse = d.sa_accepted_worse;
  rec.sa_improved = d.sa_improved;
  rec.faults_injected = d.faults_injected;
  open_epoch_seq_ = epochs_.push(rec);
  open_epoch_valid_ = true;
  pending_epoch_ = d.epoch;
  pending_valid_ = true;
  pending_preds_.clear();
}

void AuditRecorder::record_prediction(const ThreadPrediction& p) {
  if (!pending_valid_) return;  // forecasts only make sense under a decision
  pending_preds_.push_back(p);
  // Unadapted callers leave the raw fields at 0: raw == corrected then, so
  // backfill per field (a genuine raw forecast of exactly 0.0 cannot occur —
  // predictions are clamped strictly positive).
  ThreadPrediction& stored = pending_preds_.back();
  if (stored.raw_pred_gips == 0.0) stored.raw_pred_gips = stored.pred_gips;
  if (stored.raw_pred_w == 0.0) stored.raw_pred_w = stored.pred_w;
  ++predictions_;
}

void AuditRecorder::record_migration(const MigrationPrediction& m) {
  if (!pending_valid_) return;
  MigrationAuditRecord rec;
  rec.epoch = pending_epoch_;
  rec.tid = m.tid;
  rec.src = m.src;
  rec.dst = m.dst;
  rec.src_type = m.src_type;
  rec.dst_type = m.dst_type;
  rec.pred_gain = m.pred_gain;
  PendingMigration pm;
  pm.pred = m;
  pm.epoch = pending_epoch_;
  pm.seq = migrations_.push(rec);
  pending_migrations_.push_back(pm);
}

bool AuditRecorder::drift_active() const {
  for (const auto& [key, t] : pairs_) {
    if (t.active) return true;
  }
  return false;
}

AuditSnapshot AuditRecorder::snapshot() const {
  AuditSnapshot snap;
  snap.threads = threads_.drain_copy();
  snap.epochs = epochs_.drain_copy();
  snap.migrations = migrations_.drain_copy();
  snap.drift_events = drift_events_;
  for (const auto& [key, t] : pairs_) {
    DriftState st;
    st.src_type = key.first;
    st.dst_type = key.second;
    st.joins = t.joins;
    st.ewma_gips = t.ewma_gips;
    st.ewma_power = t.ewma_power;
    st.active = t.active ? 1 : 0;
    st.ewma_gips_signed = t.sewma_gips;
    st.ewma_power_signed = t.sewma_power;
    snap.drift_states.push_back(st);
  }
  snap.joined = joined_;
  snap.unjoined = unjoined_;
  snap.predictions = predictions_;
  snap.dropped_threads = threads_.dropped();
  snap.dropped_epochs = epochs_.dropped();
  snap.dropped_migrations = migrations_.dropped();
  return snap;
}

}  // namespace sb::obs
