#include "obs/sink.h"

#include <utility>

namespace sb::obs {

Sink::Sink(ObsConfig cfg) : cfg_(cfg) {
  if (cfg_.trace) tracer_ = std::make_unique<EpochTracer>(cfg_.trace_capacity);
  if (cfg_.audit) audit_ = std::make_unique<AuditRecorder>(cfg_.audit_config);
}

RunObs Sink::snapshot(std::string label) const {
  RunObs out;
  out.label = std::move(label);
  out.metrics_enabled = cfg_.metrics;
  out.trace_enabled = cfg_.trace;
  out.audit_enabled = cfg_.audit;
  out.metrics = metrics_;
  if (tracer_ != nullptr) out.trace = tracer_->snapshot();
  if (audit_ != nullptr) out.audit = audit_->snapshot();
  return out;
}

}  // namespace sb::obs
