#include "obs/sink.h"

#include <utility>

namespace sb::obs {

Sink::Sink(ObsConfig cfg) : cfg_(cfg) {
  if (cfg_.trace) tracer_ = std::make_unique<EpochTracer>(cfg_.trace_capacity);
  if (cfg_.audit) audit_ = std::make_unique<AuditRecorder>(cfg_.audit_config);
  // SLO objectives need frames to score, so they imply the sampler.
  if (!cfg_.slo.empty()) cfg_.timeseries.enabled = true;
  if (cfg_.timeseries.enabled) {
    timeseries_ = std::make_unique<TimeseriesRecorder>(cfg_.timeseries);
    if (!cfg_.slo.empty()) {
      slo_ = std::make_unique<SloEngine>(cfg_.slo, cfg_.timeseries.window);
    }
  }
}

void Sink::complete_frame() {
  if (timeseries_ == nullptr) return;
  if (slo_ != nullptr) {
    slo_->on_frame(*timeseries_, metrics_, tracer_.get(), epoch_);
  }
  metrics_.counter("tsdb.frames").add();
  metrics_.counter("tsdb.samples").add(timeseries_->frame().size());
  metrics_.gauge("tsdb.dropped").set(
      static_cast<double>(timeseries_->dropped()));
}

RunObs Sink::snapshot(std::string label) const {
  RunObs out;
  out.label = std::move(label);
  out.metrics_enabled = cfg_.metrics;
  out.trace_enabled = cfg_.trace;
  out.audit_enabled = cfg_.audit;
  out.timeseries_enabled = cfg_.timeseries.enabled;
  out.metrics = metrics_;
  if (tracer_ != nullptr) out.trace = tracer_->snapshot();
  if (audit_ != nullptr) out.audit = audit_->snapshot();
  if (timeseries_ != nullptr) out.timeseries = timeseries_->snapshot();
  return out;
}

}  // namespace sb::obs
