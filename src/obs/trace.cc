#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>

namespace sb::obs {

EpochTracer::EpochTracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1 << 12));
}

std::uint32_t EpochTracer::intern(std::string_view name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

void EpochTracer::push(TraceEvent ev, TraceArgs args) {
  for (const auto& [key, value] : args) {
    if (ev.nargs >= ev.args.size()) break;
    ev.args[ev.nargs++] = TraceArg{intern(key), value};
  }
  ev.seq = seq_;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    // Overwrite the oldest event: record k lives at slot k % capacity, so
    // the slot of seq_ - capacity is exactly seq_ % capacity.
    ring_[static_cast<std::size_t>(seq_ % capacity_)] = ev;
    ++dropped_;
  }
  ++seq_;
}

void EpochTracer::span(std::string_view name, std::uint64_t ts_ns,
                       std::uint64_t dur_ns, std::uint64_t epoch,
                       TraceArgs args) {
  TraceEvent ev;
  ev.name = intern(name);
  ev.phase = 'X';
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.epoch = epoch;
  push(ev, args);
}

void EpochTracer::instant(std::string_view name, std::uint64_t ts_ns,
                          std::uint64_t epoch, TraceArgs args) {
  TraceEvent ev;
  ev.name = intern(name);
  ev.phase = 'i';
  ev.ts_ns = ts_ns;
  ev.dur_ns = 0;
  ev.epoch = epoch;
  push(ev, args);
}

EpochTracer::Snapshot EpochTracer::snapshot() const {
  Snapshot snap;
  snap.names = names_;
  snap.dropped = dropped_;
  snap.events.reserve(ring_.size());
  if (dropped_ == 0) {
    snap.events = ring_;
  } else {
    // The ring has wrapped: oldest surviving event sits at seq_ % capacity.
    const auto start = static_cast<std::size_t>(seq_ % capacity_);
    snap.events.insert(snap.events.end(), ring_.begin() + start, ring_.end());
    snap.events.insert(snap.events.end(), ring_.begin(), ring_.begin() + start);
  }
  return snap;
}

namespace {

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

/// Chrome trace timestamps are microseconds; keep nanosecond precision.
void json_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
     << static_cast<char>('0' + (ns % 100) / 10)
     << static_cast<char>('0' + ns % 10);
}

void write_event(std::ostream& os, const RunObs& run, const TraceEvent& ev) {
  os << "{\"name\":";
  json_string(os, run.trace.name_of(ev.name));
  os << ",\"cat\":\"epoch\",\"ph\":\"" << ev.phase << "\",\"ts\":";
  json_us(os, ev.ts_ns);
  if (ev.phase == 'X') {
    os << ",\"dur\":";
    json_us(os, ev.dur_ns);
  }
  if (ev.phase == 'i') os << ",\"s\":\"t\"";
  os << ",\"pid\":" << run.run << ",\"tid\":0,\"args\":{\"epoch\":"
     << ev.epoch;
  for (std::uint8_t a = 0; a < ev.nargs; ++a) {
    os << ',';
    json_string(os, run.trace.name_of(ev.args[a].key));
    os << ':';
    json_number(os, ev.args[a].value);
  }
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<const RunObs*>& runs) {
  // Deterministic merge: order runs by their submission index, then events
  // by (run, epoch, seq). Per-run snapshots are already seq-sorted, but a
  // stable explicit sort makes the contract independent of that detail.
  std::vector<const RunObs*> ordered;
  ordered.reserve(runs.size());
  for (const RunObs* r : runs) {
    if (r != nullptr) ordered.push_back(r);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RunObs* a, const RunObs* b) {
                     return a->run != b->run ? a->run < b->run
                                             : a->label < b->label;
                   });

  os << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t total_events = 0;
  std::uint64_t total_dropped = 0;
  for (const RunObs* run : ordered) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":"
       << run->run << ",\"tid\":0,\"args\":{\"name\":";
    json_string(os, run->label.empty() ? std::string("run") : run->label);
    os << "}}";
    std::vector<const TraceEvent*> events;
    events.reserve(run->trace.events.size());
    for (const TraceEvent& ev : run->trace.events) events.push_back(&ev);
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->epoch != b->epoch ? a->epoch < b->epoch
                                                   : a->seq < b->seq;
                     });
    for (const TraceEvent* ev : events) {
      os << ',';
      write_event(os, *run, *ev);
      ++total_events;
    }
    total_dropped += run->trace.dropped;
  }
  os << "],\"displayTimeUnit\":\"ms\",\"smartbalance\":{\"runs\":"
     << ordered.size() << ",\"events\":" << total_events
     << ",\"dropped_events\":" << total_dropped << "}}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<const RunObs*>& runs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file " + path);
  write_chrome_trace(out, runs);
}

MetricsRegistry merge_metrics(const std::vector<const RunObs*>& runs) {
  std::vector<const RunObs*> ordered;
  ordered.reserve(runs.size());
  for (const RunObs* r : runs) {
    if (r != nullptr) ordered.push_back(r);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RunObs* a, const RunObs* b) {
                     return a->run < b->run;
                   });
  MetricsRegistry merged;
  for (const RunObs* run : ordered) merged.merge(run->metrics, run->run);
  return merged;
}

}  // namespace sb::obs
