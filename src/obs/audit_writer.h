// Columnar export for AuditSnapshot ledgers: packed CSV, schema-versioned,
// containing only sim-time fields — no host clocks, no pointers, no
// environment — so the bytes are a deterministic function of the simulated
// runs (bit-identical across --jobs worker counts, golden-testable).
//
// Layout (kSchemaVersion = 2 — v2 appended the pre-adaptation residual
// columns raw_gips_err/raw_power_err to thread records and the signed
// residual EWMAs to state records):
//   #sb-audit v2
//   #columns thread <comma-separated field names>
//   #columns epoch ...
//   #columns migration ...
//   #columns drift ...
//   #columns state ...
//   #run <index> <label>           one block per run, ordered by run index
//   epoch,...                      data rows, first field = record kind
//   thread,...
//   migration,...
//   drift,...
//   state,...
//   #counters <index> joined=.. unjoined=.. predictions=.. dropped=..
//   #summary runs=<n>
//
// Doubles are rendered with std::to_chars shortest round-trip form:
// locale-independent and reproducible across runs of the same binary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sb::obs {

inline constexpr int kAuditSchemaVersion = 2;

/// Column lists, kept in one place so the writer, the schema JSON and the
/// tests cannot drift apart silently.
const char* audit_thread_columns();
const char* audit_epoch_columns();
const char* audit_migration_columns();
const char* audit_drift_columns();
const char* audit_state_columns();

/// Merges per-run audit snapshots into one export. Runs are ordered by
/// their stamped run index (the spec's submission order), so the output is
/// independent of the order runs are passed in and of the --jobs worker
/// count that produced them. Runs without audit enabled are skipped.
void write_audit(std::ostream& os, const std::vector<const RunObs*>& runs);
void write_audit_file(const std::string& path,
                      const std::vector<const RunObs*>& runs);

}  // namespace sb::obs
