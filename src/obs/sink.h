// Sink: the single handle instrumented code holds onto. Call sites keep an
// `obs::Sink*` that is null when observability is off, so every hook is one
// pointer test on the hot path — nothing else is evaluated (TraceArgs are
// built inside the `if`). When on, the sink owns the per-run MetricsRegistry
// and (optionally) the EpochTracer ring.
//
// Observability is strictly read-only with respect to the simulation: it
// draws no random numbers, performs no floating-point work that feeds back
// into state, and mutates nothing outside its own buffers — enabling it must
// never change a golden CSV.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace sb::obs {

struct ObsConfig {
  bool metrics = false;
  bool trace = false;
  /// Ring capacity (events) for the tracer; oldest events drop on overflow.
  std::size_t trace_capacity = std::size_t{1} << 16;
  /// Prediction-audit flight recorder (see obs/audit.h).
  bool audit = false;
  AuditConfig audit_config;
  /// Windowed time-series sampler (see obs/timeseries.h).
  TimeseriesConfig timeseries;
  /// Burn-rate objectives over the sampled signals (see obs/slo.h);
  /// non-empty implies the timeseries sampler.
  SloConfig slo;

  bool enabled() const {
    return metrics || trace || audit || timeseries.enabled || !slo.empty();
  }
};

class Sink {
 public:
  explicit Sink(ObsConfig cfg);

  const ObsConfig& config() const { return cfg_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Null when tracing is off — check before recording trace events.
  EpochTracer* tracer() { return tracer_.get(); }
  const EpochTracer* tracer() const { return tracer_.get(); }

  /// Null when the audit recorder is off — check before recording.
  AuditRecorder* audit() { return audit_.get(); }
  const AuditRecorder* audit() const { return audit_.get(); }

  /// Null when the timeseries sampler is off — check before recording.
  TimeseriesRecorder* timeseries() { return timeseries_.get(); }
  const TimeseriesRecorder* timeseries() const { return timeseries_.get(); }

  /// Null when no SLO objectives are attached.
  SloEngine* slo() { return slo_.get(); }
  const SloEngine* slo() const { return slo_.get(); }

  /// Closes the frame a sampler opened with timeseries()->begin_frame():
  /// bumps the tsdb.* counters and scores every SLO objective against the
  /// frame's signals. No-op without the recorder.
  void complete_frame();

  /// Positions subsequent events on the simulated timeline: `epoch` is the
  /// balance-pass index and `now_ns` its simulated timestamp.
  void begin_epoch(std::uint64_t epoch, std::uint64_t now_ns) {
    epoch_ = epoch;
    now_ns_ = now_ns;
  }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t now_ns() const { return now_ns_; }

  /// Detaches everything recorded so far into a mergeable RunObs.
  RunObs snapshot(std::string label = {}) const;

 private:
  ObsConfig cfg_;
  MetricsRegistry metrics_;
  std::unique_ptr<EpochTracer> tracer_;
  std::unique_ptr<AuditRecorder> audit_;
  std::unique_ptr<TimeseriesRecorder> timeseries_;
  std::unique_ptr<SloEngine> slo_;
  std::uint64_t epoch_ = 0;
  std::uint64_t now_ns_ = 0;
};

/// RAII span: measures host wall-clock from construction to destruction and
/// records an 'X' event at the sink's current simulated timestamp (plus an
/// optional offset, used to lay phases out sequentially inside one epoch).
/// A null sink — or a sink without a tracer — makes every member a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Sink* sink, std::string_view name,
             std::uint64_t ts_offset_ns = 0)
      : sink_(sink != nullptr && sink->tracer() != nullptr ? sink : nullptr),
        name_(name),
        ts_offset_ns_(ts_offset_ns) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (sink_ == nullptr) return;
    const auto dur = std::chrono::steady_clock::now() - start_;
    sink_->tracer()->span(
        name_, sink_->now_ns() + ts_offset_ns_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dur).count()),
        sink_->epoch());
  }

 private:
  Sink* sink_;
  std::string_view name_;
  std::uint64_t ts_offset_ns_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace sb::obs
