// SLO engine: rolling-window burn-rate objectives over the timeseries.
//
// An Objective watches one timeseries signal against a threshold
// ("p99_wake_us must stay below 2000"). Every sampler frame scores one
// sample: violating or not. The engine keeps a rolling window of the last
// W samples per objective and compares the violating fraction against the
// objective's burn budget — the SRE burn-rate idiom: `burn=0.02` tolerates
// 2% of the window in violation before the SLO is *breached*; `burn=0`
// breaches on the first violation. Breach and recovery are edge events:
// they emit `slo.breach` / `slo.recovered` trace instants, bump the
// `slo.*` counters, and every frame appends `slo.burn.<signal>` /
// `slo.breached.<signal>` rows back into the timeseries so dashboards
// (sbtop) can render burn gauges next to the raw signals.
//
// Grammar (FaultPlan-style; parse throws std::invalid_argument and
// canonical() round-trips — fuzzed in tests/obs/):
//   spec      := objective ("," objective)*
//   objective := signal ("<" | ">") threshold (":" option)*
//   option    := "burn=" fraction | "window=" ms
// e.g. --slo=p99_wake_us<2000:burn=0.02,je>55e6:window=200
//
// Determinism: the engine reads only sampler frames (simulated time) and
// writes only obs-layer state; a run with an SLO attached produces
// byte-identical exports across --jobs worker counts, and enabling it
// never changes a golden CSV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace sb::obs {

class EpochTracer;  // obs/trace.h

struct SloObjective {
  /// Timeseries signal the objective watches (e.g. "p99_wake_us", "je").
  std::string signal;
  /// true: value must stay strictly below threshold; false: strictly above.
  bool upper = true;
  double threshold = 0;
  /// Violating fraction of the rolling window tolerated before breach.
  double burn = 0;
  /// Rolling window length in simulated time (>= one sampler frame).
  TimeNs window = milliseconds(200);

  std::string canonical() const;
};

struct SloConfig {
  std::vector<SloObjective> objectives;

  bool empty() const { return objectives.empty(); }

  /// Parses the grammar above; throws std::invalid_argument naming the
  /// offending token. An empty spec string is invalid.
  static SloConfig parse(const std::string& text);
  /// The grammar string that parses back to these objectives.
  std::string canonical() const;
};

class SloEngine {
 public:
  /// `sample_window` is the sampler cadence (TimeseriesConfig::window); an
  /// objective's rolling window spans window / sample_window frames.
  SloEngine(SloConfig cfg, TimeNs sample_window);

  const SloConfig& config() const { return cfg_; }

  /// Scores the frame currently open on `rec` (between the sampler's
  /// begin_frame and this call): updates every objective's rolling window,
  /// records burn/breached signals into `rec`, bumps `slo.*` counters in
  /// `metrics`, and emits breach/recovery instants on `tracer` (nullable).
  void on_frame(TimeseriesRecorder& rec, MetricsRegistry& metrics,
                EpochTracer* tracer, std::uint64_t epoch);

  /// Total breach transitions across all objectives (drives --slo-strict).
  std::uint64_t breaches() const { return breaches_; }
  std::uint64_t recoveries() const { return recoveries_; }
  /// Frames scored while at least one objective sat in breached state.
  std::uint64_t breach_frames() const { return breach_frames_; }
  bool ever_breached() const { return breaches_ > 0; }

 private:
  struct State {
    std::uint32_t signal_id = 0;    // resolved against rec on first frame
    std::uint32_t burn_id = 0;      // slo.burn.<signal>
    std::uint32_t breached_id = 0;  // slo.breached.<signal>
    std::size_t window_frames = 1;
    /// Rolling ring of violation flags for the last window_frames samples.
    std::vector<unsigned char> ring;
    std::size_t head = 0;
    std::size_t filled = 0;
    std::size_t violating = 0;
    bool breached = false;
  };

  SloConfig cfg_;
  TimeNs sample_window_;
  std::vector<State> states_;
  bool resolved_ = false;
  std::uint64_t breaches_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t breach_frames_ = 0;
};

}  // namespace sb::obs
