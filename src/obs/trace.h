// Epoch tracer: structured span/instant events from inside the balancing
// loop, recorded into a fixed-capacity ring buffer and exported as Chrome
// trace-event JSON (load the file in Perfetto or chrome://tracing).
//
// The timeline is *simulated* time (one process row per run, epochs every
// T_Epoch); span durations are host wall-clock, so each epoch boundary
// shows the real sense → predict → balance cost laid out sequentially.
// Event names and argument keys are interned once into a per-tracer string
// table; an event itself is a small POD, and recording one is a couple of
// stores into a pre-grown ring — no allocation, no locks (the tracer is
// single-producer by construction: one Simulation, one tracer).
//
// Overflow policy: the ring keeps the newest `capacity` events; the oldest
// are overwritten and counted in dropped(), which is also surfaced in the
// exported JSON so a truncated trace is never mistaken for a complete one.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace sb::obs {

struct TraceArg {
  std::uint32_t key = 0;  // interned string id
  double value = 0;
};

struct TraceEvent {
  std::uint32_t name = 0;  // interned string id
  char phase = 'X';        // 'X' = complete span, 'i' = instant
  std::uint64_t ts_ns = 0;   // timeline position (simulated ns + offset)
  std::uint64_t dur_ns = 0;  // span duration (host ns); 0 for instants
  std::uint64_t epoch = 0;   // balance-pass index the event belongs to
  std::uint64_t seq = 0;     // per-run record order (stable sort key)
  std::uint8_t nargs = 0;
  std::array<TraceArg, 4> args{};
};

/// Named (key, value) pairs attached to an event; at most 4 are kept.
using TraceArgs = std::initializer_list<std::pair<std::string_view, double>>;

class EpochTracer {
 public:
  explicit EpochTracer(std::size_t capacity);

  /// Interns a name, returning a stable id (idempotent per string).
  std::uint32_t intern(std::string_view name);
  const std::vector<std::string>& names() const { return names_; }

  void span(std::string_view name, std::uint64_t ts_ns, std::uint64_t dur_ns,
            std::uint64_t epoch, TraceArgs args = {});
  void instant(std::string_view name, std::uint64_t ts_ns, std::uint64_t epoch,
               TraceArgs args = {});

  std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  std::size_t size() const { return ring_.size(); }
  /// Total events ever recorded.
  std::uint64_t recorded() const { return seq_; }
  /// Events overwritten by ring overflow (oldest-first).
  std::uint64_t dropped() const { return dropped_; }

  /// Drained copy of the ring in seq (oldest → newest) order plus the
  /// string table — everything an exporter needs, detached from the tracer.
  struct Snapshot {
    std::vector<TraceEvent> events;
    std::vector<std::string> names;
    std::uint64_t dropped = 0;

    std::string_view name_of(std::uint32_t id) const {
      return id < names.size() ? std::string_view(names[id])
                               : std::string_view("?");
    }
  };
  Snapshot snapshot() const;

 private:
  void push(TraceEvent ev, TraceArgs args);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Everything observability produced for one simulation run: the metrics
/// registry and the drained trace. Runs are merged by the experiment
/// harnesses; `run` is the spec's submission index (stamped by
/// ExperimentRunner), which keys the deterministic merge order.
struct RunObs {
  int run = 0;
  std::string label;
  bool metrics_enabled = false;
  bool trace_enabled = false;
  bool audit_enabled = false;
  bool timeseries_enabled = false;
  MetricsRegistry metrics;
  EpochTracer::Snapshot trace;
  AuditSnapshot audit;
  TimeseriesRecorder::Snapshot timeseries;
};

/// Merges per-run traces into one Chrome trace-event JSON document:
/// `{"traceEvents":[...],"smartbalance":{...}}`. Each run becomes one
/// process (pid = run index) with a process_name metadata record; events
/// are stable-sorted by (run, epoch, seq), so the output is a deterministic
/// function of the per-run snapshots — independent of the order runs are
/// passed in and of the --jobs worker count that produced them.
void write_chrome_trace(std::ostream& os, const std::vector<const RunObs*>& runs);
void write_chrome_trace_file(const std::string& path,
                             const std::vector<const RunObs*>& runs);

/// Name-ordered merge of every run's metrics registry.
MetricsRegistry merge_metrics(const std::vector<const RunObs*>& runs);

}  // namespace sb::obs
