#include "obs/audit_writer.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/audit.h"

namespace sb::obs {
namespace {

constexpr char kThreadCols[] =
    "epoch,tid,core,src_type,dst_type,pred_gips,obs_gips,pred_w,obs_w,"
    "gips_err,power_err,raw_gips_err,raw_power_err";
constexpr char kEpochCols[] =
    "epoch,initial_j,final_j,applied,pred_dj,realized_j,realized_dj,"
    "realized_valid,regret,migrations,joined,unjoined,healthy_fraction,"
    "degraded,sa_iterations,sa_accepted_worse,sa_improved,faults_injected";
constexpr char kMigrationCols[] =
    "epoch,tid,src,dst,src_type,dst_type,pred_gain,realized_gain,"
    "realized_valid";
constexpr char kDriftCols[] = "epoch,src_type,dst_type,metric,ewma,joins";
constexpr char kStateCols[] =
    "src_type,dst_type,joins,ewma_gips,ewma_power,active,"
    "ewma_gips_signed,ewma_power_signed";

/// Shortest round-trip double: reparsing the text yields the same bits, and
/// the rendering is locale-independent (unlike iostream/printf paths).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // The recorder never produces non-finite values; render defensively so
    // a future bug corrupts one cell, not the whole export.
    out += std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf");
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void write_run(std::ostream& os, const RunObs& run) {
  const AuditSnapshot& a = run.audit;
  std::string line;
  os << "#run " << run.run << ' '
     << (run.label.empty() ? "run" : run.label) << '\n';
  for (const EpochAuditRecord& r : a.epochs) {
    line = "epoch,";
    append_u64(line, r.epoch);
    line += ',';
    append_double(line, r.initial_j);
    line += ',';
    append_double(line, r.final_j);
    line += ',';
    append_i64(line, r.applied);
    line += ',';
    append_double(line, r.pred_dj);
    line += ',';
    append_double(line, r.realized_j);
    line += ',';
    append_double(line, r.realized_dj);
    line += ',';
    append_i64(line, r.realized_valid);
    line += ',';
    append_double(line, r.regret);
    line += ',';
    append_i64(line, r.migrations);
    line += ',';
    append_i64(line, r.joined);
    line += ',';
    append_i64(line, r.unjoined);
    line += ',';
    append_double(line, r.healthy_fraction);
    line += ',';
    append_i64(line, r.degraded);
    line += ',';
    append_i64(line, r.sa_iterations);
    line += ',';
    append_i64(line, r.sa_accepted_worse);
    line += ',';
    append_i64(line, r.sa_improved);
    line += ',';
    append_i64(line, r.faults_injected);
    line += '\n';
    os << line;
  }
  for (const ThreadAuditRecord& r : a.threads) {
    line = "thread,";
    append_u64(line, r.epoch);
    line += ',';
    append_i64(line, r.tid);
    line += ',';
    append_i64(line, r.core);
    line += ',';
    append_i64(line, r.src_type);
    line += ',';
    append_i64(line, r.dst_type);
    line += ',';
    append_double(line, r.pred_gips);
    line += ',';
    append_double(line, r.obs_gips);
    line += ',';
    append_double(line, r.pred_w);
    line += ',';
    append_double(line, r.obs_w);
    line += ',';
    append_double(line, r.gips_err);
    line += ',';
    append_double(line, r.power_err);
    line += ',';
    append_double(line, r.raw_gips_err);
    line += ',';
    append_double(line, r.raw_power_err);
    line += '\n';
    os << line;
  }
  for (const MigrationAuditRecord& r : a.migrations) {
    line = "migration,";
    append_u64(line, r.epoch);
    line += ',';
    append_i64(line, r.tid);
    line += ',';
    append_i64(line, r.src);
    line += ',';
    append_i64(line, r.dst);
    line += ',';
    append_i64(line, r.src_type);
    line += ',';
    append_i64(line, r.dst_type);
    line += ',';
    append_double(line, r.pred_gain);
    line += ',';
    append_double(line, r.realized_gain);
    line += ',';
    append_i64(line, r.realized_valid);
    line += '\n';
    os << line;
  }
  for (const DriftEvent& r : a.drift_events) {
    line = "drift,";
    append_u64(line, r.epoch);
    line += ',';
    append_i64(line, r.src_type);
    line += ',';
    append_i64(line, r.dst_type);
    line += ',';
    append_i64(line, r.metric);
    line += ',';
    append_double(line, r.ewma);
    line += ',';
    append_u64(line, r.joins);
    line += '\n';
    os << line;
  }
  for (const DriftState& r : a.drift_states) {
    line = "state,";
    append_i64(line, r.src_type);
    line += ',';
    append_i64(line, r.dst_type);
    line += ',';
    append_u64(line, r.joins);
    line += ',';
    append_double(line, r.ewma_gips);
    line += ',';
    append_double(line, r.ewma_power);
    line += ',';
    append_i64(line, r.active);
    line += ',';
    append_double(line, r.ewma_gips_signed);
    line += ',';
    append_double(line, r.ewma_power_signed);
    line += '\n';
    os << line;
  }
  os << "#counters " << run.run << " joined=" << a.joined
     << " unjoined=" << a.unjoined << " predictions=" << a.predictions
     << " dropped="
     << (a.dropped_threads + a.dropped_epochs + a.dropped_migrations)
     << '\n';
}

}  // namespace

const char* audit_thread_columns() { return kThreadCols; }
const char* audit_epoch_columns() { return kEpochCols; }
const char* audit_migration_columns() { return kMigrationCols; }
const char* audit_drift_columns() { return kDriftCols; }
const char* audit_state_columns() { return kStateCols; }

void write_audit(std::ostream& os, const std::vector<const RunObs*>& runs) {
  os << "#sb-audit v" << kAuditSchemaVersion << '\n';
  os << "#columns thread " << kThreadCols << '\n';
  os << "#columns epoch " << kEpochCols << '\n';
  os << "#columns migration " << kMigrationCols << '\n';
  os << "#columns drift " << kDriftCols << '\n';
  os << "#columns state " << kStateCols << '\n';
  std::vector<const RunObs*> ordered;
  ordered.reserve(runs.size());
  for (const RunObs* r : runs) {
    if (r != nullptr && r->audit_enabled) ordered.push_back(r);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RunObs* a, const RunObs* b) {
                     return a->run < b->run;
                   });
  int exported = 0;
  for (const RunObs* r : ordered) {
    write_run(os, *r);
    ++exported;
  }
  os << "#summary runs=" << exported << '\n';
}

void write_audit_file(const std::string& path,
                      const std::vector<const RunObs*>& runs) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open audit export: " + path);
  write_audit(os, runs);
}

}  // namespace sb::obs
