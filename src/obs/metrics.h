// Metrics registry: named counters, gauges and log-linear histograms for
// the sense → predict → balance loop (and anything else that wants a
// number watched).
//
// Design constraints, in order:
//  - zero overhead when observability is off: call sites hold an obs::Sink*
//    that is null by default, so every hook compiles down to one branch;
//  - deterministic export: metrics live in ordered maps, so two registries
//    built from the same run serialize byte-identically regardless of the
//    order metrics were first touched in;
//  - mergeable: ExperimentRunner workers each fill a per-run registry and
//    the harness merges them after the batch — histogram merge is
//    bucket-wise addition (associative and commutative, see the property
//    tests in tests/obs/), counters add, gauges keep the merged-in value;
//  - fixed-point friendly: histograms record unsigned 64-bit integers
//    (nanoseconds, iteration counts, raw Q16.16 values) and never touch
//    floating point on the record path.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace sb::obs {

/// Monotonic event count.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t delta = 1) { value += delta; }
};

/// Last-written value (plus how many times it was written, so merges can
/// tell "never set" from "set to 0"). `last_run` is the submission index of
/// the run whose value this gauge currently holds — stamped by merge(), not
/// by set(), and used as the last-writer tiebreaker so merged gauges are a
/// function of the run set rather than of merge order.
struct Gauge {
  double value = 0;
  std::uint64_t updates = 0;
  std::int64_t last_run = -1;
  void set(double v) {
    value = v;
    ++updates;
  }
};

/// Log-linear histogram over unsigned 64-bit values: buckets double every
/// octave with kSubBuckets linear subdivisions, so the relative bucket
/// width — and therefore the quantile estimation error — is bounded by
/// 1/kSubBuckets (25%) everywhere. Values 0..kSubBuckets-1 get exact unit
/// buckets. The record path is two shifts, a mask and an increment.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 2;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 4 per octave
  static constexpr int kNumBuckets =
      ((64 - kSubBucketBits) << kSubBucketBits) + kSubBuckets;  // 252

  /// Bucket index for a value (total order preserving).
  static int bucket_index(std::uint64_t v);
  /// Inclusive lower bound of a bucket.
  static std::uint64_t bucket_lower(int index);
  /// Exclusive upper bound of a bucket (saturates at 2^64-1).
  static std::uint64_t bucket_upper(int index);

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  std::uint64_t bucket_count(int index) const {
    return buckets_[static_cast<std::size_t>(index)];
  }

  /// Quantile estimate for q in [0, 1]: the inclusive upper edge of the
  /// bucket holding the rank-⌈q·count⌉ value. The exact quantile is always
  /// inside [quantile_lower(q), quantile(q)] — within one bucket, i.e.
  /// within 25% relative error (exact below kSubBuckets).
  std::uint64_t quantile(double q) const;
  std::uint64_t quantile_lower(double q) const;

  /// Bucket-wise merge: associative, commutative, identity = default
  /// Histogram.
  void merge(const Histogram& other);

 private:
  int quantile_bucket(double q) const;

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

/// Named metrics for one run. Lookup creates on first use; references stay
/// valid for the registry's lifetime (node-based maps). Iteration — and
/// therefore JSON export — is ordered by name.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Name-wise merge: counters and histograms accumulate; a gauge adopts
  /// the merged-in value when the other side ever wrote it AND its run
  /// stamp (max of `other_run` and the gauge's own last_run) is >= the
  /// current holder's — the highest-submission-index writer wins, so the
  /// result is independent of the order registries are merged in (see the
  /// merge-permutation property test in tests/obs/). Metrics absent on one
  /// side are copied. Pass `other_run` = the run's submission index when
  /// merging per-run registries; the default -1 preserves plain
  /// last-merged-wins for unstamped merges.
  void merge(const MetricsRegistry& other, std::int64_t other_run = -1);

  /// Compact JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"x":{"count":..,"sum":..,"min":..,"max":..,
  ///                       "mean":..,"p50":..,"p90":..,"p99":..}}}
  /// Deterministic: ordered by metric name, integer-exact counters.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace sb::obs
