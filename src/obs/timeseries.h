// Continuous telemetry plane: a deterministic windowed time series.
//
// The metrics registry answers "what happened over the whole run"; the
// TimeseriesRecorder answers "how did it evolve". A sampler (the Simulation
// stepping loop, or the fleet quantum loop) snapshots a signal set — J_E,
// per-core-type watts/GIPS, migrations, degraded/drift state, SA accept
// rate, wake-to-run tail estimate, per-node fleet health — into a
// fixed-capacity ring of (t_ns, signal, value) rows at an --obs-window
// cadence. Timestamps are *simulated* nanoseconds only: no host clocks ever
// enter a row, so the export is a deterministic function of the run and
// stays byte-identical across --jobs worker counts.
//
// Signal names are interned once into a per-recorder string table (exactly
// like the EpochTracer); a sample is a 24-byte POD and recording one is two
// stores into a pre-grown ring — no allocation on the record path after
// construction. Overflow keeps the newest `capacity` samples; overwritten
// rows are counted in dropped() and surfaced in the export, so a truncated
// series is never mistaken for a complete one.
//
// Export (`#sb-tsdb v1`, see write_timeseries): packed CSV in the
// #sb-audit style — schema-versioned, run blocks ordered by stamped run
// index, shortest-round-trip doubles. A `.json` path selects the JSON
// rendering of the same data. write_prometheus renders the *metrics
// registries* of a run set as a Prometheus text exposition snapshot with
// per-node labels (run 0 = the fleet itself, run i>0 = node i-1).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace sb::obs {

struct RunObs;  // obs/trace.h

inline constexpr int kTimeseriesSchemaVersion = 1;

/// Sampler configuration; also the `--obs-window=<ms>[:capacity]` grammar
/// (FaultPlan-style: parse throws std::invalid_argument, canonical()
/// round-trips — see the config fuzz tests).
struct TimeseriesConfig {
  bool enabled = false;
  /// Sampling cadence in simulated time (one frame per window).
  TimeNs window = milliseconds(10);
  /// Ring capacity in samples (rows, not frames); oldest rows drop.
  std::size_t capacity = std::size_t{1} << 16;

  /// Parses "<window_ms>[:<capacity>]", e.g. "10" or "5:8192". Enables the
  /// sampler. Throws std::invalid_argument naming the offending token.
  static TimeseriesConfig parse(const std::string& text);
  /// The grammar string that parses back to this config.
  std::string canonical() const;
};

/// One sampled point: the signal's value at simulated time t_ns.
struct TimeseriesSample {
  std::uint64_t t_ns = 0;
  std::uint32_t signal = 0;  // interned name id
  double value = 0;
};

class TimeseriesRecorder {
 public:
  explicit TimeseriesRecorder(TimeseriesConfig cfg);

  const TimeseriesConfig& config() const { return cfg_; }
  TimeNs window() const { return cfg_.window; }

  /// Interns a signal name, returning a stable id (idempotent per string).
  std::uint32_t intern(std::string_view name);
  const std::vector<std::string>& names() const { return names_; }

  /// Starts a frame at simulated time t_ns; subsequent record() calls are
  /// stamped with it and collected for same-frame consumers (SLO engine).
  void begin_frame(std::uint64_t t_ns);
  void record(std::uint32_t signal, double value);
  /// Convenience for cold paths (interns on every call).
  void record(std::string_view name, double value) {
    record(intern(name), value);
  }

  /// The (signal, value) pairs recorded since begin_frame.
  const std::vector<std::pair<std::uint32_t, double>>& frame() const {
    return frame_;
  }
  std::uint64_t frame_t_ns() const { return frame_t_ns_; }
  /// Latest value of `signal` in the current frame; `fallback` when absent.
  double frame_value(std::uint32_t signal, double fallback) const;

  std::size_t capacity() const { return cfg_.capacity; }
  /// Samples currently held (<= capacity).
  std::size_t size() const { return ring_.size(); }
  /// Total samples ever recorded.
  std::uint64_t recorded() const { return seq_; }
  /// Samples overwritten by ring overflow (oldest-first).
  std::uint64_t dropped() const { return dropped_; }
  /// Frames started (sampler ticks).
  std::uint64_t frames() const { return frames_; }

  /// Drained copy of the ring in record (oldest -> newest) order plus the
  /// string table — everything an exporter needs, detached.
  struct Snapshot {
    std::vector<TimeseriesSample> samples;
    std::vector<std::string> names;
    std::uint64_t dropped = 0;
    std::uint64_t frames = 0;
    TimeNs window = 0;

    std::string_view name_of(std::uint32_t id) const {
      return id < names.size() ? std::string_view(names[id])
                               : std::string_view("?");
    }
  };
  Snapshot snapshot() const;

 private:
  TimeseriesConfig cfg_;
  std::vector<TimeseriesSample> ring_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> ids_;
  std::vector<std::pair<std::uint32_t, double>> frame_;
  std::uint64_t frame_t_ns_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t frames_ = 0;
};

/// Column list for the sample rows, kept in one place so the writer, the
/// schema JSON and the validators cannot drift apart silently.
const char* timeseries_sample_columns();  // "t_ns,signal,value"

/// Merges per-run snapshots into one `#sb-tsdb v1` export:
///   #sb-tsdb v1
///   #columns sample t_ns,signal,value
///   #run <index> <label>
///   #meta <index> window_ns=<ns>
///   sample,<t_ns>,<signal name>,<value>     rows, record order
///   #counters <index> samples=<n> frames=<n> dropped=<n>
///   #summary runs=<n>
/// Runs are ordered by stamped run index; runs without the recorder
/// enabled are skipped. Doubles use std::to_chars shortest round-trip.
void write_timeseries(std::ostream& os,
                      const std::vector<const RunObs*>& runs);
/// The same data as one JSON document (schema/version/runs[]).
void write_timeseries_json(std::ostream& os,
                           const std::vector<const RunObs*>& runs);
/// Dispatches on extension: ".json" selects the JSON rendering.
void write_timeseries_file(const std::string& path,
                           const std::vector<const RunObs*>& runs);

/// Prometheus text exposition snapshot of the run set's metrics
/// registries: counters and gauges become `sb_<name>` samples, histograms
/// become summaries (quantile/sum/count). Run 0 carries no labels (the
/// fleet itself); run i > 0 is labelled node="i-1". Deterministic: metric
/// names sorted, runs ordered by stamped index.
void write_prometheus(std::ostream& os,
                      const std::vector<const RunObs*>& runs);
void write_prometheus_file(const std::string& path,
                           const std::vector<const RunObs*>& runs);

}  // namespace sb::obs
