#include "obs/slo.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace sb::obs {

namespace {

constexpr double kBurnEpsilon = 1e-12;

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

double parse_double(std::string_view token, std::string_view what) {
  double v = 0;
  const auto res = std::from_chars(token.data(), token.data() + token.size(), v);
  if (res.ec != std::errc() || res.ptr != token.data() + token.size() ||
      !std::isfinite(v)) {
    throw std::invalid_argument("slo config: bad " + std::string(what) + " '" +
                                std::string(token) + "'");
  }
  return v;
}

bool valid_signal(std::string_view s) {
  if (s.empty()) return false;
  const auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!alpha(s.front())) return false;
  for (char c : s) {
    if (!alpha(c) && !(c >= '0' && c <= '9') && c != '.') return false;
  }
  return true;
}

SloObjective parse_objective(std::string_view token) {
  SloObjective o;
  const std::size_t op = token.find_first_of("<>");
  if (op == std::string_view::npos) {
    throw std::invalid_argument("slo config: objective '" +
                                std::string(token) +
                                "' needs '<' or '>' after the signal name");
  }
  o.signal = std::string(token.substr(0, op));
  if (!valid_signal(o.signal)) {
    throw std::invalid_argument("slo config: bad signal name '" + o.signal +
                                "'");
  }
  o.upper = token[op] == '<';
  const std::string_view rest = token.substr(op + 1);
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= rest.size(); ++i) {
    if (i == rest.size() || rest[i] == ':') {
      fields.push_back(rest.substr(start, i - start));
      start = i + 1;
    }
  }
  o.threshold = parse_double(fields.front(), "threshold");
  for (std::size_t f = 1; f < fields.size(); ++f) {
    const std::string_view opt = fields[f];
    if (opt.rfind("burn=", 0) == 0) {
      o.burn = parse_double(opt.substr(5), "burn fraction");
      if (o.burn < 0 || o.burn >= 1) {
        throw std::invalid_argument("slo config: burn fraction " +
                                    std::string(opt.substr(5)) +
                                    " out of [0, 1)");
      }
    } else if (opt.rfind("window=", 0) == 0) {
      const std::string_view ms = opt.substr(7);
      std::int64_t v = 0;
      const auto res = std::from_chars(ms.data(), ms.data() + ms.size(), v);
      if (res.ec != std::errc() || res.ptr != ms.data() + ms.size() ||
          v < 1 || v > 600'000) {
        throw std::invalid_argument("slo config: window ms '" +
                                    std::string(ms) + "' out of [1, 600000]");
      }
      o.window = milliseconds(v);
    } else {
      throw std::invalid_argument("slo config: unknown option '" +
                                  std::string(opt) + "'");
    }
  }
  return o;
}

}  // namespace

std::string SloObjective::canonical() const {
  std::string out = signal;
  out += upper ? '<' : '>';
  append_double(out, threshold);
  out += ":burn=";
  append_double(out, burn);
  // Integer print: append_double would render e.g. 100000 as "1e+05",
  // which the integer window parser rightly rejects on round-trip.
  out += ":window=";
  out += std::to_string(window / milliseconds(1));
  return out;
}

SloConfig SloConfig::parse(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("slo config: empty spec");
  }
  SloConfig cfg;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      cfg.objectives.push_back(
          parse_objective(std::string_view(text).substr(start, i - start)));
      start = i + 1;
    }
  }
  return cfg;
}

std::string SloConfig::canonical() const {
  std::string out;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (i) out += ',';
    out += objectives[i].canonical();
  }
  return out;
}

SloEngine::SloEngine(SloConfig cfg, TimeNs sample_window)
    : cfg_(std::move(cfg)),
      sample_window_(sample_window > 0 ? sample_window : milliseconds(10)) {
  states_.resize(cfg_.objectives.size());
}

void SloEngine::on_frame(TimeseriesRecorder& rec, MetricsRegistry& metrics,
                         EpochTracer* tracer, std::uint64_t epoch) {
  if (!resolved_) {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      State& st = states_[i];
      const SloObjective& o = cfg_.objectives[i];
      st.signal_id = rec.intern(o.signal);
      st.burn_id = rec.intern("slo.burn." + o.signal);
      st.breached_id = rec.intern("slo.breached." + o.signal);
      st.window_frames = static_cast<std::size_t>(
          std::max<TimeNs>(1, o.window / sample_window_));
      st.ring.assign(st.window_frames, 0);
    }
    resolved_ = true;
  }
  bool any_breached = false;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    const SloObjective& o = cfg_.objectives[i];
    const double v =
        rec.frame_value(st.signal_id, std::numeric_limits<double>::quiet_NaN());
    if (std::isnan(v)) continue;  // signal absent from this frame
    const bool violation = o.upper ? v >= o.threshold : v <= o.threshold;
    if (st.filled == st.window_frames) {
      st.violating -= st.ring[st.head];
    } else {
      ++st.filled;
    }
    st.ring[st.head] = violation ? 1 : 0;
    st.violating += violation ? 1 : 0;
    st.head = (st.head + 1) % st.window_frames;

    metrics.counter("slo.samples").add();
    if (violation) metrics.counter("slo.violations").add();

    // Burn rate is the violating fraction of the *full* window, so the
    // budget means the same thing while the window is still filling.
    const double burn =
        static_cast<double>(st.violating) /
        static_cast<double>(st.window_frames);
    const bool over =
        static_cast<double>(st.violating) >
        o.burn * static_cast<double>(st.window_frames) + kBurnEpsilon;
    if (over && !st.breached) {
      st.breached = true;
      ++breaches_;
      metrics.counter("slo.breaches").add();
      if (tracer != nullptr) {
        tracer->instant("slo.breach", rec.frame_t_ns(), epoch,
                        {{"objective", static_cast<double>(i)},
                         {"value", v},
                         {"burn", burn}});
      }
    } else if (!over && st.breached) {
      st.breached = false;
      ++recoveries_;
      metrics.counter("slo.recoveries").add();
      if (tracer != nullptr) {
        tracer->instant("slo.recovered", rec.frame_t_ns(), epoch,
                        {{"objective", static_cast<double>(i)},
                         {"value", v},
                         {"burn", burn}});
      }
    }
    rec.record(st.burn_id, burn);
    rec.record(st.breached_id, st.breached ? 1.0 : 0.0);
    any_breached = any_breached || st.breached;
  }
  if (any_breached) {
    ++breach_frames_;
    metrics.counter("slo.breach_samples").add();
  }
}

}  // namespace sb::obs
