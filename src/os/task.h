// Task entity: the kernel's view of a schedulable thread.
//
// As in the Linux scheduling subsystem (paper §3), processes and threads are
// both "task entities" scheduled independently; we keep the same uniformity.
// A Task carries CFS bookkeeping (weight, vruntime), affinity, workload
// progress (which phase/burst of its ThreadBehavior it is executing),
// per-epoch sensing accumulators, and lifetime statistics.
#pragma once

#include <bitset>
#include <cstdint>
#include <string>

#include "common/types.h"
#include "perf/counters.h"
#include "workload/profile.h"

namespace sb::os {

enum class TaskState { Runnable, Running, Sleeping, Exited };

const char* to_string(TaskState s);

/// Linux nice-to-weight mapping (kernel/sched/core.c sched_prio_to_weight):
/// each nice step changes CPU share by ~25%. nice must be in [-20, 19].
std::uint32_t nice_to_weight(int nice);

/// Weight of nice 0; vruntime advances at wall rate for this weight.
inline constexpr std::uint32_t kNice0Weight = 1024;

struct Task {
  ThreadId tid = kInvalidThread;
  std::string name;
  workload::ThreadBehavior behavior;

  TaskState state = TaskState::Runnable;
  int nice = 0;
  std::uint32_t weight = kNice0Weight;

  /// CFS virtual runtime, in (weighted) nanoseconds.
  double vruntime = 0.0;

  /// Core the task is assigned to (runqueue membership / running location).
  CoreId cpu = kInvalidCore;
  /// Affinity mask (set_cpus_allowed_ptr analogue); defaults to all cores.
  std::bitset<kMaxCores> cpus_allowed = std::bitset<kMaxCores>().set();

  /// True for user threads; SmartBalance optimizes user threads (the paper
  /// marks them in sched_fork and focuses on them as the dominant load).
  bool user_thread = true;

  // --- Workload progress ---
  std::size_t phase_idx = 0;
  std::uint64_t insts_into_phase = 0;
  std::uint64_t insts_into_burst = 0;
  std::uint64_t insts_retired = 0;

  // --- Migration / cache-warmup state ---
  std::uint64_t insts_since_migration = 0;
  std::uint64_t migrations = 0;

  // --- Per-epoch sensing accumulators (drained by the balancer) ---
  perf::HpcCounters epoch_counters;
  double epoch_energy_j = 0.0;
  TimeNs epoch_runtime = 0;
  /// Core the task last executed on during the epoch (the paper's c_j for
  /// the measured column of S/P).
  CoreId epoch_core = kInvalidCore;

  // --- PELT-style utilization (for GTS and reporting) ---
  double util_avg = 0.0;
  TimeNs util_updated_at = 0;

  // --- Lifetime statistics ---
  std::uint64_t lifetime_insts = 0;
  double lifetime_energy_j = 0.0;
  TimeNs lifetime_runtime = 0;
  TimeNs arrived_at = 0;
  TimeNs exited_at = kTimeNever;

  // --- Scheduling latency (runnable → running) ---
  TimeNs runnable_since = kTimeNever;  // set at enqueue, cleared at dispatch
  TimeNs total_wait = 0;               // accumulated runqueue wait
  TimeNs max_wait = 0;
  std::uint64_t dispatches = 0;
  /// First time the task ever ran (wake-to-run latency = this - arrived_at);
  /// kTimeNever until the first dispatch.
  TimeNs first_dispatched_at = kTimeNever;
  /// Timestamp of the latest Sleeping→Runnable wake; cleared at the first
  /// dispatch after it (wake-to-run latency = dispatch time - this).
  TimeNs last_wake_at = kTimeNever;

  bool alive() const { return state != TaskState::Exited; }
  bool can_run_on(CoreId c) const {
    return c >= 0 && c < kMaxCores &&
           cpus_allowed.test(static_cast<std::size_t>(c));
  }

  const workload::WorkloadProfile& current_profile() const {
    return behavior.phases[phase_idx % behavior.phases.size()].profile;
  }
  std::uint64_t current_phase_length() const {
    return behavior.phases[phase_idx % behavior.phases.size()].instructions;
  }

  /// Drains the per-epoch accumulators (counters, energy, runtime).
  void reset_epoch_accumulators() {
    epoch_counters.reset();
    epoch_energy_j = 0.0;
    epoch_runtime = 0;
  }
};

}  // namespace sb::os
