#include "os/cfs_runqueue.h"

#include <algorithm>
#include <stdexcept>

namespace sb::os {

void CfsRunqueue::enqueue(ThreadId tid, double vruntime, std::uint32_t weight) {
  const auto [it, inserted] = queue_.insert(Entry{vruntime, tid, weight});
  if (!inserted) throw std::logic_error("CfsRunqueue: duplicate enqueue");
  total_weight_ += weight;
  update_min_vruntime(queue_.begin()->vruntime);
}

bool CfsRunqueue::remove(ThreadId tid, double vruntime) {
  // Entries are keyed by (vruntime, tid); vruntime is immutable while queued
  // so direct erase works.
  const auto it = queue_.find(Entry{vruntime, tid, 0});
  if (it == queue_.end() || it->tid != tid) return false;
  total_weight_ -= it->weight;
  queue_.erase(it);
  return true;
}

ThreadId CfsRunqueue::pop_leftmost() {
  if (queue_.empty()) return kInvalidThread;
  const auto it = queue_.begin();
  const ThreadId tid = it->tid;
  update_min_vruntime(it->vruntime);
  total_weight_ -= it->weight;
  queue_.erase(it);
  return tid;
}

double CfsRunqueue::leftmost_vruntime() const {
  if (queue_.empty()) throw std::logic_error("CfsRunqueue: empty");
  return queue_.begin()->vruntime;
}

ThreadId CfsRunqueue::leftmost() const {
  return queue_.empty() ? kInvalidThread : queue_.begin()->tid;
}

void CfsRunqueue::update_min_vruntime(double v) {
  min_vruntime_ = std::max(min_vruntime_, v);
}

std::vector<ThreadId> CfsRunqueue::queued() const {
  std::vector<ThreadId> out;
  out.reserve(queue_.size());
  for (const auto& e : queue_) out.push_back(e.tid);
  return out;
}

}  // namespace sb::os
