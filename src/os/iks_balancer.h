// Linaro In-Kernel Switcher (IKS) — Table 1 baseline.
//
// IKS pairs each big core with a little core into one *logical* CPU and
// switches the active member of the pair based on demand: the scheduler
// only ever sees the logical CPU, so the granularity is a core *pair*
// (cluster), not an individual task — the coarseness GTS (and the paper)
// improve upon. We model it faithfully: threads of a pair all run on the
// pair's active member; the switcher activates the big member when the
// pair's aggregate utilization crosses an up-threshold and falls back to
// the little member below a down-threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "os/load_balancer.h"

namespace sb::os {

class IksBalancer final : public LoadBalancer {
 public:
  struct Config {
    TimeNs interval = milliseconds(6);
    double up_threshold = 0.60;    // pair util above which big is active
    double down_threshold = 0.30;  // below which little is active
    CoreTypeId big_type = 0;
    /// Balance thread counts across logical CPUs (pairs), like the vanilla
    /// balancer does across physical cores.
    bool balance_pairs = true;
  };

  IksBalancer() : IksBalancer(Config()) {}
  explicit IksBalancer(Config cfg) : cfg_(cfg) {}

  TimeNs interval() const override { return cfg_.interval; }
  void on_balance(Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "iks"; }
  std::uint64_t passes() const override { return passes_; }

  std::uint64_t switches() const { return switches_; }

 private:
  struct Pair {
    CoreId big = kInvalidCore;
    CoreId little = kInvalidCore;
    bool big_active = false;
  };

  void init_pairs(Kernel& kernel);
  CoreId active_core(const Pair& p) const {
    return p.big_active ? p.big : p.little;
  }

  Config cfg_;
  std::vector<Pair> pairs_;
  std::uint64_t passes_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace sb::os
