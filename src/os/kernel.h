// The kernel scheduling simulator.
//
// Reproduces the slice of Linux 2.6.x the paper modifies and measures:
//   * per-core CFS runqueues with vruntime scheduling, nice weights,
//     timeslice = period · weight / Σweight, wakeup preemption;
//   * task lifecycle (fork / run / sleep / wake / exit) driven by each
//     task's workload::ThreadBehavior;
//   * per-thread hardware-counter accounting at context-switch granularity
//     (the paper samples HPCs in schedule(); we account at segment end,
//     which is the same boundary);
//   * CPU-affinity migration (set_cpus_allowed_ptr analogue) with cache
//     warmup costs charged by the performance model;
//   * a pluggable LoadBalancer fired on its own interval, replacing
//     rebalance_domains().
//
// Execution is discrete-event: a core runs its current task in *segments*
// bounded by the CFS slice, workload phase/burst boundaries, wakeup
// preemption, balancing epochs and simulation end. Ground-truth
// instructions, events and energy for each segment come from the
// mechanistic models (sb::perf, sb::power); the balancer can only observe
// them through counters and sensors.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "arch/cache_model.h"
#include "arch/dvfs.h"
#include "arch/memory_system.h"
#include "arch/platform.h"
#include "common/rng.h"
#include "common/types.h"
#include "os/cfs_runqueue.h"
#include "os/dvfs_governor.h"
#include "os/load_balancer.h"
#include "os/pelt.h"
#include "os/task.h"
#include "perf/perf_model.h"
#include "power/energy_meter.h"
#include "power/power_model.h"
#include "power/sensor.h"

namespace sb::obs {
class Sink;
}  // namespace sb::obs

namespace sb::os {

struct KernelConfig {
  TimeNs sched_latency = milliseconds(6);      // CFS period target
  TimeNs min_granularity = microseconds(750);  // minimum timeslice
  TimeNs wakeup_granularity = milliseconds(1); // preemption hysteresis
  bool wakeup_preemption = true;
  /// select_idle_sibling analogue: a wake whose resident core is busy while
  /// an allowed online core sits fully idle moves to the idle core (same
  /// core type preferred, then lowest id) instead of queueing. Keeps
  /// wake-to-run latency flat when capacity exists; balancing policies
  /// re-place the thread at the next epoch as usual.
  bool wake_idle_select = true;
  std::uint64_t seed = 42;
  arch::CacheWarmupModel warmup{};
  arch::SharedBus::Config bus{};
  power::PowerSensorBank::Config sensor{};
  /// Gives every core type a 4-point OPP table (OppTable::typical_for) and
  /// enables set_core_opp / DVFS governors. Off by default: the paper fixes
  /// all voltages/frequencies to isolate architectural heterogeneity (§5).
  bool enable_dvfs = false;
};

/// One thread's sensing record for a balancing epoch (drained by policies).
struct EpochSample {
  ThreadId tid = kInvalidThread;
  CoreId core = kInvalidCore;  // core the thread executed on this epoch
  perf::HpcCounters counters;  // ground-truth counters (noise is applied by
                               // the policy's sensing layer)
  double energy_j = 0.0;
  TimeNs runtime = 0;
  double util = 0.0;           // PELT utilization at drain time
  std::uint32_t weight = kNice0Weight;
  /// Frequency (MHz) of the core the thread ran on, at drain time; under
  /// DVFS this can differ from the type's nominal frequency.
  double freq_mhz = 0.0;
  /// False while the thread is still refilling its private caches after a
  /// migration — its counters are transiently depressed and not
  /// representative of steady-state behaviour on this core.
  bool warm = true;
};

/// Fault hook on the balancer-driven migration path. Real
/// set_cpus_allowed_ptr calls can fail (target unplugged mid-call, IPI
/// lost) or land late (stop-machine contention); a filter injects exactly
/// those outcomes. Consulted only for migrations requested during a
/// balance pass — kernel-internal moves (hotplug evacuation, affinity
/// kicks, wake placement) are correctness-critical and never filtered.
class MigrationFilter {
 public:
  enum class Decision {
    kAllow,   // migration proceeds normally
    kDefer,   // applied at the start of the next balance pass
    kReject,  // dropped silently (the call "failed")
  };
  virtual ~MigrationFilter() = default;
  virtual Decision on_migrate(ThreadId tid, CoreId from, CoreId to) = 0;
};

class Kernel {
 public:
  Kernel(const arch::Platform& platform, const perf::PerfModel& perf,
         const power::PowerModel& power, KernelConfig cfg = KernelConfig());

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Task lifecycle -----------------------------------------------------
  /// Creates a task; initial placement is round-robin over allowed cores
  /// (vanilla fork placement is heterogeneity-blind).
  ThreadId fork(workload::ThreadBehavior behavior);
  /// Creates a task pinned-placed on a specific core (not affinity-pinned).
  ThreadId fork_on(workload::ThreadBehavior behavior, CoreId core);

  // --- Policy installation -------------------------------------------------
  void set_balancer(std::unique_ptr<LoadBalancer> balancer);
  LoadBalancer* balancer() { return balancer_.get(); }
  const LoadBalancer* balancer() const { return balancer_.get(); }

  /// Installs a DVFS governor (requires KernelConfig::enable_dvfs).
  void set_governor(std::unique_ptr<DvfsGovernor> governor);
  DvfsGovernor* governor() { return governor_.get(); }

  // --- DVFS (cpufreq analogue) ----------------------------------------------
  const arch::OppTable& opp_table(CoreId c) const;
  std::size_t core_opp_index(CoreId c) const;
  const arch::OperatingPoint& core_opp(CoreId c) const;
  /// Switches a core's operating point. A running segment is flushed and
  /// re-dispatched at the new frequency. Counts as a DVFS transition.
  void set_core_opp(CoreId c, std::size_t opp_index);
  std::uint64_t dvfs_transitions() const { return dvfs_transitions_; }

  // --- CPU hotplug ----------------------------------------------------------
  /// Takes a core offline: its tasks are migrated to the least-loaded
  /// online core their affinity allows (throws std::logic_error if any
  /// task has nowhere to go, or if this is the last online core), and the
  /// core power-gates (sleep state) until brought back online. Offline
  /// cores reject fork/migrate placements and are skipped by wake
  /// placement; balancers must check core_online().
  void set_core_online(CoreId c, bool online);
  bool core_online(CoreId c) const { return !core(c).offline; }
  int num_online_cores() const;

  // --- Simulation control --------------------------------------------------
  /// Advances simulated time to `t` (absolute). Accounting is exact at `t`.
  void run_until(TimeNs t);
  void run_for(TimeNs dt) { run_until(now_ + dt); }
  TimeNs now() const { return now_; }
  bool all_exited() const;

  // --- Balancer / experiment API -------------------------------------------
  const arch::Platform& platform() const { return platform_; }
  int num_cores() const { return platform_.num_cores(); }

  const Task& task(ThreadId tid) const { return *tasks_.at(checked(tid)); }
  std::size_t num_tasks() const { return tasks_.size(); }
  /// Alive user threads (the set V optimized each epoch).
  std::vector<ThreadId> alive_threads() const;

  /// PELT utilization advanced to now.
  double task_util(ThreadId tid) const;
  /// CFS load of a core: Σ weight of runnable + running tasks.
  double core_load(CoreId c) const;
  int core_nr_running(CoreId c) const;
  /// The thread currently executing on `c` (kInvalidThread if none).
  ThreadId core_running(CoreId c) const;

  /// Migrates a task to `dest` (must be allowed by its affinity mask).
  /// Running tasks are stopped (counters flushed) first. Sleeping tasks are
  /// retargeted and migrate on wake. Resets the cache-warmup window.
  /// During a balance pass an installed MigrationFilter may reject or defer
  /// the move (see set_migration_filter).
  void migrate(ThreadId tid, CoreId dest);

  /// Installs (or clears, with nullptr) the migration fault filter. Not
  /// owned; the caller keeps it alive while installed.
  void set_migration_filter(MigrationFilter* filter) {
    migration_filter_ = filter;
  }
  MigrationFilter* migration_filter() const { return migration_filter_; }

  /// Installs (or clears, with nullptr) the observability sink. Not owned;
  /// the Simulation keeps it alive while installed. Policies read it via
  /// obs() inside their balance pass; a null sink means observability off.
  void set_obs(obs::Sink* sink) { obs_ = sink; }
  obs::Sink* obs() const { return obs_; }

  /// Exact wake→first-dispatch deltas, one per Sleeping→Runnable wake, in
  /// event order. Pure accounting (never fed back into scheduling), so
  /// collecting it cannot perturb a golden run; the latency report's
  /// nearest-rank p50/p95/p99 are computed from this ground truth while the
  /// obs histogram (sched.wake_to_run_ns) stays the mergeable view.
  const std::vector<TimeNs>& wake_latencies() const { return wake_latencies_; }
  /// Balance-pass migrations dropped / postponed by the filter.
  std::uint64_t migrations_rejected() const { return migrations_rejected_; }
  std::uint64_t migrations_deferred() const { return migrations_deferred_; }
  /// Deferred migrations applied at a later balance pass.
  std::uint64_t deferred_applied() const { return deferred_applied_; }
  void set_cpus_allowed(ThreadId tid, const std::bitset<kMaxCores>& mask);
  void set_nice(ThreadId tid, int nice);

  /// Collects and clears every alive thread's epoch accumulators.
  std::vector<EpochSample> drain_epoch_samples();

  power::PowerSensorBank& sensors() { return sensors_; }
  const power::EnergyMeter& energy() const { return meter_; }
  arch::SharedBus& bus() { return bus_; }
  const perf::PerfModel& perf_model() const { return perf_; }
  const power::PowerModel& power_model() const { return power_; }
  const KernelConfig& config() const { return cfg_; }

  // --- Global statistics ----------------------------------------------------
  std::uint64_t total_instructions() const;
  std::uint64_t core_instructions(CoreId c) const {
    return core(c).instructions;
  }
  std::uint64_t total_migrations() const { return total_migrations_; }
  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t balance_passes() const { return balance_passes_; }

 private:
  enum class EventType { SegmentEnd, Wake, Balance, Governor };

  struct Event {
    TimeNs time;
    EventType type;
    std::int64_t a;        // core (SegmentEnd) or tid (Wake)
    std::uint64_t seq;     // dispatch sequence (SegmentEnd staleness check)
    std::uint64_t order;   // global tie-breaker for determinism
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return order > o.order;
    }
  };

  struct CoreState {
    CfsRunqueue rq;
    ThreadId running = kInvalidThread;
    TimeNs segment_start = 0;
    std::uint64_t dispatch_seq = 0;
    TimeNs sleeping_since = 0;  // core quiescent since (valid when no task
                                // has ever run or runqueue drained)
    bool asleep = true;
    // Frozen per-segment model outputs:
    perf::PerfBreakdown seg_breakdown;
    double seg_activity = 1.0;
    TimeNs slice_end = 0;
    std::uint64_t instructions = 0;  // lifetime instructions retired here
    std::size_t opp_idx = 0;         // current DVFS operating point
    bool offline = false;            // hot-unplugged
  };

  std::size_t checked(ThreadId tid) const;
  Task& task_mut(ThreadId tid) { return *tasks_.at(checked(tid)); }
  CoreState& core(CoreId c);
  const CoreState& core(CoreId c) const;

  void push_event(TimeNs time, EventType type, std::int64_t a,
                  std::uint64_t seq);
  void handle_segment_end(CoreId c, std::uint64_t seq);
  void handle_wake(ThreadId tid);
  void handle_balance();

  /// Starts the next task on an idle core (no-op if the runqueue is empty).
  void dispatch(CoreId c);
  /// Instructions until the nearest workload boundary (phase, burst, exit).
  std::uint64_t current_segment_bound(const Task& t) const;
  /// Accounts the running segment up to now_ and returns the task id;
  /// leaves the core with no running task. kInvalidThread if none ran.
  ThreadId stop_current(CoreId c);
  /// Accounts ground truth for the segment that ran on `c` until now_.
  void account_segment(CoreId c);
  /// Charges sleep power for a quiescent core up to now_.
  void account_core_sleep(CoreId c);
  /// Places a runnable task on its core's runqueue (+wakeup preemption).
  void enqueue_task(Task& t, bool wakeup);
  void advance_util(Task& t, bool active);
  TimeNs draw_sleep(const workload::ThreadBehavior& b);
  CoreId pick_fork_core(const Task& t);
  void after_task_stops(Task& t);

  const arch::Platform& platform_;
  const perf::PerfModel& perf_;
  const power::PowerModel& power_;
  KernelConfig cfg_;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<CoreState> cores_;
  power::EnergyMeter meter_;
  power::PowerSensorBank sensors_;
  arch::SharedBus bus_;
  PeltTracker pelt_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t event_order_ = 0;
  TimeNs now_ = 0;

  std::unique_ptr<LoadBalancer> balancer_;
  bool balance_scheduled_ = false;
  bool in_balance_pass_ = false;
  std::unique_ptr<DvfsGovernor> governor_;
  bool governor_scheduled_ = false;
  std::vector<arch::OppTable> opp_tables_;  // per core type
  std::uint64_t dvfs_transitions_ = 0;

  MigrationFilter* migration_filter_ = nullptr;
  obs::Sink* obs_ = nullptr;
  std::vector<TimeNs> wake_latencies_;
  struct DeferredMigration {
    ThreadId tid;
    CoreId dest;
  };
  std::vector<DeferredMigration> deferred_migrations_;
  /// True while the kernel itself migrates (hotplug evacuation, deferred
  /// replay): those moves must never be filtered again.
  bool bypass_migration_filter_ = false;
  std::uint64_t migrations_rejected_ = 0;
  std::uint64_t migrations_deferred_ = 0;
  std::uint64_t deferred_applied_ = 0;

  int fork_rr_ = 0;
  std::uint64_t total_migrations_ = 0;
  std::uint64_t context_switches_ = 0;
  std::uint64_t balance_passes_ = 0;
};

}  // namespace sb::os
