// Completely Fair Scheduler runqueue.
//
// Orders runnable tasks by virtual runtime (the kernel uses a red-black
// tree; std::set of (vruntime, tid) pairs gives the same O(log n) ops and
// leftmost-pick semantics). Tracks min_vruntime monotonically so newly
// woken or newly forked tasks can be placed without starving the queue.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "common/types.h"

namespace sb::os {

class CfsRunqueue {
 public:
  /// Inserts a runnable task. Caller must ensure it is not already queued.
  void enqueue(ThreadId tid, double vruntime, std::uint32_t weight);

  /// Removes a specific task; returns false if it was not queued.
  bool remove(ThreadId tid, double vruntime);

  /// Pops the task with the smallest vruntime; kInvalidThread if empty.
  ThreadId pop_leftmost();

  /// Smallest queued vruntime (peek); only valid when !empty().
  double leftmost_vruntime() const;
  ThreadId leftmost() const;

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Monotone floor for placing new arrivals (CFS min_vruntime).
  double min_vruntime() const { return min_vruntime_; }
  /// Raises min_vruntime (never lowers it).
  void update_min_vruntime(double v);

  /// Sum of queued tasks' weights (used by timeslice computation and by
  /// the vanilla balancer's notion of load).
  std::uint64_t total_weight() const { return total_weight_; }

  /// Snapshot of queued thread ids (ascending vruntime).
  std::vector<ThreadId> queued() const;

 private:
  struct Entry {
    double vruntime;
    ThreadId tid;
    std::uint32_t weight;
    bool operator<(const Entry& o) const {
      if (vruntime != o.vruntime) return vruntime < o.vruntime;
      return tid < o.tid;
    }
  };

  std::set<Entry> queue_;
  double min_vruntime_ = 0.0;
  std::uint64_t total_weight_ = 0;
};

}  // namespace sb::os
