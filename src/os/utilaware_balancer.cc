#include "os/utilaware_balancer.h"

#include <algorithm>
#include <vector>

#include "os/kernel.h"

namespace sb::os {

void UtilAwareBalancer::on_balance(Kernel& kernel, TimeNs /*now*/) {
  ++passes_;
  const auto& platform = kernel.platform();

  std::vector<CoreId> bigs, littles;
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    if (!kernel.core_online(c)) continue;
    (platform.type_of(c) == cfg_.big_type ? bigs : littles).push_back(c);
  }
  if (littles.empty() || bigs.empty()) return;

  // Rank tasks by tracked utilization, heaviest first.
  struct Entry {
    ThreadId tid;
    double util;
    int bucket;       // util quantized to 5% steps (stable ordering)
    bool on_little;   // incumbents keep their slots on ties
  };
  std::vector<Entry> tasks;
  for (ThreadId tid : kernel.alive_threads()) {
    const double u = kernel.task_util(tid);
    tasks.push_back({tid, u, static_cast<int>(u / 0.05),
                     platform.type_of(kernel.task(tid).cpu) != cfg_.big_type});
  }
  std::sort(tasks.begin(), tasks.end(), [](const Entry& a, const Entry& b) {
    if (a.bucket != b.bucket) return a.bucket > b.bucket;
    if (a.on_little != b.on_little) return a.on_little > b.on_little;
    return a.tid < b.tid;
  });

  // First-fit-decreasing packing onto littles up to the capacity budget;
  // overflow goes to the least-loaded big.
  std::vector<double> little_load(littles.size(), 0.0);
  std::vector<double> big_load(bigs.size(), 0.0);
  for (const Entry& e : tasks) {
    const Task& t = kernel.task(e.tid);
    CoreId target = kInvalidCore;

    std::size_t best_l = 0;
    bool fits = false;
    for (std::size_t i = 0; i < littles.size(); ++i) {
      if (!t.can_run_on(littles[i])) continue;
      // A task fits if it respects the budget — or if the little core is
      // still empty (a single task may own a whole little outright; that
      // is always more efficient than a big core at any utilization).
      const bool ok = little_load[i] + e.util <= cfg_.little_capacity ||
                      little_load[i] == 0.0;
      if (!ok) continue;
      // Prefer the incumbent core, then the least-loaded.
      const bool better = !fits || littles[i] == t.cpu ||
                          (littles[best_l] != t.cpu &&
                           little_load[i] < little_load[best_l]);
      if (better) {
        best_l = i;
        fits = true;
      }
    }
    if (fits) {
      target = littles[best_l];
      little_load[best_l] += e.util;
    } else {
      std::size_t best_b = 0;
      bool any = false;
      for (std::size_t i = 0; i < bigs.size(); ++i) {
        if (!t.can_run_on(bigs[i])) continue;
        if (!any || big_load[i] < big_load[best_b]) {
          best_b = i;
          any = true;
        }
      }
      if (!any) continue;  // affinity leaves no choice
      target = bigs[best_b];
      big_load[best_b] += e.util;
    }

    // Hysteresis: cross-type moves always apply (that's the policy's
    // point); same-type moves only when they fix a real queue imbalance —
    // FFD tie-breaking would otherwise bounce tasks between equivalent
    // cores every pass.
    if (target == t.cpu) continue;
    const bool cross_type =
        platform.type_of(target) != platform.type_of(t.cpu);
    const bool fixes_imbalance =
        kernel.core_nr_running(t.cpu) >= kernel.core_nr_running(target) + 2;
    if (cross_type || fixes_imbalance) {
      kernel.migrate(e.tid, target);
    }
  }
}

}  // namespace sb::os
