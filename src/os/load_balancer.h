// Pluggable load-balancing policy interface.
//
// In the paper, SmartBalance is installed by reimplementing
// rebalance_domains() so the kernel invokes smart_balance() at epoch
// boundaries instead of the vanilla balancing pass. We reproduce that
// policy point: the Kernel fires on_balance() every interval(); the policy
// inspects kernel state (counters, sensors, utilizations) and requests
// migrations. Three policies implement this interface: VanillaBalancer,
// GtsBalancer and sb::core::SmartBalancePolicy.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace sb::os {

class Kernel;

/// Per-invocation cost accounting, aggregated for the Fig. 7 overhead study.
struct BalancePassStats {
  TimeNs sense_host_ns = 0;     // wall-clock spent in sensing/collection
  TimeNs predict_host_ns = 0;   // estimation + prediction
  TimeNs optimize_host_ns = 0;  // allocation search
  int migrations = 0;
  /// Fault-resilience accounting (SmartBalance with defenses enabled; zero
  /// everywhere else). Detected = measurements rejected by the plausibility
  /// or outlier screens this pass; absorbed = observations served from the
  /// stale cache or the neutral prior in their place.
  std::uint64_t faults_detected = 0;
  std::uint64_t faults_absorbed = 0;
  /// True when the pass was delegated to the vanilla fallback because too
  /// few threads had healthy sensors.
  bool degraded = false;
};

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Interval between on_balance invocations (SmartBalance: the epoch,
  /// 60 ms by default; vanilla: every CFS period).
  virtual TimeNs interval() const = 0;

  /// One balancing pass at simulated time `now`.
  virtual void on_balance(Kernel& kernel, TimeNs now) = 0;

  virtual std::string name() const = 0;

  /// Aggregate stats over all passes so far (default: none collected).
  virtual BalancePassStats last_pass_stats() const { return {}; }
  virtual std::uint64_t passes() const { return 0; }
};

/// No-op policy: CFS on whatever core a task was forked to. The degenerate
/// baseline used in tests and as a lower bound in experiments.
class NullBalancer final : public LoadBalancer {
 public:
  explicit NullBalancer(TimeNs interval = milliseconds(60)) : interval_(interval) {}
  TimeNs interval() const override { return interval_; }
  void on_balance(Kernel&, TimeNs) override {}
  std::string name() const override { return "none"; }

 private:
  TimeNs interval_;
};

}  // namespace sb::os
