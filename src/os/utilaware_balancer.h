// Utilization-aware big.LITTLE balancing (Kim et al., DATE'14) — Table 1
// baseline.
//
// Kim2014 improves on IKS by bringing *per-core utilization awareness* to
// the balancer: instead of switching whole cluster pairs, it packs task
// utilization onto the energy-efficient little cores up to a capacity
// budget and spills only the overflow (highest-utilization tasks first)
// to big cores. Still no per-thread IPC/power awareness — exactly the row
// the paper's Table 1 assigns it.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "os/load_balancer.h"

namespace sb::os {

class UtilAwareBalancer final : public LoadBalancer {
 public:
  struct Config {
    TimeNs interval = milliseconds(12);
    /// Per-little-core utilization budget before spilling to big.
    double little_capacity = 0.85;
    CoreTypeId big_type = 0;
    /// Minimum utilization change that justifies a migration (hysteresis).
    double rebalance_margin = 0.10;
  };

  UtilAwareBalancer() : UtilAwareBalancer(Config()) {}
  explicit UtilAwareBalancer(Config cfg) : cfg_(cfg) {}

  TimeNs interval() const override { return cfg_.interval; }
  void on_balance(Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "utilaware"; }
  std::uint64_t passes() const override { return passes_; }

 private:
  Config cfg_;
  std::uint64_t passes_ = 0;
};

}  // namespace sb::os
