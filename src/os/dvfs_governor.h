// cpufreq-style DVFS governors.
//
// Orthogonal to load balancing (as in Linux): the governor picks each
// core's operating point from its OPP table based on recent busy time,
// while the balancer decides thread placement. Enabled by
// KernelConfig::enable_dvfs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sb::os {

class Kernel;

class DvfsGovernor {
 public:
  virtual ~DvfsGovernor() = default;

  /// Interval between on_tick invocations.
  virtual TimeNs interval() const = 0;
  virtual void on_tick(Kernel& kernel, TimeNs now) = 0;
  virtual std::string name() const = 0;
};

/// Always the highest operating point (Linux "performance").
class PerformanceGovernor final : public DvfsGovernor {
 public:
  TimeNs interval() const override { return milliseconds(100); }
  void on_tick(Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "performance"; }
};

/// Always the lowest operating point (Linux "powersave").
class PowersaveGovernor final : public DvfsGovernor {
 public:
  TimeNs interval() const override { return milliseconds(100); }
  void on_tick(Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "powersave"; }
};

/// Utilization-driven stepping (Linux "ondemand"/"schedutil" flavour):
/// raise the operating point when the core's busy fraction over the last
/// tick exceeds `up_threshold`, lower it when below `down_threshold`.
class OndemandGovernor final : public DvfsGovernor {
 public:
  struct Config {
    TimeNs interval = milliseconds(30);
    double up_threshold = 0.85;
    double down_threshold = 0.35;
    /// Jump straight to the top point on saturation (ondemand behaviour)
    /// rather than stepping one level.
    bool boost_to_max = true;
  };

  OndemandGovernor() : OndemandGovernor(Config()) {}
  explicit OndemandGovernor(Config cfg) : cfg_(cfg) {}

  TimeNs interval() const override { return cfg_.interval; }
  void on_tick(Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "ondemand"; }

  std::uint64_t transitions() const { return transitions_; }

 private:
  Config cfg_;
  std::vector<TimeNs> prev_busy_;
  TimeNs prev_now_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace sb::os
