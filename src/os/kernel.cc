#include "os/kernel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.h"
#include "obs/sink.h"

namespace sb::os {

Kernel::Kernel(const arch::Platform& platform, const perf::PerfModel& perf,
               const power::PowerModel& power, KernelConfig cfg)
    : platform_(platform),
      perf_(perf),
      power_(power),
      cfg_(cfg),
      cores_(static_cast<std::size_t>(platform.num_cores())),
      meter_(platform.num_cores()),
      sensors_(meter_, cfg.sensor, Rng(cfg.seed ^ 0x5e5e5e5eULL)),
      bus_(platform.num_cores(), cfg.bus),
      rng_(cfg.seed) {
  platform_.validate();
  if (platform_.num_cores() > kMaxCores) {
    throw std::invalid_argument("Kernel: platform exceeds kMaxCores");
  }
  for (CoreTypeId t = 0; t < platform_.num_types(); ++t) {
    const auto& params = platform_.params_of_type(t);
    opp_tables_.push_back(cfg_.enable_dvfs ? arch::OppTable::typical_for(params)
                                           : arch::OppTable::nominal_only(params));
  }
  for (CoreId c = 0; c < platform_.num_cores(); ++c) {
    CoreState& cs = cores_[static_cast<std::size_t>(c)];
    cs.asleep = true;
    cs.sleeping_since = 0;
    cs.opp_idx = opp_table(c).size() - 1;  // boot at nominal / top
  }
}

const arch::OppTable& Kernel::opp_table(CoreId c) const {
  return opp_tables_[static_cast<std::size_t>(platform_.type_of(c))];
}

std::size_t Kernel::core_opp_index(CoreId c) const { return core(c).opp_idx; }

const arch::OperatingPoint& Kernel::core_opp(CoreId c) const {
  return opp_table(c).at(core(c).opp_idx);
}

void Kernel::set_core_opp(CoreId c, std::size_t opp_index) {
  CoreState& cs = core(c);
  if (opp_index >= opp_table(c).size()) {
    throw std::out_of_range("set_core_opp: bad operating point");
  }
  if (opp_index == cs.opp_idx) return;
  // Flush the running segment at the old frequency, then resume at the new
  // one (a real cpufreq transition also quiesces the core briefly).
  const ThreadId running = stop_current(c);
  cs.opp_idx = opp_index;
  ++dvfs_transitions_;
  if (running != kInvalidThread) {
    Task& t = task_mut(running);
    t.state = TaskState::Runnable;
    if (t.runnable_since == kTimeNever) t.runnable_since = now_;
    cs.rq.enqueue(running, t.vruntime, t.weight);
  }
  if (!in_balance_pass_ && cs.running == kInvalidThread) dispatch(c);
}

void Kernel::set_core_online(CoreId c, bool online) {
  CoreState& cs = core(c);
  if (cs.offline == !online) return;
  if (online) {
    cs.offline = false;
    return;
  }
  // Validate before mutating: every task currently placed on this core must
  // have somewhere online to go, and this must not be the last online core.
  if (num_online_cores() <= 1) {
    throw std::logic_error("set_core_online: cannot offline the last core");
  }
  auto fallback_for = [&](const Task& t) -> CoreId {
    CoreId best = kInvalidCore;
    double best_load = 0;
    for (CoreId o = 0; o < num_cores(); ++o) {
      if (o == c || core(o).offline || !t.can_run_on(o)) continue;
      const double load = core_load(o);
      if (best == kInvalidCore || load < best_load) {
        best = o;
        best_load = load;
      }
    }
    return best;
  };
  for (const auto& tp : tasks_) {
    if (tp->alive() && tp->cpu == c && fallback_for(*tp) == kInvalidCore) {
      throw std::logic_error("set_core_online: task '" + tp->name +
                             "' has no online core in its affinity mask");
    }
  }

  cs.offline = true;
  // Evacuate: running task first, then the queue, then retarget sleepers.
  // Evacuation moves are correctness-critical — never fault-filtered, even
  // when a policy unplugs cores mid-balance-pass.
  const bool prev_bypass = bypass_migration_filter_;
  bypass_migration_filter_ = true;
  const ThreadId running = stop_current(c);
  if (running != kInvalidThread) {
    Task& t = task_mut(running);
    after_task_stops(t);
    if (t.state == TaskState::Runnable) {
      if (t.runnable_since == kTimeNever) t.runnable_since = now_;
      cs.rq.enqueue(running, t.vruntime, t.weight);
    } else {
      advance_util(t, /*active=*/false);
    }
  }
  while (!cs.rq.empty()) {
    const ThreadId tid = cs.rq.leftmost();
    migrate(tid, fallback_for(task(tid)));
  }
  for (auto& tp : tasks_) {
    if (tp->alive() && tp->state == TaskState::Sleeping && tp->cpu == c) {
      tp->cpu = fallback_for(*tp);
    }
  }
  if (!cs.asleep) {
    cs.asleep = true;
    cs.sleeping_since = now_;
  }
  bypass_migration_filter_ = prev_bypass;
}

int Kernel::num_online_cores() const {
  int n = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (!core(c).offline) ++n;
  }
  return n;
}

void Kernel::set_governor(std::unique_ptr<DvfsGovernor> governor) {
  if (governor && !cfg_.enable_dvfs) {
    throw std::logic_error("set_governor: KernelConfig::enable_dvfs is off");
  }
  governor_ = std::move(governor);
  governor_scheduled_ = false;
}

std::size_t Kernel::checked(ThreadId tid) const {
  if (tid < 0 || static_cast<std::size_t>(tid) >= tasks_.size()) {
    throw std::out_of_range("Kernel: bad ThreadId");
  }
  return static_cast<std::size_t>(tid);
}

Kernel::CoreState& Kernel::core(CoreId c) {
  if (c < 0 || static_cast<std::size_t>(c) >= cores_.size()) {
    throw std::out_of_range("Kernel: bad CoreId");
  }
  return cores_[static_cast<std::size_t>(c)];
}

const Kernel::CoreState& Kernel::core(CoreId c) const {
  return const_cast<Kernel*>(this)->core(c);
}

// --------------------------------------------------------------------------
// Task lifecycle
// --------------------------------------------------------------------------

ThreadId Kernel::fork(workload::ThreadBehavior behavior) {
  behavior.validate();
  auto t = std::make_unique<Task>();
  t->tid = static_cast<ThreadId>(tasks_.size());
  t->name = behavior.name.empty()
                ? ("task" + std::to_string(t->tid))
                : behavior.name;
  t->nice = behavior.nice;
  t->weight = nice_to_weight(behavior.nice);
  t->behavior = std::move(behavior);
  t->arrived_at = now_;
  t->util_updated_at = now_;
  t->state = TaskState::Runnable;
  Task& ref = *t;
  tasks_.push_back(std::move(t));

  ref.cpu = pick_fork_core(ref);
  ref.vruntime = core(ref.cpu).rq.min_vruntime();
  enqueue_task(ref, /*wakeup=*/false);
  return ref.tid;
}

ThreadId Kernel::fork_on(workload::ThreadBehavior behavior, CoreId c) {
  if (c < 0 || c >= num_cores()) throw std::out_of_range("fork_on: bad core");
  if (core(c).offline) throw std::logic_error("fork_on: core is offline");
  behavior.validate();
  auto t = std::make_unique<Task>();
  t->tid = static_cast<ThreadId>(tasks_.size());
  t->name = behavior.name.empty()
                ? ("task" + std::to_string(t->tid))
                : behavior.name;
  t->nice = behavior.nice;
  t->weight = nice_to_weight(behavior.nice);
  t->behavior = std::move(behavior);
  t->arrived_at = now_;
  t->util_updated_at = now_;
  t->state = TaskState::Runnable;
  t->cpu = c;
  Task& ref = *t;
  tasks_.push_back(std::move(t));

  ref.vruntime = core(c).rq.min_vruntime();
  enqueue_task(ref, /*wakeup=*/false);
  return ref.tid;
}

CoreId Kernel::pick_fork_core(const Task& t) {
  const int n = num_cores();
  for (int i = 0; i < n; ++i) {
    const CoreId c = static_cast<CoreId>((fork_rr_ + i) % n);
    if (t.can_run_on(c) && !core(c).offline) {
      fork_rr_ = (fork_rr_ + i + 1) % n;
      return c;
    }
  }
  throw std::logic_error("fork: no online core in the task's affinity mask");
}

void Kernel::set_balancer(std::unique_ptr<LoadBalancer> balancer) {
  balancer_ = std::move(balancer);
  balance_scheduled_ = false;
}

void Kernel::set_nice(ThreadId tid, int nice) {
  Task& t = task_mut(tid);
  const std::uint32_t w = nice_to_weight(nice);
  if (t.state == TaskState::Runnable) {
    // Re-key the runqueue entry (weight is part of the entry).
    core(t.cpu).rq.remove(tid, t.vruntime);
    t.nice = nice;
    t.weight = w;
    core(t.cpu).rq.enqueue(tid, t.vruntime, w);
  } else {
    t.nice = nice;
    t.weight = w;
  }
}

// --------------------------------------------------------------------------
// Event machinery
// --------------------------------------------------------------------------

void Kernel::push_event(TimeNs time, EventType type, std::int64_t a,
                        std::uint64_t seq) {
  events_.push(Event{time, type, a, seq, event_order_++});
}

void Kernel::run_until(TimeNs t) {
  if (t < now_) throw std::invalid_argument("run_until: time went backwards");
  if (balancer_ && !balance_scheduled_) {
    push_event(now_ + balancer_->interval(), EventType::Balance, 0, 0);
    balance_scheduled_ = true;
  }
  if (governor_ && !governor_scheduled_) {
    push_event(now_ + governor_->interval(), EventType::Governor, 0, 0);
    governor_scheduled_ = true;
  }
  while (!events_.empty() && events_.top().time <= t) {
    const Event e = events_.top();
    events_.pop();
    now_ = std::max(now_, e.time);
    switch (e.type) {
      case EventType::SegmentEnd:
        handle_segment_end(static_cast<CoreId>(e.a), e.seq);
        break;
      case EventType::Wake:
        handle_wake(static_cast<ThreadId>(e.a));
        break;
      case EventType::Balance:
        handle_balance();
        break;
      case EventType::Governor:
        if (governor_) {
          governor_->on_tick(*this, now_);
          push_event(now_ + governor_->interval(), EventType::Governor, 0, 0);
        }
        break;
    }
  }
  now_ = t;
  // Make all accounting exact at t: flush running segments and sleep time.
  for (CoreId c = 0; c < num_cores(); ++c) {
    CoreState& cs = core(c);
    if (cs.running != kInvalidThread) {
      const ThreadId tid = stop_current(c);
      Task& tk = task_mut(tid);
      tk.state = TaskState::Runnable;
      if (tk.runnable_since == kTimeNever) tk.runnable_since = now_;
      cs.rq.enqueue(tid, tk.vruntime, tk.weight);
      dispatch(c);
    } else if (cs.asleep) {
      account_core_sleep(c);
    }
  }
}

bool Kernel::all_exited() const {
  for (const auto& t : tasks_) {
    if (t->alive()) return false;
  }
  return !tasks_.empty();
}

// --------------------------------------------------------------------------
// Scheduling core
// --------------------------------------------------------------------------

void Kernel::dispatch(CoreId c) {
  CoreState& cs = core(c);
  if (cs.running != kInvalidThread) {
    throw std::logic_error("dispatch: core already running a task");
  }
  if (cs.offline) {
    // Hot-unplugged: never start work here (evacuation drains the queue).
    if (!cs.asleep) {
      cs.asleep = true;
      cs.sleeping_since = now_;
    }
    return;
  }
  if (cs.rq.empty()) {
    if (!cs.asleep) {
      cs.asleep = true;
      cs.sleeping_since = now_;
    }
    return;
  }
  if (cs.asleep) {
    account_core_sleep(c);
    cs.asleep = false;
  }

  const ThreadId tid = cs.rq.pop_leftmost();
  Task& t = task_mut(tid);
  if (t.runnable_since != kTimeNever) {
    const TimeNs waited = now_ - t.runnable_since;
    t.total_wait += waited;
    t.max_wait = std::max(t.max_wait, waited);
    t.runnable_since = kTimeNever;
  }
  ++t.dispatches;
  if (t.first_dispatched_at == kTimeNever) t.first_dispatched_at = now_;
  if (t.last_wake_at != kTimeNever) {
    const TimeNs wake_to_run = now_ - t.last_wake_at;
    t.last_wake_at = kTimeNever;
    wake_latencies_.push_back(wake_to_run);
    if (obs_ != nullptr) {
      obs_->metrics()
          .histogram("sched.wake_to_run_ns")
          .record(static_cast<std::uint64_t>(wake_to_run));
      if (auto* tracer = obs_->tracer()) {
        tracer->instant("sched.run", static_cast<std::uint64_t>(now_),
                        obs_->epoch(),
                        {{"tid", static_cast<double>(tid)},
                         {"wait_ns", static_cast<double>(wake_to_run)}});
      }
    }
  }
  t.state = TaskState::Running;
  t.cpu = c;
  cs.running = tid;

  const arch::CoreParams& params = platform_.params_of(c);
  const auto nr = cs.rq.size() + 1;
  const TimeNs period = std::max<TimeNs>(
      cfg_.sched_latency,
      cfg_.min_granularity * static_cast<TimeNs>(nr));
  const std::uint64_t total_w = cs.rq.total_weight() + t.weight;
  TimeNs slice = static_cast<TimeNs>(
      static_cast<double>(period) * static_cast<double>(t.weight) /
      static_cast<double>(total_w));
  slice = std::max(slice, cfg_.min_granularity);

  // Freeze the per-segment model evaluation (bus latency, cache warmth and
  // the DVFS operating point change slowly relative to a sub-millisecond
  // segment).
  const workload::WorkloadProfile& profile = t.current_profile();
  const arch::OperatingPoint& opp = core_opp(c);
  cs.seg_breakdown = perf_.evaluate(profile, c, bus_.effective_latency_ns(),
                                    cfg_.warmup.miss_factor(
                                        t.insts_since_migration),
                                    opp.freq_mhz);
  cs.seg_activity = profile.activity;

  // Bound the segment by the nearest workload boundary.
  (void)params;
  const double ips = cs.seg_breakdown.ipc * opp.freq_mhz / 1000.0;
  std::uint64_t bound = current_segment_bound(t);
  TimeNs seg = slice;
  const double insts_in_slice = static_cast<double>(slice) * ips;
  if (insts_in_slice > static_cast<double>(bound)) {
    seg = static_cast<TimeNs>(
        std::ceil(static_cast<double>(bound) / ips));
  }
  seg = std::max<TimeNs>(seg, 1);

  cs.segment_start = now_;
  cs.slice_end = now_ + slice;
  ++cs.dispatch_seq;
  push_event(now_ + seg, EventType::SegmentEnd, c, cs.dispatch_seq);
}

std::uint64_t Kernel::current_segment_bound(const Task& t) const {
  const std::uint64_t phase_rem =
      t.current_phase_length() > t.insts_into_phase
          ? t.current_phase_length() - t.insts_into_phase
          : 1;
  std::uint64_t bound = phase_rem;
  if (t.behavior.interactive()) {
    const std::uint64_t burst_rem =
        t.behavior.burst_instructions > t.insts_into_burst
            ? t.behavior.burst_instructions - t.insts_into_burst
            : 1;
    bound = std::min(bound, burst_rem);
  }
  if (t.behavior.total_instructions > 0) {
    const std::uint64_t total_rem =
        t.behavior.total_instructions > t.insts_retired
            ? t.behavior.total_instructions - t.insts_retired
            : 1;
    bound = std::min(bound, total_rem);
  }
  return bound;
}

void Kernel::account_segment(CoreId c) {
  CoreState& cs = core(c);
  const ThreadId tid = cs.running;
  if (tid == kInvalidThread) return;
  Task& t = task_mut(tid);
  const TimeNs dur = now_ - cs.segment_start;
  if (dur <= 0) return;

  const arch::OperatingPoint& opp = opp_table(c).at(cs.opp_idx);
  const double cycles = static_cast<double>(dur) * opp.freq_mhz / 1000.0;
  double insts_d = cycles * cs.seg_breakdown.ipc;
  if (t.behavior.total_instructions > 0) {
    const double total_rem = static_cast<double>(
        t.behavior.total_instructions - std::min(t.behavior.total_instructions,
                                                 t.insts_retired));
    insts_d = std::min(insts_d, total_rem);
  }
  const auto insts = static_cast<std::uint64_t>(std::llround(insts_d));

  // Ground-truth counters for the sensing subsystem.
  const workload::WorkloadProfile& profile = t.current_profile();
  perf::PerfModel::accumulate_counters(t.epoch_counters, cs.seg_breakdown,
                                       profile, insts_d, cycles);

  // Energy: busy power at this segment's IPC, activity and DVFS point.
  const double watts = power_.busy_power_at(
      platform_.type_of(c), cs.seg_breakdown.ipc, cs.seg_activity, opp);
  const double joules = watts * to_seconds(dur);
  meter_.add_busy(c, watts, dur);
  t.epoch_energy_j += joules;
  t.lifetime_energy_j += joules;
  t.epoch_runtime += dur;
  t.lifetime_runtime += dur;
  t.epoch_core = c;

  // Shared-bus traffic feedback.
  bus_.record_traffic(c, insts_d * cs.seg_breakdown.mem_misses_per_inst, dur);

  // CFS bookkeeping.
  t.vruntime += static_cast<double>(dur) * kNice0Weight /
                static_cast<double>(t.weight);
  advance_util(t, /*active=*/true);

  // Workload progress.
  cs.instructions += insts;
  t.insts_retired += insts;
  t.lifetime_insts += insts;
  t.insts_since_migration += insts;
  t.insts_into_burst += insts;
  t.insts_into_phase += insts;
  while (t.insts_into_phase >= t.current_phase_length()) {
    t.insts_into_phase -= t.current_phase_length();
    t.phase_idx = (t.phase_idx + 1) % t.behavior.phases.size();
  }

  cs.segment_start = now_;
}

ThreadId Kernel::stop_current(CoreId c) {
  CoreState& cs = core(c);
  const ThreadId tid = cs.running;
  if (tid == kInvalidThread) return kInvalidThread;
  account_segment(c);
  cs.running = kInvalidThread;
  ++cs.dispatch_seq;  // invalidate the pending SegmentEnd event
  ++context_switches_;
  return tid;
}

void Kernel::after_task_stops(Task& t) {
  if (t.behavior.total_instructions > 0 &&
      t.insts_retired >= t.behavior.total_instructions) {
    t.state = TaskState::Exited;
    t.exited_at = now_;
    return;
  }
  if (t.behavior.interactive() &&
      t.insts_into_burst >= t.behavior.burst_instructions) {
    t.state = TaskState::Sleeping;
    t.insts_into_burst = 0;
    push_event(now_ + draw_sleep(t.behavior), EventType::Wake, t.tid, 0);
    return;
  }
  t.state = TaskState::Runnable;
}

void Kernel::handle_segment_end(CoreId c, std::uint64_t seq) {
  CoreState& cs = core(c);
  if (seq != cs.dispatch_seq || cs.running == kInvalidThread) return;  // stale
  const ThreadId tid = cs.running;
  account_segment(c);
  cs.running = kInvalidThread;
  ++cs.dispatch_seq;
  ++context_switches_;

  Task& t = task_mut(tid);
  after_task_stops(t);
  if (t.state == TaskState::Runnable) {
    if (t.runnable_since == kTimeNever) t.runnable_since = now_;
    cs.rq.enqueue(tid, t.vruntime, t.weight);
  } else {
    advance_util(t, /*active=*/false);
  }
  dispatch(c);
}

void Kernel::handle_wake(ThreadId tid) {
  Task& t = task_mut(tid);
  if (t.state != TaskState::Sleeping) return;  // stale (exited or migrated+woken)
  advance_util(t, /*active=*/false);
  t.state = TaskState::Runnable;
  t.last_wake_at = now_;
  if (obs_ != nullptr) {
    if (auto* tracer = obs_->tracer()) {
      tracer->instant("sched.wake", static_cast<std::uint64_t>(now_),
                      obs_->epoch(), {{"tid", static_cast<double>(tid)}});
    }
  }

  CoreId target = t.cpu;
  if (!t.can_run_on(target) || core(target).offline) {
    // Affine wakeup fallback: least-loaded allowed online core.
    double best = -1;
    for (CoreId c = 0; c < num_cores(); ++c) {
      if (!t.can_run_on(c) || core(c).offline) continue;
      const double load = core_load(c);
      if (best < 0 || load < best) {
        best = load;
        target = c;
      }
    }
    if (best < 0) throw std::logic_error("wake: no online core allowed");
  }
  if (cfg_.wake_idle_select) {
    const CoreState& resident = core(target);
    if (resident.running != kInvalidThread || !resident.rq.empty()) {
      // Busy resident core: prefer an idle core of the same type (the
      // same-LLC affine choice), else the lowest-id idle core of any type.
      CoreId idle_any = kInvalidCore;
      for (CoreId c = 0; c < num_cores(); ++c) {
        if (c == target || !t.can_run_on(c) || core(c).offline) continue;
        const CoreState& cs = core(c);
        if (cs.running != kInvalidThread || !cs.rq.empty()) continue;
        if (platform_.type_of(c) == platform_.type_of(target)) {
          idle_any = c;
          break;
        }
        if (idle_any == kInvalidCore) idle_any = c;
      }
      if (idle_any != kInvalidCore) target = idle_any;
    }
  }
  t.cpu = target;
  // Sleeper fairness: don't let a long sleep turn into unbounded credit.
  t.vruntime = std::max(
      t.vruntime,
      core(target).rq.min_vruntime() - static_cast<double>(cfg_.sched_latency));
  enqueue_task(t, /*wakeup=*/true);
}

void Kernel::enqueue_task(Task& t, bool wakeup) {
  CoreState& cs = core(t.cpu);
  if (t.runnable_since == kTimeNever) t.runnable_since = now_;
  cs.rq.enqueue(t.tid, t.vruntime, t.weight);
  if (in_balance_pass_) return;  // dispatch happens after the pass

  if (cs.running == kInvalidThread) {
    dispatch(t.cpu);
    return;
  }
  if (wakeup && cfg_.wakeup_preemption) {
    const Task& cur = task(cs.running);
    // Preempt if the woken task is entitled to run by a clear margin.
    if (cur.vruntime >
        t.vruntime + static_cast<double>(cfg_.wakeup_granularity)) {
      const ThreadId stopped = stop_current(t.cpu);
      Task& st = task_mut(stopped);
      st.state = TaskState::Runnable;
      cs.rq.enqueue(stopped, st.vruntime, st.weight);
      dispatch(t.cpu);
    }
  }
}

void Kernel::handle_balance() {
  if (!balancer_) return;
  in_balance_pass_ = true;
  // Flush all running segments so counters/sensors are exact at the epoch
  // boundary (the paper samples counters in schedule(); the epoch boundary
  // coincides with a timer-driven reschedule).
  for (CoreId c = 0; c < num_cores(); ++c) {
    const ThreadId tid = stop_current(c);
    if (tid != kInvalidThread) {
      Task& t = task_mut(tid);
      after_task_stops(t);
      if (t.state == TaskState::Runnable) {
        if (t.runnable_since == kTimeNever) t.runnable_since = now_;
        core(c).rq.enqueue(tid, t.vruntime, t.weight);
      } else {
        advance_util(t, /*active=*/false);
      }
    }
  }
  // Replay migrations a fault filter deferred at the previous pass: the
  // "late" set_cpus_allowed_ptr finally lands, if it is still legal (the
  // task may have exited, been re-routed, or the core unplugged since).
  if (!deferred_migrations_.empty()) {
    const auto pending = std::move(deferred_migrations_);
    deferred_migrations_.clear();
    bypass_migration_filter_ = true;
    for (const auto& d : pending) {
      const Task& t = task(d.tid);
      if (!t.alive() || !t.can_run_on(d.dest) || core(d.dest).offline ||
          t.cpu == d.dest) {
        continue;
      }
      migrate(d.tid, d.dest);
      ++deferred_applied_;
    }
    bypass_migration_filter_ = false;
  }
  balancer_->on_balance(*this, now_);
  ++balance_passes_;
  in_balance_pass_ = false;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (core(c).running == kInvalidThread) dispatch(c);
  }
  push_event(now_ + balancer_->interval(), EventType::Balance, 0, 0);
}

// --------------------------------------------------------------------------
// Migration and affinity
// --------------------------------------------------------------------------

void Kernel::migrate(ThreadId tid, CoreId dest) {
  if (dest < 0 || dest >= num_cores()) throw std::out_of_range("migrate: core");
  if (core(dest).offline) {
    throw std::invalid_argument("migrate: destination core is offline");
  }
  Task& t = task_mut(tid);
  if (!t.alive()) throw std::logic_error("migrate: task exited");
  if (!t.can_run_on(dest)) {
    throw std::invalid_argument("migrate: destination not in affinity mask");
  }
  if (t.cpu == dest) return;

  // Fault injection on the set_cpus_allowed_ptr analogue: only
  // balancer-requested moves are filterable (kernel-internal moves bypass).
  if (migration_filter_ && in_balance_pass_ && !bypass_migration_filter_) {
    switch (migration_filter_->on_migrate(tid, t.cpu, dest)) {
      case MigrationFilter::Decision::kReject:
        ++migrations_rejected_;
        return;
      case MigrationFilter::Decision::kDefer:
        ++migrations_deferred_;
        deferred_migrations_.push_back({tid, dest});
        return;
      case MigrationFilter::Decision::kAllow:
        break;
    }
  }

  const CoreId src = t.cpu;
  switch (t.state) {
    case TaskState::Running: {
      CoreState& scs = core(src);
      if (scs.running != tid) throw std::logic_error("migrate: cpu mismatch");
      stop_current(src);
      t.state = TaskState::Runnable;
      break;
    }
    case TaskState::Runnable:
      if (!core(src).rq.remove(tid, t.vruntime)) {
        throw std::logic_error("migrate: runnable task not on runqueue");
      }
      break;
    case TaskState::Sleeping: {
      // Retarget only; it enqueues at `dest` on wake. The vruntime still
      // has to be re-based into the destination queue's frame here: queues
      // advance min_vruntime independently, so keeping the source-frame
      // value can leave the sleeper so far "ahead" of the destination queue
      // that its wakes lose preemption for whole scheduling periods (the
      // wake-to-run p99 gate in bench/fig_latency.cc catches exactly this).
      const double rel = std::max(0.0, t.vruntime - core(src).rq.min_vruntime());
      t.vruntime = core(dest).rq.min_vruntime() + rel;
      t.cpu = dest;
      ++t.migrations;
      ++total_migrations_;
      return;
    }
    case TaskState::Exited:
      return;  // unreachable (guarded above)
  }

  // Re-base vruntime into the destination queue's frame.
  const double rel = std::max(0.0, t.vruntime - core(src).rq.min_vruntime());
  t.vruntime = core(dest).rq.min_vruntime() + rel;
  t.cpu = dest;
  t.insts_since_migration = 0;  // cold caches on the new core
  ++t.migrations;
  ++total_migrations_;
  enqueue_task(t, /*wakeup=*/false);
  if (!in_balance_pass_ && core(src).running == kInvalidThread) dispatch(src);
}

void Kernel::set_cpus_allowed(ThreadId tid,
                              const std::bitset<kMaxCores>& mask) {
  Task& t = task_mut(tid);
  if (mask.none()) throw std::invalid_argument("set_cpus_allowed: empty mask");
  t.cpus_allowed = mask;
  if (t.alive() && !t.can_run_on(t.cpu)) {
    // Kick it to the first allowed core.
    for (CoreId c = 0; c < num_cores(); ++c) {
      if (t.can_run_on(c)) {
        if (t.state == TaskState::Sleeping) {
          t.cpu = c;
        } else {
          migrate(tid, c);
        }
        return;
      }
    }
    throw std::invalid_argument("set_cpus_allowed: no allowed core exists");
  }
}

// --------------------------------------------------------------------------
// Sensing / accounting helpers
// --------------------------------------------------------------------------

void Kernel::account_core_sleep(CoreId c) {
  CoreState& cs = core(c);
  if (!cs.asleep) return;
  const TimeNs dur = now_ - cs.sleeping_since;
  if (dur <= 0) return;
  meter_.add_sleep(
      c, power_.sleep_power_at(platform_.type_of(c), core_opp(c)), dur);
  bus_.record_traffic(c, 0.0, dur);
  cs.sleeping_since = now_;
}

void Kernel::advance_util(Task& t, bool active) {
  t.util_avg = pelt_.advance(t.util_avg, now_ - t.util_updated_at, active);
  t.util_updated_at = now_;
}

TimeNs Kernel::draw_sleep(const workload::ThreadBehavior& b) {
  const double u = rng_.uniform(-1.0, 1.0);
  const double dur =
      static_cast<double>(b.sleep_mean_ns) * (1.0 + b.sleep_jitter * u);
  return std::max<TimeNs>(microseconds(1), static_cast<TimeNs>(dur));
}

std::vector<ThreadId> Kernel::alive_threads() const {
  std::vector<ThreadId> out;
  for (const auto& t : tasks_) {
    if (t->alive() && t->user_thread) out.push_back(t->tid);
  }
  return out;
}

double Kernel::task_util(ThreadId tid) const {
  const Task& t = task(tid);
  const bool active =
      t.state == TaskState::Running || t.state == TaskState::Runnable;
  return pelt_.advance(t.util_avg, now_ - t.util_updated_at, active);
}

double Kernel::core_load(CoreId c) const {
  const CoreState& cs = core(c);
  double load = static_cast<double>(cs.rq.total_weight());
  if (cs.running != kInvalidThread) {
    load += static_cast<double>(task(cs.running).weight);
  }
  return load;
}

int Kernel::core_nr_running(CoreId c) const {
  const CoreState& cs = core(c);
  return static_cast<int>(cs.rq.size()) +
         (cs.running != kInvalidThread ? 1 : 0);
}

ThreadId Kernel::core_running(CoreId c) const { return core(c).running; }

std::vector<EpochSample> Kernel::drain_epoch_samples() {
  std::vector<EpochSample> out;
  for (auto& tp : tasks_) {
    Task& t = *tp;
    if (!t.alive() || !t.user_thread) continue;
    EpochSample s;
    s.tid = t.tid;
    s.core = t.epoch_core != kInvalidCore ? t.epoch_core : t.cpu;
    s.counters = t.epoch_counters;
    s.energy_j = t.epoch_energy_j;
    s.runtime = t.epoch_runtime;
    s.util = task_util(t.tid);
    s.weight = t.weight;
    s.warm = t.insts_since_migration >= cfg_.warmup.window_insts();
    s.freq_mhz = s.core >= 0 ? core_opp(s.core).freq_mhz
                             : platform_.params_of_type(0).freq_mhz;
    out.push_back(s);
    t.reset_epoch_accumulators();
  }
  return out;
}

std::uint64_t Kernel::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& t : tasks_) total += t->lifetime_insts;
  return total;
}

}  // namespace sb::os
