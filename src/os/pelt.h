// PELT-style per-entity load/utilization tracking.
//
// ARM GTS drives its up/down migration decisions from tracked per-task
// utilization (the fraction of recent wall time the task was runnable or
// running), maintained as a geometrically decayed average exactly like the
// kernel's Per-Entity Load Tracking. SmartBalance also exports it in its
// thread utilization vector U (Algorithm 1 input).
#pragma once

#include <cmath>

#include "common/types.h"

namespace sb::os {

/// Continuous-time equivalent of PELT: utilization decays toward the
/// current duty value with half-life `half_life`.
class PeltTracker {
 public:
  explicit PeltTracker(TimeNs half_life = milliseconds(32))
      : half_life_(half_life) {}

  /// Advances the average over [last_update, now) during which the task was
  /// active (running/runnable) iff `active`.
  double advance(double util_avg, TimeNs elapsed, bool active) const {
    if (elapsed <= 0) return util_avg;
    const double periods =
        static_cast<double>(elapsed) / static_cast<double>(half_life_);
    const double decay = std::exp2(-periods);
    const double target = active ? 1.0 : 0.0;
    return target + (util_avg - target) * decay;
  }

  TimeNs half_life() const { return half_life_; }

 private:
  TimeNs half_life_;
};

}  // namespace sb::os
