#include "os/vanilla_balancer.h"

#include <algorithm>
#include <vector>

#include "os/kernel.h"

namespace sb::os {

void VanillaBalancer::on_balance(Kernel& kernel, TimeNs /*now*/) {
  ++passes_;
  const int n = kernel.num_cores();
  if (n < 2) return;

  for (int move = 0; move < cfg_.max_moves_per_pass; ++move) {
    // find_busiest_queue / find_idlest_queue over raw CFS load.
    CoreId busiest = kInvalidCore, idlest = kInvalidCore;
    double max_load = -1, min_load = -1;
    int online = 0;
    double avg = 0;
    for (CoreId c = 0; c < n; ++c) {
      if (!kernel.core_online(c)) continue;
      ++online;
      const double load = kernel.core_load(c);
      avg += load;
      if (busiest == kInvalidCore || load > max_load) {
        max_load = load;
        busiest = c;
      }
      if (idlest == kInvalidCore || load < min_load) {
        min_load = load;
        idlest = c;
      }
    }
    if (busiest == idlest || online < 2) return;
    avg /= online;
    if (max_load - min_load <= cfg_.imbalance_pct * std::max(avg, 1.0)) return;

    // Pull one queued (not running) task whose move reduces the imbalance.
    ThreadId candidate = kInvalidThread;
    for (ThreadId tid : kernel.alive_threads()) {
      const Task& t = kernel.task(tid);
      if (t.state != TaskState::Runnable || t.cpu != busiest) continue;
      if (!t.can_run_on(idlest)) continue;
      // Strict improvement required: moving the task must actually shrink
      // the gap, or back-and-forth churn results (the source core would be
      // exactly as imbalanced as the destination was).
      if (min_load + t.weight >= max_load) continue;
      candidate = tid;
      break;
    }
    if (candidate == kInvalidThread) return;
    kernel.migrate(candidate, idlest);
  }
}

}  // namespace sb::os
