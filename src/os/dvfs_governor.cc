#include "os/dvfs_governor.h"

#include "os/kernel.h"

namespace sb::os {

void PerformanceGovernor::on_tick(Kernel& kernel, TimeNs /*now*/) {
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    kernel.set_core_opp(c, kernel.opp_table(c).size() - 1);
  }
}

void PowersaveGovernor::on_tick(Kernel& kernel, TimeNs /*now*/) {
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    kernel.set_core_opp(c, 0);
  }
}

void OndemandGovernor::on_tick(Kernel& kernel, TimeNs now) {
  const auto n = static_cast<std::size_t>(kernel.num_cores());
  if (prev_busy_.size() != n) {
    prev_busy_.assign(n, 0);
    for (CoreId c = 0; c < kernel.num_cores(); ++c) {
      prev_busy_[static_cast<std::size_t>(c)] = kernel.energy().busy_time(c);
    }
    prev_now_ = now;
    return;
  }
  const TimeNs window = now - prev_now_;
  prev_now_ = now;
  if (window <= 0) return;

  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    const TimeNs busy = kernel.energy().busy_time(c);
    const double util = static_cast<double>(busy - prev_busy_[i]) /
                        static_cast<double>(window);
    prev_busy_[i] = busy;

    const std::size_t cur = kernel.core_opp_index(c);
    const std::size_t top = kernel.opp_table(c).size() - 1;
    std::size_t next = cur;
    if (util > cfg_.up_threshold) {
      next = cfg_.boost_to_max ? top : std::min(top, cur + 1);
    } else if (util < cfg_.down_threshold && cur > 0) {
      next = cur - 1;
    }
    if (next != cur) {
      kernel.set_core_opp(c, next);
      ++transitions_;
    }
  }
}

}  // namespace sb::os
