// ARM Global Task Scheduling (GTS) policy — the state-of-the-art baseline
// of Fig. 5.
//
// GTS (ARM's big.LITTLE MP patch set) tracks per-task load/utilization and
// makes a *binary*, threshold-based decision per task: up-migrate a task to
// the big cluster when its tracked utilization crosses an "up" threshold,
// down-migrate when it falls under a "down" threshold. Unlike the in-kernel
// switcher (IKS) it selects individual cores, not cluster pairs, but it is
// structurally limited to exactly two core classes and uses utilization as
// a proxy for both performance and power (the limitation §6.1 quantifies).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "os/load_balancer.h"

namespace sb::os {

class GtsBalancer final : public LoadBalancer {
 public:
  struct Config {
    TimeNs interval = milliseconds(6);
    double up_threshold = 0.65;    // util above which a task prefers big
    double down_threshold = 0.25;  // util below which a task prefers little
    /// Core type id treated as the "big" cluster; all other types form the
    /// LITTLE side. Matches Platform::octa_big_little() (type 0 = A15).
    CoreTypeId big_type = 0;
    /// Intra-cluster load balancing like vanilla.
    bool balance_within_cluster = true;
  };

  GtsBalancer() : GtsBalancer(Config()) {}
  explicit GtsBalancer(Config cfg) : cfg_(cfg) {}

  TimeNs interval() const override { return cfg_.interval; }
  void on_balance(Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "gts"; }
  std::uint64_t passes() const override { return passes_; }

  std::uint64_t up_migrations() const { return up_; }
  std::uint64_t down_migrations() const { return down_; }

 private:
  /// Least-loaded core of the given cluster that the task may run on.
  CoreId pick_core_in_cluster(Kernel& kernel, ThreadId tid, bool big) const;
  void balance_cluster(Kernel& kernel, bool big) const;

  Config cfg_;
  std::uint64_t passes_ = 0;
  std::uint64_t up_ = 0;
  std::uint64_t down_ = 0;
};

}  // namespace sb::os
