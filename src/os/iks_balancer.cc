#include "os/iks_balancer.h"

#include <algorithm>
#include <stdexcept>

#include "os/kernel.h"

namespace sb::os {

void IksBalancer::init_pairs(Kernel& kernel) {
  const auto& platform = kernel.platform();
  std::vector<CoreId> bigs, littles;
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    (platform.type_of(c) == cfg_.big_type ? bigs : littles).push_back(c);
  }
  if (bigs.empty() || bigs.size() != littles.size()) {
    throw std::logic_error(
        "IksBalancer: platform must have equal big/little counts");
  }
  pairs_.clear();
  for (std::size_t i = 0; i < bigs.size(); ++i) {
    Pair p;
    p.big = bigs[i];
    p.little = littles[i];
    p.big_active = false;  // boot on the energy-efficient member
    pairs_.push_back(p);
  }
}

void IksBalancer::on_balance(Kernel& kernel, TimeNs /*now*/) {
  ++passes_;
  if (pairs_.empty()) init_pairs(kernel);

  // Partition alive threads by the pair that owns their current core.
  std::vector<std::vector<ThreadId>> members(pairs_.size());
  std::vector<double> pair_util(pairs_.size(), 0.0);
  for (ThreadId tid : kernel.alive_threads()) {
    const CoreId cpu = kernel.task(tid).cpu;
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      if (cpu == pairs_[i].big || cpu == pairs_[i].little) {
        members[i].push_back(tid);
        pair_util[i] += kernel.task_util(tid);
        break;
      }
    }
  }

  // Switch each pair's active member with hysteresis, then consolidate the
  // pair's threads onto it (the scheduler sees one logical CPU).
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    Pair& p = pairs_[i];
    if (!kernel.core_online(p.big) || !kernel.core_online(p.little)) continue;
    const bool was_big = p.big_active;
    if (!p.big_active && pair_util[i] > cfg_.up_threshold) {
      p.big_active = true;
    } else if (p.big_active && pair_util[i] < cfg_.down_threshold) {
      p.big_active = false;
    }
    if (p.big_active != was_big) ++switches_;
    const CoreId active = active_core(p);
    for (ThreadId tid : members[i]) {
      if (kernel.task(tid).cpu != active && kernel.task(tid).can_run_on(active)) {
        kernel.migrate(tid, active);
      }
    }
  }

  if (!cfg_.balance_pairs || pairs_.size() < 2) return;
  // Logical-CPU load balancing: move one queued thread from the most to
  // the least populated pair when counts differ by 2+.
  std::size_t busiest = 0, idlest = 0;
  for (std::size_t i = 1; i < pairs_.size(); ++i) {
    if (members[i].size() > members[busiest].size()) busiest = i;
    if (members[i].size() < members[idlest].size()) idlest = i;
  }
  if (members[busiest].size() < members[idlest].size() + 2) return;
  const CoreId dest = active_core(pairs_[idlest]);
  for (ThreadId tid : members[busiest]) {
    const Task& t = kernel.task(tid);
    if (t.state == TaskState::Runnable && t.can_run_on(dest)) {
      kernel.migrate(tid, dest);
      return;
    }
  }
}

}  // namespace sb::os
