#include "os/task.h"

#include <array>
#include <stdexcept>

namespace sb::os {

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::Runnable:
      return "Runnable";
    case TaskState::Running:
      return "Running";
    case TaskState::Sleeping:
      return "Sleeping";
    case TaskState::Exited:
      return "Exited";
  }
  return "?";
}

std::uint32_t nice_to_weight(int nice) {
  // Linux's sched_prio_to_weight table, nice -20 .. +19.
  static constexpr std::array<std::uint32_t, 40> kTable = {
      88761, 71755, 56483, 46273, 36291,  // -20 .. -16
      29154, 23254, 18705, 14949, 11916,  // -15 .. -11
      9548,  7620,  6100,  4904,  3906,   // -10 .. -6
      3121,  2501,  1991,  1586,  1277,   //  -5 .. -1
      1024,  820,   655,   526,   423,    //   0 .. +4
      335,   272,   215,   172,   137,    //  +5 .. +9
      110,   87,    70,    56,    45,     // +10 .. +14
      36,    29,    23,    18,    15,     // +15 .. +19
  };
  if (nice < -20 || nice > 19) throw std::out_of_range("nice must be -20..19");
  return kTable[static_cast<std::size_t>(nice + 20)];
}

}  // namespace sb::os
