// The baseline: vanilla Linux CFS load balancing.
//
// rebalance_domains() in the stock kernel equalizes *load* (Σ task weights)
// across cores, completely blind to core heterogeneity — exactly the
// behaviour Fig. 1(a) of the paper criticizes: "evenly distributes the
// workload among cores even if the cores have distinct processing
// capabilities". Each pass pulls queued tasks from the busiest core to the
// least-loaded core until their loads are within one average task weight,
// subject to affinity. It fires every CFS period (6 ms), mirroring the
// periodic softirq balancing cadence.
#pragma once

#include <cstdint>

#include "os/load_balancer.h"

namespace sb::os {

class VanillaBalancer final : public LoadBalancer {
 public:
  struct Config {
    TimeNs interval = milliseconds(6);
    /// Load-imbalance tolerance as a fraction of average core load; the
    /// kernel's imbalance_pct=125 corresponds to 0.25.
    double imbalance_pct = 0.25;
    /// Safety valve on migrations per pass (sd->nr_balance_failed analogue).
    int max_moves_per_pass = 8;
  };

  VanillaBalancer() : VanillaBalancer(Config()) {}
  explicit VanillaBalancer(Config cfg) : cfg_(cfg) {}

  TimeNs interval() const override { return cfg_.interval; }
  void on_balance(Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "vanilla"; }
  std::uint64_t passes() const override { return passes_; }

 private:
  Config cfg_;
  std::uint64_t passes_ = 0;
};

}  // namespace sb::os
