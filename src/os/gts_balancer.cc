#include "os/gts_balancer.h"

#include <algorithm>

#include "os/kernel.h"

namespace sb::os {

CoreId GtsBalancer::pick_core_in_cluster(Kernel& kernel, ThreadId tid,
                                         bool big) const {
  const Task& t = kernel.task(tid);
  CoreId best = kInvalidCore;
  double best_load = -1;
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    const bool is_big = kernel.platform().type_of(c) == cfg_.big_type;
    if (is_big != big) continue;
    if (!t.can_run_on(c) || !kernel.core_online(c)) continue;
    const double load = kernel.core_load(c);
    if (best == kInvalidCore || load < best_load) {
      best = c;
      best_load = load;
    }
  }
  return best;
}

void GtsBalancer::balance_cluster(Kernel& kernel, bool big) const {
  // One equalization step per pass, vanilla-style, restricted to a cluster.
  CoreId busiest = kInvalidCore, idlest = kInvalidCore;
  double max_load = -1, min_load = -1;
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    const bool is_big = kernel.platform().type_of(c) == cfg_.big_type;
    if (is_big != big) continue;
    if (!kernel.core_online(c)) continue;
    const double load = kernel.core_load(c);
    if (busiest == kInvalidCore || load > max_load) {
      max_load = load;
      busiest = c;
    }
    if (idlest == kInvalidCore || load < min_load) {
      min_load = load;
      idlest = c;
    }
  }
  if (busiest == kInvalidCore || busiest == idlest) return;
  if (max_load - min_load <= 0.25 * std::max(1.0, (max_load + min_load) / 2)) {
    return;
  }
  for (ThreadId tid : kernel.alive_threads()) {
    const Task& t = kernel.task(tid);
    if (t.state != TaskState::Runnable || t.cpu != busiest) continue;
    if (!t.can_run_on(idlest)) continue;
    if (min_load + t.weight >= max_load) continue;  // strict improvement only
    kernel.migrate(tid, idlest);
    return;
  }
}

void GtsBalancer::on_balance(Kernel& kernel, TimeNs /*now*/) {
  ++passes_;
  for (ThreadId tid : kernel.alive_threads()) {
    const Task& t = kernel.task(tid);
    if (t.state == TaskState::Exited) continue;
    const bool on_big = kernel.platform().type_of(t.cpu) == cfg_.big_type;
    const double util = kernel.task_util(tid);

    if (!on_big && util > cfg_.up_threshold) {
      const CoreId dest = pick_core_in_cluster(kernel, tid, /*big=*/true);
      if (dest != kInvalidCore) {
        kernel.migrate(tid, dest);
        ++up_;
      }
    } else if (on_big && util < cfg_.down_threshold) {
      const CoreId dest = pick_core_in_cluster(kernel, tid, /*big=*/false);
      if (dest != kInvalidCore) {
        kernel.migrate(tid, dest);
        ++down_;
      }
    }
  }
  if (cfg_.balance_within_cluster) {
    balance_cluster(kernel, /*big=*/true);
    balance_cluster(kernel, /*big=*/false);
  }
}

}  // namespace sb::os
