// Deterministic sensor/migration fault specification.
//
// SmartBalance is sensing-driven; real MPSoCs deliver imperfect telemetry:
// saturated and wrapped hardware counters, dropped or duplicated epoch
// samples, stuck and noisy power rails, rejected or delayed
// set_cpus_allowed_ptr calls, and transient whole-core sensor blackouts.
// A FaultPlan declares, per fault class, a per-epoch per-target rate plus a
// class-specific magnitude and persistence, and carries the seed that makes
// every injection a pure function of (seed, fault class, epoch, target) —
// so a faulty run is bit-identical across --jobs=N worker counts and
// replayable from the plan alone.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sb::fault {

enum class FaultClass : int {
  kCounterWrap = 0,   // a counter field wraps: delta reads as ~2^32
  kCounterSaturate,   // a counter field saturates at a small ceiling
  kSampleDrop,        // the thread's epoch sample is lost entirely
  kSampleDuplicate,   // the previous epoch's sample is delivered again
  kPowerStuck,        // a core's power rail repeats its previous reading
  kPowerNoise,        // gaussian noise on a core's rail: pollutes the
                      // per-core readout and every sample charged to it
  kMigrationDelay,    // migration lands one epoch late
  kMigrationReject,   // set_cpus_allowed_ptr analogue fails silently
  kCoreBlackout,      // whole-core sensor blackout for duration_epochs
};

inline constexpr int kNumFaultClasses = 9;

/// Short stable identifier ("wrap", "sat", "drop", ...) used by CLI specs,
/// CSV plans and stats reporting.
const char* fault_class_name(FaultClass cls);

/// Inverse of fault_class_name; returns false if `name` is unknown.
bool fault_class_from_name(const std::string& name, FaultClass* out);

struct FaultSpec {
  FaultClass cls = FaultClass::kCounterWrap;
  /// Per-epoch probability that one target (thread for counter/sample
  /// classes and migration classes, core for power/blackout classes) is hit.
  double rate = 0.0;
  /// Class-specific severity: gaussian sigma for kPowerNoise, saturation
  /// ceiling scale for kCounterSaturate (ceiling = magnitude * 2^24
  /// events); ignored by the binary classes.
  double magnitude = 1.0;
  /// Persistence of stateful faults (kCoreBlackout, kPowerStuck): a hit at
  /// epoch e keeps the target faulty through epoch e + duration_epochs - 1.
  int duration_epochs = 1;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  std::uint64_t seed = 0xfa517u;

  /// True when no class has a positive rate — an empty plan injects
  /// nothing and is the contract for bit-identical golden figures.
  bool empty() const;

  const std::vector<FaultSpec>& specs() const { return specs_; }
  /// The spec for `cls`, or nullptr when the class is absent / zero-rate.
  const FaultSpec* spec_of(FaultClass cls) const;
  /// Adds (or replaces) the spec for spec.cls.
  void set(FaultSpec spec);

  /// Parses a compact CLI spec: comma-separated
  /// `class:rate[:magnitude[:duration]]` entries, e.g.
  /// "wrap:0.05,noise:0.02:3.0,blackout:0.01:1:4". An empty string yields
  /// an empty plan. Throws std::invalid_argument on malformed input.
  static FaultPlan parse(const std::string& text, std::uint64_t seed = 0xfa517u);

  /// Loads a plan from a CSV file with header
  /// `fault,rate,magnitude,duration_epochs` (magnitude/duration optional
  /// per row). Throws std::runtime_error on I/O or format errors.
  static FaultPlan load_csv(const std::string& path,
                            std::uint64_t seed = 0xfa517u);

  /// Every sensor-facing class (wrap, sat, drop, dup, stuck, noise, delay,
  /// reject) at `rate`, plus blackout at rate/4 with a 3-epoch duration —
  /// the "r% per-epoch sensor-fault rate" operating point of the
  /// fig_fault_resilience sweep.
  static FaultPlan uniform(double rate, std::uint64_t seed = 0xfa517u);

  /// Round-trips through parse(): "wrap:0.05,noise:0.02:3:1" style.
  std::string to_string() const;

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace sb::fault
