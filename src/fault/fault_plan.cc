#include "fault/fault_plan.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sb::fault {
namespace {

constexpr const char* kNames[kNumFaultClasses] = {
    "wrap", "sat", "drop", "dup", "stuck", "noise", "delay", "reject",
    "blackout"};

/// std::stod/std::stoi throw std::out_of_range (not std::invalid_argument)
/// on values outside the representable range ("wrap:1e999",
/// "wrap:0.1:1:99999999999999999999" — found by the grammar fuzz test), so
/// numeric fields go through these wrappers to keep parse()'s documented
/// contract: any unparseable entry raises std::invalid_argument.
double parse_double(const std::string& s, const std::string& entry,
                    const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  if (pos != s.size()) {
    throw std::invalid_argument("FaultPlan: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  return v;
}

int parse_int(const std::string& s, const std::string& entry,
              const char* what) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  if (pos != s.size()) {
    throw std::invalid_argument("FaultPlan: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  return v;
}

FaultSpec parse_entry(const std::string& entry) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : entry) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  if (parts.size() < 2 || parts.size() > 4) {
    throw std::invalid_argument("FaultPlan: malformed entry '" + entry +
                                "' (want class:rate[:magnitude[:duration]])");
  }
  FaultSpec spec;
  if (!fault_class_from_name(parts[0], &spec.cls)) {
    throw std::invalid_argument("FaultPlan: unknown fault class '" + parts[0] +
                                "'");
  }
  spec.rate = parse_double(parts[1], entry, "rate");
  if (!(spec.rate >= 0.0) || spec.rate > 1.0) {
    throw std::invalid_argument("FaultPlan: bad rate in '" + entry + "'");
  }
  if (parts.size() >= 3) {
    spec.magnitude = parse_double(parts[2], entry, "magnitude");
    if (!std::isfinite(spec.magnitude) || spec.magnitude < 0.0) {
      throw std::invalid_argument("FaultPlan: bad magnitude in '" + entry +
                                  "'");
    }
  }
  if (parts.size() == 4) {
    spec.duration_epochs = parse_int(parts[3], entry, "duration");
    if (spec.duration_epochs < 1 || spec.duration_epochs > 1024) {
      throw std::invalid_argument("FaultPlan: bad duration in '" + entry +
                                  "'");
    }
  }
  return spec;
}

}  // namespace

const char* fault_class_name(FaultClass cls) {
  return kNames[static_cast<int>(cls)];
}

bool fault_class_from_name(const std::string& name, FaultClass* out) {
  for (int i = 0; i < kNumFaultClasses; ++i) {
    if (name == kNames[i]) {
      *out = static_cast<FaultClass>(i);
      return true;
    }
  }
  return false;
}

bool FaultPlan::empty() const {
  for (const auto& s : specs_) {
    if (s.rate > 0.0) return false;
  }
  return true;
}

const FaultSpec* FaultPlan::spec_of(FaultClass cls) const {
  for (const auto& s : specs_) {
    if (s.cls == cls && s.rate > 0.0) return &s;
  }
  return nullptr;
}

void FaultPlan::set(FaultSpec spec) {
  for (auto& s : specs_) {
    if (s.cls == spec.cls) {
      s = spec;
      return;
    }
  }
  specs_.push_back(spec);
}

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::string entry;
  std::istringstream is(text);
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    plan.set(parse_entry(entry));
  }
  return plan;
}

FaultPlan FaultPlan::load_csv(const std::string& path, std::uint64_t seed) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FaultPlan: cannot open " + path);
  FaultPlan plan;
  plan.seed = seed;
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("FaultPlan: empty file " + path);
  }
  if (line.rfind("fault,rate", 0) != 0) {
    throw std::runtime_error(
        "FaultPlan: bad header (want fault,rate,magnitude,duration_epochs) "
        "in " +
        path);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Reuse the CLI entry grammar: swap commas for colons.
    for (auto& c : line) {
      if (c == ',') c = ':';
    }
    try {
      plan.set(parse_entry(line));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(std::string(e.what()) + " in " + path);
    }
  }
  return plan;
}

FaultPlan FaultPlan::uniform(double rate, std::uint64_t seed) {
  if (!(rate >= 0.0) || rate > 1.0) {
    throw std::invalid_argument("FaultPlan::uniform: rate out of [0,1]");
  }
  FaultPlan plan;
  plan.seed = seed;
  for (FaultClass cls :
       {FaultClass::kCounterWrap, FaultClass::kCounterSaturate,
        FaultClass::kSampleDrop, FaultClass::kSampleDuplicate,
        FaultClass::kPowerStuck, FaultClass::kPowerNoise,
        FaultClass::kMigrationDelay, FaultClass::kMigrationReject}) {
    plan.set(FaultSpec{cls, rate, 1.0, 1});
  }
  plan.set(FaultSpec{FaultClass::kCoreBlackout, rate / 4.0, 1.0, 3});
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& s : specs_) {
    if (!first) os << ',';
    first = false;
    os << fault_class_name(s.cls) << ':' << s.rate << ':' << s.magnitude << ':'
       << s.duration_epochs;
  }
  return os.str();
}

}  // namespace sb::fault
