// Deterministic fault injection on the sensing and migration paths.
//
// The injector sits at exactly the three seams where real telemetry enters
// SmartBalance: the per-epoch sample drain (counter wrap/saturation,
// dropped/duplicated samples, whole-core blackouts), the power-sensor
// readout (stuck-at and noise-burst rails, via power::SensorFaultHook), and
// the balancer-requested migration path (rejects and one-epoch delays, via
// os::MigrationFilter). Every decision is a pure function of
// (plan.seed, fault class, epoch, target id) — hashed, not drawn from a
// shared stream — so injection is independent of thread-pool scheduling and
// a faulty experiment is bit-identical at --jobs=1 and --jobs=8.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.h"
#include "os/kernel.h"
#include "power/sensor.h"

namespace sb::obs {
class Sink;
}  // namespace sb::obs

namespace sb::fault {

/// Injection counters, per fault class (indexed by FaultClass).
struct FaultStats {
  std::array<std::uint64_t, kNumFaultClasses> injected{};

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto v : injected) t += v;
    return t;
  }
  std::uint64_t of(FaultClass cls) const {
    return injected[static_cast<int>(cls)];
  }
};

class FaultInjector final : public os::MigrationFilter,
                            public power::SensorFaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// Advances to balancing epoch `epoch` (the policy's pass counter). All
  /// subsequent corrupt()/on_migrate()/transform_energy() decisions key on
  /// this epoch.
  void begin_epoch(std::uint64_t epoch);

  /// Observability hook (null = off): every injection bumps a
  /// `fault.injected.<class>` counter and drops a "fault.injected" instant
  /// on the trace timeline.
  void set_obs(obs::Sink* obs) { obs_ = obs; }

  /// Corrupts one epoch's drained samples in place: applies blackout, wrap,
  /// saturation, duplication, rail noise, then drops. Caches the pristine
  /// samples first so next epoch's duplicates replay truthful
  /// (pre-corruption) data, the way a stale kernel buffer would.
  void corrupt(std::vector<os::EpochSample>& samples);

  /// True when core `c` is inside a blackout window this epoch. The sensing
  /// defense layer may consult this only in tests; the policy must detect
  /// blackouts from the corrupted data itself.
  bool core_blacked_out(CoreId c) const;

  // --- os::MigrationFilter ---
  Decision on_migrate(ThreadId tid, CoreId from, CoreId to) override;

  // --- power::SensorFaultHook ---
  double transform_energy(CoreId core, double joules) override;

 private:
  /// Uniform [0,1) deterministic in (seed, cls, epoch, target).
  double hash_uniform(FaultClass cls, std::uint64_t epoch,
                      std::uint64_t target) const;
  /// Raw mixed 64-bit hash for the same key (field picks, gaussians).
  std::uint64_t hash_key(FaultClass cls, std::uint64_t epoch,
                         std::uint64_t target) const;
  /// True when the per-epoch Bernoulli for (cls, epoch, target) fires.
  bool fires(const FaultSpec& spec, std::uint64_t epoch,
             std::uint64_t target) const;
  /// True when a stateful fault (spec.duration_epochs window) covers
  /// `epoch`: some onset in (epoch - duration, epoch] fired.
  bool active_in_window(const FaultSpec& spec, std::uint64_t epoch,
                        std::uint64_t target) const;
  /// Counts one injection of `cls` (stats + observability).
  void note(FaultClass cls);

  FaultPlan plan_;
  FaultStats stats_;
  std::uint64_t epoch_ = 0;
  obs::Sink* obs_ = nullptr;

  struct CachedSample {
    perf::HpcCounters counters;
    double energy_j = 0.0;
    TimeNs runtime = 0;
  };
  /// Pristine previous-epoch samples, keyed by thread: the payload a
  /// kSampleDuplicate replays.
  std::unordered_map<ThreadId, CachedSample> prev_samples_;
  /// Pristine previous energy reading per core: what a stuck rail repeats.
  std::unordered_map<CoreId, double> prev_energy_;
};

}  // namespace sb::fault
