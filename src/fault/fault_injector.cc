#include "fault/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "obs/sink.h"

namespace sb::fault {

namespace {

/// SplitMix64 finalizer: a well-mixed 64-bit hash of a 64-bit input.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_key(std::uint64_t seed, FaultClass cls, std::uint64_t epoch,
                      std::uint64_t target) {
  std::uint64_t h = mix64(seed ^ 0xfa17'1f1a'9c0d'e5edULL);
  h = mix64(h ^ static_cast<std::uint64_t>(cls));
  h = mix64(h ^ epoch);
  h = mix64(h ^ target);
  return h;
}

double to_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::note(FaultClass cls) {
  const int idx = static_cast<int>(cls);
  ++stats_.injected[idx];
  if (obs_ == nullptr) return;
  // Metric names are built once per class for the process lifetime.
  static const auto kMetricNames = [] {
    std::array<std::string, kNumFaultClasses> names;
    for (int i = 0; i < kNumFaultClasses; ++i) {
      names[static_cast<std::size_t>(i)] =
          std::string("fault.injected.") +
          fault_class_name(static_cast<FaultClass>(i));
    }
    return names;
  }();
  obs_->metrics().counter(kMetricNames[static_cast<std::size_t>(idx)]).add();
  if (auto* tracer = obs_->tracer()) {
    tracer->instant("fault.injected", obs_->now_ns(), obs_->epoch(),
                    {{"class", static_cast<double>(idx)}});
  }
}

void FaultInjector::begin_epoch(std::uint64_t epoch) { epoch_ = epoch; }

std::uint64_t FaultInjector::hash_key(FaultClass cls, std::uint64_t epoch,
                                      std::uint64_t target) const {
  return mix_key(plan_.seed, cls, epoch, target);
}

double FaultInjector::hash_uniform(FaultClass cls, std::uint64_t epoch,
                                   std::uint64_t target) const {
  return to_uniform(hash_key(cls, epoch, target));
}

bool FaultInjector::fires(const FaultSpec& spec, std::uint64_t epoch,
                          std::uint64_t target) const {
  return hash_uniform(spec.cls, epoch, target) < spec.rate;
}

bool FaultInjector::active_in_window(const FaultSpec& spec, std::uint64_t epoch,
                                     std::uint64_t target) const {
  const std::uint64_t span =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(spec.duration_epochs),
                              epoch + 1);
  for (std::uint64_t back = 0; back < span; ++back) {
    if (fires(spec, epoch - back, target)) return true;
  }
  return false;
}

bool FaultInjector::core_blacked_out(CoreId c) const {
  const FaultSpec* spec = plan_.spec_of(FaultClass::kCoreBlackout);
  if (!spec) return false;
  return active_in_window(*spec, epoch_, static_cast<std::uint64_t>(c));
}

void FaultInjector::corrupt(std::vector<os::EpochSample>& samples) {
  if (plan_.empty()) return;

  // Snapshot the pristine epoch before touching anything: duplicates and
  // stuck rails replay *truthful* previous-epoch data, the way a stale
  // kernel ring buffer or latched ADC would.
  std::unordered_map<ThreadId, CachedSample> fresh;
  fresh.reserve(samples.size());
  for (const auto& s : samples) {
    fresh[s.tid] = CachedSample{s.counters, s.energy_j, s.runtime};
  }

  const FaultSpec* wrap = plan_.spec_of(FaultClass::kCounterWrap);
  const FaultSpec* sat = plan_.spec_of(FaultClass::kCounterSaturate);
  const FaultSpec* dup = plan_.spec_of(FaultClass::kSampleDuplicate);
  const FaultSpec* drop = plan_.spec_of(FaultClass::kSampleDrop);
  const FaultSpec* blackout = plan_.spec_of(FaultClass::kCoreBlackout);
  const FaultSpec* pnoise = plan_.spec_of(FaultClass::kPowerNoise);

  for (auto& s : samples) {
    const auto tkey = static_cast<std::uint64_t>(s.tid);

    // Whole-core blackout: the core's sensing infrastructure reads zeros —
    // counters, energy, everything. Applied first; a blacked-out core's
    // sample carries no information for the other classes to corrupt.
    if (blackout &&
        active_in_window(*blackout, epoch_,
                         static_cast<std::uint64_t>(s.core))) {
      s.counters.reset();
      s.energy_j = 0.0;
      note(FaultClass::kCoreBlackout);
      continue;
    }

    // Duplicate: last epoch's payload delivered again (counters, energy and
    // runtime — util/weight are scheduler state and stay current).
    if (dup && fires(*dup, epoch_, tkey)) {
      auto it = prev_samples_.find(s.tid);
      if (it != prev_samples_.end()) {
        s.counters = it->second.counters;
        s.energy_j = it->second.energy_j;
        s.runtime = it->second.runtime;
        note(FaultClass::kSampleDuplicate);
      }
    }

    // A noisy power rail pollutes every epoch sample attributed to the
    // core, not just the per-core readout: same (epoch, core) key and RNG
    // stream as transform_energy, so a firing rail reports one consistent
    // multiplicative error everywhere it is read. Counted once per core in
    // transform_energy (the policy reads every rail each pass), not here.
    if (pnoise && s.core >= 0) {
      const auto ckey = static_cast<std::uint64_t>(s.core);
      if (fires(*pnoise, epoch_, ckey)) {
        Rng g(hash_key(FaultClass::kPowerNoise, epoch_, ckey ^ 0x9e15eULL));
        s.energy_j =
            std::max(0.0, s.energy_j * (1.0 + pnoise->magnitude * g.gaussian()));
      }
    }

    // Counter wraparound: one hash-picked field's 32-bit register wrapped
    // between reads, so the unsigned delta comes out near 2^32.
    if (wrap && fires(*wrap, epoch_, tkey)) {
      const std::uint64_t h = hash_key(FaultClass::kCounterWrap, epoch_,
                                       tkey ^ 0x77a9ULL);
      std::uint64_t* fields[] = {&s.counters.inst_total, &s.counters.cy_busy,
                                 &s.counters.inst_mem, &s.counters.l1d_miss};
      std::uint64_t& f = *fields[h & 3];
      f = perf::HpcCounters::k32BitCeiling - (f & 0xFFFFFULL);
      note(FaultClass::kCounterWrap);
    }

    // Saturation: every field clamps at a narrow ceiling
    // (magnitude * 2^24 events), silently losing the excess.
    if (sat && fires(*sat, epoch_, tkey)) {
      const auto ceiling = static_cast<std::uint64_t>(
          std::max(1.0, sat->magnitude) * 16'777'216.0);
      s.counters.saturate_fields(ceiling);
      note(FaultClass::kCounterSaturate);
    }
  }

  // Drop last, so a dropped sample still contributed its pristine payload
  // to the duplicate cache (the data existed; its delivery failed).
  if (drop) {
    std::erase_if(samples, [&](const os::EpochSample& s) {
      if (!fires(*drop, epoch_, static_cast<std::uint64_t>(s.tid))) {
        return false;
      }
      note(FaultClass::kSampleDrop);
      return true;
    });
  }

  prev_samples_ = std::move(fresh);
}

FaultInjector::Decision FaultInjector::on_migrate(ThreadId tid, CoreId /*from*/,
                                                  CoreId /*to*/) {
  const auto tkey = static_cast<std::uint64_t>(tid);
  if (const FaultSpec* rej = plan_.spec_of(FaultClass::kMigrationReject);
      rej && fires(*rej, epoch_, tkey)) {
    note(FaultClass::kMigrationReject);
    return Decision::kReject;
  }
  if (const FaultSpec* del = plan_.spec_of(FaultClass::kMigrationDelay);
      del && fires(*del, epoch_, tkey)) {
    note(FaultClass::kMigrationDelay);
    return Decision::kDefer;
  }
  return Decision::kAllow;
}

double FaultInjector::transform_energy(CoreId core, double joules) {
  const auto ckey = static_cast<std::uint64_t>(core);
  double out = joules;

  const FaultSpec* blackout = plan_.spec_of(FaultClass::kCoreBlackout);
  if (blackout && active_in_window(*blackout, epoch_, ckey)) {
    // Blacked-out rail reads zero; don't update the stuck cache with it.
    note(FaultClass::kCoreBlackout);
    return 0.0;
  }

  if (const FaultSpec* stuck = plan_.spec_of(FaultClass::kPowerStuck);
      stuck && active_in_window(*stuck, epoch_, ckey)) {
    auto it = prev_energy_.find(core);
    out = it != prev_energy_.end() ? it->second : 0.0;
    note(FaultClass::kPowerStuck);
    return out;  // a latched ADC also doesn't pick up noise
  }

  prev_energy_[core] = joules;

  if (const FaultSpec* noise = plan_.spec_of(FaultClass::kPowerNoise);
      noise && fires(*noise, epoch_, ckey)) {
    Rng g(hash_key(FaultClass::kPowerNoise, epoch_, ckey ^ 0x9e15eULL));
    out = std::max(0.0, out * (1.0 + noise->magnitude * g.gaussian()));
    note(FaultClass::kPowerNoise);
  }
  return out;
}

}  // namespace sb::fault
