#include "core/prediction_cache.h"

#include <cmath>

#include "obs/sink.h"

namespace sb::core {
namespace {

std::int64_t quantize(double v, double steps) {
  return std::llround(v * steps);
}

}  // namespace

PredictionCache::Key PredictionCache::make_key(const ThreadObservation& obs,
                                               std::uint64_t context) const {
  Key k;
  const double q = cfg_.quantization_steps;
  // Every observation field build_characterization feeds into the row: the
  // measured column (ipc, power), the source frequency, and the Table 4
  // feature ratios consumed by make_features.
  k.q = {quantize(obs.ipc, q),       quantize(obs.power_w, q),
         quantize(obs.freq_mhz, q),  quantize(obs.imsh, q),
         quantize(obs.ibsh, q),      quantize(obs.mr_branch, q),
         quantize(obs.mr_l1i, q),    quantize(obs.mr_l1d, q),
         quantize(obs.mr_itlb, q),   quantize(obs.mr_dtlb, q)};
  k.core_type = obs.core_type;
  k.measured = obs.measured;
  k.zero_instructions = obs.instructions == 0;
  k.context = context;
  return k;
}

void PredictionCache::advance_epoch() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (++it->second.age > cfg_.max_stale_epochs) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

bool PredictionCache::lookup(ThreadId tid, const Key& key, std::size_t n,
                             double* s_row, double* p_row) {
  const auto it = entries_.find(tid);
  if (it == entries_.end() || it->second.s_row.size() != n ||
      !(it->second.key == key)) {
    ++stats_.misses;
    if (obs_ != nullptr) obs_->metrics().counter("pred_cache.misses").add();
    return false;
  }
  if (it->second.age >= cfg_.max_stale_epochs) {
    ++stats_.stale_evictions;
    if (obs_ != nullptr) {
      obs_->metrics().counter("pred_cache.stale_evictions").add();
    }
    return false;
  }
  const Entry& e = it->second;
  for (std::size_t j = 0; j < n; ++j) {
    s_row[j] = e.s_row[j];
    p_row[j] = e.p_row[j];
  }
  ++stats_.hits;
  if (obs_ != nullptr) obs_->metrics().counter("pred_cache.hits").add();
  return true;
}

void PredictionCache::store(ThreadId tid, const Key& key, std::size_t n,
                            const double* s_row, const double* p_row) {
  Entry& e = entries_[tid];
  e.key = key;
  e.age = 0;
  e.s_row.assign(s_row, s_row + n);
  e.p_row.assign(p_row, p_row + n);
}

}  // namespace sb::core
