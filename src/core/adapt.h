// Online predictor adaptation: closing the drift loop (§4, Eq. 8).
//
// PR 5's audit recorder *scores* the Θ characterization against what the
// sensing layer later measures; this layer uses the same residual stream to
// *repair* the predictor online, in two tiers:
//
//   tier 1 (bias/gain)  A per-(src,dst)-core-type multiplicative correction
//                       derived from the signed relative-residual EWMA.
//                       With err = (obs - pred) / obs, obs ≈ pred / (1 - r̄),
//                       so the corrector multiplies every GIPS / power
//                       forecast by clamp(1 / (1 - r̄)). Same-type pairs are
//                       corrected too: their forecasts bypass Θ but still
//                       drift against biased sensing (e.g. a noisy power
//                       rail). Nearly free: one multiply per S/P cell.
//   tier 2 (RLS)        A recursive-least-squares update of the Θ
//                       coefficients themselves over the Eq. 8 feature
//                       vector, with forgetting factor λ and
//                       covariance-reset-on-drift: the debounced drift
//                       signal (same EWMA/threshold/min-joins semantics as
//                       the audit recorder's detector) re-inflates the RLS
//                       covariance so the filter re-converges quickly after
//                       a regime change, *instead of* escalating to
//                       degraded mode.
//
// The adapter keeps its own one-epoch-later forecast→observation join (the
// same validity rules as obs::AuditRecorder) so adaptation works — and
// behaves identically — whether or not the observability audit recorder is
// attached. Everything is a pure function of sim state: no host clocks, no
// RNG, fixed-sized double arithmetic only, so adapted runs stay
// bit-identical across --jobs=1/8. Adaptation defaults off; all goldens are
// untouched unless a config opts in.
//
// Interaction with the prediction cache: bias/gain is applied as a
// post-pass over the built S/P matrices, so cached rows stay *raw* and
// remain valid; RLS rewrites Θ every epoch, which would serve stale cached
// rows, so the policy disables row reuse while tier 2 is active.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/features.h"
#include "core/predictor.h"

namespace sb::core {

/// `SmartBalanceConfig::Adaptation`. Parsed from the CLI/config grammar
/// (comma-separated entries, FaultPlan-style):
///   bias[:alpha[:clamp]]          enable tier 1 (EWMA alpha, gain clamp)
///   rls[:lambda[:p0[:reset]]]     enable tier 2 (forgetting, prior, reset)
///   drift:threshold[:min_joins]   tune the covariance-reset drift detector
/// An empty string disables everything. Any malformed entry raises
/// std::invalid_argument (the only exception parse may throw).
struct AdaptationConfig {
  /// Tier 1: per-(src,dst) bias/gain post-multiplier on Eq. 8 forecasts.
  bool bias = false;
  /// EWMA smoothing for the signed residual trackers feeding the gains.
  double bias_alpha = 0.25;
  /// Gain multipliers are clamped to [1/(1+clamp), 1+clamp]: a drifted
  /// residual can at most scale a forecast by this factor either way.
  double gain_clamp = 0.5;

  /// Tier 2: recursive-least-squares update of Θ over the Eq. 8 features.
  bool rls = false;
  /// Forgetting factor λ ∈ [0.5, 1]; 1 = infinite memory (batch LS limit).
  double rls_lambda = 0.995;
  /// Initial covariance scale: P0 = rls_p0 · I. Equals 1/ridge of the
  /// batch trainer's ridge least squares when λ = 1. The default keeps a
  /// strong prior on the batch-trained Θ (a huge P0 would let the first few
  /// — possibly noisy — online samples overwrite the training wholesale).
  double rls_p0 = 1.0;
  /// Re-inflate P to P0 · I on a debounced drift rising edge, so the
  /// filter forgets a stale regime at once instead of over 1/(1-λ) epochs.
  bool rls_reset_on_drift = true;

  /// |residual| EWMA level that trips the adapter's drift detector
  /// (defaults mirror obs::AuditConfig so both fire together).
  double drift_threshold = 0.25;
  /// Joins a pair must accumulate before its detector may trip (debounce).
  std::uint64_t drift_min_joins = 8;

  bool enabled() const { return bias || rls; }

  static AdaptationConfig parse(const std::string& text);
  std::string to_string() const;

  bool operator==(const AdaptationConfig& o) const;
};

/// The RLS core, exposed standalone so the property tests can drive it
/// directly: with λ = 1 and P0 = I/ridge it reproduces the batch ridge
/// least squares of trainer.cc exactly; with λ < 1 it tracks drifting
/// coefficients. The caller owns Θ (it lives in PredictorModel); the
/// filter owns only the covariance.
class RlsFilter {
 public:
  RlsFilter(double lambda, double p0);

  /// P = p0 · I (initial state, and the covariance-reset-on-drift action).
  void reset();

  /// One weighted sample: x is the Eq. 8 feature row, y the observed IPC,
  /// w the row weight (the trainer's 1/max(y, 1e-3) convention). Updates
  /// theta in place. Non-finite inputs are ignored.
  void update(const std::array<double, kNumFeatures>& x, double y, double w,
              std::array<double, kNumFeatures>& theta);

  /// Row-major kNumFeatures × kNumFeatures covariance (tests assert it
  /// stays symmetric positive-definite).
  const std::array<double, kNumFeatures * kNumFeatures>& covariance() const {
    return p_;
  }
  std::uint64_t updates() const { return updates_; }

 private:
  double lambda_;
  double p0_;
  std::array<double, kNumFeatures * kNumFeatures> p_{};
  std::uint64_t updates_ = 0;
};

/// Per-pass adaptation accounting (feeds the predictor.adapt.* counters).
struct AdaptPassStats {
  int joined = 0;       // forecasts validated against this pass's sensing
  int rls_updates = 0;  // RLS samples absorbed into Θ
  int cov_resets = 0;   // covariance re-inflations (drift rising edges)
};

/// Final state of one (src,dst) corrector, for introspection and the
/// report's "audit" block.
struct AdaptPairState {
  std::int32_t src_type = -1;
  std::int32_t dst_type = -1;
  std::uint64_t joins = 0;
  double gain_gips = 1.0;
  double gain_power = 1.0;
  double ewma_gips = 0;  // signed relative residual EWMA (raw forecasts)
  double ewma_power = 0;
  std::uint64_t cov_resets = 0;
};

class OnlineAdapter {
 public:
  /// `model` outlives the adapter; tier 2 rewrites its Θ rows in place.
  OnlineAdapter(const AdaptationConfig& cfg, PredictorModel* model);

  const AdaptationConfig& config() const { return cfg_; }

  /// Phase A of every pass, right after sensing: joins the forecasts
  /// registered last pass against this pass's observations, advances the
  /// signed residual EWMAs (tier 1 gains), absorbs RLS samples (tier 2)
  /// and runs the drift detector / covariance resets. Join validity
  /// mirrors the audit recorder: measured, on the predicted core, of the
  /// predicted type, exactly one epoch later.
  AdaptPassStats observe(std::uint64_t epoch,
                         const std::vector<ThreadObservation>& obs);

  /// Phase B: open this pass's forecast set (clears any unconsumed one).
  void begin_forecasts(std::uint64_t epoch);
  /// Phase B: one *raw* (pre-correction) forecast per thread (same-type
  /// pairs included — tier 1 corrects them, tier 2 ignores them). `x` is
  /// the Eq. 8 feature row the forecast was computed from.
  void add_forecast(std::int64_t tid, std::int32_t core, std::int32_t src_type,
                    std::int32_t dst_type, double raw_gips, double raw_w,
                    const std::array<double, kNumFeatures>& x);

  /// Tier 1 post-multipliers for a forecast; exactly 1.0 when bias
  /// correction is off or the pair is unseen.
  double gips_multiplier(std::int32_t src_type, std::int32_t dst_type) const;
  double power_multiplier(std::int32_t src_type, std::int32_t dst_type) const;

  // --- Introspection ----------------------------------------------------
  std::uint64_t joins() const { return joins_; }
  std::uint64_t rls_updates() const { return rls_updates_; }
  std::uint64_t cov_resets() const { return cov_resets_; }
  std::vector<AdaptPairState> pair_states() const;
  /// Tier 2 filter for a pair (null when RLS is off or the pair is unseen).
  const RlsFilter* rls_filter(std::int32_t src_type,
                              std::int32_t dst_type) const;

 private:
  struct Pending {
    std::int64_t tid = 0;
    std::int32_t core = -1;
    std::int32_t src_type = -1;
    std::int32_t dst_type = -1;
    double raw_gips = 0;
    double raw_w = 0;
    std::array<double, kNumFeatures> x{};
  };

  struct PairState {
    std::uint64_t joins = 0;
    double gain_gips = 1.0;
    double gain_power = 1.0;
    double sewma_gips = 0;  // signed EWMAs drive the gains
    double sewma_power = 0;
    double aewma_gips = 0;  // |residual| EWMAs drive the drift detector
    double aewma_power = 0;
    bool drift_active = false;
    std::uint64_t cov_resets = 0;
    std::vector<RlsFilter> rls;  // 0 or 1 filters (RLS off/on)
  };

  PairState& pair(std::int32_t src_type, std::int32_t dst_type);
  double clamp_gain(double g) const;

  AdaptationConfig cfg_;
  PredictorModel* model_;
  std::map<std::pair<std::int32_t, std::int32_t>, PairState> pairs_;
  std::vector<Pending> pending_;
  std::uint64_t pending_epoch_ = 0;
  bool pending_valid_ = false;
  std::uint64_t joins_ = 0;
  std::uint64_t rls_updates_ = 0;
  std::uint64_t cov_resets_ = 0;
};

}  // namespace sb::core
