// SmartBalance: the closed-loop sense → predict → balance policy (§4).
//
// Installed in place of the kernel's rebalance_domains(); fires once per
// epoch (60 ms default, covering L = 10 CFS periods of 6 ms). Each pass:
//   1. SENSE    — drain per-thread counters and per-core power sensors,
//                 apply measurement noise, produce ThreadObservations.
//   2. PREDICT  — estimate each thread's IPS/power on its current core
//                 (Eqs. 4–7) and predict them on every other core type
//                 (Eqs. 8–9), filling S(k) and P(k).
//   3. BALANCE  — run the fixed-point SA optimizer (Algorithm 1) on
//                 J = Σ ω_j IPS_j/P_j starting from the current allocation
//                 and migrate threads whose assignment changed.
//
// Host wall-clock of every phase is recorded per pass for the Fig. 7
// overhead study.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "core/adapt.h"
#include "core/char_matrix.h"
#include "core/objective.h"
#include "core/prediction_cache.h"
#include "core/predictor.h"
#include "core/sa_optimizer.h"
#include "core/sensing.h"
#include "core/shard.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "os/kernel.h"
#include "os/load_balancer.h"
#include "os/vanilla_balancer.h"

namespace sb::core {

struct SmartBalanceConfig {
  /// Epoch length T_Epoch (covers L CFS scheduling periods).
  TimeNs epoch = milliseconds(60);
  SaConfig sa;
  SensingSubsystem::Config sensing;
  std::uint64_t seed = 99;
  /// Apply a new allocation only if its predicted objective exceeds the
  /// current one by this relative margin. Hysteresis against noise-driven
  /// migration thrash: prediction error (Fig. 6, ~4-5%) would otherwise
  /// reshuffle near-equivalent allocations every epoch, paying cache-warmup
  /// costs for no real gain.
  double min_relative_gain = 0.02;
  /// After migrating a thread, freeze it on its new core for this many
  /// epochs: the first post-migration epoch measures cold caches and the
  /// characterization history restarts on the new core type, so letting the
  /// optimizer move the thread again immediately would act on the noisiest
  /// possible data (and ping-pong). 0 disables.
  int migration_cooldown_epochs = 2;

  /// Sparse virtual sensing (paper §6.4): cores whose bit is set have a
  /// physical power sensor; threads measured on other cores get their power
  /// from the Eq. 9 virtual sensor (p̂ = α1·ipc + α0 for the core's type)
  /// instead of a reading. Default: every core instrumented.
  std::bitset<kMaxCores> power_sensor_cores = std::bitset<kMaxCores>().set();

  /// Predict-phase memoization (see prediction_cache.h): threads whose
  /// quantized counters barely moved since last epoch reuse their S/P rows
  /// instead of re-running the Θ fan-out across all core types. Disabled by
  /// default — enabling trades bounded (quantization + staleness) row reuse
  /// error for a large cut in predict-phase time on stable workloads.
  PredictionCacheConfig prediction_cache;

  /// Deterministic sensor/migration fault plan (see fault/fault_plan.h).
  /// Empty (the default) injects nothing and leaves every golden figure
  /// bit-identical.
  fault::FaultPlan fault_plan;
  /// Sensing-defense activation. kAuto enables the defense layer exactly
  /// when the fault plan is non-empty — so clean runs stay on the
  /// bit-identical undefended path, and faulty runs defend themselves.
  /// kOn / kOff force either side (kOff under faults is the ablation arm of
  /// fig_fault_resilience).
  enum class Defenses { kAuto, kOn, kOff };
  Defenses defenses = Defenses::kAuto;
  /// Degraded mode: when the fraction of threads with healthy sensors
  /// (sensing-layer confidence) drops below this, the pass is delegated to
  /// a vanilla CFS-style balancer — heterogeneity-blind but sensing-free,
  /// so garbage telemetry cannot steer migrations. 0 disables.
  double degraded_healthy_threshold = 0.5;
  /// Escalate predictor drift to degraded mode: while the audit recorder's
  /// per-(src,dst)-core-type residual EWMAs sit above their threshold,
  /// delegate passes to the vanilla balancer exactly like a sensing-health
  /// degradation. Off by default; requires the observability audit recorder
  /// (ObsConfig::audit) — without it the flag is inert, and with it the
  /// schedule depends on the audit verdicts, so goldens only stay
  /// bit-identical while this is off. When online adaptation is enabled it
  /// takes precedence: drift triggers a covariance reset (repair the
  /// predictor) instead of retreating to the vanilla balancer.
  bool degrade_on_drift = false;
  /// Online predictor adaptation (see core/adapt.h): bias/gain correction
  /// of the Eq. 8 forecasts and/or RLS coefficient updates, driven by the
  /// policy's own forecast→observation joins. Off by default — every
  /// golden stays bit-identical. While tier 2 (RLS) is active the
  /// prediction cache is bypassed, since cached rows would embed stale Θ.
  using Adaptation = AdaptationConfig;
  Adaptation adaptation;
  /// Sharded hierarchical balancing (see core/shard.h): partition the
  /// platform into clusters, anneal each shard in parallel on the shared
  /// fork-join pool, then run a bounded global exchange phase. Off by
  /// default — the unsharded SA path runs and every golden stays
  /// bit-identical; `shards = 1` routes through the shard machinery but
  /// replays the unsharded trajectory exactly.
  using Sharding = ShardingConfig;
  Sharding sharding;
};

class SmartBalancePolicy final : public os::LoadBalancer {
 public:
  /// `model` must be trained for the platform's core types (PredictorTrainer).
  SmartBalancePolicy(const arch::Platform& platform, PredictorModel model,
                     SmartBalanceConfig cfg = SmartBalanceConfig(),
                     std::unique_ptr<BalanceObjective> objective = nullptr);

  TimeNs interval() const override { return cfg_.epoch; }
  void on_balance(os::Kernel& kernel, TimeNs now) override;
  std::string name() const override { return "smartbalance"; }
  os::BalancePassStats last_pass_stats() const override { return last_; }
  std::uint64_t passes() const override { return passes_; }

  // --- Introspection for experiments ---
  const RunningStats& sense_ns() const { return sense_ns_; }
  const RunningStats& predict_ns() const { return predict_ns_; }
  const RunningStats& optimize_ns() const { return optimize_ns_; }
  const RunningStats& migrations_per_pass() const { return migrations_; }
  const RunningStats& objective_gain() const { return objective_gain_; }
  const PredictorModel& model() const { return model_; }
  const SmartBalanceConfig& config() const { return cfg_; }
  /// Predict-phase cache (hit/miss accounting; empty when disabled).
  const PredictionCache& prediction_cache() const { return pred_cache_; }

  /// The most recent characterization matrices (empty before first pass).
  const CharacterizationMatrices& last_matrices() const { return last_mx_; }

  /// Online adaptation layer (null unless cfg.adaptation enables a tier).
  const OnlineAdapter* adapter() const { return adapter_.get(); }

  /// Sharded balancing layer (null unless cfg.sharding.enabled()).
  const ShardedBalancer* sharded() const { return sharded_.get(); }

  /// Fault-resilience introspection.
  const fault::FaultInjector* injector() const { return injector_.get(); }
  const SensingHealthStats& sensing_health() const { return sensing_.health(); }
  bool defenses_enabled() const { return sensing_.config().defense.enabled; }
  std::uint64_t degraded_passes() const { return degraded_passes_; }
  std::uint64_t faults_detected() const { return faults_detected_; }
  std::uint64_t faults_absorbed() const { return faults_absorbed_; }

  // --- Telemetry-plane signals (sim::TimeseriesSampler) ---
  /// The most recent pass ran in degraded (vanilla-fallback) mode.
  bool degraded_active() const { return degraded_prev_; }
  /// SA accepted-worse fraction of the most recent optimized pass
  /// (0 before the first pass or when the pass had no iterations).
  double last_accept_rate() const { return last_sa_accept_rate_; }

 private:
  static SensingSubsystem::Config resolve_sensing(const SmartBalanceConfig& cfg);
  const arch::Platform& platform_;
  PredictorModel model_;
  SmartBalanceConfig cfg_;
  std::unique_ptr<BalanceObjective> objective_;
  SensingSubsystem sensing_;
  /// One optimizer for the policy's lifetime: its scratch arena (Ψ slots,
  /// per-core sums, occupancy matrix, allocations) is reused every epoch —
  /// re-seeded per pass, never re-allocated.
  SaOptimizer optimizer_;
  PredictionCache pred_cache_;

  os::BalancePassStats last_;
  std::uint64_t passes_ = 0;
  RunningStats sense_ns_;
  RunningStats predict_ns_;
  RunningStats optimize_ns_;
  RunningStats migrations_;
  RunningStats objective_gain_;
  CharacterizationMatrices last_mx_;
  std::unordered_map<ThreadId, std::uint64_t> migrated_at_pass_;

  /// Online predictor adaptation (null when cfg.adaptation is all-off).
  std::unique_ptr<OnlineAdapter> adapter_;

  /// Sharded balancing (null when cfg.sharding is off).
  std::unique_ptr<ShardedBalancer> sharded_;

  /// Fault injection (null when the plan is empty) and graceful degradation.
  std::unique_ptr<fault::FaultInjector> injector_;
  os::VanillaBalancer fallback_;
  std::uint64_t degraded_passes_ = 0;
  /// Previous pass ran degraded (for enter/exit trace transitions).
  bool degraded_prev_ = false;
  std::uint64_t faults_detected_ = 0;
  std::uint64_t faults_absorbed_ = 0;
  /// Injector total at the last audited pass (per-epoch delta attribution).
  std::uint64_t audit_faults_prev_ = 0;
  /// accepted_worse / iterations of the most recent SA result.
  double last_sa_accept_rate_ = 0;
};

}  // namespace sb::core
