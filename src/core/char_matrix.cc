#include "core/char_matrix.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>

namespace sb::core {

namespace {

/// Fingerprint of the row-shaping context for the prediction cache: column
/// count plus each column's effective frequency and power scale (nominal,
/// or the current DVFS operating point). FNV-1a over the raw bit patterns.
std::uint64_t context_signature(
    const arch::Platform& platform, std::size_t n,
    const std::vector<arch::OperatingPoint>* core_opps) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 64; b += 8) {
      h ^= (v >> b) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    const auto c = static_cast<CoreId>(j);
    double freq = platform.params_of(c).freq_mhz;
    double vdd = 0.0;
    if (core_opps) {
      freq = (*core_opps)[j].freq_mhz;
      vdd = (*core_opps)[j].vdd;
    }
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(freq));
    std::memcpy(&bits, &freq, sizeof(bits));
    mix(bits);
    std::memcpy(&bits, &vdd, sizeof(bits));
    mix(bits);
    mix(static_cast<std::uint64_t>(platform.type_of(c)));
  }
  return h;
}

}  // namespace

CharacterizationMatrices build_characterization(
    const std::vector<ThreadObservation>& observations,
    const PredictorModel& predictor, const arch::Platform& platform,
    const std::vector<arch::OperatingPoint>* core_opps,
    PredictionCache* cache) {
  const std::size_t m = observations.size();
  const auto n = static_cast<std::size_t>(platform.num_cores());
  if (core_opps && core_opps->size() != n) {
    throw std::invalid_argument("build_characterization: opp vector size");
  }
  CharacterizationMatrices out;
  out.s = Matrix(m, n);
  out.p = Matrix(m, n);
  out.tids.reserve(m);
  out.current.reserve(m);

  const std::uint64_t context_sig =
      cache ? context_signature(platform, n, core_opps) : 0;

  const auto freq_of = [&](CoreId c) {
    return core_opps ? (*core_opps)[static_cast<std::size_t>(c)].freq_mhz
                     : platform.params_of(c).freq_mhz;
  };
  const auto power_scale_of = [&](CoreId c) {
    if (!core_opps) return 1.0;
    // Dynamic-power V²f scaling relative to the nominal point. The leakage
    // share scales with V³ instead; using the dynamic law for the total is
    // a small, conservative approximation (see header).
    return arch::dynamic_scale((*core_opps)[static_cast<std::size_t>(c)],
                               platform.params_of(c));
  };

  // A row's cell depends on the column only through (core type, effective
  // frequency, power scale), so columns sharing that triple share one
  // (gips, watts) value. Group them once per call and run the Θ fan-out
  // once per group per thread instead of once per column: on a 1024-core
  // big.LITTLE with DVFS off that is 2 predictor evaluations per thread
  // instead of 1024, with bit-identical output (the per-cell arithmetic is
  // a pure function of the grouped inputs, compared by bit pattern).
  struct ColumnGroup {
    CoreTypeId type;
    double dst_freq;
    double power_scale;
    std::uint64_t freq_bits;
    std::uint64_t scale_bits;
  };
  std::vector<ColumnGroup> groups;
  std::vector<std::size_t> group_of(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto c = static_cast<CoreId>(j);
    ColumnGroup g;
    g.type = platform.type_of(c);
    g.dst_freq = freq_of(c);
    g.power_scale = power_scale_of(c);
    std::memcpy(&g.freq_bits, &g.dst_freq, sizeof(g.freq_bits));
    std::memcpy(&g.scale_bits, &g.power_scale, sizeof(g.scale_bits));
    std::size_t gi = 0;
    while (gi < groups.size() &&
           !(groups[gi].type == g.type && groups[gi].freq_bits == g.freq_bits &&
             groups[gi].scale_bits == g.scale_bits)) {
      ++gi;
    }
    if (gi == groups.size()) groups.push_back(g);
    group_of[j] = gi;
  }
  std::vector<std::array<double, 2>> group_vals(groups.size());

  for (std::size_t i = 0; i < m; ++i) {
    const ThreadObservation& o = observations[i];
    out.tids.push_back(o.tid);
    out.current.push_back(o.core);

    // Cache consult: rows are stored/served whole, so a hit skips the
    // entire per-thread fan-out (Matrix is row-major — &at(i, 0) is the
    // contiguous n-column row).
    PredictionCache::Key key;
    if (cache) {
      key = cache->make_key(o, context_sig);
      if (n > 0 &&
          cache->lookup(o.tid, key, n, &out.s.at(i, 0), &out.p.at(i, 0))) {
        continue;
      }
    }

    // Unmeasured threads (never ran long enough): neutral prior — assume a
    // modest IPC everywhere so the optimizer parks them on efficient cores
    // until real measurements arrive.
    if (!o.measured && o.instructions == 0) {
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const ColumnGroup& cg = groups[g];
        const double ipc = 0.5;
        group_vals[g] = {ipc * cg.dst_freq / 1000.0,  // GIPS
                         predictor.predict_power(cg.type, ipc) *
                             cg.power_scale};
      }
      for (std::size_t j = 0; j < n; ++j) {
        out.s.at(i, j) = group_vals[group_of[j]][0];
        out.p.at(i, j) = group_vals[group_of[j]][1];
      }
      if (cache && n > 0) {
        cache->store(o.tid, key, n, &out.s.at(i, 0), &out.p.at(i, 0));
      }
      continue;
    }

    const double src_freq =
        o.freq_mhz > 0
            ? o.freq_mhz
            : (o.core_type >= 0 ? platform.params_of_type(o.core_type).freq_mhz
                                : platform.params_of_type(0).freq_mhz);

    // The measured-cell condition is group-determined too (it reads only
    // the group's type/frequency and the thread's own observation).
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const ColumnGroup& cg = groups[g];
      double ipc;
      double watts;
      if (cg.type == o.core_type && std::abs(cg.dst_freq - src_freq) < 1e-6) {
        ipc = o.ipc;                        // measured (Eq. 4)
        watts = std::max(1e-4, o.power_w);  // measured (Eq. 5)
      } else {
        ipc = predictor.predict_ipc(o, cg.type, src_freq, cg.dst_freq);
        watts = predictor.predict_power(cg.type, ipc) * cg.power_scale;
      }
      group_vals[g] = {ipc * cg.dst_freq / 1000.0, watts};  // GIPS, W
    }
    for (std::size_t j = 0; j < n; ++j) {
      out.s.at(i, j) = group_vals[group_of[j]][0];
      out.p.at(i, j) = group_vals[group_of[j]][1];
    }
    if (cache && n > 0) {
      cache->store(o.tid, key, n, &out.s.at(i, 0), &out.p.at(i, 0));
    }
  }
  return out;
}

}  // namespace sb::core
