#include "core/trainer.h"

#include <cmath>
#include <stdexcept>

#include "common/matrix.h"
#include "workload/benchmarks.h"

namespace sb::core {
namespace {

class RngJitter final : public workload::JitterSource {
 public:
  explicit RngJitter(Rng& rng) : rng_(rng) {}
  double gaussian() override { return rng_.gaussian(); }

 private:
  Rng& rng_;
};

}  // namespace

PredictorTrainer::PredictorTrainer(const perf::PerfModel& perf,
                                   const power::PowerModel& power, Config cfg)
    : perf_(perf), power_(power), cfg_(cfg) {
  if (cfg_.replicas <= 0) throw std::invalid_argument("trainer: replicas");
}

ThreadObservation PredictorTrainer::synthesize_observation(
    const workload::WorkloadProfile& profile, CoreTypeId src, Rng& rng,
    double mem_latency_ns, double freq_mhz) const {
  const auto& params = perf_.platform().params_of_type(src);
  const double freq = freq_mhz > 0 ? freq_mhz : params.freq_mhz;
  const auto bd =
      perf_.evaluate_on_type(profile, src, mem_latency_ns, 1.0, freq);

  // Build ground-truth counters for a profiling run of N instructions.
  const auto insts = static_cast<double>(cfg_.profiling_insts);
  const double cycles = insts * bd.total_cpi();
  perf::HpcCounters counters;
  perf::PerfModel::accumulate_counters(counters, bd, profile, insts, cycles);

  // Observe with the same counter-noise path the runtime sensing uses.
  auto noisy = [&](double v) {
    return std::max(0.0, v * (1.0 + cfg_.counter_noise * rng.gaussian()));
  };
  ThreadObservation o;
  o.core_type = src;
  const double inst_total = noisy(static_cast<double>(counters.inst_total));
  const double active = noisy(static_cast<double>(counters.active_cycles()));
  o.instructions = counters.inst_total;
  o.ipc = active > 0 ? inst_total / active : 0.0;
  o.imsh = inst_total > 0
               ? noisy(static_cast<double>(counters.inst_mem)) / inst_total
               : 0.0;
  o.ibsh = inst_total > 0
               ? noisy(static_cast<double>(counters.inst_branch)) / inst_total
               : 0.0;
  auto rate = [&](std::uint64_t num, std::uint64_t den) {
    const double d = noisy(static_cast<double>(den));
    return d > 0 ? noisy(static_cast<double>(num)) / d : 0.0;
  };
  o.mr_branch = rate(counters.branch_mispred, counters.inst_branch);
  o.mr_l1i = rate(counters.l1i_miss, counters.l1i_access);
  o.mr_l1d = rate(counters.l1d_miss, counters.l1d_access);
  o.mr_itlb = rate(counters.itlb_miss, counters.itlb_access);
  o.mr_dtlb = rate(counters.dtlb_miss, counters.dtlb_access);
  o.freq_mhz = freq;
  o.ips = o.ipc * freq * 1e6;
  o.power_w = power_.busy_power_w(src, bd.ipc, profile.activity);
  o.measured = true;
  return o;
}

PredictorModel PredictorTrainer::train(
    const std::vector<workload::WorkloadProfile>& profiles) const {
  if (profiles.empty()) throw std::invalid_argument("train: no profiles");
  const auto& platform = perf_.platform();
  const int q = platform.num_types();
  PredictorModel model(q);

  Rng rng(cfg_.seed);
  RngJitter jitter(rng);

  // Expand the training set with jittered replicas so the regression sees
  // the neighbourhood of each benchmark, not just its exact point.
  std::vector<workload::WorkloadProfile> expanded;
  expanded.reserve(profiles.size() * static_cast<std::size_t>(cfg_.replicas));
  for (const auto& p : profiles) {
    expanded.push_back(p);
    for (int r = 1; r < cfg_.replicas; ++r) {
      expanded.push_back(p.jittered(cfg_.jitter_sigma, jitter));
    }
  }

  // Per-sample observations on each source type and ground truth on each
  // destination type, sampled at every training memory-latency point so
  // the regression remains calibrated under bus contention. Observation
  // and truth for a sample share the latency point (the whole chip sees
  // the same bus). With DVFS training enabled, each (sample, latency) is
  // additionally profiled at every source/destination frequency-ratio pair
  // so the FR feature carries real signal.
  const std::vector<double> lats = cfg_.training_latencies_ns.empty()
                                       ? std::vector<double>{cfg_.mem_latency_ns}
                                       : cfg_.training_latencies_ns;
  const std::vector<double> ratios = cfg_.training_freq_ratios.empty()
                                         ? std::vector<double>{1.0}
                                         : cfg_.training_freq_ratios;
  const std::size_t npoints = expanded.size() * lats.size() * ratios.size();
  // obs[type][point], truth[type][point]; point index iterates profiles ×
  // latencies × ratios in a fixed order shared by all types.
  std::vector<std::vector<ThreadObservation>> obs(static_cast<std::size_t>(q));
  std::vector<std::vector<double>> true_ipc(static_cast<std::size_t>(q));
  std::vector<std::vector<double>> true_power(static_cast<std::size_t>(q));
  for (CoreTypeId t = 0; t < q; ++t) {
    const double nominal = platform.params_of_type(t).freq_mhz;
    obs[static_cast<std::size_t>(t)].reserve(npoints);
    for (const auto& p : expanded) {
      for (double lat : lats) {
        for (double ratio : ratios) {
          obs[static_cast<std::size_t>(t)].push_back(
              synthesize_observation(p, t, rng, lat, nominal * ratio));
          const auto bd =
              perf_.evaluate_on_type(p, t, lat, 1.0, nominal * ratio);
          true_ipc[static_cast<std::size_t>(t)].push_back(bd.ipc);
          true_power[static_cast<std::size_t>(t)].push_back(
              power_.busy_power_w(t, bd.ipc, p.activity));
        }
      }
    }
  }

  // Θ regression per ordered (src, dst) pair — Eq. 8 / Table 4. Source and
  // destination frequency ratios are *crossed* (a measurement at one OPP
  // must predict a target at any OPP), so the FR feature carries real
  // variation whenever more than one ratio is configured.
  const std::size_t nratio = ratios.size();
  const std::size_t base_points = npoints / nratio;  // (profile, lat) pairs
  for (CoreTypeId s = 0; s < q; ++s) {
    for (CoreTypeId d = 0; d < q; ++d) {
      if (s == d) continue;
      const std::size_t rows = base_points * nratio * nratio;
      Matrix a(rows, kNumFeatures);
      std::vector<double> b(rows);
      std::size_t row = 0;
      for (std::size_t bp = 0; bp < base_points; ++bp) {
        for (std::size_t rs = 0; rs < nratio; ++rs) {
          const auto& src_obs =
              obs[static_cast<std::size_t>(s)][bp * nratio + rs];
          for (std::size_t rd = 0; rd < nratio; ++rd) {
            const std::size_t dst_idx = bp * nratio + rd;
            const auto& dst_obs = obs[static_cast<std::size_t>(d)][dst_idx];
            const auto x = make_features(
                src_obs, src_obs.freq_mhz / dst_obs.freq_mhz);
            // Weight by 1/truth: the reported quantity (Fig. 6) is
            // *relative* IPC error, so minimize relative residuals.
            // Non-finite rows (a poisoned observation would propagate NaN
            // through the normal equations and corrupt every coefficient)
            // are zero-weighted out of the regression.
            double truth = true_ipc[static_cast<std::size_t>(d)][dst_idx];
            bool finite = std::isfinite(truth);
            for (std::size_t k = 0; finite && k < kNumFeatures; ++k) {
              finite = std::isfinite(x[k]);
            }
            if (!finite) truth = 0.0;
            const double w = finite ? 1.0 / std::max(truth, 1e-3) : 0.0;
            for (std::size_t k = 0; k < kNumFeatures; ++k) {
              a.at(row, k) = w * x[k];
            }
            b[row] = w * truth;
            ++row;
          }
        }
      }
      const auto coeffs = least_squares(a, b, cfg_.ridge);
      std::array<double, kNumFeatures> th{};
      for (std::size_t k = 0; k < kNumFeatures; ++k) th[k] = coeffs[k];
      model.set_theta(s, d, th);
    }
  }

  // Power interpolation per destination type — Eq. 9 (relative residuals,
  // as above). Trained at the nominal point; the runtime scales by the
  // DVFS laws when a core runs elsewhere.
  const std::size_t ns = npoints;
  for (CoreTypeId d = 0; d < q; ++d) {
    Matrix a(ns, 2);
    std::vector<double> b(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      double truth = true_power[static_cast<std::size_t>(d)][i];
      const double ipc = true_ipc[static_cast<std::size_t>(d)][i];
      const bool finite = std::isfinite(truth) && std::isfinite(ipc);
      if (!finite) truth = 0.0;
      const double w = finite ? 1.0 / std::max(truth, 1e-6) : 0.0;
      a.at(i, 0) = w * (finite ? ipc : 0.0);
      a.at(i, 1) = w;
      b[i] = w * truth;
    }
    const auto c = least_squares(a, b, cfg_.ridge);
    model.set_power_coeffs(d, c[0], c[1]);
  }

  // IPC bounds: nothing can exceed the widest machine.
  double max_width = 1.0;
  for (CoreTypeId t = 0; t < q; ++t) {
    max_width = std::max(
        max_width, static_cast<double>(platform.params_of_type(t).issue_width));
  }
  model.set_ipc_bounds(0.02, max_width);
  return model;
}

PredictorTrainer::ErrorReport PredictorTrainer::evaluate(
    const PredictorModel& model,
    const std::vector<workload::WorkloadProfile>& profiles) const {
  const auto& platform = perf_.platform();
  const int q = platform.num_types();
  Rng rng(cfg_.seed ^ 0xe7a1ULL);

  // Evaluate at every operating point the runtime system encounters (the
  // shared bus inflates memory latency under load), matching deployment.
  const std::vector<double> lats = cfg_.training_latencies_ns.empty()
                                       ? std::vector<double>{cfg_.mem_latency_ns}
                                       : cfg_.training_latencies_ns;
  ErrorReport report;
  double perf_sum = 0, power_sum = 0;
  for (const auto& p : profiles) {
    double perf_err = 0, power_err = 0;
    int pairs = 0;
    for (double lat : lats) {
      for (CoreTypeId s = 0; s < q; ++s) {
        const auto o = synthesize_observation(p, s, rng, lat);
        const double fs = platform.params_of_type(s).freq_mhz;
        for (CoreTypeId d = 0; d < q; ++d) {
          if (s == d) continue;
          const double fd = platform.params_of_type(d).freq_mhz;
          const auto bd = perf_.evaluate_on_type(p, d, lat);
          const double truth_ipc = bd.ipc;
          const double truth_p = power_.busy_power_w(d, bd.ipc, p.activity);
          const double pred_ipc = model.predict_ipc(o, d, fs, fd);
          const double pred_p = model.predict_power(d, pred_ipc);
          perf_err += std::abs(pred_ipc - truth_ipc) / truth_ipc;
          power_err += std::abs(pred_p - truth_p) / truth_p;
          ++pairs;
        }
      }
    }
    ProfileError pe;
    pe.name = p.name;
    pe.perf_err_pct = 100.0 * perf_err / pairs;
    pe.power_err_pct = 100.0 * power_err / pairs;
    perf_sum += pe.perf_err_pct;
    power_sum += pe.power_err_pct;
    report.per_profile.push_back(pe);
  }
  if (!report.per_profile.empty()) {
    report.avg_perf_err_pct =
        perf_sum / static_cast<double>(report.per_profile.size());
    report.avg_power_err_pct =
        power_sum / static_cast<double>(report.per_profile.size());
  }
  return report;
}

PredictorTrainer::ErrorReport PredictorTrainer::leave_one_out(
    const std::vector<
        std::pair<std::string, std::vector<workload::WorkloadProfile>>>&
        by_benchmark) const {
  ErrorReport report;
  double perf_sum = 0, power_sum = 0;
  for (std::size_t held = 0; held < by_benchmark.size(); ++held) {
    std::vector<workload::WorkloadProfile> training;
    for (std::size_t i = 0; i < by_benchmark.size(); ++i) {
      if (i == held) continue;
      training.insert(training.end(), by_benchmark[i].second.begin(),
                      by_benchmark[i].second.end());
    }
    const PredictorModel model = train(training);
    const ErrorReport r = evaluate(model, by_benchmark[held].second);
    ProfileError pe;
    pe.name = by_benchmark[held].first;
    pe.perf_err_pct = r.avg_perf_err_pct;
    pe.power_err_pct = r.avg_power_err_pct;
    perf_sum += pe.perf_err_pct;
    power_sum += pe.power_err_pct;
    report.per_profile.push_back(pe);
  }
  if (!report.per_profile.empty()) {
    report.avg_perf_err_pct =
        perf_sum / static_cast<double>(report.per_profile.size());
    report.avg_power_err_pct =
        power_sum / static_cast<double>(report.per_profile.size());
  }
  return report;
}

std::vector<workload::WorkloadProfile>
PredictorTrainer::default_training_profiles() {
  std::vector<workload::WorkloadProfile> out;
  for (const auto& [name, phases] : profiles_by_benchmark()) {
    out.insert(out.end(), phases.begin(), phases.end());
  }
  return out;
}

std::vector<std::pair<std::string, std::vector<workload::WorkloadProfile>>>
PredictorTrainer::profiles_by_benchmark() {
  std::vector<std::pair<std::string, std::vector<workload::WorkloadProfile>>>
      out;
  auto add = [&out](const std::string& name) {
    const auto b = workload::BenchmarkLibrary::get(name);
    std::vector<workload::WorkloadProfile> phases;
    for (const auto& ph : b.phases) phases.push_back(ph.profile);
    out.emplace_back(name, std::move(phases));
  };
  for (const auto& n : workload::BenchmarkLibrary::parsec_names()) add(n);
  for (const auto& n : workload::BenchmarkLibrary::x264_names()) add(n);
  for (const auto& n : workload::BenchmarkLibrary::imb_names()) add(n);
  return out;
}

}  // namespace sb::core
