#include "core/smart_balance.h"

#include <chrono>

#include "obs/sink.h"

namespace sb::core {
namespace {

using Clock = std::chrono::steady_clock;

TimeNs elapsed_ns(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

/// Observed analogue of the balancing objective: the same per-core sums the
/// optimizer predicts, rebuilt from what sensing actually measured this
/// epoch (occupancy = utilization, GIPS = duty-cycled measured throughput).
/// This is the ground truth the audit recorder scores predicted ΔJ against;
/// it feeds nothing back into the balancing decision.
double realized_objective(const std::vector<ThreadObservation>& observations,
                          int num_cores, const BalanceObjective& objective) {
  std::vector<CoreSums> sums(static_cast<std::size_t>(num_cores));
  for (const ThreadObservation& o : observations) {
    if (o.core < 0 || o.core >= num_cores) continue;
    CoreSums& s = sums[static_cast<std::size_t>(o.core)];
    s.gips += o.util * o.ips / 1e9;
    s.watts += o.util * o.power_w;
    s.load += o.util;
    ++s.nthreads;
  }
  if (objective.fractional()) {
    double num = 0, den = 0;
    for (CoreId c = 0; c < num_cores; ++c) {
      const auto f = objective.core_fraction(sums[static_cast<std::size_t>(c)], c);
      num += f[0];
      den += f[1];
    }
    return den > 0 ? num / den : 0.0;
  }
  double j = 0;
  for (CoreId c = 0; c < num_cores; ++c) {
    j += objective.core_term(sums[static_cast<std::size_t>(c)], c);
  }
  return j;
}

}  // namespace

SensingSubsystem::Config SmartBalancePolicy::resolve_sensing(
    const SmartBalanceConfig& cfg) {
  SensingSubsystem::Config s = cfg.sensing;
  switch (cfg.defenses) {
    case SmartBalanceConfig::Defenses::kOn:
      s.defense.enabled = true;
      break;
    case SmartBalanceConfig::Defenses::kOff:
      s.defense.enabled = false;
      break;
    case SmartBalanceConfig::Defenses::kAuto:
      s.defense.enabled = s.defense.enabled || !cfg.fault_plan.empty();
      break;
  }
  return s;
}

SmartBalancePolicy::SmartBalancePolicy(
    const arch::Platform& platform, PredictorModel model,
    SmartBalanceConfig cfg, std::unique_ptr<BalanceObjective> objective)
    : platform_(platform),
      model_(std::move(model)),
      cfg_(cfg),
      objective_(objective ? std::move(objective)
                           : make_energy_efficiency_objective()),
      sensing_(platform, resolve_sensing(cfg), Rng(cfg.seed ^ 0x5e25ULL)),
      optimizer_([&] {
        SaConfig sa = cfg.sa;
        sa.seed = cfg.seed ^ 0x0a0aULL;
        return sa;
      }()),
      pred_cache_(cfg.prediction_cache) {
  if (!cfg_.fault_plan.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(cfg_.fault_plan);
  }
  if (cfg_.adaptation.enabled()) {
    adapter_ = std::make_unique<OnlineAdapter>(cfg_.adaptation, &model_);
  }
  if (cfg_.sharding.enabled()) {
    SaConfig sa = cfg_.sa;
    sa.seed = cfg_.seed ^ 0x0a0aULL;
    sharded_ = std::make_unique<ShardedBalancer>(platform_, cfg_.sharding, sa);
  }
}

void SmartBalancePolicy::on_balance(os::Kernel& kernel, TimeNs now) {
  ++passes_;
  last_ = os::BalancePassStats{};

  // Observability: propagate the kernel's sink (usually installed once by
  // Simulation; trivial pointer stores per pass) and anchor this pass on
  // the simulated timeline. Null sink = everything below is one branch.
  obs::Sink* const obs = kernel.obs();
  sensing_.set_obs(obs);
  optimizer_.set_obs(obs);
  pred_cache_.set_obs(obs);
  if (injector_) injector_->set_obs(obs);
  if (obs != nullptr) {
    obs->begin_epoch(passes_, static_cast<std::uint64_t>(now));
    obs->metrics().counter("epoch.passes").add();
  }
  obs::ScopedSpan epoch_span(obs, "epoch");

  if (injector_) {
    // Key every injection decision to this pass and hook the two live
    // telemetry paths (idempotent after the first pass).
    injector_->begin_epoch(passes_);
    if (kernel.migration_filter() != injector_.get()) {
      kernel.set_migration_filter(injector_.get());
    }
    if (kernel.sensors().fault_hook() != injector_.get()) {
      kernel.sensors().set_fault_hook(injector_.get());
    }
  }

  // ---- Phase 1: SENSE -----------------------------------------------------
  const auto t0 = Clock::now();
  auto samples = kernel.drain_epoch_samples();
  if (injector_) injector_->corrupt(samples);
  // Read every core's power sensor: this is the platform's measurement
  // heartbeat (per-thread energy attribution in EpochSample is derived from
  // the same sensors; reading them keeps their windows aligned per epoch).
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    (void)kernel.sensors().read_joules(c);
  }
  const SensingHealthStats pre_health = sensing_.health();
  auto observations = sensing_.observe(samples);
  if (sensing_.config().defense.enabled) {
    const SensingHealthStats& h = sensing_.health();
    last_.faults_detected = (h.implausible_rejected + h.outliers_rejected) -
                            (pre_health.implausible_rejected +
                             pre_health.outliers_rejected);
    last_.faults_absorbed = (h.stale_served + h.neutral_served) -
                            (pre_health.stale_served + pre_health.neutral_served);
    faults_detected_ += last_.faults_detected;
    faults_absorbed_ += last_.faults_absorbed;
  }
  // Sparse virtual sensing (§6.4): cores without a physical power sensor
  // fall back to the Eq. 9 interpolation as a virtual sensor.
  if (!cfg_.power_sensor_cores.all()) {
    for (auto& o : observations) {
      if (o.core >= 0 && o.core_type >= 0 &&
          !cfg_.power_sensor_cores.test(static_cast<std::size_t>(o.core))) {
        o.power_w = model_.predict_power(o.core_type, o.ipc);
      }
    }
  }
  const auto t1 = Clock::now();

  if (observations.empty()) {
    last_.sense_host_ns = elapsed_ns(t0, t1);
    sense_ns_.add(static_cast<double>(last_.sense_host_ns));
    if (obs != nullptr) {
      const auto sns = static_cast<std::uint64_t>(last_.sense_host_ns);
      obs->metrics().histogram("epoch.sense_ns").record(sns);
      if (auto* tracer = obs->tracer()) {
        tracer->span("sense", obs->now_ns(), sns, passes_);
      }
    }
    return;
  }

  // Prediction audit (Phase A): join last pass's forecasts against what was
  // actually sensed, score the previous decision's realized ΔJ, and advance
  // the drift detector. Strictly read-only unless degrade_on_drift opts in.
  obs::AuditRecorder* const audit = obs != nullptr ? obs->audit() : nullptr;
  std::int64_t audit_fault_delta = 0;
  if (audit != nullptr) {
    if (injector_) {
      const std::uint64_t total = injector_->stats().total();
      audit_fault_delta = static_cast<std::int64_t>(total - audit_faults_prev_);
      audit_faults_prev_ = total;
    }
    const double realized_j =
        realized_objective(observations, kernel.num_cores(), *objective_);
    std::vector<obs::AuditObservation> aobs;
    aobs.reserve(observations.size());
    for (const ThreadObservation& o : observations) {
      obs::AuditObservation a;
      a.tid = o.tid;
      a.core = o.core;
      a.core_type = o.core_type;
      a.gips = o.ips / 1e9;
      a.watts = o.power_w;
      a.measured = o.measured;
      aobs.push_back(a);
    }
    const auto edges = audit->join(passes_, aobs, realized_j);
    for (const obs::DriftEvent& ev : edges) {
      obs->metrics().counter("predictor.drift").add();
      if (auto* tracer = obs->tracer()) {
        tracer->instant("predictor.drift", obs->now_ns(), passes_,
                        {{"src_type", static_cast<double>(ev.src_type)},
                         {"dst_type", static_cast<double>(ev.dst_type)},
                         {"metric", static_cast<double>(ev.metric)},
                         {"ewma", ev.ewma}});
      }
    }
  }

  // Online adaptation (Phase A, same join point as the audit recorder):
  // validate last pass's raw forecasts against this pass's sensing, advance
  // the bias/gain correctors, absorb RLS samples into Θ and run the
  // covariance-reset drift detector — all before PREDICT, so this pass's
  // fan-out already uses the repaired coefficients.
  if (adapter_) {
    const AdaptPassStats astats = adapter_->observe(passes_, observations);
    if (obs != nullptr) {
      auto& m = obs->metrics();
      if (astats.joined > 0) {
        m.counter("predictor.adapt.joins")
            .add(static_cast<std::uint64_t>(astats.joined));
      }
      if (astats.rls_updates > 0) {
        m.counter("predictor.adapt.rls_updates")
            .add(static_cast<std::uint64_t>(astats.rls_updates));
      }
      if (astats.cov_resets > 0) {
        m.counter("predictor.adapt.cov_resets")
            .add(static_cast<std::uint64_t>(astats.cov_resets));
        if (auto* tracer = obs->tracer()) {
          tracer->instant(
              "predictor.adapt.reset", obs->now_ns(), passes_,
              {{"resets", static_cast<double>(astats.cov_resets)}});
        }
      }
    }
  }

  // Degraded mode: when too few threads have trustworthy sensors, predicted
  // S/P matrices are mostly fiction — migrating on them is worse than not
  // using them at all. Delegate the pass to the heterogeneity-blind (but
  // sensing-free) vanilla balancer until health recovers. Predictor drift
  // (audit EWMAs above threshold) escalates the same way when opted in —
  // unless online adaptation is active, which repairs the predictor in
  // place (covariance reset) instead of retreating to the fallback.
  const bool drift_degraded = cfg_.degrade_on_drift && !adapter_ &&
                              audit != nullptr && audit->drift_active();
  if (drift_degraded ||
      (sensing_.config().defense.enabled && cfg_.degraded_healthy_threshold > 0 &&
       sensing_.health().healthy_fraction < cfg_.degraded_healthy_threshold)) {
    ++degraded_passes_;
    last_.degraded = true;
    if (obs != nullptr) {
      obs->metrics().counter("epoch.degraded_passes").add();
      if (auto* tracer = obs->tracer(); tracer != nullptr && !degraded_prev_) {
        tracer->instant(
            "degraded_enter", obs->now_ns(), passes_,
            {{"healthy_fraction", sensing_.health().healthy_fraction}});
      }
    }
    degraded_prev_ = true;
    if (audit != nullptr) {
      // A delegated pass still gets a ledger entry (degraded = 1, nothing
      // applied): next epoch's realized ΔJ then measures how J moves under
      // the fallback, and the forecast gap stays visible in the export.
      obs::EpochDecision d;
      d.epoch = passes_;
      d.healthy_fraction = sensing_.health().healthy_fraction;
      d.degraded = true;
      d.faults_injected = audit_fault_delta;
      audit->record_decision(d);
    }
    fallback_.on_balance(kernel, now);
    last_.sense_host_ns = elapsed_ns(t0, t1);
    sense_ns_.add(static_cast<double>(last_.sense_host_ns));
    if (obs != nullptr) {
      const auto sns = static_cast<std::uint64_t>(last_.sense_host_ns);
      obs->metrics().histogram("epoch.sense_ns").record(sns);
      if (auto* tracer = obs->tracer()) {
        tracer->span("sense", obs->now_ns(), sns, passes_);
      }
    }
    return;
  }
  if (degraded_prev_) {
    if (obs != nullptr) {
      if (auto* tracer = obs->tracer()) {
        tracer->instant(
            "degraded_exit", obs->now_ns(), passes_,
            {{"healthy_fraction", sensing_.health().healthy_fraction}});
      }
    }
    degraded_prev_ = false;
  }

  // ---- Phase 2: PREDICT ---------------------------------------------------
  // RLS rewrites Θ every epoch, so cached rows would be stale; tier-1-only
  // adaptation keeps the cache (rows stay raw, gains are a post-pass). On
  // platforms below min_cores the Θ fan-out is cheaper than the cache's own
  // key hashing, so the cache auto-disables (BENCH_epoch's quad crossover).
  PredictionCache* cache =
      cfg_.prediction_cache.enabled &&
              kernel.num_cores() >= cfg_.prediction_cache.min_cores &&
              !(adapter_ && cfg_.adaptation.rls)
          ? &pred_cache_
          : nullptr;
  if (cache) pred_cache_.advance_epoch();
  if (kernel.config().enable_dvfs) {
    // Predict at each core's *current* operating point.
    std::vector<arch::OperatingPoint> opps;
    opps.reserve(static_cast<std::size_t>(kernel.num_cores()));
    for (CoreId c = 0; c < kernel.num_cores(); ++c) {
      opps.push_back(kernel.core_opp(c));
    }
    last_mx_ = build_characterization(observations, model_, platform_, &opps,
                                      cache);
  } else {
    last_mx_ = build_characterization(observations, model_, platform_,
                                      nullptr, cache);
  }
  // Tier 1 bias/gain: multiply every forecast cell by its pair's
  // correction, keeping a raw copy so forecasts are scored (and adapted)
  // against the uncorrected Eq. 8 output. Same-type cells are corrected
  // too: they bypass Θ but still drift against biased sensing (a noisy
  // power rail inflates observed watts on every pair alike).
  Matrix raw_s;
  Matrix raw_p;
  if (adapter_ && cfg_.adaptation.bias) {
    raw_s = last_mx_.s;
    raw_p = last_mx_.p;
    for (std::size_t i = 0; i < last_mx_.num_threads(); ++i) {
      const ThreadObservation& o = observations[i];
      if (o.core_type < 0) continue;
      for (CoreId c = 0; c < kernel.num_cores(); ++c) {
        const CoreTypeId t = platform_.type_of(c);
        const auto j = static_cast<std::size_t>(c);
        last_mx_.s.at(i, j) *= adapter_->gips_multiplier(o.core_type, t);
        last_mx_.p.at(i, j) *= adapter_->power_multiplier(o.core_type, t);
      }
    }
  }
  const auto t2 = Clock::now();

  // ---- Phase 3: BALANCE ---------------------------------------------------
  std::vector<CoreId> initial(last_mx_.num_threads());
  std::vector<std::bitset<kMaxCores>> affinity(last_mx_.num_threads());
  std::vector<double> demand(last_mx_.num_threads());
  std::bitset<kMaxCores> online;
  for (CoreId c = 0; c < kernel.num_cores(); ++c) {
    if (kernel.core_online(c)) online.set(static_cast<std::size_t>(c));
  }
  for (std::size_t i = 0; i < last_mx_.num_threads(); ++i) {
    const auto& t = kernel.task(last_mx_.tids[i]);
    initial[i] = t.cpu;
    affinity[i] = t.cpus_allowed & online;  // hot-unplugged cores excluded
    // Algorithm 1's utilization vector U, in speed-invariant form: the
    // thread's demanded GIPS (duty cycle × measured throughput on its
    // current core). CPU-bound threads (util ≈ 1) have unbounded demand.
    const double u = observations[i].util;
    if (u >= 0.9 || initial[i] < 0) {
      demand[i] = -1.0;
    } else {
      demand[i] =
          u * last_mx_.s.at(i, static_cast<std::size_t>(initial[i]));
    }
    // Migration cooldown: recently moved threads are frozen in place until
    // re-characterized on the new core type.
    const auto it = migrated_at_pass_.find(t.tid);
    if (cfg_.migration_cooldown_epochs > 0 && it != migrated_at_pass_.end() &&
        passes_ - it->second <=
            static_cast<std::uint64_t>(cfg_.migration_cooldown_epochs)) {
      affinity[i].reset();
      affinity[i].set(static_cast<std::size_t>(t.cpu));
    }
  }
  // Fresh annealing trajectory each epoch (deterministic per pass index),
  // reusing persistent optimizer scratch arenas — re-seeded, never
  // re-allocated. Sharded mode swaps only this call: K cluster-local
  // anneals in parallel plus the bounded global exchange, same inputs,
  // same merged-result contract.
  const std::uint64_t pass_seed =
      cfg_.seed ^ (0x0a0aULL + passes_ * 0x9e3779b9ULL);
  SaResult result;
  if (sharded_) {
    result = sharded_->balance(passes_, pass_seed, last_mx_.s, last_mx_.p,
                               *objective_, initial, affinity, demand, obs,
                               elapsed_ns(t0, t2));
  } else {
    optimizer_.set_seed(pass_seed);
    result = optimizer_.optimize(last_mx_.s, last_mx_.p, *objective_, initial,
                                 &affinity, &demand);
  }
  const auto t3 = Clock::now();

  // Apply the new allocation (set_cpus_allowed_ptr / migrate analogue).
  const double gain_threshold =
      result.initial_objective > 0
          ? result.initial_objective * (1.0 + cfg_.min_relative_gain)
          : 0.0;
  const bool applied = result.objective > gain_threshold;
  last_sa_accept_rate_ =
      result.iterations > 0
          ? static_cast<double>(result.accepted_worse) /
                static_cast<double>(result.iterations)
          : 0.0;

  // Prediction audit (Phase B): open this pass's ledger entry before the
  // apply loop so per-migration attribution can be registered against it.
  if (audit != nullptr) {
    obs::EpochDecision d;
    d.epoch = passes_;
    d.initial_j = result.initial_objective;
    d.final_j = result.objective;
    d.applied = applied;
    d.pred_dj = applied ? result.objective - result.initial_objective : 0.0;
    if (applied) {
      for (std::size_t i = 0; i < last_mx_.num_threads(); ++i) {
        if (result.allocation[i] != initial[i]) ++d.migrations;
      }
    }
    d.healthy_fraction = sensing_.config().defense.enabled
                             ? sensing_.health().healthy_fraction
                             : 1.0;
    d.sa_iterations = result.iterations;
    d.sa_accepted_worse = result.accepted_worse;
    d.sa_improved = result.improved;
    d.faults_injected = audit_fault_delta;
    audit->record_decision(d);
  }
  // One forecast per thread: the S/P cell for wherever it runs next. The
  // audit ledger gets both the corrected and the raw value; the adapter
  // registers the raw cross-type forecasts it will validate next pass.
  if (audit != nullptr || adapter_) {
    const bool have_raw = adapter_ != nullptr && cfg_.adaptation.bias;
    if (adapter_) adapter_->begin_forecasts(passes_);
    for (std::size_t i = 0; i < last_mx_.num_threads(); ++i) {
      const CoreId next = applied ? result.allocation[i] : initial[i];
      if (next < 0) continue;
      const auto jn = static_cast<std::size_t>(next);
      const std::int32_t src_type =
          initial[i] >= 0 ? platform_.type_of(initial[i]) : -1;
      const std::int32_t dst_type = platform_.type_of(next);
      const double pred_gips = last_mx_.s.at(i, jn);
      const double pred_w = last_mx_.p.at(i, jn);
      const double rg = have_raw ? raw_s.at(i, jn) : pred_gips;
      const double rw = have_raw ? raw_p.at(i, jn) : pred_w;
      if (audit != nullptr) {
        obs::ThreadPrediction tp;
        tp.tid = last_mx_.tids[i];
        tp.core = next;
        tp.src_type = src_type;
        tp.dst_type = dst_type;
        tp.pred_gips = pred_gips;
        tp.pred_w = pred_w;
        tp.raw_pred_gips = rg;
        tp.raw_pred_w = rw;
        audit->record_prediction(tp);
      }
      // The adapter keys on the Θ row the forecast actually came from: the
      // predictor extrapolates from the *observed* core type (the audit's
      // src_type column is the thread's scheduled core, which can lag one
      // migration behind while sensing serves cached rows).
      const ThreadObservation& o = observations[i];
      if (adapter_ && o.measured && o.core_type >= 0) {
        const double src_freq =
            o.freq_mhz > 0 ? o.freq_mhz
                           : platform_.params_of_type(o.core_type).freq_mhz;
        const double dst_freq = kernel.config().enable_dvfs
                                    ? kernel.core_opp(next).freq_mhz
                                    : platform_.params_of(next).freq_mhz;
        adapter_->add_forecast(last_mx_.tids[i], next, o.core_type, dst_type,
                               rg, rw, make_features(o, src_freq / dst_freq));
      }
    }
  }

  int migrations = 0;
  if (applied) {
    // Migration instants land at the end of the balance phase on the
    // trace timeline (sense + predict + optimize host time into the pass).
    const auto mig_offset = static_cast<std::uint64_t>(elapsed_ns(t0, t3));
    for (std::size_t i = 0; i < last_mx_.num_threads(); ++i) {
      if (result.allocation[i] != initial[i]) {
        const CoreId src = initial[i];
        kernel.migrate(last_mx_.tids[i], result.allocation[i]);
        migrated_at_pass_[last_mx_.tids[i]] = passes_;
        ++migrations;
        if (audit != nullptr) {
          const CoreId dst = result.allocation[i];
          const double ps = last_mx_.s.at(i, static_cast<std::size_t>(dst));
          const double pp = last_mx_.p.at(i, static_cast<std::size_t>(dst));
          double src_eff = 0;
          if (src >= 0) {
            const double ss = last_mx_.s.at(i, static_cast<std::size_t>(src));
            const double sp = last_mx_.p.at(i, static_cast<std::size_t>(src));
            if (sp > 0) src_eff = ss / sp;
          }
          obs::MigrationPrediction mp;
          mp.tid = last_mx_.tids[i];
          mp.src = src;
          mp.dst = dst;
          mp.src_type = src >= 0 ? platform_.type_of(src) : -1;
          mp.dst_type = platform_.type_of(dst);
          mp.pred_gain = (pp > 0 ? ps / pp : 0.0) - src_eff;
          mp.src_eff = src_eff;
          audit->record_migration(mp);
        }
        if (obs != nullptr) {
          obs->metrics().counter("balance.migrations").add();
          if (auto* tracer = obs->tracer()) {
            tracer->instant(
                "migration", obs->now_ns() + mig_offset, passes_,
                {{"tid", static_cast<double>(last_mx_.tids[i])},
                 {"src", static_cast<double>(src)},
                 {"dst", static_cast<double>(result.allocation[i])},
                 {"dJ", result.objective - result.initial_objective}});
          }
        }
      }
    }
  }

  last_.sense_host_ns = elapsed_ns(t0, t1);
  last_.predict_host_ns = elapsed_ns(t1, t2);
  last_.optimize_host_ns = elapsed_ns(t2, t3);
  last_.migrations = migrations;
  sense_ns_.add(static_cast<double>(last_.sense_host_ns));
  predict_ns_.add(static_cast<double>(last_.predict_host_ns));
  optimize_ns_.add(static_cast<double>(last_.optimize_host_ns));
  migrations_.add(static_cast<double>(migrations));
  if (result.initial_objective > 0) {
    objective_gain_.add(result.objective / result.initial_objective - 1.0);
  }

  if (obs != nullptr) {
    const auto sns = static_cast<std::uint64_t>(last_.sense_host_ns);
    const auto pns = static_cast<std::uint64_t>(last_.predict_host_ns);
    const auto ons = static_cast<std::uint64_t>(last_.optimize_host_ns);
    auto& m = obs->metrics();
    m.histogram("epoch.sense_ns").record(sns);
    m.histogram("epoch.predict_ns").record(pns);
    m.histogram("epoch.optimize_ns").record(ons);
    if (auto* tracer = obs->tracer()) {
      // Phases laid out sequentially from the epoch boundary: simulated
      // position, host-measured durations (the Fig. 7 overhead, visible
      // per pass instead of as an end-of-run mean).
      const std::uint64_t base = obs->now_ns();
      tracer->span("sense", base, sns, passes_);
      tracer->span("predict", base + sns, pns, passes_);
      tracer->span("balance", base + sns + pns, ons, passes_,
                   {{"iterations", static_cast<double>(result.iterations)},
                    {"accepted_worse",
                     static_cast<double>(result.accepted_worse)},
                    {"resyncs", static_cast<double>(result.resyncs)},
                    {"migrations", static_cast<double>(migrations)}});
    }
  }
}

}  // namespace sb::core
