#include "core/features.h"

#include <cmath>

namespace sb::core {

const std::array<std::string, kNumFeatures>& feature_names() {
  static const std::array<std::string, kNumFeatures> kNames = {
      "FR",    "mr_$i",   "mr_$d",   "I_msh",    "I_bsh",
      "mr_b",  "mr_itlb", "mr_dtlb", "ipc_src",  "const"};
  return kNames;
}

std::array<double, kNumFeatures> make_features(const ThreadObservation& obs,
                                               double freq_ratio) {
  return {freq_ratio, obs.mr_l1i,  obs.mr_l1d, obs.imsh, obs.ibsh,
          obs.mr_branch, obs.mr_itlb, obs.mr_dtlb, obs.ipc, 1.0};
}

void sanitize_observation(ThreadObservation& o) {
  auto fin = [](double& v) {
    if (!std::isfinite(v)) v = 0.0;
  };
  fin(o.ipc);
  fin(o.ips);
  fin(o.freq_mhz);
  fin(o.power_w);
  fin(o.util);
  fin(o.imsh);
  fin(o.ibsh);
  fin(o.mr_branch);
  fin(o.mr_l1i);
  fin(o.mr_l1d);
  fin(o.mr_itlb);
  fin(o.mr_dtlb);
}

PlausibilityVerdict check_plausibility(const ThreadObservation& o,
                                       const perf::HpcCounters& c,
                                       const PlausibilityLimits& lim) {
  // A delta at the 32-bit register ceiling is a wraparound artefact.
  if (c.any_field_at_or_above(perf::HpcCounters::k32BitCeiling)) {
    return PlausibilityVerdict::kImplausible;
  }
  // No clock ticks faster than max_ghz: cycles are bounded by runtime.
  if (o.runtime > 0 &&
      static_cast<double>(c.active_cycles()) >
          static_cast<double>(o.runtime) * lim.max_ghz) {
    return PlausibilityVerdict::kImplausible;
  }
  if (o.ipc > lim.ipc_max || o.power_w > lim.power_max_w) {
    return PlausibilityVerdict::kImplausible;
  }
  for (double r : {o.imsh, o.ibsh, o.mr_branch, o.mr_l1i, o.mr_l1d, o.mr_itlb,
                   o.mr_dtlb}) {
    if (r > lim.ratio_max) return PlausibilityVerdict::kImplausible;
  }
  return PlausibilityVerdict::kPlausible;
}

}  // namespace sb::core
