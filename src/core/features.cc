#include "core/features.h"

namespace sb::core {

const std::array<std::string, kNumFeatures>& feature_names() {
  static const std::array<std::string, kNumFeatures> kNames = {
      "FR",    "mr_$i",   "mr_$d",   "I_msh",    "I_bsh",
      "mr_b",  "mr_itlb", "mr_dtlb", "ipc_src",  "const"};
  return kNames;
}

std::array<double, kNumFeatures> make_features(const ThreadObservation& obs,
                                               double freq_ratio) {
  return {freq_ratio, obs.mr_l1i,  obs.mr_l1d, obs.imsh, obs.ibsh,
          obs.mr_branch, obs.mr_itlb, obs.mr_dtlb, obs.ipc, 1.0};
}

}  // namespace sb::core
