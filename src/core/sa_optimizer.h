// Run-time simulated-annealing thread allocator — Algorithm 1.
//
// The allocation Ψ is encoded exactly as the paper's uni-dimensional array
// of n·m slots (m slots per core); a thread occupies one slot, the rest are
// empty. A move swaps two slots chosen with a perturbation radius that
// decays by Opt_Δperturb each iteration: a thread↔empty swap is a
// migration, a thread↔thread swap exchanges two threads' cores. Worse
// solutions are accepted with probability e^(diff/accept) evaluated in
// Q16.16 fixed point with the paper's `randi() mod 1/probability == 0`
// acceptance test, and `accept` decays by Opt_Δaccept. The objective is
// re-evaluated incrementally: only the two affected cores' terms change.
//
// Hot-path engineering (the per-epoch cost *is* the product — Fig. 7b):
//  - all working vectors (Ψ slots, per-core sums, contributions, the
//    occupancy matrix, current/best allocations) live in a scratch arena
//    owned by the optimizer, so repeated optimize() calls allocate nothing
//    once the arena has grown to the problem size;
//  - the objective is devirtualized: optimize() dispatches once on
//    BalanceObjective::kind() to an annealing kernel templated on the
//    concrete objective class (custom objectives fall back to the generic
//    virtual-dispatch kernel with identical semantics);
//  - thread occupancies are precomputed (interleaved with the weighted S/P
//    values, one cache line per cell) instead of re-derived on every
//    add/remove;
//  - slot draws are reduced modulo n·m and slot→core indices divided by m
//    with precomputed reciprocals (common/rng.h FastMod) instead of
//    hardware division, and the two unconditional draws per iteration are
//    batched;
//  - the perturbation-radius schedule sqrt(perturb_it) is memoized across
//    calls (it depends only on the config, not the RNG), hoisting the
//    fixed-point sqrt out of the loop entirely.
// None of this changes the RNG draw sequence or the floating-point
// arithmetic, so results are bit-identical to the straightforward
// implementation.
#pragma once

#include <bitset>
#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/objective.h"
#include "core/objective_state.h"

namespace sb::obs {
class Sink;
}  // namespace sb::obs

namespace sb::core {

struct SaConfig {
  /// Iteration budget (Opt_max_iter); 0 = auto-scale from (n, m) with the
  /// Fig. 8(a) rule.
  int max_iterations = 0;
  double initial_perturb = 1.0;   // Opt_perturb
  double perturb_decay = 0.98;    // Opt_Δperturb
  /// Initial acceptance temperature as a fraction of |J(Ψ₀)|.
  double initial_accept_rel = 0.05;  // Opt_accept (relative)
  double accept_decay = 0.95;        // Opt_Δaccept
  std::uint64_t seed = 1;
  /// Paper-faithful fixed-point e^x + modulo acceptance; false switches to
  /// double-precision Metropolis (ablation baseline).
  bool fixed_point_acceptance = true;
};

/// Iteration budget used when SaConfig::max_iterations == 0. Grows with the
/// problem and saturates to bound overhead at scale (Fig. 8a: "for larger
/// configurations we limit the number of iterations").
int sa_auto_iterations(int num_cores, int num_threads);

struct SaResult {
  std::vector<CoreId> allocation;  // thread row -> core
  double objective = 0;
  double initial_objective = 0;
  int iterations = 0;
  int accepted_worse = 0;
  int improved = 0;
  int resyncs = 0;     // drift resyncs performed (every 4096 accepted moves)
  TimeNs host_ns = 0;  // wall-clock cost of the search (Fig. 7 overhead)
};

class SaOptimizer {
 public:
  SaOptimizer() : SaOptimizer(SaConfig()) {}
  explicit SaOptimizer(SaConfig cfg) : cfg_(cfg) {}

  /// Finds an allocation maximizing Σ_j objective.core_term(core j sums).
  /// `s` and `p` are the m×n characterization matrices (GIPS / watts);
  /// `initial` the current allocation; `affinity` (optional) per-thread
  /// allowed-core masks.
  ///
  /// `demand_gips` (optional) realizes Algorithm 1's thread utilization
  /// vector U in speed-invariant form: entry i is the thread's *demanded*
  /// throughput (util × measured GIPS, i.e. instructions per wall-clock
  /// second including its sleep time). A negative entry marks a CPU-bound
  /// thread (unbounded demand: it consumes a full share wherever it runs).
  /// On core j a duty-cycled thread occupies util_ij = min(1, d_i / s_ij)
  /// of the core, contributing util_ij·s_ij GIPS and util_ij·p_ij watts —
  /// so slow cores that cannot sustain the demand are correctly penalized,
  /// and sleepy threads don't look like full load.
  ///
  /// Non-const: the call reuses the optimizer's scratch arena. A single
  /// SaOptimizer must not be shared across threads; results are
  /// independent of any prior calls on the same instance.
  SaResult optimize(const Matrix& s, const Matrix& p,
                    const BalanceObjective& objective,
                    std::vector<CoreId> initial,
                    const std::vector<std::bitset<kMaxCores>>* affinity =
                        nullptr,
                    const std::vector<double>* demand_gips = nullptr);

  /// Re-seeds the annealing trajectory of subsequent optimize() calls
  /// without discarding the scratch arena (one optimizer, one seed per
  /// epoch).
  void set_seed(std::uint64_t seed) { cfg_.seed = seed; }

  /// Overrides the iteration budget of subsequent optimize() calls (0 =
  /// auto-scale). The sharded balancer uses this to split one global budget
  /// across shard-local passes so total annealing work stays constant as
  /// shards are added.
  void set_max_iterations(int iters) { cfg_.max_iterations = iters; }

  /// Observability hook (null = off): each optimize() call feeds the `sa.*`
  /// counters and the sa.host_ns histogram. Recording happens after the
  /// anneal returns, so the search itself is untouched.
  void set_obs(obs::Sink* obs) { obs_ = obs; }

  const SaConfig& config() const { return cfg_; }

 private:
  template <class Obj>
  SaResult run_annealing(const Matrix& s, const Matrix& p, const Obj& obj,
                         std::vector<CoreId> initial,
                         const std::vector<std::bitset<kMaxCores>>* affinity,
                         const std::vector<double>* demand_gips);

  /// Fills scratch_.radii with the per-iteration perturbation radius
  /// sqrt(perturb_it). The perturb schedule is a pure function of
  /// (initial_perturb, perturb_decay) — independent of the RNG and of which
  /// moves get accepted — so it is memoized across optimize() calls; the
  /// Q16.16 fixed_sqrt (a Newton loop with a 64-bit division per step) then
  /// runs once per schedule instead of once per iteration.
  void ensure_radius_schedule(int iters);

  SaConfig cfg_;
  obs::Sink* obs_ = nullptr;

  /// Scratch arena surviving across epochs: Ψ slots, the current
  /// allocation, the objective-state storage and the radius schedule.
  struct Scratch {
    std::vector<std::int32_t> psi;
    std::vector<std::size_t> next_free;
    std::vector<CoreId> current;
    ObjectiveScratch objective;
    // Memoized radius schedule (see ensure_radius_schedule): radii[it] for
    // the head of the anneal; once the perturb floor clamp engages the
    // radius is radius_tail forever.
    std::vector<double> radii;
    double radius_tail = 0;
    bool radii_converged = false;
    double radii_initial_perturb = -1;
    double radii_decay = -1;
  } scratch_;
};

/// Exhaustive optimum for small instances (n^m enumeration); used by tests
/// and by the Fig. 8 distance-to-optimal study. Enumerates allocations in
/// mixed-radix reflected Gray-code order so each step moves exactly one
/// thread and updates one incremental ObjectiveState (O(1) per state
/// instead of a full O(m·n) rebuild). Throws std::invalid_argument if n^m
/// exceeds ~16M states.
SaResult exhaustive_optimum(const Matrix& s, const Matrix& p,
                            const BalanceObjective& objective);

/// Evaluates Σ_j core_term for an explicit allocation (reference/debug).
double evaluate_allocation(const Matrix& s, const Matrix& p,
                           const BalanceObjective& objective,
                           const std::vector<CoreId>& allocation);

}  // namespace sb::core
