#include "core/adapt.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sb::core {
namespace {

/// Same guarded signed relative residual as the audit recorder: a thread
/// that retired essentially nothing says nothing about the predictor.
double relative_residual(double observed, double predicted) {
  if (!(std::abs(observed) > 1e-12)) return 0.0;
  return (observed - predicted) / observed;
}

/// std::stod/std::stoi throw std::out_of_range (not std::invalid_argument)
/// on out-of-range values, so numeric fields go through these wrappers to
/// keep parse()'s documented contract (mirrors fault_plan.cc).
double parse_double(const std::string& s, const std::string& entry,
                    const char* what) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("Adaptation: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  if (pos != s.size()) {
    throw std::invalid_argument("Adaptation: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  return v;
}

long long parse_ll(const std::string& s, const std::string& entry,
                   const char* what) {
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("Adaptation: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  if (pos != s.size()) {
    throw std::invalid_argument("Adaptation: bad " + std::string(what) +
                                " in '" + entry + "'");
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

void parse_entry(const std::string& entry, AdaptationConfig* cfg) {
  const std::vector<std::string> parts = split(entry, ':');
  const std::string& key = parts[0];
  if (key == "bias") {
    if (parts.size() > 3) {
      throw std::invalid_argument("Adaptation: malformed entry '" + entry +
                                  "' (want bias[:alpha[:clamp]])");
    }
    cfg->bias = true;
    if (parts.size() >= 2) {
      cfg->bias_alpha = parse_double(parts[1], entry, "alpha");
      if (!(cfg->bias_alpha > 0.0) || cfg->bias_alpha > 1.0) {
        throw std::invalid_argument("Adaptation: bad alpha in '" + entry +
                                    "'");
      }
    }
    if (parts.size() == 3) {
      cfg->gain_clamp = parse_double(parts[2], entry, "clamp");
      if (!(cfg->gain_clamp >= 0.0) || cfg->gain_clamp > 4.0) {
        throw std::invalid_argument("Adaptation: bad clamp in '" + entry +
                                    "'");
      }
    }
  } else if (key == "rls") {
    if (parts.size() > 4) {
      throw std::invalid_argument("Adaptation: malformed entry '" + entry +
                                  "' (want rls[:lambda[:p0[:reset]]])");
    }
    cfg->rls = true;
    if (parts.size() >= 2) {
      cfg->rls_lambda = parse_double(parts[1], entry, "lambda");
      if (!(cfg->rls_lambda >= 0.5) || cfg->rls_lambda > 1.0) {
        throw std::invalid_argument("Adaptation: bad lambda in '" + entry +
                                    "'");
      }
    }
    if (parts.size() >= 3) {
      cfg->rls_p0 = parse_double(parts[2], entry, "p0");
      if (!(cfg->rls_p0 > 0.0) || cfg->rls_p0 > 1e12) {
        throw std::invalid_argument("Adaptation: bad p0 in '" + entry + "'");
      }
    }
    if (parts.size() == 4) {
      const long long reset = parse_ll(parts[3], entry, "reset");
      if (reset != 0 && reset != 1) {
        throw std::invalid_argument("Adaptation: bad reset in '" + entry +
                                    "'");
      }
      cfg->rls_reset_on_drift = reset == 1;
    }
  } else if (key == "drift") {
    if (parts.size() < 2 || parts.size() > 3) {
      throw std::invalid_argument("Adaptation: malformed entry '" + entry +
                                  "' (want drift:threshold[:min_joins])");
    }
    cfg->drift_threshold = parse_double(parts[1], entry, "threshold");
    if (!(cfg->drift_threshold > 0.0) || cfg->drift_threshold > 100.0) {
      throw std::invalid_argument("Adaptation: bad threshold in '" + entry +
                                  "'");
    }
    if (parts.size() == 3) {
      const long long joins = parse_ll(parts[2], entry, "min_joins");
      if (joins < 1 || joins > 1000000) {
        throw std::invalid_argument("Adaptation: bad min_joins in '" + entry +
                                    "'");
      }
      cfg->drift_min_joins = static_cast<std::uint64_t>(joins);
    }
  } else {
    throw std::invalid_argument("Adaptation: unknown entry '" + entry + "'");
  }
}

void append_value(std::ostream& os, double v) { os << v; }

}  // namespace

AdaptationConfig AdaptationConfig::parse(const std::string& text) {
  AdaptationConfig cfg;
  std::string entry;
  std::istringstream is(text);
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    parse_entry(entry, &cfg);
  }
  return cfg;
}

std::string AdaptationConfig::to_string() const {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  if (bias) {
    sep();
    os << "bias:";
    append_value(os, bias_alpha);
    os << ':';
    append_value(os, gain_clamp);
  }
  if (rls) {
    sep();
    os << "rls:";
    append_value(os, rls_lambda);
    os << ':';
    append_value(os, rls_p0);
    os << ':' << (rls_reset_on_drift ? 1 : 0);
  }
  const AdaptationConfig defaults;
  if (drift_threshold != defaults.drift_threshold ||
      drift_min_joins != defaults.drift_min_joins) {
    sep();
    os << "drift:";
    append_value(os, drift_threshold);
    os << ':' << drift_min_joins;
  }
  return os.str();
}

bool AdaptationConfig::operator==(const AdaptationConfig& o) const {
  return bias == o.bias && bias_alpha == o.bias_alpha &&
         gain_clamp == o.gain_clamp && rls == o.rls &&
         rls_lambda == o.rls_lambda && rls_p0 == o.rls_p0 &&
         rls_reset_on_drift == o.rls_reset_on_drift &&
         drift_threshold == o.drift_threshold &&
         drift_min_joins == o.drift_min_joins;
}

// ---------------------------------------------------------------------------
// RlsFilter
// ---------------------------------------------------------------------------

RlsFilter::RlsFilter(double lambda, double p0) : lambda_(lambda), p0_(p0) {
  reset();
}

void RlsFilter::reset() {
  p_.fill(0.0);
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    p_[i * kNumFeatures + i] = p0_;
  }
}

void RlsFilter::update(const std::array<double, kNumFeatures>& x, double y,
                       double w, std::array<double, kNumFeatures>& theta) {
  if (!std::isfinite(y) || !std::isfinite(w) || w <= 0.0) return;
  // The batch trainer weights rows as x' = w·x, y' = w·y; folding the same
  // scaling in here makes λ = 1 RLS bit-for-bit the recursive form of its
  // weighted ridge normal equations.
  std::array<double, kNumFeatures> xw;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const double v = w * x[i];
    if (!std::isfinite(v)) return;
    xw[i] = v;
  }
  const double yw = w * y;

  // v = P x'
  std::array<double, kNumFeatures> v;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < kNumFeatures; ++j) {
      s += p_[i * kNumFeatures + j] * xw[j];
    }
    v[i] = s;
  }
  double denom = lambda_;
  for (std::size_t i = 0; i < kNumFeatures; ++i) denom += xw[i] * v[i];
  if (!(denom > 0.0) || !std::isfinite(denom)) return;

  // Gain, innovation, coefficient update.
  double innov = yw;
  for (std::size_t i = 0; i < kNumFeatures; ++i) innov -= theta[i] * xw[i];
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    theta[i] += (v[i] / denom) * innov;
  }

  // P = (P - k vᵀ) / λ with k = v/denom, then explicit symmetrization: the
  // rank-1 downdate is symmetric in exact arithmetic but drifts in floating
  // point, and the SPD invariant is what the property tests pin.
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const double ki = v[i] / denom;
    for (std::size_t j = 0; j < kNumFeatures; ++j) {
      p_[i * kNumFeatures + j] =
          (p_[i * kNumFeatures + j] - ki * v[j]) / lambda_;
    }
  }
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    for (std::size_t j = i + 1; j < kNumFeatures; ++j) {
      const double m =
          0.5 * (p_[i * kNumFeatures + j] + p_[j * kNumFeatures + i]);
      p_[i * kNumFeatures + j] = m;
      p_[j * kNumFeatures + i] = m;
    }
  }
  ++updates_;
}

// ---------------------------------------------------------------------------
// OnlineAdapter
// ---------------------------------------------------------------------------

OnlineAdapter::OnlineAdapter(const AdaptationConfig& cfg, PredictorModel* model)
    : cfg_(cfg), model_(model) {}

OnlineAdapter::PairState& OnlineAdapter::pair(std::int32_t src_type,
                                              std::int32_t dst_type) {
  PairState& p = pairs_[{src_type, dst_type}];
  // Θ only drives cross-type extrapolation (same-type forecasts are the
  // measured IPC), so same-type pairs never carry an RLS filter.
  if (cfg_.rls && p.rls.empty() && src_type != dst_type) {
    p.rls.emplace_back(cfg_.rls_lambda, cfg_.rls_p0);
  }
  return p;
}

double OnlineAdapter::clamp_gain(double g) const {
  const double hi = 1.0 + cfg_.gain_clamp;
  const double lo = 1.0 / hi;
  if (!(g > lo)) return lo;  // also catches NaN / negative denominators
  if (g > hi) return hi;
  return g;
}

AdaptPassStats OnlineAdapter::observe(
    std::uint64_t epoch, const std::vector<ThreadObservation>& obs) {
  AdaptPassStats stats;
  const bool contiguous = pending_valid_ && epoch == pending_epoch_ + 1;
  if (contiguous) {
    for (const Pending& f : pending_) {
      const ThreadObservation* match = nullptr;
      for (const ThreadObservation& o : obs) {
        if (o.tid == f.tid) {
          match = &o;
          break;
        }
      }
      // Same validity rules as the audit join: the thread must really have
      // run (measured) on the predicted core of the predicted type.
      if (match == nullptr || !match->measured || match->core != f.core ||
          match->core_type != f.dst_type) {
        continue;
      }
      PairState& p = pair(f.src_type, f.dst_type);
      ++p.joins;
      ++joins_;
      ++stats.joined;

      // Tier 1: signed residuals of the *raw* forecasts (adapting on the
      // corrected ones would compound the correction into itself).
      const double obs_gips = match->ips / 1e9;
      const double gerr = relative_residual(obs_gips, f.raw_gips);
      const double perr = relative_residual(match->power_w, f.raw_w);
      const double a = cfg_.bias_alpha;
      p.sewma_gips = (1.0 - a) * p.sewma_gips + a * gerr;
      p.sewma_power = (1.0 - a) * p.sewma_power + a * perr;
      p.aewma_gips = (1.0 - a) * p.aewma_gips + a * std::abs(gerr);
      p.aewma_power = (1.0 - a) * p.aewma_power + a * std::abs(perr);
      if (cfg_.bias) {
        p.gain_gips = clamp_gain(1.0 / (1.0 - p.sewma_gips));
        p.gain_power = clamp_gain(1.0 / (1.0 - p.sewma_power));
      }

      // Tier 2: fold the validated sample into Θ. y is the observed IPC on
      // the destination type; the weight matches the batch trainer.
      // Cross-type only — same-type pairs have no filter (see pair()).
      if (cfg_.rls && !p.rls.empty() && model_ != nullptr &&
          std::isfinite(match->ipc)) {
        std::array<double, kNumFeatures> theta =
            model_->theta(f.src_type, f.dst_type);
        const double w = 1.0 / std::max(match->ipc, 1e-3);
        const std::uint64_t before = p.rls[0].updates();
        p.rls[0].update(f.x, match->ipc, w, theta);
        if (p.rls[0].updates() != before) {
          model_->set_theta(f.src_type, f.dst_type, theta);
          ++rls_updates_;
          ++stats.rls_updates;
        }
      }

      // Drift detector: debounced rising edge on the |residual| EWMAs,
      // re-armed on recovery — the audit recorder's semantics, but wired to
      // covariance reset (repair) rather than degraded-mode escalation.
      const bool over = p.aewma_gips > cfg_.drift_threshold ||
                        p.aewma_power > cfg_.drift_threshold;
      if (over && !p.drift_active && p.joins >= cfg_.drift_min_joins) {
        p.drift_active = true;
        if (cfg_.rls && cfg_.rls_reset_on_drift && !p.rls.empty()) {
          p.rls[0].reset();
          ++p.cov_resets;
          ++cov_resets_;
          ++stats.cov_resets;
        }
      } else if (!over && p.drift_active) {
        p.drift_active = false;
      }
    }
  }
  pending_.clear();
  pending_valid_ = false;
  return stats;
}

void OnlineAdapter::begin_forecasts(std::uint64_t epoch) {
  pending_.clear();
  pending_epoch_ = epoch;
  pending_valid_ = true;
}

void OnlineAdapter::add_forecast(std::int64_t tid, std::int32_t core,
                                 std::int32_t src_type, std::int32_t dst_type,
                                 double raw_gips, double raw_w,
                                 const std::array<double, kNumFeatures>& x) {
  if (!pending_valid_) return;
  if (src_type < 0 || dst_type < 0) return;
  Pending f;
  f.tid = tid;
  f.core = core;
  f.src_type = src_type;
  f.dst_type = dst_type;
  f.raw_gips = raw_gips;
  f.raw_w = raw_w;
  f.x = x;
  pending_.push_back(f);
}

double OnlineAdapter::gips_multiplier(std::int32_t src_type,
                                      std::int32_t dst_type) const {
  if (!cfg_.bias || src_type < 0 || dst_type < 0) return 1.0;
  const auto it = pairs_.find({src_type, dst_type});
  return it == pairs_.end() ? 1.0 : it->second.gain_gips;
}

double OnlineAdapter::power_multiplier(std::int32_t src_type,
                                       std::int32_t dst_type) const {
  if (!cfg_.bias || src_type < 0 || dst_type < 0) return 1.0;
  const auto it = pairs_.find({src_type, dst_type});
  return it == pairs_.end() ? 1.0 : it->second.gain_power;
}

std::vector<AdaptPairState> OnlineAdapter::pair_states() const {
  std::vector<AdaptPairState> out;
  out.reserve(pairs_.size());
  for (const auto& [key, p] : pairs_) {
    AdaptPairState st;
    st.src_type = key.first;
    st.dst_type = key.second;
    st.joins = p.joins;
    st.gain_gips = p.gain_gips;
    st.gain_power = p.gain_power;
    st.ewma_gips = p.sewma_gips;
    st.ewma_power = p.sewma_power;
    st.cov_resets = p.cov_resets;
    out.push_back(st);
  }
  return out;
}

const RlsFilter* OnlineAdapter::rls_filter(std::int32_t src_type,
                                           std::int32_t dst_type) const {
  const auto it = pairs_.find({src_type, dst_type});
  if (it == pairs_.end() || it->second.rls.empty()) return nullptr;
  return &it->second.rls[0];
}

}  // namespace sb::core
