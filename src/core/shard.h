// Sharded hierarchical balancing: sublinear per-epoch cost at 1024+ cores.
//
// The centralized BALANCE phase anneals one m×n problem per epoch, and
// BENCH_epoch shows it hitting 13% of the epoch already at 128c/256t. This
// layer splits the platform into K cluster/NUMA-style shards and runs K
// independent cluster-local SA passes *in parallel* (on the same
// work-stealing fork-join primitive the ExperimentRunner pool uses), then a
// cheap sequential global exchange phase that trades the worst-matched
// threads between shards using the already-adapted Eq. 8 forecasts.
//
// Cost model: the global iteration budget (SaConfig::max_iterations, or the
// Fig. 8a auto rule) is split evenly across shards, and each shard's moves
// touch only its own n/K columns — so total annealing work stays roughly
// constant while wall-clock drops with parallelism and per-core cost falls
// as 1/K. The exchange phase is O(m·K·q + E·(m+n)), negligible next to SA.
//
// Determinism contract (same as every prior layer):
//  - shard partitioning is a pure function of (platform, K);
//  - shard k's anneal seeds from base_seed ^ (k · golden-ratio), where
//    base_seed is the policy's per-pass seed — so shard 0 of a K=1 run
//    replays the unsharded trajectory exactly, and `--shards=1` is
//    bit-identical to the unsharded policy;
//  - every shard writes only its own result slot and observability is
//    emitted after the join in shard order, so results are independent of
//    worker count and completion order (`--jobs=1/8` byte-identical).
#pragma once

#include <bitset>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "common/matrix.h"
#include "common/stats.h"
#include "common/types.h"
#include "core/objective.h"
#include "core/sa_optimizer.h"

namespace sb::obs {
class Sink;
}  // namespace sb::obs

namespace sb::core {

/// Sharded-balancing knobs (SmartBalanceConfig::Sharding). Default off:
/// every golden figure stays bit-identical.
struct ShardingConfig {
  /// Number of shards; 0 disables sharding entirely (the unsharded SA path
  /// runs). Clamped to the platform's core count at policy construction.
  int shards = 0;
  /// Worker threads for the intra-epoch shard passes; 0 = auto
  /// (min(shards, SB_JOBS / hardware concurrency)).
  int jobs = 0;
  /// Max threads traded by the global exchange phase per epoch; -1 = auto
  /// (max(1, min(m/16, 4·shards))), 0 disables the exchange phase.
  int exchange_moves = -1;
  /// Minimum relative per-thread efficiency gain for an exchange candidate.
  double exchange_min_gain = 0.02;

  bool enabled() const { return shards > 0; }

  /// Parses the sbsim `--shards=` grammar: `K[:jobs[:moves]]`, e.g. "8",
  /// "8:4", "8:4:16". Throws std::invalid_argument on anything malformed
  /// (never leaks std::out_of_range from numeric conversion).
  static ShardingConfig parse(const std::string& spec);

  /// Canonical `K[:jobs[:moves]]` form; parse(to_string()) round-trips.
  std::string to_string() const;
};

/// A partition of the platform's cores into shards: every core is in
/// exactly one shard, every shard is non-empty (when shards <= num_cores).
struct ShardPartition {
  /// shard -> physical core ids, ascending.
  std::vector<std::vector<CoreId>> cores;
  /// core id -> owning shard index.
  std::vector<int> shard_of;

  int num_shards() const { return static_cast<int>(cores.size()); }
};

/// Pure function of (platform, shards): splits each core type's ascending
/// core list into contiguous chunks distributed over the shards, with the
/// remainder cursor rotating across types so singleton types spread over
/// shards instead of piling onto shard 0 (a quad of 4 one-core types with
/// shards=4 yields one core per shard). `shards` is clamped to [1,
/// num_cores]; throws std::invalid_argument if shards < 1 or the platform
/// is empty.
ShardPartition make_shard_partition(const arch::Platform& platform,
                                    int shards);

/// Per-pass accounting of one sharded balance phase.
struct ShardPassStats {
  /// Shards that actually ran SA this pass (non-empty thread sets).
  int shard_passes = 0;
  /// Sum of per-shard SA CPU time — the machine-robust scaling metric
  /// (wall-clock depends on worker count; this does not).
  TimeNs shard_ns_total = 0;
  TimeNs exchange_ns = 0;
  int exchange_moves = 0;
  int iterations_total = 0;
};

/// Drives the sharded BALANCE phase for SmartBalancePolicy. Owns one
/// SaOptimizer (and thus one ObjectiveScratch arena) per shard, reused
/// across epochs exactly like the unsharded policy's single optimizer.
class ShardedBalancer {
 public:
  /// `sa` is the policy's SaConfig (its max_iterations — or the auto rule —
  /// is the *global* budget split across shards each pass).
  ShardedBalancer(const arch::Platform& platform, ShardingConfig cfg,
                  SaConfig sa);

  /// Runs the sharded balance phase for one epoch. `base_seed` is the
  /// policy's per-pass seed (shard k re-seeds with
  /// base_seed ^ (k · 0x9e3779b97f4a7c15)); `ts_offset_ns` positions the
  /// shard.pass spans after the sense+predict phases inside the epoch span.
  /// Returns a merged global SaResult: allocation over physical core ids,
  /// objective/initial_objective of the merged allocation, summed SA
  /// counters, host_ns = summed per-shard SA CPU + exchange time. With one
  /// shard the single sub-result is returned directly (bit-identical to the
  /// unsharded optimizer on the same inputs).
  SaResult balance(std::uint64_t pass, std::uint64_t base_seed,
                   const Matrix& s, const Matrix& p,
                   const BalanceObjective& objective,
                   const std::vector<CoreId>& initial,
                   const std::vector<std::bitset<kMaxCores>>& affinity,
                   const std::vector<double>& demand, obs::Sink* obs,
                   TimeNs ts_offset_ns);

  const ShardingConfig& config() const { return cfg_; }
  const ShardPartition& partition() const { return partition_; }

  // --- Introspection for the report/bench layers ---
  const ShardPassStats& last_pass() const { return last_; }
  std::uint64_t shard_passes_total() const { return shard_passes_total_; }
  std::uint64_t exchange_moves_total() const { return exchange_moves_total_; }
  const RunningStats& exchange_ns() const { return exchange_ns_; }
  /// Cumulative per-shard SA CPU time over the run — the numerator of the
  /// fig_shard_scaling µs/core metric (CPU, not wall: independent of how
  /// many workers the passes happened to run on).
  std::uint64_t shard_cpu_ns_total() const { return shard_cpu_ns_total_; }
  std::uint64_t exchange_ns_total() const { return exchange_ns_total_; }

 private:
  struct ShardTask;

  /// Applies the bounded exchange phase to `allocation` in place; returns
  /// the number of moves kept (each move is re-scored against the merged
  /// objective and reverted if it does not improve it).
  int exchange(const Matrix& s, const Matrix& p,
               const BalanceObjective& objective,
               const std::vector<std::bitset<kMaxCores>>& affinity,
               const std::vector<double>& demand,
               std::vector<CoreId>& allocation, double& merged_j);

  const arch::Platform& platform_;
  ShardingConfig cfg_;
  SaConfig sa_;
  ShardPartition partition_;
  /// Column remap: core id -> its column inside its shard's sub-problem.
  std::vector<int> col_of_core_;
  /// One persistent optimizer (scratch arena) per shard.
  std::vector<std::unique_ptr<SaOptimizer>> optimizers_;
  /// Kind-preserving per-shard restrictions of the policy objective,
  /// rebuilt if the objective instance ever changes.
  std::vector<std::unique_ptr<BalanceObjective>> shard_objectives_;
  const BalanceObjective* objective_seen_ = nullptr;

  ShardPassStats last_;
  std::uint64_t shard_passes_total_ = 0;
  std::uint64_t exchange_moves_total_ = 0;
  std::uint64_t shard_cpu_ns_total_ = 0;
  std::uint64_t exchange_ns_total_ = 0;
  RunningStats exchange_ns_;
};

}  // namespace sb::core
