// The workload characterization vector X_ij of Eq. 8.
//
// Matches the Table 4 predictor columns exactly:
//   FR*, mr_$i, mr_$d, I_msh, I_bsh, mr_b, mr_itlb, mr_dtlb, ipc_src, const
// where FR is the source/destination frequency ratio and ipc_src is the
// thread's measured IPC on the core it actually ran on.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "common/types.h"
#include "perf/counters.h"

namespace sb::core {

inline constexpr std::size_t kNumFeatures = 10;

/// Column names as printed in Table 4.
const std::array<std::string, kNumFeatures>& feature_names();

/// One thread's sensed characterization for an epoch, in OS-visible terms.
struct ThreadObservation {
  ThreadId tid = kInvalidThread;
  CoreId core = kInvalidCore;      // core it executed on (c_j)
  CoreTypeId core_type = -1;       // γ(c_j)
  double ipc = 0;                  // measured IPC on that core
  double ips = 0;                  // measured throughput (instructions/s)
  double freq_mhz = 0;             // frequency the measurement was taken at
                                   // (differs from nominal under DVFS)
  double power_w = 0;              // measured average power while running
  double util = 0;                 // PELT utilization
  TimeNs runtime = 0;              // time actually executed this epoch
  std::uint64_t instructions = 0;
  // Derived counter ratios:
  double imsh = 0;
  double ibsh = 0;
  double mr_branch = 0;
  double mr_l1i = 0;
  double mr_l1d = 0;
  double mr_itlb = 0;
  double mr_dtlb = 0;
  /// True if the thread executed long enough this epoch for the ratios to
  /// be statistically meaningful.
  bool measured = false;
};

/// Builds X_ij^T for predicting from the observation's core to a core
/// running at `freq_ratio` = F_src / F_dst.
std::array<double, kNumFeatures> make_features(const ThreadObservation& obs,
                                               double freq_ratio);

/// Physical-plausibility envelope for a sensed observation. No real core
/// retires more than ~8 IPC, no miss ratio or instruction share exceeds 1
/// (25% slack for counter noise), no mobile core draws half a kilowatt, and
/// no clock runs past 8 GHz — values outside the envelope are wrapped,
/// saturated or otherwise corrupted counters, not workload behaviour.
struct PlausibilityLimits {
  double ipc_max = 16.0;
  double ratio_max = 1.25;
  double power_max_w = 512.0;
  /// A thread that executed a full epoch but drew less than this is on a
  /// dead/stuck power rail (floor well below any real idle draw).
  double min_power_w = 1e-3;
  double max_ghz = 8.0;
};

/// Replaces every non-finite (NaN/Inf) floating field of `o` with 0.
/// Bit-exact no-op on finite observations, so it is applied
/// unconditionally on the sensing path.
void sanitize_observation(ThreadObservation& o);

/// Verdict of the plausibility screen for an observation derived from raw
/// counters `c`. kImplausible marks data that cannot describe any real
/// execution (wrap artefacts, >8 GHz cycle rates, out-of-envelope ratios).
enum class PlausibilityVerdict { kPlausible, kImplausible };

PlausibilityVerdict check_plausibility(const ThreadObservation& o,
                                       const perf::HpcCounters& c,
                                       const PlausibilityLimits& lim);

}  // namespace sb::core
