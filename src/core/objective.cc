#include "core/objective.h"

#include <utility>

namespace sb::core {
namespace {

/// Generic column remap used by the default restrict_to_cores: forwards
/// every query to the parent objective with the physical CoreId. Reports
/// kCustom, so shard-local SA falls back to the virtual-dispatch kernel —
/// identical semantics, marginally slower inner loop.
class RestrictedObjective : public BalanceObjective {
 public:
  RestrictedObjective(const BalanceObjective& base, std::vector<CoreId> cores)
      : base_(base), cores_(std::move(cores)) {}

  double core_term(const CoreSums& s, CoreId core) const override {
    return base_.core_term(s, remap(core));
  }
  bool fractional() const override { return base_.fractional(); }
  std::array<double, 2> core_fraction(const CoreSums& s,
                                      CoreId core) const override {
    return base_.core_fraction(s, remap(core));
  }
  std::string name() const override { return base_.name(); }

 private:
  CoreId remap(CoreId c) const {
    return c >= 0 && static_cast<std::size_t>(c) < cores_.size()
               ? cores_[static_cast<std::size_t>(c)]
               : c;
  }

  const BalanceObjective& base_;
  std::vector<CoreId> cores_;
};

}  // namespace

std::unique_ptr<BalanceObjective> BalanceObjective::restrict_to_cores(
    const std::vector<CoreId>& cores) const {
  return std::make_unique<RestrictedObjective>(*this, cores);
}

std::unique_ptr<BalanceObjective> make_energy_efficiency_objective() {
  return std::make_unique<EnergyEfficiencyObjective>();
}

}  // namespace sb::core
