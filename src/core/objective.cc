#include "core/objective.h"

namespace sb::core {

std::unique_ptr<BalanceObjective> make_energy_efficiency_objective() {
  return std::make_unique<EnergyEfficiencyObjective>();
}

}  // namespace sb::core
