// Cross-core-type performance and power prediction (Eqs. 8 & 9).
//
// For every ordered pair of core types (src → dst) the model holds a linear
// coefficient vector Θ over the 10-feature characterization (Table 4);
// predicted IPC on dst is Θ · X^T, and predicted IPS is that times F_dst.
// Power on the destination type is the linear IPC→power interpolation of
// Eq. 9 with per-type (α1, α0) from offline profiling.
#pragma once

#include <array>
#include <iosfwd>
#include <vector>

#include "arch/platform.h"
#include "core/features.h"

namespace sb::core {

class PredictorModel {
 public:
  /// An untrained model for `num_types` core types (all coefficients zero).
  explicit PredictorModel(int num_types);

  int num_types() const { return num_types_; }

  /// Θ for src→dst (src != dst). Row layout matches Table 4.
  const std::array<double, kNumFeatures>& theta(CoreTypeId src,
                                                CoreTypeId dst) const;
  void set_theta(CoreTypeId src, CoreTypeId dst,
                 const std::array<double, kNumFeatures>& coeffs);

  /// Power interpolation coefficients for a destination type:
  /// p̂ = α1 · ipc + α0 (Eq. 9).
  std::array<double, 2> power_coeffs(CoreTypeId t) const;
  void set_power_coeffs(CoreTypeId t, double alpha1, double alpha0);

  /// Predicted IPC of the observed thread on a core of type `dst` whose
  /// nominal frequency is `dst_freq_mhz` (used for the FR feature). Result
  /// is clamped to [ipc_floor, ipc_ceiling].
  double predict_ipc(const ThreadObservation& obs, CoreTypeId dst,
                     double src_freq_mhz, double dst_freq_mhz) const;

  /// Predicted average power of running at `ipc` on type `dst`, clamped to
  /// be physically positive.
  double predict_power(CoreTypeId dst, double ipc) const;

  /// Bounds applied to predictions (defaults cover all Table 2 types).
  void set_ipc_bounds(double floor, double ceiling);

  /// Writes the Θ table in the layout of Table 4 ("src->dst" rows).
  void print(std::ostream& os, const arch::Platform& platform) const;

  // --- Persistence -----------------------------------------------------
  // A trained model is deployed as a plain-text blob (the kernel module
  // loads it at boot; retraining happens offline). Format: a versioned
  // header, then one line per Θ row and per power pair.

  /// Serializes the full model (Θ + power coefficients + bounds).
  void save(std::ostream& os) const;
  void save_to_file(const std::string& path) const;

  /// Reconstructs a model; throws std::runtime_error on malformed input.
  static PredictorModel load(std::istream& is);
  static PredictorModel load_from_file(const std::string& path);

  bool operator==(const PredictorModel& o) const;

 private:
  std::size_t pair_index(CoreTypeId src, CoreTypeId dst) const;

  int num_types_;
  std::vector<std::array<double, kNumFeatures>> theta_;
  std::vector<std::array<double, 2>> power_;
  double ipc_floor_ = 0.02;
  double ipc_ceiling_ = 8.0;
};

}  // namespace sb::core
