// Incrementally maintained objective state for the SA optimizer and the
// exhaustive enumerator: per-core occupancy-weighted sums plus either
// additive terms (J = Σ term_j) or fractional contributions
// (J = Σnum_j / Σden_j), depending on the objective.
//
// The class is a template over the objective type so that the annealing
// inner loop dispatched for a *concrete* (final) objective class calls
// core_term / core_fraction non-virtually — the compiler inlines the term
// arithmetic into the loop. Instantiating with the BalanceObjective base
// keeps the generic virtual-dispatch path for custom objectives.
//
// All storage lives in an ObjectiveScratch the caller owns, so a state can
// be re-initialized epoch after epoch without heap allocation once the
// scratch vectors have grown to the problem size.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/types.h"
#include "core/objective.h"

namespace sb::core {

/// Reusable backing storage for an ObjectiveState. Vectors are assign()ed on
/// every reset, which reuses capacity across epochs.
struct ObjectiveScratch {
  std::vector<CoreSums> sums;                    // per-core running sums
  std::vector<std::array<double, 2>> contrib;    // per-core (num, den) terms
  /// m×n matrix of (weighted s, weighted p, occupancy) triplets. The three
  /// values a move reads for one (thread, core) cell are interleaved so the
  /// random-access hot path touches one cache line per cell, not one line in
  /// each of three separate matrices (which at 128 cores × 256 threads blows
  /// well past L2 and made the interleaving a measured ~1.5× on the inner
  /// loop).
  std::vector<double> wspo;
};

/// Number of accepted moves between drift resyncs: `current += diff` and
/// the running Σnum/Σden accumulators drift in the last bits over tens of
/// thousands of incremental updates, so the optimizer recomputes the state
/// from the current allocation at this cadence (see SaOptimizer).
inline constexpr int kObjectiveResyncInterval = 4096;

/// Relative drift admissible between the incremental total and a full
/// recompute at the resync cadence; asserted in debug builds.
inline constexpr double kObjectiveDriftBound = 1e-6;

template <class Obj>
class ObjectiveState {
 public:
  /// Initializes the state for `allocation`, precomputing the occupancy
  /// matrix (and the occupancy-weighted copies of `s`/`p`) so the add/remove
  /// hot path is pure loads and adds. `s`, `p`, `demand_gips`, and `scratch`
  /// must outlive the state.
  ObjectiveState(ObjectiveScratch& scratch, const Matrix& s, const Matrix& p,
                 const Obj& objective, const std::vector<CoreId>& allocation,
                 const std::vector<double>* demand_gips = nullptr)
      : sc_(scratch),
        obj_(objective),
        m_(s.rows()),
        n_(s.cols()),
        fractional_(objective.fractional()) {
    precompute_occupancy(s, p, demand_gips);
    rebuild(allocation);
  }

  double total() const { return total_; }

  /// Occupancy of thread `row` on core column `j`: CPU-bound threads
  /// (negative demand) take a full share; duty-cycled threads occupy the
  /// fraction needed to serve their wall-clock demand on this core's speed.
  double occupancy(std::size_t row, std::size_t j) const {
    return sc_.wspo[3 * (row * n_ + j) + 2];
  }

  void add_thread(std::size_t row, CoreId c) {
    const auto j = static_cast<std::size_t>(c);
    assert(row < m_ && j < n_);
    const double* cell = &sc_.wspo[3 * (row * n_ + j)];
    CoreSums& cs = sc_.sums[j];
    cs.gips += cell[0];
    cs.watts += cell[1];
    cs.load += cell[2];
    ++cs.nthreads;
  }

  void remove_thread(std::size_t row, CoreId c) {
    const auto j = static_cast<std::size_t>(c);
    assert(row < m_ && j < n_);
    const double* cell = &sc_.wspo[3 * (row * n_ + j)];
    CoreSums& cs = sc_.sums[j];
    cs.gips -= cell[0];
    cs.watts -= cell[1];
    cs.load -= cell[2];
    --cs.nthreads;
  }

  /// Recomputes the contributions of the (at most two) cores touched by a
  /// move and returns the objective delta.
  double refresh_cores(CoreId a, CoreId b) {
    const double before = total_;
    recompute_contribution(static_cast<std::size_t>(a));
    if (b != a) recompute_contribution(static_cast<std::size_t>(b));
    recompute_total();
    return total_ - before;
  }

  /// Full recompute of sums, contributions and accumulators from
  /// `allocation`, reusing the precomputed occupancy matrices. O(m + n);
  /// used at construction and as the periodic drift resync.
  void rebuild(const std::vector<CoreId>& allocation) {
    sc_.sums.assign(n_, CoreSums{});
    for (std::size_t i = 0; i < allocation.size(); ++i) {
      add_thread(i, allocation[i]);
    }
    sc_.contrib.assign(n_, {0.0, 0.0});
    sum_num_ = 0.0;
    sum_den_ = 0.0;
    for (std::size_t j = 0; j < n_; ++j) recompute_contribution(j);
    recompute_total();
  }

 private:
  void precompute_occupancy(const Matrix& s, const Matrix& p,
                            const std::vector<double>* demand) {
    sc_.wspo.assign(3 * m_ * n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        double* cell = &sc_.wspo[3 * (i * n_ + j)];
        double u = 1.0;
        if (demand) {
          const double d = (*demand)[i];
          const double cap = s.at(i, j);
          if (d >= 0 && cap > 0) u = std::clamp(d / cap, 0.02, 1.0);
        }
        cell[0] = u * s.at(i, j);
        cell[1] = u * p.at(i, j);
        cell[2] = u;
      }
    }
  }

  void recompute_contribution(std::size_t j) {
    if (fractional_) {
      sum_num_ -= sc_.contrib[j][0];
      sum_den_ -= sc_.contrib[j][1];
      sc_.contrib[j] = obj_.core_fraction(sc_.sums[j], static_cast<CoreId>(j));
      sum_num_ += sc_.contrib[j][0];
      sum_den_ += sc_.contrib[j][1];
    } else {
      sum_num_ -= sc_.contrib[j][0];
      sc_.contrib[j] = {obj_.core_term(sc_.sums[j], static_cast<CoreId>(j)),
                        0.0};
      sum_num_ += sc_.contrib[j][0];
    }
  }

  void recompute_total() {
    total_ = fractional_ ? (sum_den_ > 0 ? sum_num_ / sum_den_ : 0.0)
                         : sum_num_;
  }

  ObjectiveScratch& sc_;
  const Obj& obj_;
  const std::size_t m_;
  const std::size_t n_;
  const bool fractional_;
  double sum_num_ = 0.0;
  double sum_den_ = 0.0;
  double total_ = 0.0;
};

}  // namespace sb::core
