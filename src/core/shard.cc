#include "core/shard.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/parallel.h"
#include "obs/sink.h"

namespace sb::core {
namespace {

using Clock = std::chrono::steady_clock;

/// Per-shard seed stride (2^64 / φ): shard 0 keeps the policy's per-pass
/// seed unchanged, which is what makes --shards=1 replay the unsharded
/// annealing trajectory bit for bit.
constexpr std::uint64_t kShardSeedStride = 0x9e3779b97f4a7c15ULL;

int parse_int_field(const std::string& tok, const char* what, long lo,
                    long hi) {
  if (tok.empty()) {
    throw std::invalid_argument(std::string("ShardingConfig: empty ") + what);
  }
  // strtol would skip leading whitespace and accept a '+' sign; the config
  // grammar is digits only.
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument(std::string("ShardingConfig: bad ") + what +
                                  " '" + tok + "'");
    }
  }
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || v < lo || v > hi) {
    throw std::invalid_argument(std::string("ShardingConfig: bad ") + what +
                                " '" + tok + "'");
  }
  return static_cast<int>(v);
}

/// Evaluates the merged global objective for an explicit allocation with
/// the exact occupancy semantics of ObjectiveState::precompute_occupancy
/// (duty-cycled threads occupy clamp(d/cap, 0.02, 1) of their core) — in
/// O(m + n) with no per-cell cache, since it runs a handful of times per
/// epoch instead of inside the annealing loop.
double merged_objective(const Matrix& s, const Matrix& p,
                        const BalanceObjective& objective,
                        const std::vector<CoreId>& allocation,
                        const std::vector<double>& demand,
                        std::vector<CoreSums>& sums_scratch) {
  const std::size_t n = s.cols();
  sums_scratch.assign(n, CoreSums{});
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    const CoreId c = allocation[i];
    if (c < 0 || static_cast<std::size_t>(c) >= n) continue;
    const auto j = static_cast<std::size_t>(c);
    double u = 1.0;
    const double d = demand[i];
    const double cap = s.at(i, j);
    if (d >= 0 && cap > 0) u = std::clamp(d / cap, 0.02, 1.0);
    CoreSums& cs = sums_scratch[j];
    cs.gips += u * s.at(i, j);
    cs.watts += u * p.at(i, j);
    cs.load += u;
    ++cs.nthreads;
  }
  if (objective.fractional()) {
    double num = 0, den = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto f =
          objective.core_fraction(sums_scratch[j], static_cast<CoreId>(j));
      num += f[0];
      den += f[1];
    }
    return den > 0 ? num / den : 0.0;
  }
  double total = 0;
  for (std::size_t j = 0; j < n; ++j) {
    total += objective.core_term(sums_scratch[j], static_cast<CoreId>(j));
  }
  return total;
}

}  // namespace

ShardingConfig ShardingConfig::parse(const std::string& spec) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    fields.push_back(spec.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (fields.size() > 3) {
    throw std::invalid_argument("ShardingConfig: expected K[:jobs[:moves]], got '" +
                                spec + "'");
  }
  ShardingConfig cfg;
  cfg.shards = parse_int_field(fields[0], "shard count", 0, kMaxCores);
  if (fields.size() > 1) {
    cfg.jobs = parse_int_field(fields[1], "job count", 0, 4096);
  }
  if (fields.size() > 2) {
    cfg.exchange_moves =
        parse_int_field(fields[2], "exchange move budget", 0, 1 << 20);
  }
  return cfg;
}

std::string ShardingConfig::to_string() const {
  std::string out = std::to_string(shards);
  if (jobs != 0 || exchange_moves >= 0) {
    out += ":" + std::to_string(jobs);
    if (exchange_moves >= 0) out += ":" + std::to_string(exchange_moves);
  }
  return out;
}

ShardPartition make_shard_partition(const arch::Platform& platform,
                                    int shards) {
  const int n = platform.num_cores();
  if (shards < 1) {
    throw std::invalid_argument("make_shard_partition: shards < 1");
  }
  if (n <= 0) {
    throw std::invalid_argument("make_shard_partition: empty platform");
  }
  const int k = std::min(shards, n);
  ShardPartition part;
  part.cores.resize(static_cast<std::size_t>(k));
  part.shard_of.assign(static_cast<std::size_t>(n), -1);

  // Per type, deal contiguous chunks of the ascending core list across the
  // shards. The remainder cursor rotates across types so small types land
  // on fresh shards: the first `n` leftover cores overall hit `n` distinct
  // shards, which guarantees no shard is empty when k <= n.
  int rot = 0;
  for (CoreTypeId t = 0; t < platform.num_types(); ++t) {
    const std::vector<CoreId>& ct = platform.cores_of_type(t);
    const int nt = static_cast<int>(ct.size());
    const int base = nt / k;
    const int rem = nt % k;
    std::vector<int> cnt(static_cast<std::size_t>(k), base);
    for (int i = 0; i < rem; ++i) ++cnt[static_cast<std::size_t>((rot + i) % k)];
    std::size_t pos = 0;
    for (int sidx = 0; sidx < k; ++sidx) {
      for (int i = 0; i < cnt[static_cast<std::size_t>(sidx)]; ++i, ++pos) {
        const CoreId c = ct[pos];
        part.cores[static_cast<std::size_t>(sidx)].push_back(c);
        part.shard_of[static_cast<std::size_t>(c)] = sidx;
      }
    }
    rot = (rot + rem) % k;
  }
  for (auto& cores : part.cores) std::sort(cores.begin(), cores.end());
  return part;
}

struct ShardedBalancer::ShardTask {
  std::vector<std::size_t> rows;  // global thread rows, ascending
  Matrix s, p;
  std::vector<CoreId> initial;  // local columns
  std::vector<std::bitset<kMaxCores>> affinity;
  std::vector<double> demand;
  SaResult result;
  int worker = -1;
  bool ran = false;
  std::exception_ptr error;
};

ShardedBalancer::ShardedBalancer(const arch::Platform& platform,
                                 ShardingConfig cfg, SaConfig sa)
    : platform_(platform),
      cfg_(cfg),
      sa_(sa),
      partition_(make_shard_partition(platform, cfg.shards)) {
  col_of_core_.assign(static_cast<std::size_t>(platform.num_cores()), -1);
  for (const auto& cores : partition_.cores) {
    for (std::size_t j = 0; j < cores.size(); ++j) {
      col_of_core_[static_cast<std::size_t>(cores[j])] = static_cast<int>(j);
    }
  }
  optimizers_.reserve(partition_.cores.size());
  for (std::size_t k = 0; k < partition_.cores.size(); ++k) {
    optimizers_.push_back(std::make_unique<SaOptimizer>(sa_));
  }
}

SaResult ShardedBalancer::balance(
    std::uint64_t pass, std::uint64_t base_seed, const Matrix& s,
    const Matrix& p, const BalanceObjective& objective,
    const std::vector<CoreId>& initial,
    const std::vector<std::bitset<kMaxCores>>& affinity,
    const std::vector<double>& demand, obs::Sink* obs, TimeNs ts_offset_ns) {
  const int k = partition_.num_shards();
  const std::size_t m = initial.size();
  last_ = ShardPassStats{};

  // Kind-preserving per-shard objective restrictions (stable per policy
  // objective; rebuilt only if the instance changes).
  if (objective_seen_ != &objective) {
    shard_objectives_.clear();
    shard_objectives_.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      shard_objectives_.push_back(objective.restrict_to_cores(
          partition_.cores[static_cast<std::size_t>(i)]));
    }
    objective_seen_ = &objective;
  }

  // Row partition: each thread anneals inside the shard of its current
  // core (the exchange phase below is the only cross-shard channel).
  std::vector<ShardTask> tasks(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < m; ++i) {
    const CoreId c = initial[i];
    if (c < 0 || static_cast<std::size_t>(c) >= col_of_core_.size()) continue;
    tasks[static_cast<std::size_t>(partition_.shard_of[static_cast<std::size_t>(c)])]
        .rows.push_back(i);
  }

  // One global iteration budget, split evenly: total annealing work stays
  // constant as shards are added, so the per-core cost falls as 1/K.
  const int total_budget =
      sa_.max_iterations > 0
          ? sa_.max_iterations
          : sa_auto_iterations(static_cast<int>(s.cols()),
                               static_cast<int>(m));
  const int shard_budget =
      k == 1 ? total_budget : std::max(100, total_budget / k);

  const int jobs = cfg_.jobs > 0
                       ? cfg_.jobs
                       : std::min(k, common::resolve_jobs(0));
  common::parallel_for(
      static_cast<std::size_t>(k), jobs, [&](std::size_t ki, int worker) {
        ShardTask& t = tasks[ki];
        t.worker = worker;
        if (t.rows.empty()) return;
        try {
          const std::vector<CoreId>& cores = partition_.cores[ki];
          const std::size_t sn = cores.size();
          const std::size_t sm = t.rows.size();
          t.s = Matrix(sm, sn);
          t.p = Matrix(sm, sn);
          t.initial.resize(sm);
          t.affinity.resize(sm);
          t.demand.resize(sm);
          for (std::size_t r = 0; r < sm; ++r) {
            const std::size_t i = t.rows[r];
            for (std::size_t j = 0; j < sn; ++j) {
              const auto cj = static_cast<std::size_t>(cores[j]);
              t.s.at(r, j) = s.at(i, cj);
              t.p.at(r, j) = p.at(i, cj);
              if (affinity[i].test(cj)) t.affinity[r].set(j);
            }
            t.initial[r] =
                col_of_core_[static_cast<std::size_t>(initial[i])];
            t.demand[r] = demand[i];
          }
          SaOptimizer& opt = *optimizers_[ki];
          opt.set_seed(base_seed ^ (static_cast<std::uint64_t>(ki) *
                                    kShardSeedStride));
          opt.set_max_iterations(shard_budget);
          t.result = opt.optimize(t.s, t.p, *shard_objectives_[ki], t.initial,
                                  &t.affinity, &t.demand);
          t.ran = true;
        } catch (...) {
          t.error = std::current_exception();
        }
      });
  for (const ShardTask& t : tasks) {
    if (t.error) std::rethrow_exception(t.error);
  }

  SaResult merged;
  int moves = 0;
  TimeNs exchange_ns = 0;
  if (k == 1) {
    // Single shard: the sub-problem is the whole problem (value-identical
    // matrices, identity column order, the unsharded per-pass seed), so the
    // sub-result IS the global result — returned directly, skipping the
    // merged re-evaluation whose last bits could differ from SA's
    // incremental objective accounting.
    merged = tasks[0].result;
    const std::vector<CoreId>& cores = partition_.cores[0];
    for (CoreId& c : merged.allocation) {
      c = cores[static_cast<std::size_t>(c)];
    }
  } else {
    merged.allocation = initial;
    for (std::size_t ki = 0; ki < tasks.size(); ++ki) {
      const ShardTask& t = tasks[ki];
      if (!t.ran) continue;
      const std::vector<CoreId>& cores = partition_.cores[ki];
      for (std::size_t r = 0; r < t.rows.size(); ++r) {
        merged.allocation[t.rows[r]] =
            cores[static_cast<std::size_t>(t.result.allocation[r])];
      }
      merged.iterations += t.result.iterations;
      merged.accepted_worse += t.result.accepted_worse;
      merged.improved += t.result.improved;
      merged.resyncs += t.result.resyncs;
      merged.host_ns += t.result.host_ns;
    }
    std::vector<CoreSums> sums;
    merged.initial_objective =
        merged_objective(s, p, objective, initial, demand, sums);
    merged.objective =
        merged_objective(s, p, objective, merged.allocation, demand, sums);

    const auto x0 = Clock::now();
    moves = exchange(s, p, objective, affinity, demand, merged.allocation,
                     merged.objective);
    exchange_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - x0)
                      .count();
    merged.host_ns += exchange_ns;
  }

  // Accounting + observability, after the join, in shard order — workers
  // never touch the sink, so --jobs=1/8 emit identical deterministic
  // counters (host-clock span durations vary run to run, like epoch.*_ns).
  int ran_count = 0;
  for (const ShardTask& t : tasks) {
    if (!t.ran) continue;
    ++ran_count;
    last_.shard_ns_total += t.result.host_ns;
    last_.iterations_total += t.result.iterations;
  }
  last_.shard_passes = ran_count;
  last_.exchange_ns = exchange_ns;
  last_.exchange_moves = moves;
  shard_passes_total_ += static_cast<std::uint64_t>(ran_count);
  exchange_moves_total_ += static_cast<std::uint64_t>(moves);
  shard_cpu_ns_total_ += static_cast<std::uint64_t>(last_.shard_ns_total);
  exchange_ns_total_ += static_cast<std::uint64_t>(exchange_ns);
  if (k > 1) exchange_ns_.add(static_cast<double>(exchange_ns));

  if (obs != nullptr) {
    auto& metrics = obs->metrics();
    if (ran_count > 0) {
      metrics.counter("shard.passes").add(static_cast<std::uint64_t>(ran_count));
    }
    if (moves > 0) {
      metrics.counter("shard.exchange.moves")
          .add(static_cast<std::uint64_t>(moves));
    }
    for (const ShardTask& t : tasks) {
      if (t.ran) {
        metrics.histogram("shard.pass_ns")
            .record(static_cast<std::uint64_t>(t.result.host_ns));
      }
    }
    if (auto* tracer = obs->tracer()) {
      // Shard spans laid out per executing worker, sequentially from the
      // end of the predict phase: each worker really did run its shards
      // back to back, so chains never overlap within a worker and every
      // span sits inside the epoch span (validated by check_trace.py).
      const std::uint64_t base =
          obs->now_ns() + static_cast<std::uint64_t>(ts_offset_ns);
      std::vector<std::uint64_t> worker_off(tasks.size(), 0);
      std::uint64_t chain_end = 0;
      for (std::size_t ki = 0; ki < tasks.size(); ++ki) {
        const ShardTask& t = tasks[ki];
        if (!t.ran) continue;
        const auto w = static_cast<std::size_t>(std::max(t.worker, 0));
        const auto dur = static_cast<std::uint64_t>(t.result.host_ns);
        tracer->span("shard.pass", base + worker_off[w], dur, pass,
                     {{"shard", static_cast<double>(ki)},
                      {"worker", static_cast<double>(w)},
                      {"iterations",
                       static_cast<double>(t.result.iterations)}});
        worker_off[w] += dur;
        chain_end = std::max(chain_end, worker_off[w]);
      }
      if (k > 1) {
        tracer->span("shard.exchange", base + chain_end,
                     static_cast<std::uint64_t>(exchange_ns), pass,
                     {{"moves", static_cast<double>(moves)}});
      }
    }
  }
  return merged;
}

int ShardedBalancer::exchange(
    const Matrix& s, const Matrix& p, const BalanceObjective& objective,
    const std::vector<std::bitset<kMaxCores>>& affinity,
    const std::vector<double>& demand, std::vector<CoreId>& allocation,
    double& merged_j) {
  const int k = partition_.num_shards();
  const std::size_t m = allocation.size();
  const int budget =
      cfg_.exchange_moves >= 0
          ? cfg_.exchange_moves
          : std::max(1, std::min(static_cast<int>(m) / 16, 4 * k));
  if (budget <= 0 || k < 2) return 0;

  // Shard membership masks for the apply loop, plus a per-(shard, type)
  // reachability table for the scan. The scan must not pay bitset
  // arithmetic per (thread, type), so affinity is enforced later, at apply
  // time — a pinned thread's candidate simply finds no destination.
  const CoreTypeId q = platform_.num_types();
  // cores_of_type returns by value — materialize each type's core list
  // once; the scan below would otherwise copy it per (thread, type).
  std::vector<std::vector<CoreId>> cores_by_type(static_cast<std::size_t>(q));
  for (CoreTypeId t = 0; t < q; ++t) {
    cores_by_type[static_cast<std::size_t>(t)] = platform_.cores_of_type(t);
  }
  std::vector<std::bitset<kMaxCores>> shard_mask(static_cast<std::size_t>(k));
  std::vector<char> reachable(static_cast<std::size_t>(k) *
                                  static_cast<std::size_t>(q),
                              0);
  for (int sidx = 0; sidx < k; ++sidx) {
    std::vector<std::size_t> in_shard(static_cast<std::size_t>(q), 0);
    for (const CoreId c : partition_.cores[static_cast<std::size_t>(sidx)]) {
      shard_mask[static_cast<std::size_t>(sidx)].set(
          static_cast<std::size_t>(c));
      ++in_shard[static_cast<std::size_t>(platform_.type_of(c))];
    }
    for (CoreTypeId t = 0; t < q; ++t) {
      reachable[static_cast<std::size_t>(sidx) * static_cast<std::size_t>(q) +
                static_cast<std::size_t>(t)] =
          cores_by_type[static_cast<std::size_t>(t)].size() >
                  in_shard[static_cast<std::size_t>(t)]
              ? 1
              : 0;
    }
  }
  std::vector<int> load(s.cols(), 0);
  for (const CoreId c : allocation) {
    if (c >= 0) ++load[static_cast<std::size_t>(c)];
  }

  // Regret scan: each thread's best forecast efficiency on another core
  // type, relative to where it sits now. One probe core per type keeps the
  // scan O(m·q) — same-type cores share a microarchitecture, so the probe
  // row is representative; the merged-J check at apply time is what
  // guarantees a bad forecast can't regress the allocation.
  struct Cand {
    double gain;
    std::size_t row;
    CoreTypeId type;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < m; ++i) {
    const CoreId cur = allocation[i];
    if (cur < 0) continue;
    const auto cur_shard = static_cast<std::size_t>(
        partition_.shard_of[static_cast<std::size_t>(cur)]);
    const double cur_w = p.at(i, static_cast<std::size_t>(cur));
    const double cur_eff =
        cur_w > 0 ? s.at(i, static_cast<std::size_t>(cur)) / cur_w : 0.0;
    Cand best{0.0, i, -1};
    for (CoreTypeId t = 0; t < q; ++t) {
      if (!reachable[cur_shard * static_cast<std::size_t>(q) +
                     static_cast<std::size_t>(t)]) {
        continue;
      }
      const auto rep = static_cast<std::size_t>(
          cores_by_type[static_cast<std::size_t>(t)].front());
      const double w = p.at(i, rep);
      if (w <= 0) continue;
      const double eff = s.at(i, rep) / w;
      const double rel = cur_eff > 0 ? (eff - cur_eff) / cur_eff
                                     : (eff > 0 ? 1.0 : 0.0);
      if (rel > best.gain) best = Cand{rel, i, t};
    }
    if (best.type >= 0 && best.gain > cfg_.exchange_min_gain) {
      cands.push_back(best);
    }
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.gain != b.gain) return a.gain > b.gain;
    return a.row < b.row;
  });
  if (cands.size() > static_cast<std::size_t>(budget)) {
    cands.resize(static_cast<std::size_t>(budget));
  }

  // Apply each candidate to the least-loaded allowed core of its target
  // (shard, type), keeping the move only if the merged objective actually
  // improves — the per-thread regret is a forecast heuristic; the merged J
  // is the contract. A move touches exactly two cores, so the merged J is
  // maintained incrementally: one O(m + n) occupancy pass up front, then
  // two per-core term re-derivations per candidate. That keeps the whole
  // apply loop O(E) — re-evaluating the full objective per move would put
  // an O(E·(m + n)) ~ n² tail on the pass and sink the sublinearity gate.
  const std::size_t n = s.cols();
  const auto occupancy = [&](std::size_t i, std::size_t j) {
    double u = 1.0;
    const double d = demand[i];
    const double cap = s.at(i, j);
    if (d >= 0 && cap > 0) u = std::clamp(d / cap, 0.02, 1.0);
    return u;
  };
  const auto add_thread = [&](CoreSums& cs, std::size_t i, std::size_t j,
                              double sign) {
    const double u = sign * occupancy(i, j);
    cs.gips += u * s.at(i, j);
    cs.watts += u * p.at(i, j);
    cs.load += u;
    cs.nthreads += sign > 0 ? 1 : -1;
  };
  std::vector<CoreSums> sums(n, CoreSums{});
  for (std::size_t i = 0; i < m; ++i) {
    const CoreId c = allocation[i];
    if (c < 0 || static_cast<std::size_t>(c) >= n) continue;
    add_thread(sums[static_cast<std::size_t>(c)], i,
               static_cast<std::size_t>(c), 1.0);
  }
  // Per-core cached terms plus their aggregates; the initial aggregate is
  // arithmetically identical (same accumulation order) to what
  // merged_objective computed for the caller.
  const bool fractional = objective.fractional();
  std::vector<std::array<double, 2>> frac;
  std::vector<double> term;
  double num = 0, den = 0, total = 0;
  if (fractional) {
    frac.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      frac[j] = objective.core_fraction(sums[j], static_cast<CoreId>(j));
      num += frac[j][0];
      den += frac[j][1];
    }
  } else {
    term.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      term[j] = objective.core_term(sums[j], static_cast<CoreId>(j));
      total += term[j];
    }
  }
  double cur_j = fractional ? (den > 0 ? num / den : 0.0) : total;

  // Per-type core order, least-loaded first, computed once: the apply loop
  // takes the first feasible entry instead of walking the whole type list
  // per candidate (O(E·n_type) otherwise, which is exactly the n² tail the
  // incremental J above removed). The order goes slightly stale as moves
  // commit — acceptable for a placement heuristic, since the merged-J
  // check still decides every move.
  std::vector<std::vector<CoreId>> type_order(static_cast<std::size_t>(q));
  for (CoreTypeId t = 0; t < q; ++t) {
    auto& order = type_order[static_cast<std::size_t>(t)];
    order = cores_by_type[static_cast<std::size_t>(t)];
    std::sort(order.begin(), order.end(), [&](CoreId a, CoreId b) {
      const int la = load[static_cast<std::size_t>(a)];
      const int lb = load[static_cast<std::size_t>(b)];
      if (la != lb) return la < lb;
      return a < b;
    });
  }

  int moves = 0;
  for (const Cand& c : cands) {
    // First feasible core of the target type outside the thread's shard.
    const auto cur_shard = static_cast<std::size_t>(
        partition_.shard_of[static_cast<std::size_t>(allocation[c.row])]);
    CoreId dest = kInvalidCore;
    for (const CoreId cand : type_order[static_cast<std::size_t>(c.type)]) {
      if (shard_mask[cur_shard].test(static_cast<std::size_t>(cand))) continue;
      if (!affinity[c.row].test(static_cast<std::size_t>(cand))) continue;
      dest = cand;
      break;
    }
    if (dest == kInvalidCore) continue;
    const CoreId prev = allocation[c.row];
    if (prev < 0 || prev == dest) continue;
    const auto a = static_cast<std::size_t>(prev);
    const auto b = static_cast<std::size_t>(dest);
    CoreSums sum_a = sums[a];
    CoreSums sum_b = sums[b];
    add_thread(sum_a, c.row, a, -1.0);
    add_thread(sum_b, c.row, b, 1.0);
    double j = 0, new_num = 0, new_den = 0;
    std::array<double, 2> fa{}, fb{};
    double ta = 0, tb = 0;
    if (fractional) {
      fa = objective.core_fraction(sum_a, static_cast<CoreId>(a));
      fb = objective.core_fraction(sum_b, static_cast<CoreId>(b));
      new_num = num - frac[a][0] - frac[b][0] + fa[0] + fb[0];
      new_den = den - frac[a][1] - frac[b][1] + fa[1] + fb[1];
      j = new_den > 0 ? new_num / new_den : 0.0;
    } else {
      ta = objective.core_term(sum_a, static_cast<CoreId>(a));
      tb = objective.core_term(sum_b, static_cast<CoreId>(b));
      j = total - term[a] - term[b] + ta + tb;
    }
    if (j > cur_j) {
      cur_j = j;
      ++moves;
      allocation[c.row] = dest;
      sums[a] = sum_a;
      sums[b] = sum_b;
      if (fractional) {
        frac[a] = fa;
        frac[b] = fb;
        num = new_num;
        den = new_den;
      } else {
        term[a] = ta;
        term[b] = tb;
        total = j;
      }
      --load[a];
      ++load[b];
    }
  }
  if (moves > 0) merged_j = cur_j;
  return moves;
}

}  // namespace sb::core
