// Per-thread memoization of the predict phase (§4.2.2).
//
// Filling S(k)/P(k) fans every thread's feature vector out across all core
// types (Θ dot products + power interpolation per column). Between epochs
// most threads' counters barely move, so the fan-out recomputes almost the
// same rows every 60 ms. The cache keys each thread's last computed S/P row
// pair on a *quantized* copy of the observation fields the row depends on:
// if the quantized key is unchanged, the cached rows are reused and the
// whole per-thread fan-out is skipped.
//
// A staleness bound caps how long a row may be served without a fresh
// computation, so a thread sitting exactly on a quantization cell for many
// epochs still gets re-predicted and slow counter creep cannot accumulate
// into unbounded prediction error.
//
// The cache is an opt-in: with it disabled (the SmartBalanceConfig
// default), build_characterization takes the untouched exact path and the
// resulting matrices are bit-identical to a cache-free build.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/features.h"

namespace sb::obs {
class Sink;
}  // namespace sb::obs

namespace sb::core {

struct PredictionCacheConfig {
  /// Gate for SmartBalancePolicy: disabled keeps the exact predict path.
  bool enabled = false;
  /// Serve a cached row for at most this many epochs after it was computed;
  /// after that the next lookup misses (counted as a staleness eviction)
  /// and the row is recomputed fresh.
  int max_stale_epochs = 8;
  /// Quantization steps per unit of each observation field: a key changes
  /// when a field moves by more than 1/steps. 128 bounds reuse error to
  /// under ~1% on IPC-scale features — well inside the predictor's own
  /// Fig. 6 error — while still absorbing epoch-to-epoch counter noise.
  double quantization_steps = 128.0;
  /// Auto-disable below this core count: on small platforms the Θ fan-out
  /// is only a handful of multiplies per thread, so key hashing + lookup
  /// costs more than it saves (BENCH_epoch measured 0.56× predict speedup
  /// on the 4c/8t quad vs 1.9× at 128c with grouped prediction). The
  /// policy ignores `enabled` when the platform has fewer cores than this;
  /// 0 removes the floor.
  int min_cores = 16;
};

class PredictionCache {
 public:
  /// Everything a characterization row depends on, quantized. Exact
  /// comparison of the full key (no hashing of the values themselves) means
  /// a collision can never silently serve the wrong row.
  struct Key {
    std::array<std::int64_t, 10> q{};  // quantized observation fields
    CoreTypeId core_type = -1;
    bool measured = false;
    bool zero_instructions = false;
    /// Fingerprint of everything outside the observation that shapes the
    /// row: column count and each column's (possibly DVFS-scaled) target
    /// frequency/power scale. Any platform or operating-point change
    /// invalidates by mismatch.
    std::uint64_t context = 0;

    bool operator==(const Key&) const = default;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;             // no entry, or key mismatch
    std::uint64_t stale_evictions = 0;    // key matched but row too old
  };

  explicit PredictionCache(PredictionCacheConfig cfg = {}) : cfg_(cfg) {}

  const PredictionCacheConfig& config() const { return cfg_; }

  /// Builds the quantized key for an observation under `context`.
  Key make_key(const ThreadObservation& obs, std::uint64_t context) const;

  /// Starts a new epoch: ages every entry and drops the ones that can never
  /// hit again (older than the staleness bound).
  void advance_epoch();

  /// If a fresh row pair for `tid` matches `key`, copies the n-column rows
  /// into `s_row`/`p_row` and returns true. Otherwise counts the miss (or
  /// staleness eviction) and returns false — the caller recomputes and
  /// store()s.
  bool lookup(ThreadId tid, const Key& key, std::size_t n, double* s_row,
              double* p_row);

  /// Records freshly computed rows for `tid`.
  void store(ThreadId tid, const Key& key, std::size_t n, const double* s_row,
             const double* p_row);

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }
  /// Observability hook (null = off): lookup outcomes feed pred_cache.*.
  void set_obs(obs::Sink* obs) { obs_ = obs; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    Key key;
    int age = 0;  // epochs since the rows were computed
    std::vector<double> s_row;
    std::vector<double> p_row;
  };

  PredictionCacheConfig cfg_;
  Stats stats_;
  obs::Sink* obs_ = nullptr;
  std::unordered_map<ThreadId, Entry> entries_;
};

}  // namespace sb::core
