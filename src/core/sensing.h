// SmartBalance sensing subsystem (paper §4.1).
//
// Converts the kernel's per-thread epoch accumulators (drained at the epoch
// boundary) into ThreadObservations, applying the measurement imperfections
// a real platform has: multiplicative gaussian noise on each hardware
// counter (sampling skew, non-atomic reads) and on per-thread energy (the
// power-sensor path). Threads that slept through an epoch produce no fresh
// measurement; the subsystem retains each thread's last good observation so
// the balancer still has a (stale) characterization — exactly the situation
// the paper's closed loop must tolerate.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "arch/platform.h"
#include "common/rng.h"
#include "core/features.h"
#include "os/kernel.h"

namespace sb::core {

class SensingSubsystem {
 public:
  struct Config {
    double counter_noise_sigma = 0.005;  // 0.5% per-counter
    double energy_noise_sigma = 0.010;   // 1% on per-thread energy
    /// Minimum execution time in an epoch for a fresh measurement to be
    /// considered statistically valid.
    TimeNs min_runtime = microseconds(300);
    /// EWMA weight of *history* when blending successive measurements of a
    /// thread on the same core type: 0 = paper-faithful point sampling of
    /// the last epoch, higher = characterize the thread's average behaviour
    /// across its program phases. Damps allocation thrash for workloads
    /// whose phases alternate faster than they migrate usefully (x264's
    /// per-frame ME/encode cycle). History resets on core-type change.
    double smoothing = 0.6;
  };

  SensingSubsystem(const arch::Platform& platform, Config cfg, Rng rng);
  SensingSubsystem(const arch::Platform& platform, Rng rng)
      : SensingSubsystem(platform, Config(), rng) {}

  /// Processes one epoch's samples into observations. Every alive thread
  /// yields exactly one observation: fresh if it ran long enough, the
  /// cached previous one otherwise (marked measured=false if never seen).
  std::vector<ThreadObservation> observe(
      const std::vector<os::EpochSample>& samples);

  /// Drops cached observations for threads no longer present.
  void garbage_collect(const std::vector<os::EpochSample>& samples);

  const Config& config() const { return cfg_; }

 private:
  ThreadObservation reduce(const os::EpochSample& s);
  double noisy(double v, double sigma);

  const arch::Platform& platform_;
  Config cfg_;
  Rng rng_;
  std::unordered_map<ThreadId, ThreadObservation> last_good_;
};

}  // namespace sb::core
