// SmartBalance sensing subsystem (paper §4.1).
//
// Converts the kernel's per-thread epoch accumulators (drained at the epoch
// boundary) into ThreadObservations, applying the measurement imperfections
// a real platform has: multiplicative gaussian noise on each hardware
// counter (sampling skew, non-atomic reads) and on per-thread energy (the
// power-sensor path). Threads that slept through an epoch produce no fresh
// measurement; the subsystem retains each thread's last good observation so
// the balancer still has a (stale) characterization — exactly the situation
// the paper's closed loop must tolerate.
#pragma once

#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "arch/platform.h"
#include "common/rng.h"
#include "core/features.h"
#include "os/kernel.h"

namespace sb::obs {
class Sink;
}  // namespace sb::obs

namespace sb::core {

/// Defense-in-depth configuration for the sensing path. Disabled by
/// default: with `enabled == false` the subsystem behaves bit-identically
/// to the undefended pipeline (golden-figure contract). Enabled, it
/// screens every fresh measurement against a physical-plausibility
/// envelope, rejects statistical outliers against a per-thread median
/// window, tracks per-thread sensor confidence, and escalates long-stale
/// threads to the predictor's neutral prior.
struct SensingDefenseConfig {
  bool enabled = false;
  PlausibilityLimits limits{};
  /// Outlier screen: a fresh IPS farther than `outlier_factor`× from the
  /// median of the thread's last `median_window` accepted measurements is
  /// rejected (needs at least `min_history` accepted points first).
  int median_window = 5;
  double outlier_factor = 6.0;
  int min_history = 3;
  /// Sensor-health tracking: confidence resets to 1 on an accepted
  /// measurement and multiplies by `health_decay` on every rejected or
  /// missing one; a thread is "healthy" while confidence >= threshold.
  double health_decay = 0.7;
  double healthy_threshold = 0.5;
  /// After this many consecutive epochs without an accepted measurement the
  /// cached characterization is deemed untrustworthy and the thread is
  /// served the neutral prior instead (measured=false, instructions=0).
  int max_stale_epochs = 8;
};

/// Counters for the defense layer, aggregated across all epochs, plus the
/// healthy-thread fraction of the most recent epoch.
struct SensingHealthStats {
  std::uint64_t implausible_rejected = 0;
  std::uint64_t outliers_rejected = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t neutral_served = 0;
  double healthy_fraction = 1.0;
};

class SensingSubsystem {
 public:
  struct Config {
    double counter_noise_sigma = 0.005;  // 0.5% per-counter
    double energy_noise_sigma = 0.010;   // 1% on per-thread energy
    /// Minimum execution time in an epoch for a fresh measurement to be
    /// considered statistically valid.
    TimeNs min_runtime = microseconds(300);
    /// EWMA weight of *history* when blending successive measurements of a
    /// thread on the same core type: 0 = paper-faithful point sampling of
    /// the last epoch, higher = characterize the thread's average behaviour
    /// across its program phases. Damps allocation thrash for workloads
    /// whose phases alternate faster than they migrate usefully (x264's
    /// per-frame ME/encode cycle). History resets on core-type change.
    double smoothing = 0.6;
    SensingDefenseConfig defense{};
  };

  SensingSubsystem(const arch::Platform& platform, Config cfg, Rng rng);
  SensingSubsystem(const arch::Platform& platform, Rng rng)
      : SensingSubsystem(platform, Config(), rng) {}

  /// Processes one epoch's samples into observations. Every alive thread
  /// yields exactly one observation: fresh if it ran long enough (and, with
  /// defenses on, passed the plausibility and outlier screens), the cached
  /// previous one otherwise (marked measured=false if never seen or stale
  /// past max_stale_epochs).
  std::vector<ThreadObservation> observe(
      const std::vector<os::EpochSample>& samples);

  /// Drops cached observations for threads no longer present.
  void garbage_collect(const std::vector<os::EpochSample>& samples);

  const Config& config() const { return cfg_; }
  const SensingHealthStats& health() const { return health_; }

  /// Observability hook (null = off); counts defense decisions under
  /// `sense.*` and tracks the healthy fraction as a gauge.
  void set_obs(obs::Sink* obs) { obs_ = obs; }

 private:
  struct ThreadHealth {
    double confidence = 1.0;
    int stale_epochs = 0;
    /// Ring of the last accepted IPS values for the outlier median.
    std::vector<double> ips_history;
    std::size_t ips_next = 0;
  };

  ThreadObservation reduce(const os::EpochSample& s);
  double noisy(double v, double sigma);
  void bump(std::string_view metric);
  /// Defense screen on a fresh measurement; returns false when the sample
  /// must be rejected (and bumps the corresponding stats counter).
  bool accept_fresh(const ThreadObservation& o, const os::EpochSample& s);
  void note_accepted(ThreadId tid, double ips);
  void note_rejected(ThreadId tid);

  const arch::Platform& platform_;
  Config cfg_;
  Rng rng_;
  std::unordered_map<ThreadId, ThreadObservation> last_good_;
  std::unordered_map<ThreadId, ThreadHealth> thread_health_;
  SensingHealthStats health_{};
  obs::Sink* obs_ = nullptr;
};

}  // namespace sb::core
