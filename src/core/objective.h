// Balancing objectives (Eq. 10/11 and alternatives).
//
// J = Σ_j ω_j · term_j where term_j is computed from the per-core sums of
// the assigned threads' predicted throughput and power. The default,
// EnergyEfficiencyObjective, is the paper's J_E = Σ ω_j IPS_j / P_j; note
// that with equal time sharing the per-thread averaging of Eqs. 6/7 cancels
// in the ratio, so IPS_j / P_j = (Σ ips_ij) / (Σ p_ij) over core j's set.
//
// The interface is deliberately tiny so downstream users can plug a custom
// goal into SmartBalance (see examples/custom_objective.cpp).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace sb::core {

/// The per-core inputs an objective sees: occupancy-weighted sums over the
/// threads assigned to the core.
struct CoreSums {
  double gips = 0;    // Σ u_ij · s_ij  (predicted served throughput)
  double watts = 0;   // Σ u_ij · p_ij  (predicted busy power)
  double load = 0;    // Σ u_ij         (core occupancy; >1 = oversubscribed)
  int nthreads = 0;
};

/// Identifies the built-in objectives so the optimizer can dispatch its
/// annealing loop to a kernel specialized (devirtualized) for the concrete
/// type. User-defined objectives report kCustom and run through the generic
/// virtual-dispatch kernel — same semantics, slightly slower inner loop.
enum class ObjectiveKind {
  kCustom = 0,
  kEnergyEfficiency,
  kThroughput,
  kEdp,
  kGlobalEfficiency,
};

class BalanceObjective {
 public:
  virtual ~BalanceObjective() = default;

  /// Built-in objectives override this; custom objectives keep kCustom.
  virtual ObjectiveKind kind() const { return ObjectiveKind::kCustom; }

  /// Additive objectives: J = Σ_j core_term(core j). This is the paper's
  /// Eq. 11 family; `core` identifies the column for per-core weights ω_j.
  virtual double core_term(const CoreSums& sums, CoreId core) const = 0;

  /// Fractional objectives: J = (Σ_j num_j) / (Σ_j den_j). Overriding
  /// fractional() to true switches the optimizer to this form; core_term is
  /// then unused.
  virtual bool fractional() const { return false; }
  virtual std::array<double, 2> core_fraction(const CoreSums& /*sums*/,
                                              CoreId /*core*/) const {
    return {0.0, 0.0};
  }

  virtual std::string name() const = 0;

  /// Returns an objective equivalent to this one evaluated on the
  /// sub-platform formed by `cores`: column j of the sub-problem is physical
  /// core cores[j]. Used by the sharded balancer so per-core weights keep
  /// pointing at the right physical core inside a shard-local SA pass. The
  /// default implementation wraps *this* (which must outlive the returned
  /// object) with an index remap and reports kCustom; built-in objectives
  /// override with kind-preserving value clones so the optimizer's
  /// devirtualized kernels still apply inside shards.
  virtual std::unique_ptr<BalanceObjective> restrict_to_cores(
      const std::vector<CoreId>& cores) const;
};

/// The paper's J_E: per-core energy efficiency (GIPS per watt), weighted.
/// Eq. 11's ω_j are "ideally set to 1, but can be tuned to give preference
/// to certain cores or core types" — pass per-core weights for that.
class EnergyEfficiencyObjective final : public BalanceObjective {
 public:
  explicit EnergyEfficiencyObjective(double weight = 1.0) : weight_(weight) {}
  /// Per-core ω_j (indexed by CoreId); cores beyond the vector get ω = 1.
  explicit EnergyEfficiencyObjective(std::vector<double> core_weights)
      : core_weights_(std::move(core_weights)) {}

  double core_term(const CoreSums& s, CoreId core) const override {
    if (s.nthreads == 0 || s.watts <= 0) return 0.0;
    const double w =
        core >= 0 && static_cast<std::size_t>(core) < core_weights_.size()
            ? core_weights_[static_cast<std::size_t>(core)]
            : weight_;
    return w * s.gips / s.watts;
  }

  ObjectiveKind kind() const override {
    return ObjectiveKind::kEnergyEfficiency;
  }
  std::string name() const override { return "ips_per_watt"; }

  std::unique_ptr<BalanceObjective> restrict_to_cores(
      const std::vector<CoreId>& cores) const override {
    std::vector<double> w(cores.size(), weight_);
    for (std::size_t j = 0; j < cores.size(); ++j) {
      const CoreId c = cores[j];
      if (c >= 0 && static_cast<std::size_t>(c) < core_weights_.size()) {
        w[j] = core_weights_[static_cast<std::size_t>(c)];
      }
    }
    return std::make_unique<EnergyEfficiencyObjective>(std::move(w));
  }

 private:
  double weight_ = 1.0;
  std::vector<double> core_weights_;
};

/// Pure throughput: the core's time-shared IPS (average of its threads).
class ThroughputObjective final : public BalanceObjective {
 public:
  double core_term(const CoreSums& s, CoreId /*core*/) const override {
    if (s.nthreads == 0) return 0.0;
    return s.gips / s.nthreads;
  }
  ObjectiveKind kind() const override { return ObjectiveKind::kThroughput; }
  std::string name() const override { return "throughput"; }
  std::unique_ptr<BalanceObjective> restrict_to_cores(
      const std::vector<CoreId>&) const override {
    return std::make_unique<ThroughputObjective>();
  }
};

/// Energy-delay-product flavour: throughput² per watt, biasing toward
/// performance while still power-aware.
class EdpObjective final : public BalanceObjective {
 public:
  double core_term(const CoreSums& s, CoreId /*core*/) const override {
    if (s.nthreads == 0 || s.watts <= 0) return 0.0;
    const double ips = s.gips / s.nthreads;
    return ips * ips / (s.watts / s.nthreads);
  }
  ObjectiveKind kind() const override { return ObjectiveKind::kEdp; }
  std::string name() const override { return "edp"; }
  std::unique_ptr<BalanceObjective> restrict_to_cores(
      const std::vector<CoreId>&) const override {
    return std::make_unique<EdpObjective>();
  }
};

/// Global platform energy efficiency: J = total predicted IPS / total
/// predicted power, where each core contributes its occupancy-weighted
/// busy power plus the sleep power of its unloaded fraction.
///
/// Rationale (DESIGN.md §5): Eq. 11's sum-of-ratios is invariant to how
/// many threads share a core — (Σu·s)/(Σu·p) does not change when similar
/// threads pile up — so it cannot distinguish allocations that differ only
/// in load distribution, while the metric the paper *reports*
/// (throughput/Watt of the whole chip) very much does. This objective
/// optimizes that metric directly and is the library default; Eq. 11 is
/// available verbatim as EnergyEfficiencyObjective.
class GlobalEfficiencyObjective final : public BalanceObjective {
 public:
  /// `core_sleep_w[j]` = sleep-state power of core j (charged for the
  /// fraction of the epoch the core has nothing to run).
  explicit GlobalEfficiencyObjective(std::vector<double> core_sleep_w)
      : sleep_w_(std::move(core_sleep_w)) {}

  bool fractional() const override { return true; }

  double core_term(const CoreSums&, CoreId) const override { return 0.0; }

  std::array<double, 2> core_fraction(const CoreSums& s,
                                      CoreId core) const override {
    const double idle_fraction =
        s.load >= 1.0 ? 0.0 : 1.0 - (s.nthreads > 0 ? s.load : 0.0);
    const double sleep =
        core >= 0 && static_cast<std::size_t>(core) < sleep_w_.size()
            ? sleep_w_[static_cast<std::size_t>(core)]
            : 0.0;
    // Oversubscribed cores saturate: served throughput (and busy power)
    // scale down to capacity.
    const double scale = s.load > 1.0 ? 1.0 / s.load : 1.0;
    return {s.gips * scale, s.watts * scale + sleep * idle_fraction};
  }

  ObjectiveKind kind() const override {
    return ObjectiveKind::kGlobalEfficiency;
  }
  std::string name() const override { return "global_ips_per_watt"; }

  std::unique_ptr<BalanceObjective> restrict_to_cores(
      const std::vector<CoreId>& cores) const override {
    std::vector<double> sleep(cores.size(), 0.0);
    for (std::size_t j = 0; j < cores.size(); ++j) {
      const CoreId c = cores[j];
      if (c >= 0 && static_cast<std::size_t>(c) < sleep_w_.size()) {
        sleep[j] = sleep_w_[static_cast<std::size_t>(c)];
      }
    }
    return std::make_unique<GlobalEfficiencyObjective>(std::move(sleep));
  }

 private:
  std::vector<double> sleep_w_;
};

std::unique_ptr<BalanceObjective> make_energy_efficiency_objective();

}  // namespace sb::core
