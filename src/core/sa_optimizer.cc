#include "core/sa_optimizer.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/fixed_math.h"

namespace sb::core {
namespace {

/// Incrementally maintained objective state: per-core occupancy-weighted
/// sums plus either additive terms (J = Σ term_j) or fractional
/// contributions (J = Σnum_j / Σden_j), depending on the objective.
class ObjectiveState {
 public:
  ObjectiveState(const Matrix& s, const Matrix& p,
                 const BalanceObjective& objective,
                 const std::vector<CoreId>& allocation,
                 const std::vector<double>* demand_gips = nullptr)
      : s_(s),
        p_(p),
        obj_(objective),
        demand_(demand_gips),
        fractional_(objective.fractional()) {
    const std::size_t n = s.cols();
    sums_.assign(n, CoreSums{});
    for (std::size_t i = 0; i < allocation.size(); ++i) {
      add_thread(i, allocation[i]);
    }
    contrib_.assign(n, {0.0, 0.0});
    for (std::size_t j = 0; j < n; ++j) recompute_contribution(j);
    recompute_total();
  }

  double total() const { return total_; }

  /// Occupancy of thread `row` on core column `j`: CPU-bound threads
  /// (negative demand) take a full share; duty-cycled threads occupy the
  /// fraction needed to serve their wall-clock demand on this core's speed.
  double occupancy(std::size_t row, std::size_t j) const {
    if (!demand_) return 1.0;
    const double d = (*demand_)[row];
    if (d < 0) return 1.0;
    const double cap = s_.at(row, j);
    if (cap <= 0) return 1.0;
    return std::clamp(d / cap, 0.02, 1.0);
  }

  void add_thread(std::size_t row, CoreId c) {
    const auto j = static_cast<std::size_t>(c);
    const double u = occupancy(row, j);
    sums_[j].gips += u * s_.at(row, j);
    sums_[j].watts += u * p_.at(row, j);
    sums_[j].load += u;
    ++sums_[j].nthreads;
  }

  void remove_thread(std::size_t row, CoreId c) {
    const auto j = static_cast<std::size_t>(c);
    const double u = occupancy(row, j);
    sums_[j].gips -= u * s_.at(row, j);
    sums_[j].watts -= u * p_.at(row, j);
    sums_[j].load -= u;
    --sums_[j].nthreads;
  }

  /// Recomputes the contributions of the (at most two) cores touched by a
  /// move and returns the objective delta.
  double refresh_cores(CoreId a, CoreId b) {
    const double before = total_;
    recompute_contribution(static_cast<std::size_t>(a));
    if (b != a) recompute_contribution(static_cast<std::size_t>(b));
    recompute_total();
    return total_ - before;
  }

 private:
  void recompute_contribution(std::size_t j) {
    if (fractional_) {
      sum_num_ -= contrib_[j][0];
      sum_den_ -= contrib_[j][1];
      contrib_[j] = obj_.core_fraction(sums_[j], static_cast<CoreId>(j));
      sum_num_ += contrib_[j][0];
      sum_den_ += contrib_[j][1];
    } else {
      sum_num_ -= contrib_[j][0];
      contrib_[j] = {obj_.core_term(sums_[j], static_cast<CoreId>(j)), 0.0};
      sum_num_ += contrib_[j][0];
    }
  }

  void recompute_total() {
    total_ = fractional_ ? (sum_den_ > 0 ? sum_num_ / sum_den_ : 0.0)
                         : sum_num_;
  }

  const Matrix& s_;
  const Matrix& p_;
  const BalanceObjective& obj_;
  const std::vector<double>* demand_;
  const bool fractional_;
  std::vector<CoreSums> sums_;
  std::vector<std::array<double, 2>> contrib_;
  double sum_num_ = 0.0;
  double sum_den_ = 0.0;
  double total_ = 0.0;
};

bool allowed_on(const std::vector<std::bitset<kMaxCores>>* affinity,
                std::size_t row, CoreId c) {
  if (!affinity) return true;
  return (*affinity)[row].test(static_cast<std::size_t>(c));
}

}  // namespace

int sa_auto_iterations(int num_cores, int num_threads) {
  // ~12 proposals per (thread, core) pair, saturating where the measured
  // per-iteration cost (~0.1 us, see bench/micro_benchmarks) would push a
  // pass beyond a few milliseconds of the 60 ms epoch (Fig. 8a: "for larger
  // configurations we limit the number of iterations").
  const long nm = static_cast<long>(num_cores) * num_threads;
  return static_cast<int>(std::min<long>(100 + 12 * nm, 60000));
}

double evaluate_allocation(const Matrix& s, const Matrix& p,
                           const BalanceObjective& objective,
                           const std::vector<CoreId>& allocation) {
  if (s.rows() != allocation.size() || p.rows() != allocation.size() ||
      s.cols() != p.cols()) {
    throw std::invalid_argument("evaluate_allocation: shape mismatch");
  }
  ObjectiveState state(s, p, objective, allocation);
  return state.total();
}

SaResult SaOptimizer::optimize(
    const Matrix& s, const Matrix& p, const BalanceObjective& objective,
    std::vector<CoreId> initial,
    const std::vector<std::bitset<kMaxCores>>* affinity,
    const std::vector<double>* demand_gips) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t m = s.rows();
  const auto n = static_cast<std::int64_t>(s.cols());
  if (m == 0 || n == 0) {
    throw std::invalid_argument("SaOptimizer: empty problem");
  }
  if (p.rows() != m || p.cols() != s.cols() || initial.size() != m) {
    throw std::invalid_argument("SaOptimizer: shape mismatch");
  }
  if (demand_gips && demand_gips->size() != m) {
    throw std::invalid_argument("SaOptimizer: demand size mismatch");
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (initial[i] < 0 || initial[i] >= n) {
      throw std::invalid_argument("SaOptimizer: bad initial allocation");
    }
  }

  // Ψ as the paper's flat slot array: m slots per core, entry = thread row
  // or -1. Each thread starts in a slot of its current core.
  const std::int64_t slots = n * static_cast<std::int64_t>(m);
  std::vector<std::int32_t> psi(static_cast<std::size_t>(slots), -1);
  {
    std::vector<std::size_t> next_free(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto c = static_cast<std::size_t>(initial[i]);
      const std::size_t slot = c * m + next_free[c]++;
      psi[slot] = static_cast<std::int32_t>(i);
    }
  }
  auto core_of_slot = [m](std::int64_t slot) {
    return static_cast<CoreId>(slot / static_cast<std::int64_t>(m));
  };

  ObjectiveState state(s, p, objective, initial, demand_gips);
  SaResult best;
  best.initial_objective = state.total();
  best.allocation = initial;
  best.objective = state.total();

  Rng rng(cfg_.seed);
  const int iters = cfg_.max_iterations > 0
                        ? cfg_.max_iterations
                        : sa_auto_iterations(static_cast<int>(n),
                                             static_cast<int>(m));
  Fixed perturb = Fixed::from_double(cfg_.initial_perturb);
  const Fixed dperturb = Fixed::from_double(cfg_.perturb_decay);
  double accept =
      std::max(1e-9, cfg_.initial_accept_rel * std::abs(state.total()));
  const double daccept = cfg_.accept_decay;

  std::vector<CoreId> current = initial;
  double current_obj = state.total();

  for (int it = 0; it < iters; ++it) {
    // --- Propose: perturbation-radius slot swap (Algorithm 1) ---
    const std::int64_t pos = rng.randi(0, slots);
    const double radius = fixed_sqrt(perturb).to_double();
    std::int64_t offset = static_cast<std::int64_t>(
        radius * static_cast<double>(rng.randi(-pos, slots - pos)));
    std::int64_t pos_new = std::clamp<std::int64_t>(pos + offset, 0, slots - 1);
    // Once the radius collapses, the scaled offset truncates to (nearly)
    // zero and every proposal would degenerate into a same-slot or
    // same-core no-op, silently ending the search. Fall back to a uniform
    // draw so each iteration still proposes a real move — slot indices
    // carry no topology, so this preserves Algorithm 1's semantics.
    if (pos_new == pos ||
        core_of_slot(pos_new) == core_of_slot(pos)) {
      pos_new = rng.randi(0, slots);
    }

    const std::int32_t ta = psi[static_cast<std::size_t>(pos)];
    const std::int32_t tb = psi[static_cast<std::size_t>(pos_new)];
    const CoreId ca = core_of_slot(pos);
    const CoreId cb = core_of_slot(pos_new);

    // Decay schedules advance every iteration regardless of move validity.
    perturb = perturb * dperturb;
    if (perturb.raw() < 16) perturb = Fixed::from_raw(16);  // keep radius > 0
    accept *= daccept;

    if (pos == pos_new || ca == cb) continue;          // no-op
    if (ta < 0 && tb < 0) continue;                    // empty↔empty
    if (ta >= 0 && !allowed_on(affinity, static_cast<std::size_t>(ta), cb)) {
      continue;  // affinity forbids
    }
    if (tb >= 0 && !allowed_on(affinity, static_cast<std::size_t>(tb), ca)) {
      continue;
    }

    // --- Apply tentatively, evaluating only the two affected cores ---
    if (ta >= 0) {
      state.remove_thread(static_cast<std::size_t>(ta), ca);
      state.add_thread(static_cast<std::size_t>(ta), cb);
    }
    if (tb >= 0) {
      state.remove_thread(static_cast<std::size_t>(tb), cb);
      state.add_thread(static_cast<std::size_t>(tb), ca);
    }
    const double diff = state.refresh_cores(ca, cb);

    bool take = diff > 0;
    if (!take) {
      if (cfg_.fixed_point_acceptance) {
        // probability = e^(diff/accept) computed in Q16.16; accepted when
        // randi() mod round(1/probability) == 0, as in the paper's listing.
        const double ratio = std::max(-15.9, diff / accept);
        const Fixed prob = fixed_exp_neg(Fixed::from_double(ratio));
        if (prob.raw() > 0) {
          const std::uint32_t inv = static_cast<std::uint32_t>(
              std::max<std::int64_t>(1, Fixed::kOne / prob.raw()));
          take = (rng.randi() % inv) == 0;
        }
      } else {
        take = rng.uniform() < std::exp(diff / accept);
      }
    }

    if (take) {
      std::swap(psi[static_cast<std::size_t>(pos)],
                psi[static_cast<std::size_t>(pos_new)]);
      if (ta >= 0) current[static_cast<std::size_t>(ta)] = cb;
      if (tb >= 0) current[static_cast<std::size_t>(tb)] = ca;
      current_obj += diff;
      if (diff > 0) {
        ++best.improved;
      } else {
        ++best.accepted_worse;
      }
      if (current_obj > best.objective) {
        best.objective = current_obj;
        best.allocation = current;
      }
    } else {
      // Revert the tentative sums.
      if (ta >= 0) {
        state.remove_thread(static_cast<std::size_t>(ta), cb);
        state.add_thread(static_cast<std::size_t>(ta), ca);
      }
      if (tb >= 0) {
        state.remove_thread(static_cast<std::size_t>(tb), ca);
        state.add_thread(static_cast<std::size_t>(tb), cb);
      }
      state.refresh_cores(ca, cb);
    }
  }

  best.iterations = iters;
  best.host_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return best;
}

SaResult exhaustive_optimum(const Matrix& s, const Matrix& p,
                            const BalanceObjective& objective) {
  const std::size_t m = s.rows();
  const std::size_t n = s.cols();
  if (m == 0 || n == 0) throw std::invalid_argument("exhaustive: empty");
  double states = 1;
  for (std::size_t i = 0; i < m; ++i) {
    states *= static_cast<double>(n);
    if (states > 16e6) {
      throw std::invalid_argument("exhaustive_optimum: too many states");
    }
  }

  std::vector<CoreId> alloc(m, 0);
  SaResult best;
  best.allocation = alloc;
  best.objective = evaluate_allocation(s, p, objective, alloc);
  best.initial_objective = best.objective;

  const auto total = static_cast<std::uint64_t>(states);
  for (std::uint64_t code = 1; code < total; ++code) {
    std::uint64_t x = code;
    for (std::size_t i = 0; i < m; ++i) {
      alloc[i] = static_cast<CoreId>(x % n);
      x /= n;
    }
    const double v = evaluate_allocation(s, p, objective, alloc);
    if (v > best.objective) {
      best.objective = v;
      best.allocation = alloc;
    }
  }
  best.iterations = static_cast<int>(std::min<std::uint64_t>(
      total, static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
  return best;
}

}  // namespace sb::core
