#include "core/sa_optimizer.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/fixed_math.h"
#include "obs/sink.h"

namespace sb::core {
namespace {

bool allowed_on(const std::vector<std::bitset<kMaxCores>>* affinity,
                std::size_t row, CoreId c) {
  if (!affinity) return true;
  return (*affinity)[row].test(static_cast<std::size_t>(c));
}

}  // namespace

void SaOptimizer::ensure_radius_schedule(int iters) {
  Scratch& sc = scratch_;
  if (sc.radii_initial_perturb == cfg_.initial_perturb &&
      sc.radii_decay == cfg_.perturb_decay &&
      (sc.radii_converged ||
       sc.radii.size() >= static_cast<std::size_t>(iters))) {
    return;
  }
  sc.radii.clear();
  sc.radii_converged = false;
  sc.radii_initial_perturb = cfg_.initial_perturb;
  sc.radii_decay = cfg_.perturb_decay;
  Fixed perturb = Fixed::from_double(cfg_.initial_perturb);
  const Fixed dperturb = Fixed::from_double(cfg_.perturb_decay);
  for (int it = 0; it < iters; ++it) {
    sc.radii.push_back(fixed_sqrt(perturb).to_double());
    // Exactly the in-loop decay: multiply, then clamp the raw value so the
    // radius never reaches zero.
    Fixed next = perturb * dperturb;
    if (next.raw() < 16) next = Fixed::from_raw(16);
    if (next.raw() == perturb.raw()) {
      // Fixed point reached: every remaining iteration sees this perturb.
      sc.radius_tail = sc.radii.back();
      sc.radii_converged = true;
      return;
    }
    perturb = next;
  }
  sc.radius_tail = sc.radii.empty() ? 0.0 : sc.radii.back();
}

int sa_auto_iterations(int num_cores, int num_threads) {
  // ~12 proposals per (thread, core) pair, saturating where the measured
  // per-iteration cost (~0.1 us, see bench/micro_benchmarks) would push a
  // pass beyond a few milliseconds of the 60 ms epoch (Fig. 8a: "for larger
  // configurations we limit the number of iterations").
  const long nm = static_cast<long>(num_cores) * num_threads;
  return static_cast<int>(std::min<long>(100 + 12 * nm, 60000));
}

double evaluate_allocation(const Matrix& s, const Matrix& p,
                           const BalanceObjective& objective,
                           const std::vector<CoreId>& allocation) {
  if (s.rows() != allocation.size() || p.rows() != allocation.size() ||
      s.cols() != p.cols()) {
    throw std::invalid_argument("evaluate_allocation: shape mismatch");
  }
  ObjectiveScratch scratch;
  ObjectiveState<BalanceObjective> state(scratch, s, p, objective, allocation);
  return state.total();
}

template <class Obj>
SaResult SaOptimizer::run_annealing(
    const Matrix& s, const Matrix& p, const Obj& objective,
    std::vector<CoreId> initial,
    const std::vector<std::bitset<kMaxCores>>* affinity,
    const std::vector<double>* demand_gips) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t m = s.rows();
  const auto n = static_cast<std::int64_t>(s.cols());

  // Ψ as the paper's flat slot array: m slots per core, entry = thread row
  // or -1. Each thread starts in a slot of its current core. slot→core is
  // slot / m, computed with a precomputed reciprocal (exact: both operands
  // are well under 2^32) so the inner loop neither divides nor touches a
  // lookup table.
  const std::int64_t slots = n * static_cast<std::int64_t>(m);
  std::vector<std::int32_t>& psi = scratch_.psi;
  psi.assign(static_cast<std::size_t>(slots), -1);
  {
    std::vector<std::size_t>& next_free = scratch_.next_free;
    next_free.assign(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto c = static_cast<std::size_t>(initial[i]);
      const std::size_t slot = c * m + next_free[c]++;
      psi[slot] = static_cast<std::int32_t>(i);
    }
  }
  const FastMod slot_div(static_cast<std::uint64_t>(m));

  ObjectiveState<Obj> state(scratch_.objective, s, p, objective, initial,
                            demand_gips);
  SaResult best;
  best.initial_objective = state.total();
  best.allocation = initial;
  best.objective = state.total();

  Rng rng(cfg_.seed);
  // Every slot draw reduces a 64-bit sample modulo the same n·m; a
  // precomputed reciprocal replaces the hardware division. randi(0, slots)
  // and randi(-pos, slots - pos) both have span == slots, so the draw
  // sequence is unchanged.
  const FastMod fm(static_cast<std::uint64_t>(slots));
  const int iters = cfg_.max_iterations > 0
                        ? cfg_.max_iterations
                        : sa_auto_iterations(static_cast<int>(n),
                                             static_cast<int>(m));
  ensure_radius_schedule(iters);
  const std::vector<double>& radii = scratch_.radii;
  const double radius_tail = scratch_.radius_tail;
  double accept =
      std::max(1e-9, cfg_.initial_accept_rel * std::abs(state.total()));
  const double daccept = cfg_.accept_decay;

  std::vector<CoreId>& current = scratch_.current;
  current = initial;
  double current_obj = state.total();
  int accepted_since_resync = 0;

  for (int it = 0; it < iters; ++it) {
    // --- Propose: perturbation-radius slot swap (Algorithm 1) ---
    // Both unconditional draws are batched up front (identical sequence to
    // drawing them at their use sites).
    const std::uint64_t r0 = rng.next_u64();
    const std::uint64_t r1 = rng.next_u64();
    const auto pos = static_cast<std::int64_t>(fm.mod(r0));
    const double radius = static_cast<std::size_t>(it) < radii.size()
                              ? radii[static_cast<std::size_t>(it)]
                              : radius_tail;
    // randi(-pos, slots - pos) == -pos + (u64 draw) % slots.
    const std::int64_t draw =
        -pos + static_cast<std::int64_t>(fm.mod(r1));
    std::int64_t offset =
        static_cast<std::int64_t>(radius * static_cast<double>(draw));
    std::int64_t pos_new = std::clamp<std::int64_t>(pos + offset, 0, slots - 1);
    const CoreId ca =
        static_cast<CoreId>(slot_div.div(static_cast<std::uint64_t>(pos)));
    CoreId cb =
        static_cast<CoreId>(slot_div.div(static_cast<std::uint64_t>(pos_new)));
    // Once the radius collapses, the scaled offset truncates to (nearly)
    // zero and every proposal would degenerate into a same-slot or
    // same-core no-op, silently ending the search. Fall back to a uniform
    // draw so each iteration still proposes a real move — slot indices
    // carry no topology, so this preserves Algorithm 1's semantics.
    if (pos_new == pos || cb == ca) {
      pos_new = static_cast<std::int64_t>(fm.mod(rng.next_u64()));
      cb = static_cast<CoreId>(
          slot_div.div(static_cast<std::uint64_t>(pos_new)));
    }

    const std::int32_t ta = psi[static_cast<std::size_t>(pos)];
    const std::int32_t tb = psi[static_cast<std::size_t>(pos_new)];

    // The acceptance schedule advances every iteration regardless of move
    // validity (the perturb schedule advances inside the memoized radii).
    accept *= daccept;

    if (pos == pos_new || ca == cb) continue;          // no-op
    if (ta < 0 && tb < 0) continue;                    // empty↔empty
    if (ta >= 0 && !allowed_on(affinity, static_cast<std::size_t>(ta), cb)) {
      continue;  // affinity forbids
    }
    if (tb >= 0 && !allowed_on(affinity, static_cast<std::size_t>(tb), ca)) {
      continue;
    }

    // --- Apply tentatively, evaluating only the two affected cores ---
    if (ta >= 0) {
      state.remove_thread(static_cast<std::size_t>(ta), ca);
      state.add_thread(static_cast<std::size_t>(ta), cb);
    }
    if (tb >= 0) {
      state.remove_thread(static_cast<std::size_t>(tb), cb);
      state.add_thread(static_cast<std::size_t>(tb), ca);
    }
    const double diff = state.refresh_cores(ca, cb);

    bool take = diff > 0;
    if (!take) {
      if (cfg_.fixed_point_acceptance) {
        // probability = e^(diff/accept) computed in Q16.16; accepted when
        // randi() mod round(1/probability) == 0, as in the paper's listing.
        const double ratio = std::max(-15.9, diff / accept);
        const Fixed prob = fixed_exp_neg(Fixed::saturating_from_double(ratio));
        if (prob.raw() > 0) {
          const std::uint32_t inv = static_cast<std::uint32_t>(
              std::max<std::int64_t>(1, Fixed::kOne / prob.raw()));
          take = (rng.randi() % inv) == 0;
        }
      } else {
        take = rng.uniform() < std::exp(diff / accept);
      }
    }

    if (take) {
      std::swap(psi[static_cast<std::size_t>(pos)],
                psi[static_cast<std::size_t>(pos_new)]);
      if (ta >= 0) current[static_cast<std::size_t>(ta)] = cb;
      if (tb >= 0) current[static_cast<std::size_t>(tb)] = ca;
      current_obj += diff;
      if (diff > 0) {
        ++best.improved;
      } else {
        ++best.accepted_worse;
      }
      // Drift resync: `current_obj += diff` and the state's running
      // accumulators drift in the last bits over tens of thousands of
      // incremental updates; periodically recompute both from the current
      // allocation so long anneals stay anchored to the true objective.
      if (++accepted_since_resync >= kObjectiveResyncInterval) {
        accepted_since_resync = 0;
        state.rebuild(current);
#ifndef NDEBUG
        assert(std::abs(state.total() - current_obj) <=
               kObjectiveDriftBound *
                   std::max(1.0, std::abs(state.total())));
#endif
        current_obj = state.total();
        ++best.resyncs;
      }
      if (current_obj > best.objective) {
        best.objective = current_obj;
        best.allocation = current;
      }
    } else {
      // Revert the tentative sums.
      if (ta >= 0) {
        state.remove_thread(static_cast<std::size_t>(ta), cb);
        state.add_thread(static_cast<std::size_t>(ta), ca);
      }
      if (tb >= 0) {
        state.remove_thread(static_cast<std::size_t>(tb), ca);
        state.add_thread(static_cast<std::size_t>(tb), cb);
      }
      state.refresh_cores(ca, cb);
    }
  }

  best.iterations = iters;
  best.host_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return best;
}

SaResult SaOptimizer::optimize(
    const Matrix& s, const Matrix& p, const BalanceObjective& objective,
    std::vector<CoreId> initial,
    const std::vector<std::bitset<kMaxCores>>* affinity,
    const std::vector<double>* demand_gips) {
  const std::size_t m = s.rows();
  const auto n = static_cast<std::int64_t>(s.cols());
  if (m == 0 || n == 0) {
    throw std::invalid_argument("SaOptimizer: empty problem");
  }
  if (p.rows() != m || p.cols() != s.cols() || initial.size() != m) {
    throw std::invalid_argument("SaOptimizer: shape mismatch");
  }
  if (demand_gips && demand_gips->size() != m) {
    throw std::invalid_argument("SaOptimizer: demand size mismatch");
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (initial[i] < 0 || initial[i] >= n) {
      throw std::invalid_argument("SaOptimizer: bad initial allocation");
    }
  }

  // Devirtualize: dispatch once per call to the kernel instantiated for the
  // concrete objective class (all built-ins are final, so every core_term /
  // core_fraction / fractional call inlines). Custom objectives take the
  // generic kernel — identical semantics through virtual dispatch.
  SaResult result = [&]() -> SaResult {
    switch (objective.kind()) {
      case ObjectiveKind::kEnergyEfficiency:
        return run_annealing(
            s, p, static_cast<const EnergyEfficiencyObjective&>(objective),
            std::move(initial), affinity, demand_gips);
      case ObjectiveKind::kThroughput:
        return run_annealing(
            s, p, static_cast<const ThroughputObjective&>(objective),
            std::move(initial), affinity, demand_gips);
      case ObjectiveKind::kEdp:
        return run_annealing(s, p, static_cast<const EdpObjective&>(objective),
                             std::move(initial), affinity, demand_gips);
      case ObjectiveKind::kGlobalEfficiency:
        return run_annealing(
            s, p, static_cast<const GlobalEfficiencyObjective&>(objective),
            std::move(initial), affinity, demand_gips);
      case ObjectiveKind::kCustom:
        break;
    }
    return run_annealing<BalanceObjective>(s, p, objective, std::move(initial),
                                           affinity, demand_gips);
  }();
  if (obs_ != nullptr) {
    auto& m = obs_->metrics();
    m.counter("sa.calls").add();
    m.counter("sa.iterations").add(static_cast<std::uint64_t>(
        std::max(result.iterations, 0)));
    m.counter("sa.accepted_worse").add(static_cast<std::uint64_t>(
        std::max(result.accepted_worse, 0)));
    m.counter("sa.improved").add(static_cast<std::uint64_t>(
        std::max(result.improved, 0)));
    m.counter("sa.resyncs").add(static_cast<std::uint64_t>(
        std::max(result.resyncs, 0)));
    m.histogram("sa.host_ns").record(static_cast<std::uint64_t>(
        std::max<TimeNs>(result.host_ns, 0)));
  }
  return result;
}

SaResult exhaustive_optimum(const Matrix& s, const Matrix& p,
                            const BalanceObjective& objective) {
  const std::size_t m = s.rows();
  const std::size_t n = s.cols();
  if (m == 0 || n == 0) throw std::invalid_argument("exhaustive: empty");
  double states = 1;
  for (std::size_t i = 0; i < m; ++i) {
    states *= static_cast<double>(n);
    if (states > 16e6) {
      throw std::invalid_argument("exhaustive_optimum: too many states");
    }
  }
  const auto total = static_cast<std::uint64_t>(states);

  std::vector<CoreId> alloc(m, 0);
  ObjectiveScratch scratch;
  ObjectiveState<BalanceObjective> state(scratch, s, p, objective, alloc);
  SaResult best;
  best.allocation = alloc;
  best.objective = state.total();
  best.initial_objective = state.total();

  if (n > 1) {
    // Mixed-radix reflected Gray-code enumeration (Knuth 7.2.1.1, Algorithm
    // H with focus pointers): successive allocations differ in exactly one
    // thread's core, by ±1, so each of the n^m states costs one incremental
    // remove/add/refresh instead of a full ObjectiveState rebuild.
    std::vector<int> dir(m, 1);
    std::vector<std::size_t> focus(m + 1);
    for (std::size_t j = 0; j <= m; ++j) focus[j] = j;
    std::uint64_t visited = 1;
    while (true) {
      const std::size_t j = focus[0];
      focus[0] = 0;
      if (j == m) break;
      const CoreId from = alloc[j];
      const CoreId to = static_cast<CoreId>(from + dir[j]);
      alloc[j] = to;
      if (to == 0 || to == static_cast<CoreId>(n - 1)) {
        dir[j] = -dir[j];
        focus[j] = focus[j + 1];
        focus[j + 1] = j + 1;
      }
      state.remove_thread(j, from);
      state.add_thread(j, to);
      state.refresh_cores(from, to);
      ++visited;
      // Same drift control as the annealer: re-anchor the incremental
      // accumulators periodically over the (up to 16M-step) walk.
      if ((visited & 0xffffULL) == 0) state.rebuild(alloc);
      if (state.total() > best.objective) {
        best.objective = state.total();
        best.allocation = alloc;
      }
    }
  }

  best.iterations = static_cast<int>(std::min<std::uint64_t>(
      total, static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
  return best;
}

}  // namespace sb::core
