#include "core/sensing.h"

#include <algorithm>
#include <cmath>

#include "obs/sink.h"

namespace sb::core {

SensingSubsystem::SensingSubsystem(const arch::Platform& platform, Config cfg,
                                   Rng rng)
    : platform_(platform), cfg_(cfg), rng_(rng) {}

void SensingSubsystem::bump(std::string_view metric) {
  if (obs_ != nullptr) obs_->metrics().counter(metric).add();
}

double SensingSubsystem::noisy(double v, double sigma) {
  if (sigma <= 0) return v;
  return std::max(0.0, v * (1.0 + sigma * rng_.gaussian()));
}

ThreadObservation SensingSubsystem::reduce(const os::EpochSample& s) {
  ThreadObservation o;
  o.tid = s.tid;
  o.core = s.core;
  o.core_type = s.core >= 0 ? platform_.type_of(s.core) : -1;
  o.runtime = s.runtime;
  o.util = s.util;

  const auto& c = s.counters;
  const double sig = cfg_.counter_noise_sigma;
  // Each counter is read with independent relative error; ratios inherit
  // noise from both numerator and denominator, as on real hardware.
  const double inst_total = noisy(static_cast<double>(c.inst_total), sig);
  const double inst_mem = noisy(static_cast<double>(c.inst_mem), sig);
  const double inst_branch = noisy(static_cast<double>(c.inst_branch), sig);
  const double mispred = noisy(static_cast<double>(c.branch_mispred), sig);
  const double l1i_a = noisy(static_cast<double>(c.l1i_access), sig);
  const double l1i_m = noisy(static_cast<double>(c.l1i_miss), sig);
  const double l1d_a = noisy(static_cast<double>(c.l1d_access), sig);
  const double l1d_m = noisy(static_cast<double>(c.l1d_miss), sig);
  const double itlb_a = noisy(static_cast<double>(c.itlb_access), sig);
  const double itlb_m = noisy(static_cast<double>(c.itlb_miss), sig);
  const double dtlb_a = noisy(static_cast<double>(c.dtlb_access), sig);
  const double dtlb_m = noisy(static_cast<double>(c.dtlb_miss), sig);
  const double active_cyc =
      noisy(static_cast<double>(c.active_cycles()), sig);

  auto ratio = [](double num, double den) { return den > 0 ? num / den : 0.0; };
  o.instructions = c.inst_total;
  o.ipc = ratio(inst_total, active_cyc);
  o.imsh = ratio(inst_mem, inst_total);
  o.ibsh = ratio(inst_branch, inst_total);
  o.mr_branch = ratio(mispred, inst_branch);
  o.mr_l1i = ratio(l1i_m, l1i_a);
  o.mr_l1d = ratio(l1d_m, l1d_a);
  o.mr_itlb = ratio(itlb_m, itlb_a);
  o.mr_dtlb = ratio(dtlb_m, dtlb_a);

  // Measured throughput while executing: IPS = IPC × F (paper §4.2.1).
  // Under DVFS the sample carries the core's actual frequency.
  o.freq_mhz = s.freq_mhz > 0
                   ? s.freq_mhz
                   : (o.core >= 0 ? platform_.params_of(s.core).freq_mhz : 0.0);
  o.ips = o.ipc * o.freq_mhz * 1e6;

  // Per-thread power from the sensed energy over execution time (Eq. 5).
  const double energy = noisy(s.energy_j, cfg_.energy_noise_sigma);
  o.power_w = s.runtime > 0 ? energy / to_seconds(s.runtime) : 0.0;

  o.measured = s.runtime >= cfg_.min_runtime && c.inst_total > 0;
  return o;
}

bool SensingSubsystem::accept_fresh(const ThreadObservation& o,
                                    const os::EpochSample& s) {
  const SensingDefenseConfig& d = cfg_.defense;
  if (check_plausibility(o, s.counters, d.limits) ==
      PlausibilityVerdict::kImplausible) {
    ++health_.implausible_rejected;
    bump("sense.implausible_rejected");
    return false;
  }
  // A thread that executed a full epoch while its rail reported (near)
  // nothing is on a dead or stuck-at-zero power sensor.
  if (s.runtime >= cfg_.min_runtime && o.power_w < d.limits.min_power_w) {
    ++health_.implausible_rejected;
    bump("sense.implausible_rejected");
    return false;
  }
  // Outlier screen: fresh throughput against the median of the thread's
  // recent accepted history. Catches saturation/duplication artefacts that
  // stay inside the physical envelope.
  const auto it = thread_health_.find(s.tid);
  if (it != thread_health_.end() &&
      static_cast<int>(it->second.ips_history.size()) >= d.min_history) {
    std::vector<double> h = it->second.ips_history;
    std::nth_element(h.begin(), h.begin() + h.size() / 2, h.end());
    const double med = h[h.size() / 2];
    if (med > 0 &&
        (o.ips > med * d.outlier_factor || o.ips < med / d.outlier_factor)) {
      ++health_.outliers_rejected;
      bump("sense.outliers_rejected");
      return false;
    }
  }
  return true;
}

void SensingSubsystem::note_accepted(ThreadId tid, double ips) {
  ThreadHealth& h = thread_health_[tid];
  h.confidence = 1.0;
  h.stale_epochs = 0;
  const auto window = static_cast<std::size_t>(
      std::max(1, cfg_.defense.median_window));
  if (h.ips_history.size() < window) {
    h.ips_history.push_back(ips);
  } else {
    h.ips_history[h.ips_next] = ips;
    h.ips_next = (h.ips_next + 1) % window;
  }
}

void SensingSubsystem::note_rejected(ThreadId tid) {
  ThreadHealth& h = thread_health_[tid];
  h.confidence *= cfg_.defense.health_decay;
}

std::vector<ThreadObservation> SensingSubsystem::observe(
    const std::vector<os::EpochSample>& samples) {
  std::vector<ThreadObservation> out;
  out.reserve(samples.size());
  const bool defended = cfg_.defense.enabled;
  for (const auto& s : samples) {
    ThreadObservation o = reduce(s);
    sanitize_observation(o);
    if (defended && o.measured && !accept_fresh(o, s)) {
      // Corrupted fresh measurement: discard it and fall through to the
      // stale-serve path, exactly as if the thread had not run.
      o.measured = false;
      note_rejected(s.tid);
    } else if (defended && !o.measured && s.runtime >= cfg_.min_runtime) {
      // Ran a full epoch yet retired nothing — the blackout signature; the
      // sensing infrastructure (not the thread) is the problem.
      ++health_.implausible_rejected;
      bump("sense.implausible_rejected");
      note_rejected(s.tid);
    }
    // A freshly migrated thread's counters reflect cold caches, not the
    // core; keep the previous characterization until it has warmed up
    // (otherwise every migration makes the new core look bad and the old
    // one look good, and the loop ping-pongs).
    if (o.measured && !s.warm && last_good_.count(s.tid) > 0) {
      ThreadObservation cached = last_good_.at(s.tid);
      cached.util = s.util;
      cached.runtime = s.runtime;
      out.push_back(cached);
      continue;
    }
    if (o.measured) {
      if (defended) note_accepted(s.tid, o.ips);
      const auto it = last_good_.find(s.tid);
      if (cfg_.smoothing > 0 && it != last_good_.end() &&
          it->second.core_type == o.core_type) {
        const double h = std::min(cfg_.smoothing, 0.95);
        auto blend = [h](double prev, double fresh) {
          return h * prev + (1.0 - h) * fresh;
        };
        const ThreadObservation& prev = it->second;
        o.ipc = blend(prev.ipc, o.ipc);
        o.ips = blend(prev.ips, o.ips);
        o.power_w = blend(prev.power_w, o.power_w);
        o.imsh = blend(prev.imsh, o.imsh);
        o.ibsh = blend(prev.ibsh, o.ibsh);
        o.mr_branch = blend(prev.mr_branch, o.mr_branch);
        o.mr_l1i = blend(prev.mr_l1i, o.mr_l1i);
        o.mr_l1d = blend(prev.mr_l1d, o.mr_l1d);
        o.mr_itlb = blend(prev.mr_itlb, o.mr_itlb);
        o.mr_dtlb = blend(prev.mr_dtlb, o.mr_dtlb);
      }
      last_good_[s.tid] = o;
    } else {
      const auto it = last_good_.find(s.tid);
      if (defended) {
        ThreadHealth& h = thread_health_[s.tid];
        ++h.stale_epochs;
        if (it != last_good_.end() &&
            h.stale_epochs <= cfg_.defense.max_stale_epochs) {
          // Stale but recently characterized: reuse the last measurement,
          // refreshed with the current utilization.
          o = it->second;
          o.util = s.util;
          o.runtime = s.runtime;
          ++health_.stale_served;
          bump("sense.stale_served");
        } else {
          // Too stale to trust (or never characterized): hand the predictor
          // the neutral prior instead of fossil data.
          ThreadObservation neutral;
          neutral.tid = s.tid;
          neutral.core = s.core;
          neutral.core_type = o.core_type;
          neutral.freq_mhz = o.freq_mhz;
          neutral.util = s.util;
          neutral.runtime = s.runtime;
          if (it != last_good_.end()) {
            ++health_.neutral_served;
            bump("sense.neutral_served");
          }
          o = neutral;
        }
      } else if (it != last_good_.end()) {
        // Stale but characterized: reuse the last measurement, refreshed
        // with the current utilization.
        o = it->second;
        o.util = s.util;
        o.runtime = s.runtime;
      }
    }
    out.push_back(o);
  }
  if (defended && !samples.empty()) {
    std::size_t healthy = 0;
    for (const auto& s : samples) {
      const auto it = thread_health_.find(s.tid);
      const double conf = it != thread_health_.end() ? it->second.confidence : 1.0;
      if (conf >= cfg_.defense.healthy_threshold) ++healthy;
    }
    health_.healthy_fraction =
        static_cast<double>(healthy) / static_cast<double>(samples.size());
    if (obs_ != nullptr) {
      obs_->metrics().gauge("sense.healthy_fraction").set(
          health_.healthy_fraction);
    }
  }
  garbage_collect(samples);
  return out;
}

void SensingSubsystem::garbage_collect(
    const std::vector<os::EpochSample>& samples) {
  if (last_good_.size() < 2 * samples.size() + 16) return;
  std::unordered_map<ThreadId, ThreadObservation> kept;
  std::unordered_map<ThreadId, ThreadHealth> kept_health;
  for (const auto& s : samples) {
    const auto it = last_good_.find(s.tid);
    if (it != last_good_.end()) kept.insert(*it);
    const auto ht = thread_health_.find(s.tid);
    if (ht != thread_health_.end()) kept_health.insert(*ht);
  }
  last_good_ = std::move(kept);
  thread_health_ = std::move(kept_health);
}

}  // namespace sb::core
