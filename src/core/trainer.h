// Offline predictor training (the paper's "standard linear regression using
// the least squares method", §4.2.2) and prediction-error evaluation
// (Fig. 6 / Table 4).
//
// Profiling runs are emulated by evaluating the mechanistic models for each
// training workload on each core type and synthesizing noisy counter
// observations — the same information a real profiling campaign on the
// gem5 platform produced for the authors. Training never reads model
// internals, only observable (counters, sensed power) quantities.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/predictor.h"
#include "core/sensing.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "workload/profile.h"

namespace sb::core {

class PredictorTrainer {
 public:
  struct Config {
    int replicas = 8;              // jittered copies of each profile
    double jitter_sigma = 0.06;    // profile diversity for regression
    double counter_noise = 0.005;  // observation noise during profiling
    double ridge = 1e-6;           // regularization (degenerate columns)
    std::uint64_t seed = 7;
    std::uint64_t profiling_insts = 20'000'000;  // per profiling run
    double mem_latency_ns = 80.0;  // evaluation operating point
    /// Memory-latency operating points sampled during training, so the
    /// regression stays calibrated under shared-bus contention (the runtime
    /// system sees inflated latencies when many cores miss concurrently).
    std::vector<double> training_latencies_ns = {80.0, 140.0, 220.0};
    /// Frequency ratios (relative to nominal) sampled during training. The
    /// default trains at nominal only (the paper's fixed-V/f setting); add
    /// ratios (e.g. {0.4, 0.7, 1.0}) when the runtime system uses DVFS so
    /// the FR feature sees real variation.
    std::vector<double> training_freq_ratios = {1.0};
  };

  PredictorTrainer(const perf::PerfModel& perf, const power::PowerModel& power)
      : PredictorTrainer(perf, power, Config()) {}
  PredictorTrainer(const perf::PerfModel& perf, const power::PowerModel& power,
                   Config cfg);

  /// Trains Θ for every ordered core-type pair and the per-type power
  /// interpolation from the given workload set.
  PredictorModel train(
      const std::vector<workload::WorkloadProfile>& profiles) const;

  struct ProfileError {
    std::string name;
    double perf_err_pct = 0;   // mean |Δipc| / ipc over all type pairs
    double power_err_pct = 0;  // mean |Δp| / p
  };
  struct ErrorReport {
    std::vector<ProfileError> per_profile;
    double avg_perf_err_pct = 0;
    double avg_power_err_pct = 0;
  };

  /// Prediction error of `model` on `profiles` (fresh noisy observations).
  ErrorReport evaluate(
      const PredictorModel& model,
      const std::vector<workload::WorkloadProfile>& profiles) const;

  /// Fig. 6 methodology: for each benchmark, train on all *other*
  /// benchmarks and evaluate on the held-out one.
  ErrorReport leave_one_out(
      const std::vector<std::pair<std::string,
                                  std::vector<workload::WorkloadProfile>>>&
          by_benchmark) const;

  /// Synthesizes a (noisy) profiling observation of `profile` on `src`.
  ThreadObservation synthesize_observation(
      const workload::WorkloadProfile& profile, CoreTypeId src,
      Rng& rng) const {
    return synthesize_observation(profile, src, rng, cfg_.mem_latency_ns);
  }
  ThreadObservation synthesize_observation(
      const workload::WorkloadProfile& profile, CoreTypeId src, Rng& rng,
      double mem_latency_ns) const {
    return synthesize_observation(profile, src, rng, mem_latency_ns, 0.0);
  }
  /// `freq_mhz` > 0 profiles the source core at a non-nominal DVFS point.
  ThreadObservation synthesize_observation(
      const workload::WorkloadProfile& profile, CoreTypeId src, Rng& rng,
      double mem_latency_ns, double freq_mhz) const;

  /// All phase profiles of the benchmark library (PARSEC + x264 + IMB).
  static std::vector<workload::WorkloadProfile> default_training_profiles();
  /// The same grouped per benchmark, for leave-one-out evaluation.
  static std::vector<
      std::pair<std::string, std::vector<workload::WorkloadProfile>>>
  profiles_by_benchmark();

  const Config& config() const { return cfg_; }

 private:
  const perf::PerfModel& perf_;
  const power::PowerModel& power_;
  Config cfg_;
};

}  // namespace sb::core
