#include "core/predictor.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/matrix.h"

namespace sb::core {

PredictorModel::PredictorModel(int num_types) : num_types_(num_types) {
  if (num_types <= 0) throw std::invalid_argument("PredictorModel: num_types");
  theta_.resize(static_cast<std::size_t>(num_types) *
                static_cast<std::size_t>(num_types));
  power_.resize(static_cast<std::size_t>(num_types));
  for (auto& t : theta_) t.fill(0.0);
  for (auto& p : power_) p = {0.0, 0.0};
}

std::size_t PredictorModel::pair_index(CoreTypeId src, CoreTypeId dst) const {
  if (src < 0 || src >= num_types_ || dst < 0 || dst >= num_types_) {
    throw std::out_of_range("PredictorModel: bad core type");
  }
  return static_cast<std::size_t>(src * num_types_ + dst);
}

const std::array<double, kNumFeatures>& PredictorModel::theta(
    CoreTypeId src, CoreTypeId dst) const {
  return theta_[pair_index(src, dst)];
}

void PredictorModel::set_theta(CoreTypeId src, CoreTypeId dst,
                               const std::array<double, kNumFeatures>& c) {
  theta_[pair_index(src, dst)] = c;
}

std::array<double, 2> PredictorModel::power_coeffs(CoreTypeId t) const {
  if (t < 0 || t >= num_types_) throw std::out_of_range("power_coeffs");
  return power_[static_cast<std::size_t>(t)];
}

void PredictorModel::set_power_coeffs(CoreTypeId t, double alpha1,
                                      double alpha0) {
  if (t < 0 || t >= num_types_) throw std::out_of_range("set_power_coeffs");
  power_[static_cast<std::size_t>(t)] = {alpha1, alpha0};
}

void PredictorModel::set_ipc_bounds(double floor, double ceiling) {
  if (floor <= 0 || ceiling <= floor) {
    throw std::invalid_argument("PredictorModel: bad ipc bounds");
  }
  ipc_floor_ = floor;
  ipc_ceiling_ = ceiling;
}

double PredictorModel::predict_ipc(const ThreadObservation& obs,
                                   CoreTypeId dst, double src_freq_mhz,
                                   double dst_freq_mhz) const {
  if (dst_freq_mhz <= 0 || src_freq_mhz <= 0) {
    throw std::invalid_argument("predict_ipc: bad frequency");
  }
  if (obs.core_type == dst) return std::clamp(obs.ipc, ipc_floor_, ipc_ceiling_);
  const auto x = make_features(obs, src_freq_mhz / dst_freq_mhz);
  const auto& th = theta(obs.core_type, dst);
  double y = 0;
  for (std::size_t i = 0; i < kNumFeatures; ++i) y += th[i] * x[i];
  return std::clamp(y, ipc_floor_, ipc_ceiling_);
}

double PredictorModel::predict_power(CoreTypeId dst, double ipc) const {
  const auto [a1, a0] = power_coeffs(dst);
  return std::max(1e-4, a1 * ipc + a0);
}

void PredictorModel::save(std::ostream& os) const {
  os << "smartbalance-predictor v1\n";
  os << "types " << num_types_ << "\n";
  os << std::setprecision(17);
  os << "ipc_bounds " << ipc_floor_ << ' ' << ipc_ceiling_ << "\n";
  for (CoreTypeId s = 0; s < num_types_; ++s) {
    for (CoreTypeId d = 0; d < num_types_; ++d) {
      if (s == d) continue;
      os << "theta " << s << ' ' << d;
      for (double v : theta(s, d)) os << ' ' << v;
      os << "\n";
    }
  }
  for (CoreTypeId t = 0; t < num_types_; ++t) {
    const auto [a1, a0] = power_coeffs(t);
    os << "power " << t << ' ' << a1 << ' ' << a0 << "\n";
  }
}

void PredictorModel::save_to_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("PredictorModel: cannot write " + path);
  save(os);
}

PredictorModel PredictorModel::load(std::istream& is) {
  auto fail = [](const std::string& why) -> PredictorModel {
    throw std::runtime_error("PredictorModel::load: " + why);
  };
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "smartbalance-predictor" ||
      version != "v1") {
    return fail("bad header");
  }
  std::string key;
  int num_types = 0;
  if (!(is >> key >> num_types) || key != "types" || num_types <= 0) {
    return fail("bad type count");
  }
  PredictorModel m(num_types);
  double floor = 0, ceiling = 0;
  if (!(is >> key >> floor >> ceiling) || key != "ipc_bounds") {
    return fail("bad ipc bounds");
  }
  m.set_ipc_bounds(floor, ceiling);
  while (is >> key) {
    if (key == "theta") {
      int s = 0, d = 0;
      std::array<double, kNumFeatures> th{};
      if (!(is >> s >> d)) return fail("truncated theta row");
      for (auto& v : th) {
        if (!(is >> v)) return fail("truncated theta coefficients");
      }
      if (s < 0 || s >= num_types || d < 0 || d >= num_types || s == d) {
        return fail("theta indices out of range");
      }
      m.set_theta(s, d, th);
    } else if (key == "power") {
      int t = 0;
      double a1 = 0, a0 = 0;
      if (!(is >> t >> a1 >> a0)) return fail("truncated power row");
      if (t < 0 || t >= num_types) return fail("power index out of range");
      m.set_power_coeffs(t, a1, a0);
    } else {
      return fail("unknown record: " + key);
    }
  }
  return m;
}

PredictorModel PredictorModel::load_from_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("PredictorModel: cannot read " + path);
  return load(is);
}

bool PredictorModel::operator==(const PredictorModel& o) const {
  return num_types_ == o.num_types_ && theta_ == o.theta_ &&
         power_ == o.power_ && ipc_floor_ == o.ipc_floor_ &&
         ipc_ceiling_ == o.ipc_ceiling_;
}

void PredictorModel::print(std::ostream& os,
                           const arch::Platform& platform) const {
  os << std::left << std::setw(18) << "Predictor IPC";
  for (const auto& n : feature_names()) os << std::setw(10) << n;
  os << '\n';
  for (CoreTypeId s = 0; s < num_types_; ++s) {
    for (CoreTypeId d = 0; d < num_types_; ++d) {
      if (s == d) continue;
      os << std::setw(18)
         << (platform.params_of_type(s).name + "->" +
             platform.params_of_type(d).name);
      const auto& th = theta(s, d);
      os << std::fixed << std::setprecision(3);
      for (double v : th) os << std::setw(10) << v;
      os.unsetf(std::ios::fixed);
      os << '\n';
    }
  }
}

}  // namespace sb::core
