// The throughput and power characterization matrices S(k) and P(k)
// (Eqs. 2 & 3): row i = thread t_i, column j = core c_j. The column for the
// core a thread actually ran on holds the *measured* value; every other
// column is filled by the cross-core-type predictor (paper §4.2.2,
// "values that are unavailable are predicted").
//
// Units: S holds GIPS (10^9 instructions/s) so that objective values stay
// in a numerically comfortable range for the fixed-point acceptance path.
#pragma once

#include <vector>

#include "arch/dvfs.h"
#include "arch/platform.h"
#include "common/matrix.h"
#include "core/features.h"
#include "core/prediction_cache.h"
#include "core/predictor.h"

namespace sb::core {

struct CharacterizationMatrices {
  Matrix s;                      // m×n predicted/measured GIPS
  Matrix p;                      // m×n predicted/measured watts
  std::vector<ThreadId> tids;    // row → thread
  std::vector<CoreId> current;   // row → core the thread is currently on

  std::size_t num_threads() const { return tids.size(); }
  std::size_t num_cores() const { return s.cols(); }
};

/// Builds S and P for the given epoch observations.
///
/// `core_opps` (optional, indexed by CoreId) supplies each core's *current*
/// DVFS operating point; predictions then target that point — the FR
/// feature and the GIPS conversion use the actual frequency, and predicted
/// power is scaled by the V²f dynamic-power law relative to nominal (a
/// slight overestimate of low-V savings on the leakage share, documented
/// in DESIGN.md). Without it, all cores are assumed at nominal.
///
/// `cache` (optional) memoizes per-thread rows across epochs: a thread
/// whose quantized observation key is unchanged reuses last epoch's S/P
/// rows and skips the predictor fan-out entirely (see prediction_cache.h).
/// Passing nullptr — the default — takes the exact path; the result is then
/// bit-identical regardless of any earlier cached builds.
CharacterizationMatrices build_characterization(
    const std::vector<ThreadObservation>& observations,
    const PredictorModel& predictor, const arch::Platform& platform,
    const std::vector<arch::OperatingPoint>* core_opps = nullptr,
    PredictionCache* cache = nullptr);

}  // namespace sb::core
