#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << (c < cells.size() ? cells[c] : "") << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace sb
