// Dense double-precision matrix with the small set of operations the
// predictor trainer needs: products, transpose, linear solves, and
// (ridge-regularized) least squares via the normal equations.
//
// The matrices involved are tiny (tens of rows, ~10 columns — the paper's
// Table 4 regression), so a straightforward row-major implementation with
// partial-pivot Gaussian elimination is both adequate and easy to audit.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace sb {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Constructs from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;
  double& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  double operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s);
  friend Matrix operator*(double s, Matrix m) { return m *= s; }

  /// Row r as a vector copy.
  std::vector<double> row(std::size_t r) const;

  /// Maximum absolute element; 0 for empty.
  double max_abs() const;

  friend std::ostream& operator<<(std::ostream& os, const Matrix& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;  // row-major
};

/// Solves A x = b with partial-pivot Gaussian elimination.
/// Throws std::invalid_argument on shape mismatch, std::runtime_error if A is
/// numerically singular.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Least squares: minimizes |A x - b|^2 + ridge * |x|^2 via the normal
/// equations (A^T A + ridge I) x = A^T b. `ridge > 0` guards against the
/// rank-deficient feature columns that occur in the paper's Table 4 (e.g.
/// the ITLB column is identically zero for several source core types).
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge = 1e-9);

/// Dot product helper (sizes must match).
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace sb
