// Fixed-point transcendental functions for the in-kernel optimizer.
//
// The paper's Algorithm 1 computes the SA acceptance probability
// e^(-diff/accept) with a "custom fixed-point implementation of e^x that
// trades off performance with precision". We implement e^x for x <= 0 via
// binary range reduction over a small table of e^(-2^k) constants — no
// division, no polynomial, ~16 multiplies worst case.
#pragma once

#include "common/fixed_point.h"

namespace sb {

/// e^x in Q16.16 for x <= 0. Inputs below ~-11 underflow to 0 (the smallest
/// representable positive Q16.16 value is 2^-16 ≈ e^-11.09).
/// Precondition relaxation: positive inputs are clamped to 0 (returns 1).
Fixed fixed_exp_neg(Fixed x);

/// Natural log in Q16.16 for x > 0, via normalization to [1,2) and a
/// 16-step bit-by-bit square-and-compare. Returns most-negative Fixed for
/// x <= 0.
Fixed fixed_log(Fixed x);

}  // namespace sb
