// Exact nearest-rank percentiles over latency samples.
//
// Both the fleet dispatcher and the per-node wake-to-run latency report
// promise *exact* tail percentiles (nearest-rank over the full sample, not
// histogram-bucketed estimates): a gated p99 that moved with bucket
// boundaries would make the zero-ceiling latency gates meaningless. The
// obs-layer log-linear histograms remain the cheap always-mergeable view;
// this header is the ground truth they are cross-checked against.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace sb {

/// Exact (nearest-rank, not histogram-bucketed) latency tail of one sample,
/// in nanoseconds.
struct LatencyTail {
  std::uint64_t count = 0;
  double mean_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Nearest-rank percentile of an unsorted sample (q in [0, 1]); 0 when
/// empty. rank = ceil(q * n) clamped to [1, n], value = sorted[rank - 1].
inline std::uint64_t nearest_rank(std::vector<std::uint64_t> sample,
                                  double q) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank < 1) rank = 1;
  if (rank > sample.size()) rank = sample.size();
  return sample[rank - 1];
}

/// Full tail summary of a sample (count/mean/p50/p95/p99/max).
inline LatencyTail tail_of(const std::vector<std::uint64_t>& sample) {
  LatencyTail t;
  t.count = sample.size();
  if (sample.empty()) return t;
  std::vector<std::uint64_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (std::uint64_t v : sorted) sum += static_cast<double>(v);
  t.mean_ns = sum / static_cast<double>(sorted.size());
  auto at = [&](double q) {
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank < 1) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    return sorted[rank - 1];
  };
  t.p50_ns = at(0.50);
  t.p95_ns = at(0.95);
  t.p99_ns = at(0.99);
  t.max_ns = sorted.back();
  return t;
}

}  // namespace sb
