#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sb {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty set");
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0) throw std::invalid_argument("geometric_mean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram bounds");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
  ++counts_[std::min(idx, counts_.size() - 1)];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

}  // namespace sb
