#include "common/fixed_math.h"

#include <array>
#include <cstdint>
#include <limits>

namespace sb {
namespace {

// e^(-2^k) for k = 4..-16 would need 21 entries; we store e^(-2^k) for
// k in [4, -16] as Q16.16 raw values, generated from the exact doubles.
// Index i corresponds to exponent value 2^(4-i), i.e. 16, 8, 4, 2, 1, 1/2...
constexpr int kTableSize = 21;

constexpr std::array<std::int32_t, kTableSize> make_exp_table() {
  // Raw Q16.16 values of e^(-16), e^(-8), e^(-4), e^(-2), e^(-1), e^(-0.5)...
  // Computed at compile time is not possible with std::exp (not constexpr in
  // C++20 on GCC 12), so the values are precomputed literals.
  return {
      0,       // e^-16 = 1.1e-7 -> underflows Q16.16
      22,      // e^-8  = 0.000335462628
      1202,    // e^-4  = 0.018315638889
      8869,    // e^-2  = 0.135335283237
      24109,   // e^-1  = 0.367879441171
      39750,   // e^-0.5 = 0.606530659713
      51039,   // e^-0.25 = 0.778800783071
      57835,   // e^-2^-3 = 0.882496902585
      61564,   // e^-2^-4 = 0.939413062813
      63519,   // e^-2^-5 = 0.969233234476
      64519,   // e^-2^-6 = 0.984496437005
      65025,   // e^-2^-7 = 0.992217972604
      65279,   // e^-2^-8 = 0.996101369471
      65407,   // e^-2^-9 = 0.998048780520
      65471,   // e^-2^-10 = 0.999023914081
      65503,   // e^-2^-11 = 0.999511837932
      65519,   // e^-2^-12 = 0.999755889057
      65527,   // e^-2^-13 = 0.999877937066
      65531,   // e^-2^-14 = 0.999938966657
      65533,   // e^-2^-15 = 0.999969482862
      65535,   // e^-2^-16 = 0.999984741315
  };
}

constexpr std::array<std::int32_t, kTableSize> kExpTable = make_exp_table();

}  // namespace

Fixed fixed_exp_neg(Fixed x) {
  if (x.raw() >= 0) return kFixedOne;
  // Work with |x| and decompose it into a sum of powers of two; multiply the
  // corresponding e^(-2^k) factors together.
  std::uint32_t mag = static_cast<std::uint32_t>(-static_cast<std::int64_t>(x.raw()));
  // |x| >= 16 underflows to zero in Q16.16 (e^-12 = 6e-6 < 2^-16 already at
  // ~-11.1, but 16 is the table's top bucket).
  if (mag >= (16u << Fixed::kFractionBits)) return kFixedZero;

  std::int64_t acc = Fixed::kOne;
  // Bit 20 of mag corresponds to 16 (2^4 in Q16.16), table index 0.
  for (int i = 0; i < kTableSize; ++i) {
    int bit = 20 - i;
    if (mag & (1u << bit)) {
      acc = (acc * kExpTable[static_cast<std::size_t>(i)]) >> Fixed::kFractionBits;
      if (acc == 0) return kFixedZero;
    }
  }
  return Fixed::from_raw(static_cast<std::int32_t>(acc));
}

Fixed fixed_log(Fixed x) {
  if (x.raw() <= 0) return Fixed::from_raw(std::numeric_limits<std::int32_t>::min());
  // Normalize x = m * 2^e with m in [1, 2).
  std::int64_t raw = x.raw();
  int e = 0;
  while (raw >= 2 * Fixed::kOne) {
    raw >>= 1;
    ++e;
  }
  while (raw < Fixed::kOne) {
    raw <<= 1;
    --e;
  }
  // Bit-by-bit: repeatedly square m; each time it crosses 2, emit a fraction
  // bit of log2(m).
  std::int64_t frac = 0;
  for (int i = 0; i < Fixed::kFractionBits; ++i) {
    raw = (raw * raw) >> Fixed::kFractionBits;
    frac <<= 1;
    if (raw >= 2 * Fixed::kOne) {
      raw >>= 1;
      frac |= 1;
    }
  }
  // log(x) = (e + frac) * ln(2); ln2 in Q16.16 = 45426.
  constexpr std::int64_t kLn2 = 45426;
  std::int64_t log2x = (static_cast<std::int64_t>(e) << Fixed::kFractionBits) + frac;
  return Fixed::from_raw(static_cast<std::int32_t>((log2x * kLn2) >> Fixed::kFractionBits));
}

}  // namespace sb
