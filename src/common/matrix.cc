#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace sb {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("ragged matrix literal");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("matrix product shape");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) += a * rhs.at(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("matrix sum shape");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("matrix difference shape");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m.at(r, c) << (c + 1 == m.cols() ? "" : ", ");
    }
    os << (r + 1 == m.rows() ? "]" : ";\n");
  }
  return os;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("solve_linear shape");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: bring the largest remaining |entry| to the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-300)
      throw std::runtime_error("solve_linear: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * x[c];
    x[ri] = acc / a.at(ri, ri);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge) {
  if (a.rows() != b.size()) throw std::invalid_argument("least_squares shape");
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  for (std::size_t i = 0; i < ata.rows(); ++i) ata.at(i, i) += ridge;
  std::vector<double> atb(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) atb[c] += a.at(r, c) * b[r];
  return solve_linear(std::move(ata), std::move(atb));
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot size");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace sb
