// Minimal CSV emission for experiment harnesses. Each bench binary can dump
// its series as CSV next to the human-readable table so plots can be
// regenerated outside the repo.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sb {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// In-memory variant (for tests); contents retrievable via str().
  explicit CsvWriter(const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; must match the header's column count.
  void row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void row(const std::vector<double>& cells);

  /// Buffered contents (in-memory mode only; empty when writing to a file).
  std::string str() const { return buffer_.str(); }

  std::size_t rows_written() const { return rows_; }

  /// Escapes a cell per RFC 4180 (quotes fields containing , " or newline).
  static std::string escape(const std::string& cell);

 private:
  void write_line(const std::vector<std::string>& cells);

  std::ofstream file_;
  std::ostringstream buffer_;
  bool to_file_ = false;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace sb
