// Minimal deterministic fork-join helper shared by the experiment runner
// (batch-level parallelism across simulations) and the sharded balancer
// (intra-epoch parallelism across cluster-local SA passes).
//
// parallel_for distributes tasks [0, n) over a transient pool of worker
// threads using an atomic work-stealing index. Callers that need
// determinism must make each task self-contained (own RNG stream, own
// scratch, writes only to its own output slot) — then the result is
// independent of worker count and completion order, which is exactly the
// contract the runner has guaranteed since PR 1 and the sharded balancer
// inherits.
#pragma once

#include <cstddef>
#include <functional>

namespace sb::common {

/// Resolves a worker count: `requested` if > 0, else the SB_JOBS
/// environment variable if set to a positive integer (a malformed value
/// logs a warning), else std::thread::hardware_concurrency() (at least 1).
int resolve_jobs(int requested);

/// Runs fn(task) for every task in [0, n), spread over at most `threads`
/// workers (clamped to n). With one worker (or n <= 1) the tasks run
/// inline on the calling thread — no spawn. fn receives (task_index,
/// worker_index); worker_index is stable within a worker and < the actual
/// worker count, letting callers keep per-worker accounting without
/// locks. Exceptions must not escape fn: workers run detached loops and a
/// throw would terminate the process, so callers contain errors per-task
/// (the runner stores them in ExperimentResult::error; the sharded
/// balancer's tasks are noexcept by construction).
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t task, int worker)>& fn);

}  // namespace sb::common
