// Q16.16 fixed-point arithmetic.
//
// Algorithm 1 of the paper replaces floating point inside the kernel-resident
// simulated-annealing optimizer with "custom fixed-point implementations of
// rand and e^x that trade off performance with uniformity and precision".
// This type is that substrate: a 32-bit signed value with 16 fractional bits,
// with intermediate products widened to 64 bits so multiplication never
// silently wraps for in-range operands.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace sb {

/// Signed Q16.16 fixed-point number. Range ±32767.9999, resolution 2^-16.
class Fixed {
 public:
  static constexpr int kFractionBits = 16;
  static constexpr std::int32_t kOne = 1 << kFractionBits;

  constexpr Fixed() = default;

  /// Constructs from a raw Q16.16 bit pattern.
  static constexpr Fixed from_raw(std::int32_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Constructs from an integer value (saturating is the caller's problem;
  /// in-kernel uses stay far below the ±32k range).
  static constexpr Fixed from_int(std::int32_t v) {
    return from_raw(v << kFractionBits);
  }

  /// Constructs from a double, rounding to nearest representable.
  static Fixed from_double(double v) {
    return from_raw(static_cast<std::int32_t>(std::lround(v * kOne)));
  }

  /// Largest / smallest representable values.
  static constexpr Fixed max() { return from_raw(0x7FFFFFFF); }
  static constexpr Fixed min() { return from_raw(-0x7FFFFFFF - 1); }

  /// Constructs from a double, saturating at the Q16.16 range instead of
  /// invoking UB on overflow; NaN maps to 0. Bit-identical to from_double
  /// for every in-range finite input. The sensing path feeds doubles derived
  /// from hardware counters into the optimizer; a wrapped 32-bit counter
  /// turns an IPC ratio into ~4e9, and lround(4e9 * 65536) is undefined on
  /// int32 — this is the hardened entry point for such values.
  static Fixed saturating_from_double(double v) {
    if (std::isnan(v)) return Fixed{};
    constexpr double kMax = 32767.99998474121;  // 0x7FFFFFFF / 65536.0
    if (v >= kMax) return max();
    if (v <= -32768.0) return min();
    return from_double(v);
  }

  constexpr std::int32_t raw() const { return raw_; }
  constexpr double to_double() const {
    return static_cast<double>(raw_) / kOne;
  }
  /// Truncates toward negative infinity.
  constexpr std::int32_t to_int() const { return raw_ >> kFractionBits; }

  constexpr Fixed operator-() const { return from_raw(-raw_); }

  constexpr Fixed& operator+=(Fixed o) {
    raw_ += o.raw_;
    return *this;
  }
  constexpr Fixed& operator-=(Fixed o) {
    raw_ -= o.raw_;
    return *this;
  }
  constexpr Fixed& operator*=(Fixed o) {
    raw_ = static_cast<std::int32_t>(
        (static_cast<std::int64_t>(raw_) * o.raw_) >> kFractionBits);
    return *this;
  }
  constexpr Fixed& operator/=(Fixed o) {
    raw_ = static_cast<std::int32_t>(
        (static_cast<std::int64_t>(raw_) << kFractionBits) / o.raw_);
    return *this;
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) { return a += b; }
  friend constexpr Fixed operator-(Fixed a, Fixed b) { return a -= b; }
  friend constexpr Fixed operator*(Fixed a, Fixed b) { return a *= b; }
  friend constexpr Fixed operator/(Fixed a, Fixed b) { return a /= b; }

  friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

  friend std::ostream& operator<<(std::ostream& os, Fixed f) {
    return os << f.to_double();
  }

 private:
  std::int32_t raw_ = 0;
};

inline constexpr Fixed kFixedZero = Fixed::from_raw(0);
inline constexpr Fixed kFixedOne = Fixed::from_raw(Fixed::kOne);

/// Integer square root of a fixed-point value (result is fixed-point).
/// Used by Algorithm 1's perturbation-radius term sqrt(perturb).
Fixed fixed_sqrt(Fixed v);

/// Absolute value.
constexpr Fixed fixed_abs(Fixed v) {
  return v.raw() < 0 ? Fixed::from_raw(-v.raw()) : v;
}

/// Saturating addition: clamps at ±max instead of wrapping. Bit-identical
/// to operator+ whenever the true sum is representable.
constexpr Fixed saturating_add(Fixed a, Fixed b) {
  const std::int64_t sum =
      static_cast<std::int64_t>(a.raw()) + static_cast<std::int64_t>(b.raw());
  if (sum > 0x7FFFFFFFLL) return Fixed::max();
  if (sum < -0x7FFFFFFFLL - 1) return Fixed::min();
  return Fixed::from_raw(static_cast<std::int32_t>(sum));
}

/// Saturating multiplication: the 64-bit Q16.16 product clamps at ±max
/// instead of truncating to the low 32 bits. Bit-identical to operator*
/// whenever the true product is representable.
constexpr Fixed saturating_mul(Fixed a, Fixed b) {
  const std::int64_t prod =
      (static_cast<std::int64_t>(a.raw()) * b.raw()) >> Fixed::kFractionBits;
  if (prod > 0x7FFFFFFFLL) return Fixed::max();
  if (prod < -0x7FFFFFFFLL - 1) return Fixed::min();
  return Fixed::from_raw(static_cast<std::int32_t>(prod));
}

}  // namespace sb
