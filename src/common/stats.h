// Streaming and batch statistics used by metrics collection, the predictor
// trainer (error reporting), and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace sb {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0..100) of `values` by linear interpolation.
/// Sorts a copy; intended for end-of-run reporting, not hot paths.
double percentile(std::vector<double> values, double p);

/// Geometric mean; values must be positive. Returns 0 for empty input.
double geometric_mean(const std::vector<double>& values);

/// Simple fixed-width histogram for overhead distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace sb
