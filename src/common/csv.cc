#include "common/csv.h"

#include <stdexcept>

namespace sb {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : file_(path), to_file_(true), columns_(header.size()) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_line(header);
  rows_ = 0;  // header does not count as a data row
}

CsvWriter::CsvWriter(const std::vector<std::string>& header)
    : to_file_(false), columns_(header.size()) {
  write_line(header);
  rows_ = 0;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: column count mismatch");
  write_line(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << v;
    s.push_back(os.str());
  }
  row(s);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += escape(cells[i]);
  }
  line += '\n';
  if (to_file_) {
    file_ << line;
  } else {
    buffer_ << line;
  }
}

}  // namespace sb
