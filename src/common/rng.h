// Deterministic pseudo-random number generation.
//
// Algorithm 1 of the paper is specified in terms of two primitives:
//   randi()      -> uniformly distributed integer in [0, 2^32)
//   randi(x, y)  -> uniformly distributed integer in [x, y)
// We provide both on top of xorshift128+, seeded via SplitMix64 so that a
// single 64-bit seed yields a well-mixed state. Every stochastic component
// of the simulator owns its own Rng instance, which keeps experiments
// reproducible and components independent under reordering.
#pragma once

#include <cmath>
#include <cstdint>

namespace sb {

/// xorshift128+ generator. Fast, small, passes BigCrush except linearity
/// tests of the lowest bit — more than adequate for simulation and for the
/// paper's SA optimizer ("trade-off performance with uniformity").
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    // SplitMix64: guarantees a non-zero, well-distributed state even for
    // adversarial seeds (including 0).
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Raw 64 uniform bits.
  std::uint64_t next_u64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// The paper's randi(): uniform integer in [0, 2^32).
  std::uint32_t randi() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// The paper's randi(x, y): uniform integer in [x, y). Requires x < y.
  std::int64_t randi(std::int64_t x, std::int64_t y) {
    const std::uint64_t span = static_cast<std::uint64_t>(y - x);
    return x + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (single value; spare discarded to keep
  /// the state trajectory simple and reproducible).
  double gaussian();

  /// Normal with given mean / standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Derives an independent child stream; used to give each simulated
  /// component (sensor, workload phase machine, optimizer) its own RNG.
  Rng split() { return Rng(next_u64() ^ 0xa02b'dbf7'bb3c'0a7ULL); }

 private:
  std::uint64_t s0_ = 1;
  std::uint64_t s1_ = 2;
};

/// Exact `x % d` for 64-bit x with a precomputed 128-bit reciprocal
/// (Lemire's "faster remainder by direct computation"). A hardware 64-bit
/// division costs ~20-30 cycles; with the divisor fixed across many draws —
/// the SA optimizer reduces every slot draw modulo the same n·m — the two
/// wide multiplies here are several times cheaper. Exactness for all x is
/// property-tested against `%` in rng_test.
class FastMod {
 public:
  FastMod() : FastMod(1) {}
  explicit FastMod(std::uint64_t d)
      : d_(d),
        m_(~static_cast<unsigned __int128>(0) / d + 1),
        r64_(~std::uint64_t{0} / d + 1) {}

  std::uint64_t divisor() const { return d_; }

  /// Exact x / d. Valid for x < 2^32 and d < 2^32 (the 64-bit ceiling
  /// reciprocal's error term e·x/2^64 stays below 1/d in that range);
  /// callers with larger operands must use hardware division.
  std::uint64_t div(std::uint64_t x) const {
    if (d_ == 1) return x;  // the 64-bit reciprocal wraps to 0 for d == 1
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(r64_) * x) >> 64);
  }

  std::uint64_t mod(std::uint64_t x) const {
    const unsigned __int128 low = m_ * x;  // fractional part of x/d, mod 2^128
    const auto lo = static_cast<std::uint64_t>(low);
    const auto hi = static_cast<std::uint64_t>(low >> 64);
    // mulhi_128x64(low, d): the integer part of low·d / 2^128.
    const unsigned __int128 t =
        static_cast<unsigned __int128>(hi) * d_ +
        ((static_cast<unsigned __int128>(lo) * d_) >> 64);
    return static_cast<std::uint64_t>(t >> 64);
  }

 private:
  std::uint64_t d_;
  unsigned __int128 m_;  // 128-bit ceiling reciprocal (for mod)
  std::uint64_t r64_;    // 64-bit ceiling reciprocal (for div)
};

inline double Rng::gaussian() {
  // Box–Muller; avoids log(0) by mapping u1 into (0,1].
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586;
  // std:: math is fine here: gaussian() is host-side simulation code, not
  // part of the fixed-point in-"kernel" optimizer path.
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace sb
