// Lightweight leveled logging. Default level is Warn so test and bench
// output stays clean; simulations raise it when --verbose is passed.
// Thread-safe: the level is atomic and emission is serialized, so
// concurrent experiment-runner workers cannot interleave log lines.
#pragma once

#include <sstream>
#include <string>

namespace sb {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold: messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `msg` to stderr with a level prefix if `level` passes the threshold.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
/// Stream-style builder: materializes the message only if it will be emitted.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  ~LogLine() {
    if (enabled_) log_message(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace sb
