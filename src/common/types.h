// Fundamental identifier and time types shared by every SmartBalance module.
//
// The simulator models wall-clock time as signed 64-bit nanoseconds, which
// gives ~292 years of range — far beyond any simulated experiment — while
// keeping arithmetic on durations trivially overflow-safe.
#pragma once

#include <cstdint>
#include <limits>

namespace sb {

/// Simulated time / duration in nanoseconds.
using TimeNs = std::int64_t;

/// Identifies a physical core on the platform: dense indices [0, n_cores).
using CoreId = std::int32_t;

/// Identifies a schedulable task entity (thread or single-threaded process,
/// both treated uniformly as in the Linux scheduling subsystem).
using ThreadId = std::int32_t;

/// Identifies a core *type* (the paper's r in R = {r_1..r_q}).
using CoreTypeId = std::int32_t;

inline constexpr CoreId kInvalidCore = -1;
inline constexpr ThreadId kInvalidThread = -1;

/// Convenience duration constructors.
constexpr TimeNs nanoseconds(std::int64_t v) { return v; }
constexpr TimeNs microseconds(std::int64_t v) { return v * 1'000; }
constexpr TimeNs milliseconds(std::int64_t v) { return v * 1'000'000; }
constexpr TimeNs seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Converts a nanosecond duration to (double) seconds.
constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }

/// Converts a nanosecond duration to (double) milliseconds.
constexpr double to_millis(TimeNs t) { return static_cast<double>(t) * 1e-6; }

/// Sentinel "never" timestamp used by event scheduling.
inline constexpr TimeNs kTimeNever = std::numeric_limits<TimeNs>::max();

/// Upper bound on platform size (the sharded scaling study reaches 1024
/// cores; affinity masks are sized exactly for that ceiling).
inline constexpr int kMaxCores = 1024;

}  // namespace sb
