#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/log.h"

namespace sb::common {

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SB_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<int>(v);
    log_warn() << "SB_JOBS='" << env << "' is not a positive integer; "
               << "falling back to hardware concurrency";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t, int)>& fn) {
  if (n == 0) return;
  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(std::max(threads, 1)), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  // Work-stealing by atomic index: completion order is arbitrary but each
  // task owns its output slot, so callers that self-seed every task get
  // schedule-independent results.
  std::atomic<std::size_t> next{0};
  auto worker = [&](int w) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i, w);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
}

}  // namespace sb::common
