#include "common/fixed_point.h"

#include <cstdint>

namespace sb {

Fixed fixed_sqrt(Fixed v) {
  if (v.raw() <= 0) return kFixedZero;
  // sqrt of Q16.16: compute integer sqrt of raw << 16 so the result is
  // again Q16.16 (sqrt(x * 2^16) = sqrt(x) * 2^8; we need * 2^16).
  std::uint64_t n = static_cast<std::uint64_t>(v.raw()) << 16;
  std::uint64_t x = n;
  std::uint64_t y = (x + 1) / 2;
  while (y < x) {  // Newton iteration on integers, monotonically decreasing.
    x = y;
    y = (x + n / x) / 2;
  }
  return Fixed::from_raw(static_cast<std::int32_t>(x));
}

}  // namespace sb
