// ASCII table rendering for the per-table/per-figure benchmark harnesses.
// The goal is that each bench binary prints rows directly comparable to the
// paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sb {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row of pre-formatted cells. Short rows are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Appends a row where numeric cells are formatted with `precision`
  /// significant decimal digits after the point.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a header separator.
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  /// Formats a double with fixed precision (shared helper for harnesses).
  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a one-line section banner (used by benches to delimit experiments).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace sb
