#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace sb {
namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

/// Serializes emission so concurrent experiment-runner workers cannot
/// interleave characters of different log lines.
std::mutex g_emit_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[sb:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace sb
