#include "common/log.h"

#include <atomic>
#include <iostream>

namespace sb {
namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::cerr << "[sb:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace sb
