// fig_slo — burn-rate SLOs on a bursty heterogeneous rack.
//
// The telemetry-plane acceptance scenario: a mixed rack (quad-HMP boards
// next to big.LITTLE boards) under a bursty job stream, operated against a
// joint latency + energy SLO of the kind a fleet operator actually
// promises:
//
//   p99_wake_us < kWakeBudgetUs   (dispatch-to-first-run tail)
//   je > kJeFloor                 (fleet-wide instructions per joule)
//
// evaluated online by the obs::SloEngine over the sampled `#sb-tsdb`
// frames with rolling burn-rate windows. The claim, gated with absolute
// ceilings of 0 in BENCH_slo.json: the energy-aware dispatcher meets the
// SLO end-to-end (zero breaches), while round-robin placement burns
// through the error budget (at least one breach) — the same jobs, the
// same nodes, the same windows; only placement differs.
//
// Determinism: the arrival stream and node simulations are bit-exact for
// any worker count, and the SLO engine consumes only simulated-time
// frames, so breach counts are exact integers — the ceilings are 0, not
// noise budgets.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "bench_json.h"
#include "bench_util.h"
#include "common/table.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace {

using sb::fleet::DispatchPolicy;

// The promised SLO. The floor targets je_w — windowed inst/J, the rack's
// current operating point — rather than cumulative J_E, which ramps from
// zero and would make any fixed floor duration-sensitive. 1000 Minst/J
// sits between the dispatchers' per-window distributions on this rack:
// round-robin's worst 200 ms window holds 9-10 violating frames at both
// CI and full durations, energy-aware's holds 4, so a 30% burn budget
// (breach above 6 of 20 frames) separates them with margin on both sides.
// The wake budget holds the dispatch-to-run tail within 20 ms; both
// dispatchers meet it here — the energy floor is what round-robin burns.
constexpr double kJeFloorMinstPerJoule = 1000.0;
constexpr double kWakeBudgetUs = 20000.0;
const char* kSloSpec =
    "je_w>1e9:burn=0.3:window=200,p99_wake_us<20000:burn=0.3:window=200";

std::uint64_t slo_breaches(const sb::fleet::FleetResult& r) {
  if (!r.obs) return 0;
  const auto& counters = r.obs->metrics.counters();
  const auto it = counters.find("slo.breaches");
  return it != counters.end() ? it->second.value : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Burn-rate SLOs: energy-aware dispatch vs round-robin",
                "the p99+energy SLO the telemetry plane watches online: "
                "energy-aware placement keeps the error budget, rr burns it");

  // Four-node mixed rack: the big.LITTLE boards hold the efficient cores,
  // so placement decides fleet-wide inst/J. The rate leaves headroom for
  // good placement but lets bursts pile queues on misplaced jobs.
  std::vector<arch::Platform> nodes;
  for (int i = 0; i < 2; ++i) nodes.push_back(arch::Platform::quad_heterogeneous());
  for (int i = 0; i < 2; ++i) nodes.push_back(arch::Platform::octa_big_little());

  TextTable tb({"policy", "arrived", "done", "Minst/J", "p99 wake ms",
                "breaches"});

  bench::Json j;
  j.begin_object()
      .field("bench", "BENCH_slo")
      .field("description",
             "Joint p99-wake + inst/J burn-rate SLO on a bursty mixed rack "
             "(2 quad-HMP + 2 big.LITTLE nodes), evaluated online by the "
             "obs::SloEngine: the energy-aware dispatcher must finish with "
             "zero breaches and round-robin must burn through the budget. "
             "Deterministic simulation -> ceilings are exact zeros.")
      .field("build", "-O2 -DNDEBUG")
      .field("slo", kSloSpec)
      .field("je_floor_minst_per_joule", kJeFloorMinstPerJoule)
      .field("wake_budget_us", kWakeBudgetUs);

  struct Row {
    DispatchPolicy policy;
    const char* key;
  };
  const std::vector<Row> arms = {{DispatchPolicy::kRoundRobin, "rr"},
                                 {DispatchPolicy::kEnergyAware, "energy"}};
  std::uint64_t breaches_by_arm[2] = {0, 0};
  double je_by_arm[2] = {0, 0};

  for (std::size_t i = 0; i < arms.size(); ++i) {
    fleet::FleetConfig cfg;
    cfg.nodes = static_cast<int>(nodes.size());
    cfg.policy = arms[i].policy;
    cfg.rate_hz = 340.0;
    cfg.duration = opt.duration;
    cfg.seed = opt.seed;
    cfg.step_jobs = opt.jobs;
    cfg.slo = kSloSpec;
    fleet::FleetSimulation f(cfg, nodes);
    const fleet::FleetResult r = f.run();

    // The figure's data series: each arm's `#sb-tsdb` export (watch with
    // `sbtop --once fig_slo_rr.csv`; slo.burn.* rows show the budget burn).
    if (r.obs) {
      obs::write_timeseries_file(
          "fig_slo_" + std::string(arms[i].key) + ".csv", {r.obs.get()});
    }

    breaches_by_arm[i] = slo_breaches(r);
    je_by_arm[i] = r.je_inst_per_joule;
    tb.add_row({r.dispatch_policy, std::to_string(r.jobs_arrived),
                std::to_string(r.jobs_completed),
                TextTable::fmt(r.je_inst_per_joule / 1e6, 1),
                TextTable::fmt(static_cast<double>(r.wake.p99_ns) / 1e6, 3),
                std::to_string(breaches_by_arm[i])});

    j.begin_object(std::string(arms[i].key) + "_arm")
        .field("jobs_arrived", r.jobs_arrived)
        .field("jobs_completed", r.jobs_completed)
        .field("je_minst_per_joule", r.je_inst_per_joule / 1e6)
        .field("p99_wake_ms", static_cast<double>(r.wake.p99_ns) / 1e6)
        .field("slo_breaches", static_cast<double>(breaches_by_arm[i]))
        .end_object();
  }
  std::cout << tb;

  // The gated section. energy_breaches: the energy-aware dispatcher kept
  // the SLO (0 allowed). rr_meets_slo: 1 would mean round-robin also kept
  // it — the scenario lost its discriminating power — so its ceiling is 0
  // too: the gate fails loudly instead of going green-by-vacuity.
  const double energy_breaches = static_cast<double>(breaches_by_arm[1]);
  const double rr_meets_slo = breaches_by_arm[0] == 0 ? 1.0 : 0.0;
  const bool violated = energy_breaches > 0 || rr_meets_slo > 0;
  std::cout << "rr breaches: " << breaches_by_arm[0]
            << ", energy breaches: " << breaches_by_arm[1]
            << ", je rr->energy: "
            << TextTable::fmt(je_by_arm[0] / 1e6, 1) << " -> "
            << TextTable::fmt(je_by_arm[1] / 1e6, 1) << " Minst/J"
            << (violated ? "  GATE VIOLATED" : "") << "\n";

  j.begin_object("slo_gate")
      .field("energy_breaches", energy_breaches)
      .field("rr_breaches", static_cast<double>(breaches_by_arm[0]))
      .field("rr_meets_slo", rr_meets_slo);
  j.begin_object("max_allowed")
      .field("energy_breaches", 0.0)
      .field("rr_meets_slo", 0.0)
      .end_object();
  j.end_object();
  j.end_object();
  j.write("BENCH_slo.json");

  return violated ? 1 : 0;
}
