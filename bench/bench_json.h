// Minimal ordered JSON writer for the BENCH_*.json perf-trajectory files.
// No external dependency; emits pretty-printed, stable-ordered output so
// successive trajectory points diff cleanly in review.
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace sb::bench {

class Json {
 public:
  Json() { os_.precision(6); }

  Json& begin_object(const std::string& key = "") {
    open(key);
    os_ << "{";
    stack_.push_back(false);
    return *this;
  }

  Json& end_object() {
    stack_.pop_back();
    os_ << "\n" << indent() << "}";
    if (stack_.empty()) os_ << "\n";
    return *this;
  }

  Json& field(const std::string& key, double v) {
    open(key);
    os_ << std::fixed << v;
    os_.unsetf(std::ios::fixed);
    return *this;
  }

  Json& field(const std::string& key, int v) { return field_raw(key, std::to_string(v)); }
  Json& field(const std::string& key, long v) { return field_raw(key, std::to_string(v)); }
  Json& field(const std::string& key, unsigned long v) {
    return field_raw(key, std::to_string(v));
  }
  Json& field(const std::string& key, unsigned long long v) {
    return field_raw(key, std::to_string(v));
  }
  Json& field(const std::string& key, bool v) {
    return field_raw(key, v ? "true" : "false");
  }
  Json& field(const std::string& key, const std::string& v) {
    return field_raw(key, "\"" + v + "\"");
  }
  Json& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }

  std::string str() const { return os_.str(); }

  /// Writes the document to `path` and logs the destination.
  void write(const std::string& path) const {
    std::ofstream out(path);
    out << str();
    std::cout << "Perf trajectory written to " << path << "\n";
  }

 private:
  Json& field_raw(const std::string& key, const std::string& raw) {
    open(key);
    os_ << raw;
    return *this;
  }

  std::string indent() const { return std::string(2 * stack_.size(), ' '); }

  void open(const std::string& key) {
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ",";
      stack_.back() = true;
      os_ << "\n" << indent();
    }
    if (!key.empty()) os_ << "\"" << key << "\": ";
  }

  std::ostringstream os_;
  std::vector<bool> stack_;  // per level: "already has a member"
};

}  // namespace sb::bench
