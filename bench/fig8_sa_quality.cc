// Fig. 8 — (a) iteration budget (Opt_max_iter) per scalability scenario and
// the resulting distance-to-optimal on synthetic instances whose optimal
// solution is known; (b) the remaining optimization parameter values.
//
// Known-optimum construction: thread i is "matched" to core i mod n with a
// dominant efficiency entry; the allocation mapping every thread to its
// matched core maximizes every per-core ratio simultaneously, so its J is
// the global optimum. Small instances are cross-checked by exhaustive
// enumeration.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/objective.h"
#include "core/sa_optimizer.h"

namespace {

using namespace sb;

struct KnownInstance {
  Matrix s, p;
  std::vector<CoreId> matched;
  double optimum = 0;
};

KnownInstance make_known(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  KnownInstance inst{Matrix(static_cast<std::size_t>(m),
                            static_cast<std::size_t>(n)),
                     Matrix(static_cast<std::size_t>(m),
                            static_cast<std::size_t>(n)),
                     {},
                     0.0};
  for (int i = 0; i < m; ++i) {
    const CoreId home = static_cast<CoreId>(i % n);
    inst.matched.push_back(home);
    for (int j = 0; j < n; ++j) {
      if (j == home) {
        inst.s.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            5.0 * rng.uniform(0.95, 1.05);
        inst.p.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            0.5;
      } else {
        inst.s.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            0.8 * rng.uniform(0.9, 1.1);
        inst.p.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
            1.2;
      }
    }
  }
  core::EnergyEfficiencyObjective obj;
  inst.optimum = core::evaluate_allocation(inst.s, inst.p, obj, inst.matched);
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 8: SA iteration budget and distance to optimal",
                "(a) Opt_max_iter per scenario with distance-to-optimal on "
                "known-optimum instances; (b) parameter values");

  std::vector<std::pair<int, int>> scenarios = {{2, 4},   {4, 8},   {8, 16},
                                                {16, 32}, {32, 64}, {64, 128},
                                                {128, 256}};
  if (opt.quick) scenarios.resize(5);

  core::EnergyEfficiencyObjective obj;
  TextTable t({"cores", "threads", "Opt_max_iter", "distance to optimal %",
               "verified vs exhaustive"});
  CsvWriter csv("fig8_sa_quality.csv",
                {"cores", "threads", "max_iter", "distance_pct"});
  const int repeats = opt.quick ? 3 : 8;
  for (const auto& [n, m] : scenarios) {
    const int iters = core::sa_auto_iterations(n, m);
    RunningStats distance;
    bool verified = false;
    for (int r = 0; r < repeats; ++r) {
      const auto inst = make_known(n, m, opt.seed + static_cast<std::uint64_t>(r));
      // Random start: a freshly perturbed system (threads land anywhere);
      // epoch-to-epoch operation warm-starts from the previous allocation,
      // which is easier than this.
      Rng init_rng(opt.seed + 77 + static_cast<std::uint64_t>(r));
      std::vector<CoreId> initial(static_cast<std::size_t>(m));
      for (auto& c : initial) {
        c = static_cast<CoreId>(init_rng.randi(0, n));
      }
      core::SaConfig cfg;
      cfg.max_iterations = iters;
      cfg.seed = opt.seed ^ (static_cast<std::uint64_t>(r) << 8);
      const auto res =
          core::SaOptimizer(cfg).optimize(inst.s, inst.p, obj, initial);
      distance.add(100.0 * (inst.optimum - res.objective) / inst.optimum);
      // Cross-check the known optimum by brute force where feasible.
      if (r == 0 && m <= 8 && n <= 4) {
        const auto brute = core::exhaustive_optimum(inst.s, inst.p, obj);
        verified = brute.objective <= inst.optimum + 1e-9;
      }
    }
    t.add_row({std::to_string(n), std::to_string(m), std::to_string(iters),
               TextTable::fmt(distance.mean(), 2) + " (max " +
                   TextTable::fmt(distance.max(), 2) + ")",
               m <= 8 && n <= 4 ? (verified ? "yes" : "FAILED") : "-"});
    csv.row({std::to_string(n), std::to_string(m), std::to_string(iters),
             TextTable::fmt(distance.mean(), 4)});
  }
  std::cout << "(a) iteration budget & solution quality:\n" << t << "\n";

  core::SaConfig def;
  TextTable tb({"parameter", "value"});
  tb.add_row({"Opt_perturb (initial)", TextTable::fmt(def.initial_perturb, 2)});
  tb.add_row({"Opt_dperturb (decay/iter)", TextTable::fmt(def.perturb_decay, 3)});
  tb.add_row({"Opt_accept (initial, relative to |J0|)",
              TextTable::fmt(def.initial_accept_rel, 3)});
  tb.add_row({"Opt_daccept (decay/iter)", TextTable::fmt(def.accept_decay, 3)});
  tb.add_row({"acceptance arithmetic", "Q16.16 fixed-point e^x + randi mod"});
  std::cout << "(b) optimization parameters:\n" << tb
            << "\nSeries written to fig8_sa_quality.csv\n";
  return 0;
}
