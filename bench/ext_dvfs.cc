// Extension experiment (beyond the paper's figures): DVFS interaction.
//
// The paper fixes all voltages and frequencies "to show the effect of
// architectural heterogeneity" but notes the approach is not limited to
// that (§5). This harness lifts the restriction: each core type gets a
// 4-point OPP table and a cpufreq-style governor, and we measure energy
// efficiency for {fixed-V/f, ondemand} × {vanilla, SmartBalance} on both a
// saturated and a duty-cycled workload.
//
// Expected shape: DVFS and SmartBalance are complementary — the governor
// harvests slack within a core (duty-cycled loads), the balancer picks the
// right core (heterogeneity); together they dominate either alone.
#include <iostream>
#include <memory>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/table.h"
#include "os/dvfs_governor.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace {

using namespace sb;

double run_cell(const bench::Options& opt, bool interactive_load, bool dvfs,
                bool smart) {
  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  cfg.kernel.enable_dvfs = dvfs;
  sim::Simulation s(platform, cfg);
  if (smart) {
    s.set_balancer(sim::smartbalance_factory()(s));
  } else {
    s.set_balancer(sim::vanilla_factory()(s));
  }
  if (dvfs) s.kernel().set_governor(std::make_unique<os::OndemandGovernor>());
  if (interactive_load) {
    s.add_benchmark("IMB_MTMI", 4);
    s.add_benchmark("IMB_LTHI", 4);
  } else {
    s.add_benchmark("bodytrack", 4);
    s.add_benchmark("streamcluster", 4);
  }
  return s.run().ips_per_watt / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension: DVFS x load balancing",
                "paper fixes V/f (§5); this lifts the restriction with "
                "4-point OPP tables + ondemand governor");

  for (bool interactive : {false, true}) {
    TextTable t({"configuration", "MIPS/W", "vs fixed+vanilla %"});
    const double base = run_cell(opt, interactive, false, false);
    auto add = [&](const std::string& label, double v) {
      t.add_row({label, TextTable::fmt(v, 1),
                 TextTable::fmt(100.0 * (v / base - 1.0), 1)});
    };
    add("fixed V/f + vanilla", base);
    add("ondemand + vanilla", run_cell(opt, interactive, true, false));
    add("fixed V/f + SmartBalance", run_cell(opt, interactive, false, true));
    add("ondemand + SmartBalance", run_cell(opt, interactive, true, true));
    std::cout << (interactive ? "duty-cycled (IMB) workload:\n"
                              : "saturated (PARSEC) workload:\n")
              << t << "\n";
  }
  return 0;
}
