// Fig. 5 — Normalized energy efficiency w.r.t. state-of-the-art ARM GTS on
// an octa-core big.LITTLE (4×A15 + 4×A7).
//
// Paper claim: GTS's utilization-threshold binary decision "limits GTS from
// achieving (near) optimal energy efficiency by as much as ~20% in
// comparison to SmartBalance".
#include <fstream>
#include <iostream>
#include <vector>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header(
      "Fig. 5: normalized energy efficiency vs ARM GTS (octa-core "
      "big.LITTLE, 4xA15 + 4xA7)",
      "SmartBalance over GTS by ~20% across benchmarks");

  const auto platform = arch::Platform::octa_big_little();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  opt.apply_obs(cfg);

  const std::vector<std::pair<std::string, int>> workloads = {
      {"bodytrack", 8},   {"x264_H_crew", 8}, {"x264_L_bow", 8},
      {"canneal", 8},     {"swaptions", 8},   {"streamcluster", 8},
      {"ferret", 8},      {"fluidanimate", 8}, {"IMB_HTHI", 8},
      {"IMB_MTMI", 8},
  };

  TextTable t({"workload", "GTS MIPS/W", "SB(Eq.11)", "SB(global)",
               "gain(Eq.11) %", "gain(global) %"});
  CsvWriter csv("fig5_gts.csv",
                {"workload", "gts_mips_w", "sb_eq11_mips_w",
                 "sb_global_mips_w", "gain_eq11_pct", "gain_global_pct"});
  RunningStats gains, gains_eq11;
  // Queue all bars, execute through the parallel runner, emit in order.
  bench::GainSweep sweep(platform, cfg, opt.smart_config());
  for (const auto& [name, nt] : workloads) {
    sweep.add(name,
              [n = name, k = nt](sim::Simulation& s) { s.add_benchmark(n, k); },
              sim::gts_factory(/*big_type=*/0));
  }
  for (const auto& row : sweep.run(opt.runner())) {
    t.add_row({row.label, TextTable::fmt(row.baseline_mips_w, 1),
               TextTable::fmt(row.smart_eq11_mips_w, 1),
               TextTable::fmt(row.smart_mips_w, 1),
               TextTable::fmt(row.gain_eq11_pct, 1),
               TextTable::fmt(row.gain_pct, 1)});
    csv.row({row.label, TextTable::fmt(row.baseline_mips_w, 3),
             TextTable::fmt(row.smart_eq11_mips_w, 3),
             TextTable::fmt(row.smart_mips_w, 3),
             TextTable::fmt(row.gain_eq11_pct, 3),
             TextTable::fmt(row.gain_pct, 3)});
    gains.add(row.gain_pct);
    gains_eq11.add(row.gain_eq11_pct);
  }
  bench::print_batch_summary(sweep.summary());
  std::cout << t << "\nAverage gain over GTS (paper: ~20 %):\n"
            << "  Eq. 11 objective (paper-faithful): "
            << TextTable::fmt(gains_eq11.mean(), 1) << " %\n"
            << "  global IPS/W objective (default):  "
            << TextTable::fmt(gains.mean(), 1) << " %\n"
            << "Series written to fig5_gts.csv\n";
  if (!opt.trace.empty() && sweep.write_trace(opt.trace)) {
    std::cout << "trace written to " << opt.trace << "\n";
  }
  if (!opt.audit.empty() && sweep.write_audit(opt.audit)) {
    std::cout << "audit export written to " << opt.audit << "\n";
  }
  if (!opt.metrics_json.empty()) {
    std::ofstream ms(opt.metrics_json);
    sweep.merged_metrics().write_json(ms);
    ms << "\n";
    std::cout << "metrics written to " << opt.metrics_json << "\n";
  } else if (opt.metrics) {
    std::cout << "metrics: ";
    sweep.merged_metrics().write_json(std::cout);
    std::cout << "\n";
  }
  return 0;
}
