// Heap-allocation counter for the perf-regression harness. Linking
// alloc_hook.cc into a binary replaces the global operator new/delete with
// counting versions; alloc_count() reads the running total. Used to prove
// the "zero allocations in the SA inner loop once the scratch arena is
// warm" property in BENCH_sa.json.
#pragma once

#include <cstdint>

namespace sb::bench {

/// Number of global operator new calls since process start. Monotone;
/// diff two readings around a region to count its allocations.
std::uint64_t alloc_count();

}  // namespace sb::bench
