// Google-benchmark micro benchmarks for the hot paths: the fixed-point
// primitives the in-kernel optimizer relies on, one SA iteration, the
// predictor, characterization-matrix construction, CFS runqueue operations
// and a full simulated epoch.
#include <benchmark/benchmark.h>

#include <cmath>

#include "arch/platform.h"
#include "common/fixed_math.h"
#include "common/rng.h"
#include "core/objective.h"
#include "core/sa_optimizer.h"
#include "core/trainer.h"
#include "os/cfs_runqueue.h"
#include "os/kernel.h"
#include "os/vanilla_balancer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "sim/experiment.h"
#include "sim/simulation.h"
#include "workload/benchmarks.h"

namespace {

using namespace sb;

void BM_FixedExpNeg(benchmark::State& state) {
  Rng rng(1);
  Fixed x = Fixed::from_double(-rng.uniform(0.0, 10.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixed_exp_neg(x));
    x = Fixed::from_raw((x.raw() * 31) % (10 << 16) - (5 << 16));
  }
}
BENCHMARK(BM_FixedExpNeg);

void BM_LibmExp(benchmark::State& state) {
  Rng rng(1);
  double x = -rng.uniform(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::exp(x));
    x = x < -10 ? -0.1 : x - 0.37;
  }
}
BENCHMARK(BM_LibmExp);

void BM_FixedSqrt(benchmark::State& state) {
  Fixed x = Fixed::from_double(3.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixed_sqrt(x));
    x += Fixed::from_double(0.01);
    if (x > Fixed::from_int(100)) x = Fixed::from_double(0.5);
  }
}
BENCHMARK(BM_FixedSqrt);

void BM_RngRandi(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.randi(0, 1000));
}
BENCHMARK(BM_RngRandi);

void BM_SaOptimize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = 2 * n;
  Rng rng(3);
  Matrix s(m, n), p(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      s.at(i, j) = rng.uniform(0.1, 4.0);
      p.at(i, j) = rng.uniform(0.05, 3.0);
    }
  }
  std::vector<CoreId> init(m, 0);
  core::EnergyEfficiencyObjective obj;
  core::SaConfig cfg;
  cfg.max_iterations = 1000;
  const core::SaOptimizer opt(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.optimize(s, p, obj, init));
  }
  state.counters["ns/iter"] = benchmark::Counter(
      1000.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_SaOptimize)->Arg(4)->Arg(16)->Arg(64);

void BM_PredictIpc(benchmark::State& state) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);
  const core::PredictorTrainer trainer(perf, power);
  const auto model =
      trainer.train(core::PredictorTrainer::default_training_profiles());
  Rng rng(2);
  const auto obs = trainer.synthesize_observation(
      core::PredictorTrainer::default_training_profiles()[3], 0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_ipc(obs, 2, 2000, 1000));
  }
}
BENCHMARK(BM_PredictIpc);

void BM_IntervalModelEvaluate(benchmark::State& state) {
  const perf::IntervalModel m;
  const auto profile =
      workload::BenchmarkLibrary::get("canneal").phases[0].profile;
  const auto core = arch::big_core();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.evaluate(profile, core, 120.0, 1.3));
  }
}
BENCHMARK(BM_IntervalModelEvaluate);

void BM_CfsEnqueuePop(benchmark::State& state) {
  os::CfsRunqueue rq;
  double v = 0;
  for (int i = 0; i < 64; ++i) rq.enqueue(i, v += 1.0, 1024);
  ThreadId last = 64;
  for (auto _ : state) {
    const ThreadId t = rq.pop_leftmost();
    rq.enqueue(t, v += 1.0, 1024);
    benchmark::DoNotOptimize(last = t);
  }
}
BENCHMARK(BM_CfsEnqueuePop);

void BM_TrainPredictor(benchmark::State& state) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);
  core::PredictorTrainer::Config cfg;
  cfg.replicas = 4;
  const core::PredictorTrainer trainer(perf, power, cfg);
  const auto profiles = core::PredictorTrainer::default_training_profiles();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(profiles));
  }
}
BENCHMARK(BM_TrainPredictor)->Unit(benchmark::kMillisecond);

void BM_SimulatedEpoch(benchmark::State& state) {
  // Host cost of simulating one 60 ms epoch of an 8-thread quad-core HMP
  // under the vanilla balancer (the simulator's bulk throughput metric).
  for (auto _ : state) {
    state.PauseTiming();
    const auto platform = arch::Platform::quad_heterogeneous();
    sim::SimulationConfig cfg;
    cfg.duration = milliseconds(60);
    sim::Simulation s(platform, cfg);
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("bodytrack", 8);
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.run());
  }
}
BENCHMARK(BM_SimulatedEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
