// Google-benchmark micro benchmarks for the hot paths: the fixed-point
// primitives the in-kernel optimizer relies on, one SA iteration, the
// predictor, characterization-matrix construction, CFS runqueue operations
// and a full simulated epoch.
//
// After the google-benchmark suite runs, main() measures the SA optimizer
// on the Fig. 7 scalability extremes and writes BENCH_sa.json — the
// machine-readable perf-trajectory point this repo commits per PR (see
// EXPERIMENTS.md "Hot-path performance") — then measures the observability
// hooks' epoch-pass overhead and writes BENCH_obs.json. Pass
// --benchmark_filter=NONE to skip the google-benchmark suite and only emit
// the JSON files.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <limits>
#include <string>

#include "alloc_hook.h"
#include "arch/platform.h"
#include "bench_json.h"
#include "common/fixed_math.h"
#include "common/rng.h"
#include "core/objective.h"
#include "core/sa_optimizer.h"
#include "core/smart_balance.h"
#include "core/trainer.h"
#include "obs/sink.h"
#include "os/cfs_runqueue.h"
#include "os/kernel.h"
#include "os/vanilla_balancer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "sim/experiment.h"
#include "sim/simulation.h"
#include "sim/ts_sampler.h"
#include "workload/benchmarks.h"

namespace {

using namespace sb;

void BM_FixedExpNeg(benchmark::State& state) {
  Rng rng(1);
  Fixed x = Fixed::from_double(-rng.uniform(0.0, 10.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixed_exp_neg(x));
    x = Fixed::from_raw((x.raw() * 31) % (10 << 16) - (5 << 16));
  }
}
BENCHMARK(BM_FixedExpNeg);

void BM_LibmExp(benchmark::State& state) {
  Rng rng(1);
  double x = -rng.uniform(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::exp(x));
    x = x < -10 ? -0.1 : x - 0.37;
  }
}
BENCHMARK(BM_LibmExp);

void BM_FixedSqrt(benchmark::State& state) {
  Fixed x = Fixed::from_double(3.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixed_sqrt(x));
    x += Fixed::from_double(0.01);
    if (x > Fixed::from_int(100)) x = Fixed::from_double(0.5);
  }
}
BENCHMARK(BM_FixedSqrt);

void BM_RngRandi(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.randi(0, 1000));
}
BENCHMARK(BM_RngRandi);

void BM_SaOptimize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = 2 * n;
  Rng rng(3);
  Matrix s(m, n), p(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      s.at(i, j) = rng.uniform(0.1, 4.0);
      p.at(i, j) = rng.uniform(0.05, 3.0);
    }
  }
  std::vector<CoreId> init(m, 0);
  core::EnergyEfficiencyObjective obj;
  core::SaConfig cfg;
  cfg.max_iterations = 1000;
  core::SaOptimizer opt(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.optimize(s, p, obj, init));
  }
  state.counters["ns/iter"] = benchmark::Counter(
      1000.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_SaOptimize)->Arg(4)->Arg(16)->Arg(64);

void BM_PredictIpc(benchmark::State& state) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);
  const core::PredictorTrainer trainer(perf, power);
  const auto model =
      trainer.train(core::PredictorTrainer::default_training_profiles());
  Rng rng(2);
  const auto obs = trainer.synthesize_observation(
      core::PredictorTrainer::default_training_profiles()[3], 0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_ipc(obs, 2, 2000, 1000));
  }
}
BENCHMARK(BM_PredictIpc);

void BM_IntervalModelEvaluate(benchmark::State& state) {
  const perf::IntervalModel m;
  const auto profile =
      workload::BenchmarkLibrary::get("canneal").phases[0].profile;
  const auto core = arch::big_core();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.evaluate(profile, core, 120.0, 1.3));
  }
}
BENCHMARK(BM_IntervalModelEvaluate);

void BM_CfsEnqueuePop(benchmark::State& state) {
  os::CfsRunqueue rq;
  double v = 0;
  for (int i = 0; i < 64; ++i) rq.enqueue(i, v += 1.0, 1024);
  ThreadId last = 64;
  for (auto _ : state) {
    const ThreadId t = rq.pop_leftmost();
    rq.enqueue(t, v += 1.0, 1024);
    benchmark::DoNotOptimize(last = t);
  }
}
BENCHMARK(BM_CfsEnqueuePop);

void BM_TrainPredictor(benchmark::State& state) {
  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);
  core::PredictorTrainer::Config cfg;
  cfg.replicas = 4;
  const core::PredictorTrainer trainer(perf, power, cfg);
  const auto profiles = core::PredictorTrainer::default_training_profiles();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(profiles));
  }
}
BENCHMARK(BM_TrainPredictor)->Unit(benchmark::kMillisecond);

void BM_SimulatedEpoch(benchmark::State& state) {
  // Host cost of simulating one 60 ms epoch of an 8-thread quad-core HMP
  // under the vanilla balancer (the simulator's bulk throughput metric).
  for (auto _ : state) {
    state.PauseTiming();
    const auto platform = arch::Platform::quad_heterogeneous();
    sim::SimulationConfig cfg;
    cfg.duration = milliseconds(60);
    sim::Simulation s(platform, cfg);
    s.set_balancer(std::make_unique<os::VanillaBalancer>());
    s.add_benchmark("bodytrack", 8);
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.run());
  }
}
BENCHMARK(BM_SimulatedEpoch)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_sa.json: SA optimizer throughput + allocation counts on the Fig. 7
// scalability extremes. The workload (matrix contents, demand vector,
// initial allocation, seed) is fixed so successive trajectory points are
// comparable run-to-run and against the committed baseline.
// ---------------------------------------------------------------------------

/// Energy-efficiency formula expressed as a *custom* objective (kind()
/// stays kCustom): exercises the generic virtual-dispatch annealing kernel
/// so the JSON also tracks the escape-hatch cost relative to the
/// devirtualized built-in path.
class VirtualEfficiencyObjective : public core::BalanceObjective {
 public:
  double core_term(const core::CoreSums& s, CoreId /*core*/) const override {
    if (s.nthreads == 0 || s.watts <= 0) return 0.0;
    return s.gips / s.watts;
  }
  std::string name() const override { return "virtual_ips_per_watt"; }
};

struct SaPoint {
  int num_cores = 0;
  int num_threads = 0;
  int sa_iterations = 0;
  double ns_per_call = 0;
  double ns_per_iteration = 0;
  double allocs_per_call = 0;
  double objective = 0;
};

SaPoint measure_sa_point(int n, int m, const core::BalanceObjective& obj) {
  // Workload spec shared with the recorded baseline: Rng(3) matrices,
  // alternating CPU-bound / duty-cycled demand, threads striped over cores.
  Rng rng(3);
  Matrix s(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  Matrix p(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      s.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          rng.uniform(0.1, 4.0);
      p.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          rng.uniform(0.05, 3.0);
    }
  }
  std::vector<double> demand(static_cast<std::size_t>(m));
  std::vector<CoreId> initial(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    demand[static_cast<std::size_t>(i)] =
        (i % 2 == 0) ? -1.0 : rng.uniform(0.05, 1.0);
    initial[static_cast<std::size_t>(i)] = static_cast<CoreId>(i % n);
  }
  core::SaConfig cfg;
  cfg.seed = 42;
  core::SaOptimizer opt(cfg);

  SaPoint out;
  out.num_cores = n;
  out.num_threads = m;
  out.sa_iterations = core::sa_auto_iterations(n, m);

  // Warmup grows the scratch arena to the problem size; the timed region
  // then shows the steady-state (zero-allocation) cost.
  (void)opt.optimize(s, p, obj, initial, nullptr, &demand);
  constexpr int kReps = 30;
  const std::uint64_t a0 = bench::alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  double sink = 0;
  for (int r = 0; r < kReps; ++r) {
    sink += opt.optimize(s, p, obj, initial, nullptr, &demand).objective;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t a1 = bench::alloc_count();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  out.ns_per_call = ns / kReps;
  out.ns_per_iteration = out.ns_per_call / out.sa_iterations;
  out.allocs_per_call = static_cast<double>(a1 - a0) / kReps;
  out.objective = sink / kReps;
  return out;
}

void emit_sa_point(bench::Json& j, const std::string& key, const SaPoint& pt,
                   double baseline_ns_per_iteration,
                   double baseline_allocs_per_call) {
  j.begin_object(key)
      .field("num_cores", pt.num_cores)
      .field("num_threads", pt.num_threads)
      .field("sa_iterations", pt.sa_iterations)
      .field("ns_per_call", pt.ns_per_call)
      .field("ns_per_iteration", pt.ns_per_iteration)
      .field("iterations_per_sec", 1e9 / pt.ns_per_iteration)
      .field("allocs_per_call", pt.allocs_per_call)
      .field("objective", pt.objective);
  if (baseline_ns_per_iteration > 0) {
    j.field("baseline_ns_per_iteration", baseline_ns_per_iteration)
        .field("baseline_allocs_per_call", baseline_allocs_per_call)
        .field("speedup_vs_baseline",
               baseline_ns_per_iteration / pt.ns_per_iteration);
  }
  j.end_object();
}

void emit_bench_sa_json() {
  // Pre-PR numbers measured on the same machine at -O2 -DNDEBUG (commit
  // b792c4d, 30 reps, identical workload); the acceptance bar for this
  // harness is speedup_vs_baseline >= 2.0 at the fig7_large point.
  constexpr double kBaselineLargeNsPerIter = 125.2;
  constexpr double kBaselineQuadNsPerIter = 92.6;
  constexpr double kBaselineAllocsPerCall = 7.0;

  core::EnergyEfficiencyObjective ee;
  VirtualEfficiencyObjective custom;
  const SaPoint large = measure_sa_point(128, 256, ee);
  const SaPoint quad = measure_sa_point(4, 8, ee);
  const SaPoint large_virtual = measure_sa_point(128, 256, custom);

  bench::Json j;
  j.begin_object()
      .field("bench", "BENCH_sa")
      .field("description",
             "SA optimizer throughput on the Fig. 7 scalability extremes; "
             "fixed synthetic workload, EnergyEfficiencyObjective, seed 42, "
             "auto iteration budget, 30 reps after 1 warmup")
      .field("build", "-O2 -DNDEBUG")
      .field("baseline_commit", "b792c4d")
      .field("baseline_note",
             "baselines measured pre-optimization on the same machine with "
             "the identical workload and rep count");
  emit_sa_point(j, "fig7_large", large, kBaselineLargeNsPerIter,
                kBaselineAllocsPerCall);
  emit_sa_point(j, "quad", quad, kBaselineQuadNsPerIter,
                kBaselineAllocsPerCall);
  emit_sa_point(j, "fig7_large_custom_objective", large_virtual, 0, 0);
  j.end_object();
  j.write("BENCH_sa.json");
}

// ---------------------------------------------------------------------------
// BENCH_obs.json: observability-hook overhead on the epoch hot path. Drives
// SmartBalancePolicy::on_balance directly (sense → predict → balance) on a
// fixed quad-HMP workload, timing only the pass itself — the kernel advances
// one epoch between passes outside the timed region so each pass sees fresh
// sensing data. Four configurations: null sink (the shipping default —
// hooks reduce to a branch on nullptr), metrics+tracing enabled, the
// prediction-audit flight recorder alone (join + record on every pass),
// and the continuous-telemetry plane (metrics + timeseries recorder with a
// sampler tick per pass — what `--timeseries` costs an epoch).
//
// Absolute pass times are not comparable across machines (or even across
// runs on a shared/throttled runner: observed spread is >20% on the minimum
// of 96 CPU-time-clocked passes), so the gated metric is dimensionless:
//
//   pass_cost_index = min_pass_ns / min_yardstick_ns
//
// where the yardstick is a fixed pure-integer loop (2e5 splitmix64 steps)
// measured interleaved with the passes on the same thread. Machine speed
// and frequency scaling cancel in the ratio; what remains is the cost of
// the code path itself. The tracer-off section carries a 1% "max_regress"
// budget on that index, honored by tools/check_bench.py; allocations per
// pass are gated exactly. Raw minima are exported for reference.
// ---------------------------------------------------------------------------

struct ObsPoint {
  double min_pass_ns = std::numeric_limits<double>::infinity();
  double allocs_per_pass = 0;
};

double thread_cpu_ns() {
#if defined(__linux__)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
#else
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// One round: fresh kernel + trained policy, 4 warmup passes, then kReps
// timed passes; the per-round minimum folds into `point`. With
// `tick_sampler`, a telemetry-plane sampler tick (one frame of the
// continuous time series) runs inside the timed region after each pass —
// pricing exactly what `--timeseries` adds to an epoch.
void measure_epoch_pass_round(obs::Sink* sink, ObsPoint& point,
                              bool tick_sampler = false) {
  constexpr int kWarmup = 4;
  constexpr int kReps = 32;
  const auto platform = arch::Platform::quad_heterogeneous();
  perf::PerfModel perf(platform);
  power::PowerModel power(platform, perf);
  core::PredictorTrainer trainer(perf, power);
  core::SmartBalancePolicy policy(
      platform,
      trainer.train(core::PredictorTrainer::default_training_profiles()));
  os::Kernel k(platform, perf, power);
  k.set_obs(sink);
  Rng rng(7);
  for (auto& tb : workload::BenchmarkLibrary::get("canneal").spawn(2, rng)) {
    k.fork(std::move(tb));
  }
  for (auto& tb : workload::BenchmarkLibrary::get("swaptions").spawn(2, rng)) {
    k.fork(std::move(tb));
  }

  std::unique_ptr<sim::TimeseriesSampler> sampler;
  if (tick_sampler) {
    sampler = std::make_unique<sim::TimeseriesSampler>(platform, *sink);
  }

  const TimeNs epoch = policy.interval();
  for (int i = 0; i < kWarmup; ++i) {
    k.run_for(epoch);
    policy.on_balance(k, k.now());
    if (sampler) sampler->tick(k, k.now(), epoch);
  }
  std::uint64_t total_allocs = 0;
  for (int i = 0; i < kReps; ++i) {
    k.run_for(epoch);
    const std::uint64_t a0 = bench::alloc_count();
    const double t0 = thread_cpu_ns();
    policy.on_balance(k, k.now());
    if (sampler) sampler->tick(k, k.now(), epoch);
    const double t1 = thread_cpu_ns();
    total_allocs += bench::alloc_count() - a0;
    point.min_pass_ns = std::min(point.min_pass_ns, t1 - t0);
  }
  point.allocs_per_pass = static_cast<double>(total_allocs) / kReps;
}

// Fixed pure-integer reference loop; its minimum CPU time calibrates out
// the machine's current speed.
double yardstick_round() {
  constexpr int kYardReps = 8;
  constexpr int kSteps = 200'000;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kYardReps; ++rep) {
    std::uint64_t z = 0;
    std::uint64_t acc = 0;
    const double t0 = thread_cpu_ns();
    for (int i = 0; i < kSteps; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      acc ^= x ^ (x >> 31);
    }
    const double t1 = thread_cpu_ns();
    benchmark::DoNotOptimize(acc);
    best = std::min(best, t1 - t0);
  }
  return best;
}

void emit_bench_obs_json() {
  obs::ObsConfig ocfg;
  ocfg.metrics = true;
  ocfg.trace = true;
  obs::Sink sink(ocfg);
  // Audit recorder alone (no tracer/metrics), isolating the flight
  // recorder's join+record cost on the pass.
  obs::ObsConfig acfg;
  acfg.audit = true;
  obs::Sink audit_sink(acfg);
  // Telemetry plane: metrics + timeseries recorder, a sampler tick (one
  // full frame of the continuous time series) added to every timed pass.
  obs::ObsConfig tcfg;
  tcfg.metrics = true;
  tcfg.timeseries.enabled = true;
  obs::Sink tsdb_sink(tcfg);

  // Interleave yardstick / off / on within each round so all three see the
  // same spread of environmental conditions; the index divides the global
  // minimum pass time by the global minimum yardstick time. Both minima
  // settle on the machine's best frequency state, so the ratio is the
  // tightest-variance statistic available here (per-round ratios were
  // tried and amplify anti-correlated noise instead of cancelling it).
  constexpr int kRounds = 6;
  ObsPoint off;
  ObsPoint on;
  ObsPoint audit;
  ObsPoint tsdb;
  double yard_ns = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kRounds; ++round) {
    yard_ns = std::min(yard_ns, yardstick_round());
    measure_epoch_pass_round(nullptr, off);
    measure_epoch_pass_round(&sink, on);
    measure_epoch_pass_round(&audit_sink, audit);
    measure_epoch_pass_round(&tsdb_sink, tsdb, /*tick_sampler=*/true);
  }
  const double off_index = off.min_pass_ns / yard_ns;
  const double on_index = on.min_pass_ns / yard_ns;
  const double audit_index = audit.min_pass_ns / yard_ns;
  const double tsdb_index = tsdb.min_pass_ns / yard_ns;

  bench::Json j;
  j.begin_object()
      .field("bench", "BENCH_obs")
      .field("description",
             "SmartBalance epoch pass (on_balance: sense+predict+balance) "
             "with observability hooks disabled (null sink, the shipping "
             "default) vs metrics+tracing enabled vs the prediction-audit "
             "recorder alone vs the continuous-telemetry plane (metrics + "
             "timeseries with one sampler tick per pass); quad HMP, "
             "canneal:2+swaptions:2; "
             "pass_cost_index = min pass CPU time / min yardstick CPU time "
             "over 6 interleaved rounds x 32 passes")
      .field("build", "-O2 -DNDEBUG")
      .field("baseline_note",
             "tracer-off budget is 1% on pass_cost_index over the committed "
             "baseline (max_regress in the section); the yardstick ratio "
             "cancels machine speed. allocs per pass must not increase.")
      .field("yardstick_ns", yard_ns);
  j.begin_object("epoch_pass_tracer_off")
      .field("pass_cost_index", off_index)
      .field("min_pass_ns", off.min_pass_ns)
      .field("allocs_per_pass", off.allocs_per_pass)
      .field("max_regress", 0.01)
      .end_object();
  j.begin_object("epoch_pass_tracer_on")
      .field("pass_cost_index", on_index)
      .field("min_pass_ns", on.min_pass_ns)
      .field("allocs_per_pass", on.allocs_per_pass)
      .field("overhead_vs_off_pct", 100.0 * (on_index / off_index - 1.0))
      .end_object();
  j.begin_object("epoch_pass_audit_on")
      .field("pass_cost_index", audit_index)
      .field("min_pass_ns", audit.min_pass_ns)
      .field("allocs_per_pass", audit.allocs_per_pass)
      .field("overhead_vs_off_pct", 100.0 * (audit_index / off_index - 1.0))
      .end_object();
  j.begin_object("epoch_pass_tsdb_on")
      .field("pass_cost_index", tsdb_index)
      .field("min_pass_ns", tsdb.min_pass_ns)
      .field("allocs_per_pass", tsdb.allocs_per_pass)
      .field("overhead_vs_off_pct", 100.0 * (tsdb_index / off_index - 1.0))
      .end_object();
  j.end_object();
  j.write("BENCH_obs.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_bench_sa_json();
  emit_bench_obs_json();
  return 0;
}
