// Fig. 7 — (a) per-phase SmartBalance overhead on the quad-core HMP and
// (b) scalability of the overhead from 2 to 128 cores with 4 to 256
// threads (assuming 50% of threads migrate, as in the paper).
//
// Paper claim: "for typical embedded platforms with 2 to 8 cores, the
// average overhead of using SmartBalance is negligible with respect to the
// 60 ms epoch length (less than 1%)", with optimization + migration
// dominating at larger scales.
//
// Besides the tables/CSV, this harness writes BENCH_epoch.json: the
// per-phase breakdown at the quad and 128-core extremes plus a
// prediction-cache on-vs-off comparison of the predict phase, against the
// committed pre-optimization baselines (see EXPERIMENTS.md "Hot-path
// performance").
#include <iostream>
#include <memory>
#include <vector>

#include "arch/platform.h"
#include "bench_json.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/smart_balance.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace {

// Per-migration cost charged in the overhead account: kernel bookkeeping +
// cold-start stall amortized at the scheduler level (the *cache* warmup is
// modeled physically inside the simulation; this term is the paper's
// "thread migration" bar).
constexpr double kMigrationCostUs = 25.0;

struct PhaseRow {
  int cores = 0;
  int threads = 0;
  double sense_us = 0;
  double predict_us = 0;
  double optimize_us = 0;
  double migrate_us = 0;  // 50% of threads × per-migration cost
  // Prediction-cache accounting (zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale_evictions = 0;
  double total_us() const {
    return sense_us + predict_us + optimize_us + migrate_us;
  }
};

sb::arch::Platform make_platform(int cores) {
  using namespace sb;
  if (cores >= 4) return arch::Platform::scaled_heterogeneous(cores / 4);
  arch::Platform p;
  p.add_cores(arch::big_core(), 1);
  p.add_cores(arch::small_core(), cores - 1);
  p.validate();
  return p;
}

PhaseRow measure(int cores, int threads, sb::TimeNs duration,
                 std::uint64_t seed, bool prediction_cache = false,
                 bool force_cache = false) {
  using namespace sb;
  const auto platform = make_platform(cores);
  sim::SimulationConfig cfg;
  cfg.duration = duration;
  cfg.seed = seed;
  sim::Simulation s(platform, cfg);
  core::SmartBalanceConfig sb_cfg;
  sb_cfg.prediction_cache.enabled = prediction_cache;
  // force_cache drops the small-platform floor (min_cores) so the quad
  // crossover — where key hashing costs more than the Θ fan-out it saves —
  // stays measurable even though the policy auto-disables the cache there.
  if (force_cache) sb_cfg.prediction_cache.min_cores = 0;
  s.set_balancer(sim::smartbalance_factory(sb_cfg)(s));
  // Mixed workload touching all characterization regimes.
  const char* names[] = {"swaptions", "canneal", "bodytrack", "x264_H_crew"};
  for (int i = 0; i < threads; ++i) {
    s.add_benchmark(names[i % 4], 1);
  }
  const auto r = s.run();
  PhaseRow row;
  row.cores = cores;
  row.threads = threads;
  row.sense_us = r.avg_sense_us;
  row.predict_us = r.avg_predict_us;
  row.optimize_us = r.avg_optimize_us;
  row.migrate_us = 0.5 * threads * kMigrationCostUs;
  if (const auto* policy = dynamic_cast<const core::SmartBalancePolicy*>(
          s.kernel().balancer())) {
    const auto stats = policy->prediction_cache().stats();
    row.cache_hits = stats.hits;
    row.cache_misses = stats.misses;
    row.cache_stale_evictions = stats.stale_evictions;
  }
  return row;
}

void emit_phase_object(sb::bench::Json& j, const std::string& key,
                       const PhaseRow& row, double base_sense_us,
                       double base_predict_us, double base_optimize_us) {
  j.begin_object(key)
      .field("cores", row.cores)
      .field("threads", row.threads)
      .field("sense_us", row.sense_us)
      .field("predict_us", row.predict_us)
      .field("optimize_us", row.optimize_us)
      .field("migrate_us", row.migrate_us)
      .field("total_us", row.total_us())
      .field("pct_of_epoch", row.total_us() / 60'000.0 * 100)
      .field("baseline_sense_us", base_sense_us)
      .field("baseline_predict_us", base_predict_us)
      .field("baseline_optimize_us", base_optimize_us)
      .field("optimize_speedup_vs_baseline",
             row.optimize_us > 0 ? base_optimize_us / row.optimize_us : 0.0)
      .end_object();
}

void emit_cache_object(sb::bench::Json& j, const std::string& key,
                       const PhaseRow& off, const PhaseRow& on,
                       bool auto_disabled = false) {
  j.begin_object(key)
      .field("cores", off.cores)
      .field("threads", off.threads)
      .field("auto_disabled", auto_disabled)
      .field("predict_us_cache_off", off.predict_us)
      .field("predict_us_cache_on", on.predict_us)
      .field("predict_speedup",
             on.predict_us > 0 ? off.predict_us / on.predict_us : 0.0)
      .field("cache_hits", on.cache_hits)
      .field("cache_misses", on.cache_misses)
      .field("cache_stale_evictions", on.cache_stale_evictions)
      .field("hit_rate",
             on.cache_hits + on.cache_misses > 0
                 ? static_cast<double>(on.cache_hits) /
                       static_cast<double>(on.cache_hits + on.cache_misses)
                 : 0.0)
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 7: SmartBalance overhead and scalability",
                "(a) <1% of the 60 ms epoch on 2-8 cores; (b) optimization "
                "and migration dominate toward 128 cores / 256 threads");

  // --- (a) quad-core HMP ---------------------------------------------------
  const auto quad = measure(4, 8, opt.duration, opt.seed);
  TextTable ta({"phase", "avg host time (us)", "% of 60 ms epoch"});
  auto pct = [](double us) { return TextTable::fmt(us / 60'000.0 * 100, 4); };
  ta.add_row({"sense", TextTable::fmt(quad.sense_us, 1), pct(quad.sense_us)});
  ta.add_row({"predict", TextTable::fmt(quad.predict_us, 1),
              pct(quad.predict_us)});
  ta.add_row({"optimize (SA)", TextTable::fmt(quad.optimize_us, 1),
              pct(quad.optimize_us)});
  ta.add_row({"migrate (50% of threads)", TextTable::fmt(quad.migrate_us, 1),
              pct(quad.migrate_us)});
  ta.add_row({"TOTAL", TextTable::fmt(quad.total_us(), 1),
              pct(quad.total_us())});
  std::cout << "(a) quad-core HMP, 8 threads:\n"
            << ta << "\n";

  // --- (b) scalability -----------------------------------------------------
  std::vector<std::pair<int, int>> scenarios = {{2, 4},   {4, 8},   {8, 16},
                                                {16, 32}, {32, 64}, {64, 128},
                                                {128, 256}};
  if (opt.quick) scenarios.resize(5);
  TextTable tb({"cores", "threads", "sense us", "predict us", "optimize us",
                "migrate us", "total us", "% of epoch"});
  CsvWriter csv("fig7_scalability.csv",
                {"cores", "threads", "sense_us", "predict_us", "optimize_us",
                 "migrate_us", "total_us"});
  PhaseRow large;  // the 128-core/256-thread extreme (skipped with --quick)
  for (const auto& [n, m] : scenarios) {
    // Larger platforms get a shorter window — overhead per pass is what we
    // measure, a few epochs suffice.
    const TimeNs window =
        n >= 32 ? milliseconds(180) : std::min<TimeNs>(opt.duration, milliseconds(300));
    const auto row = measure(n, m, window, opt.seed);
    if (n == 128) large = row;
    tb.add_row({std::to_string(n), std::to_string(m),
                TextTable::fmt(row.sense_us, 1),
                TextTable::fmt(row.predict_us, 1),
                TextTable::fmt(row.optimize_us, 1),
                TextTable::fmt(row.migrate_us, 1),
                TextTable::fmt(row.total_us(), 1), pct(row.total_us())});
    csv.row({std::to_string(n), std::to_string(m),
             TextTable::fmt(row.sense_us, 2), TextTable::fmt(row.predict_us, 2),
             TextTable::fmt(row.optimize_us, 2),
             TextTable::fmt(row.migrate_us, 2),
             TextTable::fmt(row.total_us(), 2)});
  }
  std::cout << "(b) scalability (2-128 cores, 4-256 threads):\n"
            << tb << "\nSeries written to fig7_scalability.csv\n";

  // --- BENCH_epoch.json ----------------------------------------------------
  // Pre-PR per-phase baselines measured on the same machine at -O2 -DNDEBUG
  // (commit b792c4d, default duration, seed 1234, identical workload mix).
  // On the quad the cache auto-disables (num_cores < min_cores: hashing a
  // key costs more than the 2-group Θ fan-out it would skip), so the
  // "quad" row documents the no-op; "quad_forced" drops the floor to keep
  // the crossover itself measured (predict_speedup < 1 is expected there —
  // that regression is exactly why the floor exists).
  const auto quad_cached = measure(4, 8, opt.duration, opt.seed, true);
  const auto quad_forced = measure(4, 8, opt.duration, opt.seed, true, true);
  bench::Json j;
  j.begin_object()
      .field("bench", "BENCH_epoch")
      .field("description",
             "SmartBalance per-phase epoch overhead (PARSEC mix workload) "
             "and prediction-cache predict-phase comparison")
      .field("build", "-O2 -DNDEBUG")
      .field("baseline_commit", "b792c4d");
  emit_phase_object(j, "quad", quad, 4.8, 1.0, 54.8);
  if (large.cores == 128) {
    emit_phase_object(j, "fig7_large", large, 130.9, 788.1, 7386.8);
  }
  j.begin_object("prediction_cache");
  emit_cache_object(j, "quad", quad, quad_cached, /*auto_disabled=*/true);
  emit_cache_object(j, "quad_forced", quad, quad_forced);
  if (large.cores == 128) {
    const auto large_cached =
        measure(128, 256, milliseconds(180), opt.seed, true);
    emit_cache_object(j, "fig7_large", large, large_cached);
  }
  j.end_object();
  j.end_object();
  j.write("BENCH_epoch.json");
  return 0;
}
