// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/fault_plan.h"
#include "obs/audit_writer.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "sim/runner.h"

namespace sb::bench {

/// Command-line knobs common to all harnesses:
///   --quick          shorter simulations (CI smoke mode)
///   --seed=N         override the experiment seed
///   --duration-ms=N  override simulated window
///   --jobs=N         worker threads for the sweep (1 = sequential;
///                    default: SB_JOBS env var, else hardware concurrency)
///   --faults=SPEC    fault plan for SmartBalance runs, e.g.
///                    "wrap:0.05,noise:0.02:3" or "uniform:0.05"
///                    (see fault/fault_plan.h). A zero-rate or empty spec is
///                    exactly the default (faultless, undefended) pipeline.
///   --fault-seed=N   seed for the fault plan's injection hashes
///   --no-defense     keep the sensing defenses off even under faults
///                    (ablation arm of the resilience sweep)
///   --trace=FILE     write the sweep's merged epoch trace as Chrome
///                    trace-event JSON (SB_TRACE env var is the default)
///   --metrics        collect and print the merged metrics registry
///   --metrics-json=FILE  write the merged metrics registry as JSON
///   --audit=FILE     record the prediction-audit flight recorder on every
///                    run and write the merged packed-CSV export (analyze
///                    with tools/sbaudit)
struct Options {
  bool quick = false;
  std::uint64_t seed = 1234;
  TimeNs duration = milliseconds(600);
  int jobs = 0;  // 0 = ExperimentRunner default (SB_JOBS / hw concurrency)
  std::string faults;
  std::uint64_t fault_seed = 0xfa517u;
  bool no_defense = false;
  std::string trace;  // Chrome trace-event JSON output path (empty = off)
  bool metrics = false;
  std::string metrics_json;  // merged metrics registry JSON (empty = off)
  std::string audit;  // merged prediction-audit export (empty = off)

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        o.quick = true;
        o.duration = milliseconds(240);
      } else if (a.rfind("--seed=", 0) == 0) {
        o.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
      } else if (a.rfind("--duration-ms=", 0) == 0) {
        o.duration = milliseconds(std::strtoll(a.c_str() + 14, nullptr, 10));
      } else if (a.rfind("--jobs=", 0) == 0) {
        o.jobs = std::atoi(a.c_str() + 7);
      } else if (a.rfind("--faults=", 0) == 0) {
        o.faults = a.substr(9);
      } else if (a.rfind("--fault-seed=", 0) == 0) {
        o.fault_seed = std::strtoull(a.c_str() + 13, nullptr, 10);
      } else if (a == "--no-defense") {
        o.no_defense = true;
      } else if (a.rfind("--trace=", 0) == 0) {
        o.trace = a.substr(8);
      } else if (a == "--metrics") {
        o.metrics = true;
      } else if (a.rfind("--metrics-json=", 0) == 0) {
        o.metrics_json = a.substr(15);
        o.metrics = true;
      } else if (a.rfind("--audit=", 0) == 0) {
        o.audit = a.substr(8);
      } else if (a == "--help" || a == "-h") {
        std::cout << "options: --quick --seed=N --duration-ms=N --jobs=N "
                     "--faults=SPEC --fault-seed=N --no-defense "
                     "--trace=FILE --metrics --metrics-json=FILE "
                     "--audit=FILE\n";
        std::exit(0);
      } else {
        std::cerr << "unknown option: " << a << "\n";
        std::exit(2);
      }
    }
    if (o.trace.empty()) {
      if (const char* env = std::getenv("SB_TRACE")) o.trace = env;
    }
    return o;
  }

  /// Applies the observability flags to a simulation config (no-op when
  /// none of --trace/--metrics/--audit was given — the bit-identical path).
  void apply_obs(sim::SimulationConfig& cfg) const {
    cfg.obs.trace = cfg.obs.trace || !trace.empty();
    cfg.obs.metrics = cfg.obs.metrics || metrics;
    cfg.obs.audit = cfg.obs.audit || !audit.empty();
  }

  /// The fault plan requested on the command line ("uniform:R" expands to
  /// FaultPlan::uniform(R); empty/zero-rate specs yield an empty plan).
  fault::FaultPlan fault_plan() const {
    if (faults.rfind("uniform:", 0) == 0) {
      return fault::FaultPlan::uniform(std::strtod(faults.c_str() + 8, nullptr),
                                       fault_seed);
    }
    return fault::FaultPlan::parse(faults, fault_seed);
  }

  /// SmartBalance config honoring --faults / --no-defense. With neither
  /// flag this is exactly core::SmartBalanceConfig() — the bit-identical
  /// golden-figure path.
  core::SmartBalanceConfig smart_config() const {
    core::SmartBalanceConfig cfg;
    cfg.fault_plan = fault_plan();
    if (no_defense) {
      cfg.defenses = core::SmartBalanceConfig::Defenses::kOff;
    }
    return cfg;
  }

  /// Runner honoring --jobs (or SB_JOBS / hardware concurrency when unset).
  sim::ExperimentRunner runner() const {
    sim::ExperimentRunner::Config cfg;
    cfg.threads = jobs;
    return sim::ExperimentRunner(cfg);
  }
};

/// One figure bar: the same workload under the baseline policy and under
/// SmartBalance with both objectives — Eq. 11 verbatim (sum of per-core
/// IPS/W ratios) and this library's global IPS/W objective (see
/// DESIGN.md §5 for why Eq. 11 alone under-determines the allocation).
struct GainRow {
  std::string label;
  double baseline_mips_w = 0;
  double smart_eq11_mips_w = 0;
  double smart_mips_w = 0;       // global objective (library default)
  double gain_eq11_pct = 0;
  double gain_pct = 0;
  std::uint64_t migrations = 0;  // global-objective run
};

namespace detail {
inline GainRow make_gain_row(const std::string& label,
                             const sim::SimulationResult& baseline,
                             const sim::SimulationResult& eq11,
                             const sim::SimulationResult& global) {
  GainRow row;
  row.label = label;
  row.baseline_mips_w = baseline.ips_per_watt / 1e6;
  row.smart_eq11_mips_w = eq11.ips_per_watt / 1e6;
  row.smart_mips_w = global.ips_per_watt / 1e6;
  row.gain_eq11_pct = 100.0 * (sim::efficiency_ratio(eq11, baseline) - 1.0);
  row.gain_pct = 100.0 * (sim::efficiency_ratio(global, baseline) - 1.0);
  row.migrations = global.migrations;
  return row;
}
}  // namespace detail

/// Batched variant of run_gain: queue every figure bar of a sweep up front,
/// execute the whole batch through one ExperimentRunner (3 simulations per
/// bar — baseline, SmartBalance Eq. 11, SmartBalance global), and read the
/// rows back in submission order. Parallelism spans the entire sweep, so
/// wall-clock approaches cpu_time / threads even when single bars are
/// imbalanced.
class GainSweep {
 public:
  GainSweep(const arch::Platform& platform, const sim::SimulationConfig& cfg,
            const core::SmartBalanceConfig& smart = core::SmartBalanceConfig())
      : platform_(platform),
        cfg_(cfg),
        // One factory pair for the whole sweep: the predictor-model cache
        // inside smartbalance_factory is per-factory, so sharing it trains
        // once per platform shape instead of once per bar (training is
        // deterministic, so results are unchanged — just faster).
        eq11_(sim::smartbalance_factory(smart,
                                        /*paper_eq11_objective=*/true)),
        global_(sim::smartbalance_factory(smart)) {}

  /// Queues one bar; returns its row index in run()'s output.
  std::size_t add(const std::string& label,
                  const sim::WorkloadBuilder& workload,
                  const sim::BalancerFactory& baseline) {
    const std::size_t index = labels_.size();
    labels_.push_back(label);
    auto push = [&](const std::string& policy_name,
                    const sim::BalancerFactory& policy) {
      sim::ExperimentSpec spec;
      spec.platform = platform_;
      spec.cfg = cfg_;
      spec.workload = workload;
      spec.policy = policy;
      spec.label = label;
      spec.policy_name = policy_name;
      specs_.push_back(std::move(spec));
    };
    push("baseline", baseline);
    push("smartbalance-eq11", eq11_);
    push("smartbalance", global_);
    return index;
  }

  /// Executes all queued bars; one GainRow per add(), in add() order.
  /// Throws std::runtime_error if any simulation failed.
  std::vector<GainRow> run(const sim::ExperimentRunner& runner) {
    const auto batch = runner.run(specs_);
    summary_ = batch.summary;
    obs_.clear();
    for (const auto& r : batch.runs) {
      if (!r.ok()) {
        throw std::runtime_error("sweep run '" + r.label +
                                 "' failed: " + r.error);
      }
      // Runs are already stamped with their submission index by the
      // ExperimentRunner, so the merged trace/metrics are --jobs-invariant.
      if (r.result.obs) obs_.push_back(r.result.obs);
    }
    std::vector<GainRow> rows;
    rows.reserve(labels_.size());
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      rows.push_back(detail::make_gain_row(
          labels_[i], batch.runs[3 * i].result, batch.runs[3 * i + 1].result,
          batch.runs[3 * i + 2].result));
    }
    return rows;
  }

  /// Batch accounting of the last run() (threads, wall/cpu ms, speedup).
  const sim::BatchSummary& summary() const { return summary_; }

  /// Per-run observability snapshots of the last run() (empty unless the
  /// sweep ran with tracing/metrics enabled). Submission order.
  const std::vector<std::shared_ptr<obs::RunObs>>& observability() const {
    return obs_;
  }

  /// Writes the last run()'s merged Chrome trace-event JSON. Returns false
  /// (and writes nothing) if no run carried a trace.
  bool write_trace(const std::string& path) const {
    std::vector<const obs::RunObs*> runs;
    for (const auto& o : obs_) {
      if (o && o->trace_enabled) runs.push_back(o.get());
    }
    if (runs.empty()) return false;
    obs::write_chrome_trace_file(path, runs);
    return true;
  }

  /// Writes the last run()'s merged prediction-audit export. Returns false
  /// (and writes nothing) if no run carried the recorder.
  bool write_audit(const std::string& path) const {
    std::vector<const obs::RunObs*> runs;
    for (const auto& o : obs_) {
      if (o && o->audit_enabled) runs.push_back(o.get());
    }
    if (runs.empty()) return false;
    obs::write_audit_file(path, runs);
    return true;
  }

  /// Merges the metric registries of the last run() across all runs
  /// (deterministic: merged in submission order).
  obs::MetricsRegistry merged_metrics() const {
    std::vector<const obs::RunObs*> runs;
    for (const auto& o : obs_) {
      if (o) runs.push_back(o.get());
    }
    return obs::merge_metrics(runs);
  }

 private:
  arch::Platform platform_;
  sim::SimulationConfig cfg_;
  sim::BalancerFactory eq11_;
  sim::BalancerFactory global_;
  std::vector<std::string> labels_;
  std::vector<sim::ExperimentSpec> specs_;
  sim::BatchSummary summary_;
  std::vector<std::shared_ptr<obs::RunObs>> obs_;
};

/// Runs `workload` under `baseline` and both SmartBalance variants on
/// `platform`, returning the normalized-efficiency row (the unit of
/// Figs. 4 and 5).
inline GainRow run_gain(const std::string& label,
                        const arch::Platform& platform,
                        const sim::SimulationConfig& cfg,
                        const sim::WorkloadBuilder& workload,
                        const sim::BalancerFactory& baseline) {
  const auto runs = sim::compare_policies(
      platform, cfg, workload,
      {{"baseline", baseline},
       {"smartbalance-eq11",
        sim::smartbalance_factory(core::SmartBalanceConfig(),
                                  /*paper_eq11_objective=*/true)},
       {"smartbalance", sim::smartbalance_factory()}});
  return detail::make_gain_row(label, runs[0].result, runs[1].result,
                               runs[2].result);
}

inline void header(const std::string& title, const std::string& paper_claim) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper reference: " << paper_claim << "\n"
            << "==============================================================\n";
}

/// One-line batch accounting ("N runs on T threads ...") for sweep benches.
inline void print_batch_summary(const sim::BatchSummary& s) {
  const double sp = s.wall_ms > 0 ? s.speedup() : 0.0;
  std::cout << "Sweep: " << s.total << " simulations on " << s.threads
            << " thread(s), " << static_cast<long>(s.wall_ms)
            << " ms wall (" << static_cast<long>(s.cpu_ms)
            << " ms sequential-equivalent, "
            << static_cast<double>(static_cast<long>(sp * 10 + 0.5)) / 10.0
            << "x speedup)\n";
  if (s.failed > 0) std::cout << "WARNING: " << s.failed << " runs failed\n";
}

}  // namespace sb::bench
