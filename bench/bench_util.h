// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/types.h"
#include "sim/experiment.h"

namespace sb::bench {

/// Command-line knobs common to all harnesses:
///   --quick          shorter simulations (CI smoke mode)
///   --seed=N         override the experiment seed
///   --duration-ms=N  override simulated window
struct Options {
  bool quick = false;
  std::uint64_t seed = 1234;
  TimeNs duration = milliseconds(600);

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        o.quick = true;
        o.duration = milliseconds(240);
      } else if (a.rfind("--seed=", 0) == 0) {
        o.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
      } else if (a.rfind("--duration-ms=", 0) == 0) {
        o.duration = milliseconds(std::strtoll(a.c_str() + 14, nullptr, 10));
      } else if (a == "--help" || a == "-h") {
        std::cout << "options: --quick --seed=N --duration-ms=N\n";
        std::exit(0);
      } else {
        std::cerr << "unknown option: " << a << "\n";
        std::exit(2);
      }
    }
    return o;
  }
};

/// One figure bar: the same workload under the baseline policy and under
/// SmartBalance with both objectives — Eq. 11 verbatim (sum of per-core
/// IPS/W ratios) and this library's global IPS/W objective (see
/// DESIGN.md §5 for why Eq. 11 alone under-determines the allocation).
struct GainRow {
  std::string label;
  double baseline_mips_w = 0;
  double smart_eq11_mips_w = 0;
  double smart_mips_w = 0;       // global objective (library default)
  double gain_eq11_pct = 0;
  double gain_pct = 0;
  std::uint64_t migrations = 0;  // global-objective run
};

/// Runs `workload` under `baseline` and both SmartBalance variants on
/// `platform`, returning the normalized-efficiency row (the unit of
/// Figs. 4 and 5).
inline GainRow run_gain(const std::string& label,
                        const arch::Platform& platform,
                        const sim::SimulationConfig& cfg,
                        const sim::WorkloadBuilder& workload,
                        const sim::BalancerFactory& baseline) {
  const auto runs = sim::compare_policies(
      platform, cfg, workload,
      {{"baseline", baseline},
       {"smartbalance-eq11",
        sim::smartbalance_factory(core::SmartBalanceConfig(),
                                  /*paper_eq11_objective=*/true)},
       {"smartbalance", sim::smartbalance_factory()}});
  GainRow row;
  row.label = label;
  row.baseline_mips_w = runs[0].result.ips_per_watt / 1e6;
  row.smart_eq11_mips_w = runs[1].result.ips_per_watt / 1e6;
  row.smart_mips_w = runs[2].result.ips_per_watt / 1e6;
  row.gain_eq11_pct =
      100.0 * (sim::efficiency_ratio(runs[1].result, runs[0].result) - 1.0);
  row.gain_pct =
      100.0 * (sim::efficiency_ratio(runs[2].result, runs[0].result) - 1.0);
  row.migrations = runs[2].result.migrations;
  return row;
}

inline void header(const std::string& title, const std::string& paper_claim) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper reference: " << paper_claim << "\n"
            << "==============================================================\n";
}

}  // namespace sb::bench
