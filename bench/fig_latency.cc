// fig_latency — interactive wake-to-run latency: smartbalance vs vanilla.
//
// Tentpole claim: SmartBalance stays energy-efficient WITHOUT hurting how
// fast woken threads get a core. The paper's IMB interactive benchmarks
// (Fig. 4a) gesture at this responsiveness axis but never measure it; here
// the exact per-wake wake→first-dispatch samples collected by the kernel
// (os/kernel.h wake_latencies) are reduced to nearest-rank p50/p95/p99
// tails and gated: on both interactive scenarios SmartBalance's p95 and
// p99 wake-to-run must be equal or better than vanilla's, with absolute
// ceilings of 0 on the excess (the simulation is deterministic, so any
// nonzero excess is a real responsiveness regression, not noise).
//
// Scenarios (both on the paper's quad-core 4-type HMP, fixed 240 ms):
//   replayed — a recorded 200 ms scheduler trace (six interactive UI tasks
//              with staggered duty cycles over two background hogs),
//              generated in-process and compiled through
//              workload/sched_replay.h. The identical trace is checked in
//              as examples/interactive_replay.csv for sbsim --replay runs.
//   bursty   — IMB_MTHI x8 interactive threads over canneal x2 hogs (2.5x
//              thread overcommit, bursty sleep/wake duty cycles).
//
// Durations are pinned per scenario rather than taken from --duration-ms:
// the latency tails are sensitive to the wake population, so the gated
// numbers are one fixed deterministic point (--quick runs the same sweep;
// the flag is accepted for CI-harness uniformity).
//
// Determinism: every run goes through the ExperimentRunner, whose results
// are bit-identical for any --jobs worker count; rows are emitted in
// canonical (scenario, policy) order regardless of execution order
// (--reverse-policies runs the sweep backwards), so fig_latency.csv and
// BENCH_latency.json are byte-identical across --jobs=1 vs --jobs=N.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "arch/platform.h"
#include "bench_json.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/runner.h"
#include "workload/sched_replay.h"

namespace {

using sb::TimeNs;

/// The replayed interactive scenario's scheduler trace: six UI tasks with
/// staggered duty cycles (busy 400+120i us, sleep 1400+250i us) over two
/// background hogs, 200 ms span. Byte-for-byte the trace saved as
/// examples/interactive_replay.csv (the save/load round-trip is pinned by
/// tests/workload/sched_replay_test.cc).
sb::workload::ReplayTrace make_interactive_trace() {
  using sb::workload::ReplayEvent;
  std::vector<ReplayEvent> events;
  auto add = [&events](double t_us, ReplayEvent::Kind kind,
                       const std::string& task, const std::string& ref = "") {
    ReplayEvent e;
    e.kind = kind;
    e.at = static_cast<TimeNs>(std::llround(t_us * 1000.0));
    e.task = task;
    e.ref = ref;
    events.push_back(std::move(e));
  };
  const double end_us = 200000.0;
  add(0.0, ReplayEvent::Kind::Spawn, "bg/canneal", "builtin:canneal");
  add(2000.0, ReplayEvent::Kind::Spawn, "bg/custom", "builtin:canneal");
  double t = 2000.0;
  while (t + 20000.0 < end_us - 10000.0) {
    t += 20000.0;
    add(t, ReplayEvent::Kind::Sleep, "bg/custom");
    t += 3000.0;
    add(t, ReplayEvent::Kind::Wake, "bg/custom");
  }
  for (int i = 0; i < 6; ++i) {
    const std::string name = "ui" + std::to_string(i);
    const double spawn = 500.0 * i;
    add(spawn, ReplayEvent::Kind::Spawn, name, "builtin:IMB_MTHI");
    const double busy = 400.0 + 120.0 * i;
    const double sleep = 1400.0 + 250.0 * i;
    t = spawn;
    while (t + busy + sleep < end_us - 5000.0) {
      t += busy;
      add(t, ReplayEvent::Kind::Sleep, name);
      t += sleep;
      add(t, ReplayEvent::Kind::Wake, name);
    }
    if (i % 2 == 0) add(t + busy, ReplayEvent::Kind::Exit, name);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ReplayEvent& a, const ReplayEvent& b) {
                     return a.at < b.at;
                   });
  return sb::workload::ReplayTrace{std::move(events)};
}

struct Scenario {
  std::string name;
  sb::sim::WorkloadBuilder workload;
  TimeNs duration = 0;
};

std::vector<Scenario> make_scenarios() {
  using sb::sim::Simulation;
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"replayed",
       [](Simulation& s) {
         s.add_replay(sb::workload::compile_replay_schedule(
             make_interactive_trace(), {}));
       },
       sb::milliseconds(240)});
  scenarios.push_back({"bursty",
                       [](Simulation& s) {
                         s.add_benchmark("IMB_MTHI", 8);
                         s.add_benchmark("canneal", 2);
                       },
                       sb::milliseconds(240)});
  return scenarios;
}

struct Row {
  std::size_t scenario = 0;
  int policy = 0;  // 0 = vanilla, 1 = smartbalance (canonical order)
  sb::sim::SimulationResult r;
};

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;

  // --reverse-policies is the order-permutation arm of the determinism
  // matrix; strip it before the shared option parser.
  bool reverse = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reverse-policies") == 0) {
      reverse = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto opt =
      bench::Options::parse(static_cast<int>(args.size()), args.data());
  bench::header("Interactive latency: wake-to-run tails under SmartBalance",
                "energy-efficient balancing must not hurt responsiveness — "
                "p95/p99 wake-to-run equal or better than vanilla on every "
                "interactive scenario");

  const auto scenarios = make_scenarios();
  const std::vector<std::pair<std::string, sim::BalancerFactory>> policies = {
      {"vanilla", sim::vanilla_factory()},
      {"smartbalance", sim::smartbalance_factory(opt.smart_config())}};

  // Submission order is permutable; each spec remembers its canonical slot.
  std::vector<std::pair<std::size_t, int>> order;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (int p = 0; p < static_cast<int>(policies.size()); ++p) {
      order.push_back({s, p});
    }
  }
  if (reverse) std::reverse(order.begin(), order.end());

  const auto platform = arch::Platform::quad_heterogeneous();
  std::vector<sim::ExperimentSpec> specs;
  for (const auto& [s, p] : order) {
    sim::ExperimentSpec spec;
    spec.platform = platform;
    spec.cfg.duration = scenarios[s].duration;
    spec.cfg.seed = opt.seed;
    opt.apply_obs(spec.cfg);
    spec.workload = scenarios[s].workload;
    spec.policy = policies[static_cast<std::size_t>(p)].second;
    spec.label = scenarios[s].name;
    spec.policy_name = policies[static_cast<std::size_t>(p)].first;
    specs.push_back(std::move(spec));
  }

  const auto batch = opt.runner().run(specs);
  std::vector<Row> rows;
  std::vector<std::shared_ptr<obs::RunObs>> all_obs(order.size());
  for (std::size_t i = 0; i < batch.runs.size(); ++i) {
    const auto& run = batch.runs[i];
    if (!run.ok()) {
      std::cerr << "run '" << run.label << "' failed: " << run.error << "\n";
      return 1;
    }
    Row row;
    row.scenario = order[i].first;
    row.policy = order[i].second;
    row.r = run.result;
    // Restamp observability into canonical slots so merged exports are
    // identical across submission orders.
    const int canonical = static_cast<int>(
        row.scenario * policies.size() + static_cast<std::size_t>(row.policy));
    if (run.result.obs) {
      run.result.obs->run = canonical + 1;
      all_obs[static_cast<std::size_t>(canonical)] = run.result.obs;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.scenario != b.scenario ? a.scenario < b.scenario
                                    : a.policy < b.policy;
  });

  TextTable tb({"scenario", "policy", "wakes", "p50 us", "p95 us", "p99 us",
                "max us", "MIPS/W"});
  CsvWriter csv("fig_latency.csv",
                {"scenario", "policy", "wakes", "mean_us", "p50_us", "p95_us",
                 "p99_us", "max_us", "mips_w", "migrations"});
  for (const auto& row : rows) {
    const auto& lt = row.r.wake_to_run;
    const auto& policy = policies[static_cast<std::size_t>(row.policy)].first;
    tb.add_row({scenarios[row.scenario].name, policy,
                std::to_string(lt.count), TextTable::fmt(us(lt.p50_ns), 3),
                TextTable::fmt(us(lt.p95_ns), 3),
                TextTable::fmt(us(lt.p99_ns), 3),
                TextTable::fmt(us(lt.max_ns), 3),
                TextTable::fmt(row.r.ips_per_watt / 1e6, 1)});
    csv.row({scenarios[row.scenario].name, policy, std::to_string(lt.count),
             TextTable::fmt(lt.mean_ns / 1e3, 3),
             TextTable::fmt(us(lt.p50_ns), 3), TextTable::fmt(us(lt.p95_ns), 3),
             TextTable::fmt(us(lt.p99_ns), 3), TextTable::fmt(us(lt.max_ns), 3),
             TextTable::fmt(row.r.ips_per_watt / 1e6, 4),
             std::to_string(row.r.migrations)});
  }

  bench::Json j;
  j.begin_object()
      .field("bench", "BENCH_latency")
      .field("description",
             "Interactive wake-to-run latency tails, smartbalance vs "
             "vanilla, on a replayed scheduler trace and a bursty "
             "interactive mix; both excess gates (p95_excess_pct, "
             "p99_excess_pct) carry absolute ceilings of 0 — the simulation "
             "is deterministic, so any nonzero excess is a real "
             "responsiveness regression, not noise")
      .field("build", "-O2 -DNDEBUG");

  int gate_violations = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto& vanilla = rows[s * policies.size()].r;
    const auto& smart = rows[s * policies.size() + 1].r;
    const double p95_v = static_cast<double>(vanilla.wake_to_run.p95_ns);
    const double p95_s = static_cast<double>(smart.wake_to_run.p95_ns);
    const double p99_v = static_cast<double>(vanilla.wake_to_run.p99_ns);
    const double p99_s = static_cast<double>(smart.wake_to_run.p99_ns);
    const double p95_excess_pct =
        p95_v > 0 ? std::max(0.0, 100.0 * (p95_s / p95_v - 1.0))
                  : (p95_s > 0 ? 100.0 : 0.0);
    const double p99_excess_pct =
        p99_v > 0 ? std::max(0.0, 100.0 * (p99_s / p99_v - 1.0))
                  : (p99_s > 0 ? 100.0 : 0.0);
    const double eff_gain_pct =
        100.0 * (smart.ips_per_watt / vanilla.ips_per_watt - 1.0);
    if (p95_excess_pct > 0 || p99_excess_pct > 0) ++gate_violations;
    std::cout << scenarios[s].name << ": smartbalance vs vanilla: p99 "
              << TextTable::fmt(us(smart.wake_to_run.p99_ns), 1) << " us vs "
              << TextTable::fmt(us(vanilla.wake_to_run.p99_ns), 1)
              << " us, efficiency " << TextTable::fmt(eff_gain_pct, 2) << "%"
              << (p95_excess_pct > 0 || p99_excess_pct > 0 ? "  GATE VIOLATED"
                                                           : "")
              << "\n";

    j.begin_object("scenario_" + scenarios[s].name)
        .field("duration_ms",
               static_cast<double>(scenarios[s].duration) / 1e6)
        .field("wakes_vanilla", vanilla.wake_to_run.count)
        .field("wakes_smartbalance", smart.wake_to_run.count)
        .field("p95_vanilla_us", us(vanilla.wake_to_run.p95_ns))
        .field("p95_smartbalance_us", us(smart.wake_to_run.p95_ns))
        .field("p99_vanilla_us", us(vanilla.wake_to_run.p99_ns))
        .field("p99_smartbalance_us", us(smart.wake_to_run.p99_ns))
        .field("efficiency_gain_pct", eff_gain_pct)
        .field("p95_excess_pct", p95_excess_pct)
        .field("p99_excess_pct", p99_excess_pct);
    j.begin_object("max_allowed")
        .field("p95_excess_pct", 0.0)
        .field("p99_excess_pct", 0.0)
        .end_object();
    j.end_object();
  }
  std::cout << tb << "Series written to fig_latency.csv\n";
  bench::print_batch_summary(batch.summary);

  j.begin_object("summary")
      .field("scenarios", static_cast<int>(scenarios.size()))
      .field("gate_violations", gate_violations)
      .end_object();
  j.end_object();
  j.write("BENCH_latency.json");

  if (!opt.trace.empty()) {
    std::vector<const obs::RunObs*> traced;
    for (const auto& o : all_obs) {
      if (o && o->trace_enabled) traced.push_back(o.get());
    }
    if (!traced.empty()) {
      obs::write_chrome_trace_file(opt.trace, traced);
      std::cout << "Trace written to " << opt.trace << "\n";
    }
  }
  if (!opt.metrics_json.empty()) {
    std::vector<const obs::RunObs*> runs;
    for (const auto& o : all_obs) {
      if (o) runs.push_back(o.get());
    }
    std::ofstream ms(opt.metrics_json);
    if (!ms) {
      std::cerr << "cannot write " << opt.metrics_json << "\n";
      return 1;
    }
    obs::merge_metrics(runs).write_json(ms);
    std::cout << "Metrics written to " << opt.metrics_json << "\n";
  }
  return gate_violations == 0 ? 0 : 1;
}
