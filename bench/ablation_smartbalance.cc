// Ablation study over SmartBalance's design choices (DESIGN.md §5):
//   1. fixed-point vs floating-point SA acceptance (paper §4.3);
//   2. utilization weighting of the characterization sums (Algorithm 1's U);
//   3. observation smoothing across epochs;
//   4. post-migration measurement masking + cooldown;
//   5. SA iteration budget sweep.
// Each variant runs the same diverse workload on the quad-core HMP; the
// score is global energy efficiency (MIPS/W) and migration count.
#include <iostream>
#include <memory>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/smart_balance.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace {

using namespace sb;

struct Score {
  double mips_w = 0;
  std::uint64_t migrations = 0;
};

Score run_variant(const bench::Options& opt, core::SmartBalanceConfig cfg,
                  bool eq11_objective = false) {
  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig scfg;
  scfg.duration = opt.duration;
  scfg.seed = opt.seed;
  sim::Simulation s(platform, scfg);
  s.set_balancer(sim::smartbalance_factory(cfg, eq11_objective)(s));
  s.add_benchmark("canneal", 2);
  s.add_benchmark("swaptions", 2);
  s.add_benchmark("x264_H_crew", 2);
  s.add_benchmark("IMB_HTHI", 2);
  const auto r = s.run();
  return {r.ips_per_watt / 1e6, r.migrations};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Ablation: SmartBalance design choices",
                "each row disables/perturbs one mechanism on the same "
                "diverse 8-thread workload");

  TextTable t({"variant", "MIPS/W", "migrations", "delta vs default %"});
  const core::SmartBalanceConfig def;
  const Score base = run_variant(opt, def);
  auto add = [&](const std::string& name, const Score& s) {
    t.add_row({name, TextTable::fmt(s.mips_w, 1),
               std::to_string(s.migrations),
               TextTable::fmt(100.0 * (s.mips_w / base.mips_w - 1.0), 2)});
  };
  add("default", base);

  add("Eq. 11 objective (paper-faithful)",
      run_variant(opt, def, /*eq11_objective=*/true));
  {
    auto cfg = def;
    cfg.sa.fixed_point_acceptance = false;
    add("float-point SA acceptance", run_variant(opt, cfg));
  }
  {
    auto cfg = def;
    cfg.sensing.smoothing = 0.0;
    add("no observation smoothing", run_variant(opt, cfg));
  }
  {
    auto cfg = def;
    cfg.migration_cooldown_epochs = 0;
    add("no migration cooldown", run_variant(opt, cfg));
  }
  {
    auto cfg = def;
    cfg.min_relative_gain = 0.0;
    add("no hysteresis threshold", run_variant(opt, cfg));
  }
  {
    auto cfg = def;
    cfg.sensing.counter_noise_sigma = 0.05;
    cfg.sensing.energy_noise_sigma = 0.05;
    add("10x sensor noise", run_variant(opt, cfg));
  }
  for (int iters : {50, 200, 2000}) {
    auto cfg = def;
    cfg.sa.max_iterations = iters;
    add("SA iterations = " + std::to_string(iters), run_variant(opt, cfg));
  }

  std::cout << t;
  return 0;
}
