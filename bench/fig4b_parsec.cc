// Fig. 4(b) — SmartBalance vs vanilla Linux on the 4-type HMP with PARSEC
// benchmarks and the Table 3 mixes at 2/4/8 threads.
//
// Paper claim: "52% with the PARSEC benchmarks and their mixes ... Overall,
// SmartBalance achieves an energy efficiency of over 50% across all the
// benchmarks in comparison to the vanilla Linux kernel."
#include <fstream>
#include <iostream>
#include <vector>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/benchmarks.h"
#include "workload/mixes.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header(
      "Fig. 4(b): energy efficiency vs vanilla Linux, PARSEC + Table 3 "
      "mixes (quad-core 4-type HMP)",
      "average improvement ~52% across benchmarks/mixes x {2,4,8} threads");

  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  opt.apply_obs(cfg);

  const std::vector<int> thread_counts =
      opt.quick ? std::vector<int>{2, 8} : std::vector<int>{2, 4, 8};
  const auto benchmarks = opt.quick
                              ? std::vector<std::string>{"bodytrack", "canneal",
                                                         "swaptions",
                                                         "x264_H_crew"}
                              : workload::BenchmarkLibrary::parsec_names();

  TextTable t({"workload", "threads", "vanilla MIPS/W", "SB(Eq.11)",
               "SB(global)", "gain(Eq.11) %", "gain(global) %"});
  CsvWriter csv("fig4b_parsec.csv",
                {"workload", "threads", "vanilla_mips_w", "sb_eq11_mips_w",
                 "sb_global_mips_w", "gain_eq11_pct", "gain_global_pct"});
  RunningStats gains, gains_eq11;
  // Queue the whole (workload × thread-count) sweep up front; the parallel
  // runner spreads the 3-simulations-per-bar batch across worker threads
  // (--jobs / SB_JOBS) with bit-identical results to the sequential loop.
  bench::GainSweep sweep(platform, cfg, opt.smart_config());
  std::vector<int> row_threads;
  auto queue = [&](const std::string& label, const sim::WorkloadBuilder& wb,
                   int nt) {
    sweep.add(label, wb, sim::vanilla_factory());
    row_threads.push_back(nt);
  };

  for (const auto& name : benchmarks) {
    for (int nt : thread_counts) {
      queue(name, [name, nt](sim::Simulation& s) {
        s.add_benchmark(name, nt);
      }, nt);
    }
  }
  // Table 3 mixes: the per-benchmark thread count splits the budget across
  // members (2 threads/member keeps total comparable to the 4/8 runs).
  const int mixes = opt.quick ? 2 : workload::num_mixes();
  for (int id = 1; id <= mixes; ++id) {
    for (int per : {1, 2}) {
      queue("Mix" + std::to_string(id),
            [id, per](sim::Simulation& s) { s.add_mix(id, per); }, per);
    }
  }

  const auto rows = sweep.run(opt.runner());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto nt = std::to_string(row_threads[i]);
    t.add_row({row.label, nt, TextTable::fmt(row.baseline_mips_w, 1),
               TextTable::fmt(row.smart_eq11_mips_w, 1),
               TextTable::fmt(row.smart_mips_w, 1),
               TextTable::fmt(row.gain_eq11_pct, 1),
               TextTable::fmt(row.gain_pct, 1)});
    csv.row({row.label, nt, TextTable::fmt(row.baseline_mips_w, 3),
             TextTable::fmt(row.smart_eq11_mips_w, 3),
             TextTable::fmt(row.smart_mips_w, 3),
             TextTable::fmt(row.gain_eq11_pct, 3),
             TextTable::fmt(row.gain_pct, 3)});
    gains.add(row.gain_pct);
    gains_eq11.add(row.gain_eq11_pct);
  }
  bench::print_batch_summary(sweep.summary());

  std::cout << t << "\nAverage gain over vanilla (paper: ~52 %):\n"
            << "  Eq. 11 objective (paper-faithful): "
            << TextTable::fmt(gains_eq11.mean(), 1) << " %\n"
            << "  global IPS/W objective (default):  "
            << TextTable::fmt(gains.mean(), 1) << " %  [min "
            << TextTable::fmt(gains.min(), 1) << " %, max "
            << TextTable::fmt(gains.max(), 1) << " %]\n"
            << "Series written to fig4b_parsec.csv\n";
  if (!opt.trace.empty() && sweep.write_trace(opt.trace)) {
    std::cout << "trace written to " << opt.trace << "\n";
  }
  if (!opt.audit.empty() && sweep.write_audit(opt.audit)) {
    std::cout << "audit export written to " << opt.audit << "\n";
  }
  if (!opt.metrics_json.empty()) {
    std::ofstream ms(opt.metrics_json);
    sweep.merged_metrics().write_json(ms);
    ms << "\n";
    std::cout << "metrics written to " << opt.metrics_json << "\n";
  } else if (opt.metrics) {
    std::cout << "metrics: ";
    sweep.merged_metrics().write_json(std::cout);
    std::cout << "\n";
  }
  return 0;
}
