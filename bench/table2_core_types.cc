// Table 2 — Heterogeneous Core Configuration Parameters.
//
// Prints the four core types' microarchitectural parameters together with
// the *model-derived* rows the paper produced with gem5+McPAT: peak
// throughput (IPC), peak power, and area. Paper values for the derived
// rows: IPC 4.18 / 2.60 / 1.31 / 0.91; power 8.62 / 1.41 / 0.53 / 0.095 W.
#include <iostream>
#include <sstream>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/table.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace sb;
  (void)bench::Options::parse(argc, argv);
  bench::header("Table 2: heterogeneous core configuration parameters",
                "derived peak IPC 4.18/2.60/1.31/0.91, peak power "
                "8.62/1.41/0.53/0.095 W (gem5+McPAT, 22nm)");

  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);

  TextTable t({"Parameter", "Huge Core", "Big Core", "Medium Core",
               "Small Core"});
  auto row_i = [&](const std::string& label, auto get) {
    std::vector<std::string> cells{label};
    for (CoreTypeId ty = 0; ty < platform.num_types(); ++ty) {
      std::ostringstream os;
      os << get(platform.params_of_type(ty));
      cells.push_back(os.str());
    }
    t.add_row(cells);
  };
  row_i("Issue width (x1)", [](const auto& p) { return p.issue_width; });
  row_i("LQ/SQ size (x2)", [](const auto& p) {
    return std::to_string(p.lq_size) + "/" + std::to_string(p.sq_size);
  });
  row_i("IQ size (x3)", [](const auto& p) { return p.iq_size; });
  row_i("ROB size (x4)", [](const auto& p) { return p.rob_size; });
  row_i("Int/float regs (x5)", [](const auto& p) { return p.num_regs; });
  row_i("L1$I size KB (x6)", [](const auto& p) { return p.l1i_kb; });
  row_i("L1$D size KB (x7)", [](const auto& p) { return p.l1d_kb; });
  row_i("Freq. (MHz)", [](const auto& p) { return p.freq_mhz; });
  row_i("Voltage (V)", [](const auto& p) { return p.vdd; });

  std::vector<double> peak_ipc, peak_power, area;
  for (CoreTypeId ty = 0; ty < platform.num_types(); ++ty) {
    peak_ipc.push_back(perf.peak_ipc(ty));
    peak_power.push_back(power.peak_power_w(ty));
    area.push_back(platform.params_of_type(ty).area_mm2);
  }
  t.add_row("Peak throughput IPC*", peak_ipc, 2);
  t.add_row("Peak power (W)*", peak_power, 3);
  t.add_row("Area (mm2)*", area, 2);

  std::cout << t
            << "* derived by this library's interval/power models "
               "(paper: gem5+McPAT estimates)\n\n";

  TextTable ref({"Derived row", "paper", "measured (Huge/Big/Medium/Small)"});
  std::ostringstream ipc_m;
  ipc_m << TextTable::fmt(peak_ipc[0], 2) << "/" << TextTable::fmt(peak_ipc[1], 2)
        << "/" << TextTable::fmt(peak_ipc[2], 2) << "/"
        << TextTable::fmt(peak_ipc[3], 2);
  ref.add_row({"Peak IPC", "4.18/2.60/1.31/0.91", ipc_m.str()});
  std::ostringstream pw_m;
  pw_m << TextTable::fmt(peak_power[0], 2) << "/"
       << TextTable::fmt(peak_power[1], 2) << "/"
       << TextTable::fmt(peak_power[2], 2) << "/"
       << TextTable::fmt(peak_power[3], 3);
  ref.add_row({"Peak power (W)", "8.62/1.41/0.53/0.095", pw_m.str()});
  std::cout << ref;
  return 0;
}
