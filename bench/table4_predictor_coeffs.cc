// Table 4 — Predictor coefficient matrix Θ.
//
// Regenerates the 12-row (src→dst core-type pair) × 10-column coefficient
// table by running the offline profiling + least-squares training pipeline
// (paper §4.2.2) on the benchmark library. Absolute coefficient values
// depend on the substrate models; the *structure* matches the paper: a
// strong positive ipc_src term predicting downward (big→small) with small
// magnitude, larger magnitudes and constants predicting upward, and
// degenerate (near-zero) columns where a source type exposes no variation.
#include <iostream>

#include "arch/platform.h"
#include "bench_util.h"
#include "core/trainer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Table 4: predictor coefficient matrix",
                "12 src->dst rows x [FR mr_$i mr_$d I_msh I_bsh mr_b mr_itlb "
                "mr_dtlb ipc_src const]");

  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);
  core::PredictorTrainer::Config cfg;
  cfg.seed = opt.seed;
  const core::PredictorTrainer trainer(perf, power, cfg);
  const auto model =
      trainer.train(core::PredictorTrainer::default_training_profiles());

  model.print(std::cout, platform);

  std::cout << "\nPower interpolation (Eq. 9): p = a1*ipc + a0 per type\n";
  for (CoreTypeId t = 0; t < platform.num_types(); ++t) {
    const auto [a1, a0] = model.power_coeffs(t);
    std::cout << "  " << platform.params_of_type(t).name << ": a1=" << a1
              << " W/IPC, a0=" << a0 << " W\n";
  }
  return 0;
}
