// fig_shard_scaling — sharded hierarchical balancing at 128/512/1024 cores.
//
// Tentpole claim: with the platform split into K cluster shards, the
// BALANCE phase's optimize+exchange cost *per core* strictly decreases as
// the platform grows (the global annealing budget saturates at the Fig. 8a
// cap, each shard anneals its own n/K columns in parallel, and the global
// exchange phase is a bounded O(m·q + n + E) tail: an O(m·q) regret scan
// over per-type probe cores plus incremental merged-J move evaluation) —
// while at 128 cores the sharded allocation keeps at least 95% of the
// unsharded SmartBalance efficiency advantage over the vanilla balancer.
//
// The gated metric is CPU, not wall: summed per-shard SA host time plus the
// exchange phase, divided by balance passes and cores. Wall-clock depends
// on how many workers the runner machine offers; the CPU sum does not, so
// the sublinearity gate is meaningful on any CI runner.
//
// Writes BENCH_shard.json: one section per scale, an advantage section for
// the 128-core three-way comparison (vanilla / unsharded / sharded), and a
// summary whose sublinear_violations count is gated exactly (any value
// above the committed 0 fails tools/check_bench.py).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "arch/platform_loader.h"
#include "bench_json.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/smart_balance.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace {

struct ScaleRow {
  int cores = 0;
  int threads = 0;
  int shards = 0;
  std::uint64_t balance_passes = 0;
  std::uint64_t shard_passes = 0;
  std::uint64_t exchange_moves = 0;
  double sa_cpu_us_per_pass = 0;        // summed per-shard SA CPU
  double exchange_us_per_pass = 0;
  double opt_exchange_us_per_core = 0;  // (SA CPU + exchange) / pass / core
  double avg_optimize_wall_us = 0;      // wall-clock of the whole phase
  double mips_per_watt = 0;
};

/// big.LITTLE 1:3 via the gen loader — the same spec grammar sbsim's
/// --platform=gen: exposes, so the bench exercises the generator end to
/// end. Counts are per cluster: 32-core clusters of 8 big + 24 LITTLE.
sb::arch::Platform make_platform(int cores) {
  const int clusters = std::max(1, cores / 32);
  const int per_cluster = cores / clusters;
  const int big = per_cluster / 4;
  return sb::arch::generate_platform(
      std::to_string(big) + "x" + std::to_string(per_cluster - big) + ":" +
      std::to_string(clusters));
}

void add_workload(sb::sim::Simulation& s, int threads) {
  // Mixed PARSEC workload touching all characterization regimes (the same
  // mix the Fig. 7 overhead harness uses).
  const char* names[] = {"swaptions", "canneal", "bodytrack", "x264_H_crew"};
  for (int i = 0; i < threads; ++i) {
    s.add_benchmark(names[i % 4], 1);
  }
}

ScaleRow measure(int cores, int shards, sb::TimeNs duration,
                 std::uint64_t seed) {
  using namespace sb;
  const auto platform = make_platform(cores);
  sim::SimulationConfig cfg;
  cfg.duration = duration;
  cfg.seed = seed;
  sim::Simulation s(platform, cfg);
  core::SmartBalanceConfig sb_cfg;
  if (shards > 0) sb_cfg.sharding.shards = shards;
  s.set_balancer(sim::smartbalance_factory(sb_cfg)(s));
  const int threads = 2 * cores;
  add_workload(s, threads);
  const auto r = s.run();

  ScaleRow row;
  row.cores = cores;
  row.threads = threads;
  row.shards = shards;
  row.balance_passes = r.balance_passes;
  row.avg_optimize_wall_us = r.avg_optimize_us;
  row.mips_per_watt = r.ips_per_watt / 1e6;
  if (const auto* policy = dynamic_cast<const core::SmartBalancePolicy*>(
          s.kernel().balancer())) {
    if (const auto* sharded = policy->sharded()) {
      row.shard_passes = sharded->shard_passes_total();
      row.exchange_moves = sharded->exchange_moves_total();
      const auto passes = static_cast<double>(
          r.balance_passes > 0 ? r.balance_passes : 1);
      row.sa_cpu_us_per_pass =
          static_cast<double>(sharded->shard_cpu_ns_total()) / 1e3 / passes;
      row.exchange_us_per_pass =
          static_cast<double>(sharded->exchange_ns_total()) / 1e3 / passes;
      row.opt_exchange_us_per_core =
          (row.sa_cpu_us_per_pass + row.exchange_us_per_pass) / cores;
    }
  }
  return row;
}

/// 128-core efficiency under the vanilla balancer — the advantage baseline.
double measure_vanilla(int cores, sb::TimeNs duration, std::uint64_t seed) {
  using namespace sb;
  const auto platform = make_platform(cores);
  sim::SimulationConfig cfg;
  cfg.duration = duration;
  cfg.seed = seed;
  sim::Simulation s(platform, cfg);
  s.set_balancer(sim::vanilla_factory()(s));
  add_workload(s, 2 * cores);
  return s.run().ips_per_watt / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Sharded balancing: per-core cost vs platform scale",
                "cluster-local SA in parallel + bounded global exchange "
                "keeps per-epoch cost sublinear toward 1024 cores");

  // --- scaling sweep: optimize+exchange CPU per core ----------------------
  // One shard per 32 cores (the synthetic platforms' cluster granularity).
  const TimeNs window = opt.quick ? milliseconds(130) : milliseconds(180);
  // The simulation is deterministic per seed; only the host CPU timings
  // vary between repetitions. Keeping the minimum-cost repetition per
  // scale filters scheduler interference out of the gated metric.
  const int reps = opt.quick ? 3 : 5;
  const std::vector<int> scales = {128, 512, 1024};
  std::vector<ScaleRow> rows;
  TextTable tb({"cores", "threads", "shards", "passes", "SA cpu us/pass",
                "exchange us/pass", "us/core", "wall us/pass"});
  CsvWriter csv("fig_shard_scaling.csv",
                {"cores", "threads", "shards", "sa_cpu_us_per_pass",
                 "exchange_us_per_pass", "opt_exchange_us_per_core"});
  for (const int n : scales) {
    ScaleRow row = measure(n, n / 32, window, opt.seed);
    for (int rep = 1; rep < reps; ++rep) {
      const auto again = measure(n, n / 32, window, opt.seed);
      if (again.opt_exchange_us_per_core < row.opt_exchange_us_per_core) {
        row = again;
      }
    }
    rows.push_back(row);
    tb.add_row({std::to_string(row.cores), std::to_string(row.threads),
                std::to_string(row.shards),
                std::to_string(row.balance_passes),
                TextTable::fmt(row.sa_cpu_us_per_pass, 1),
                TextTable::fmt(row.exchange_us_per_pass, 1),
                TextTable::fmt(row.opt_exchange_us_per_core, 3),
                TextTable::fmt(row.avg_optimize_wall_us, 1)});
    csv.row({std::to_string(row.cores), std::to_string(row.threads),
             std::to_string(row.shards),
             TextTable::fmt(row.sa_cpu_us_per_pass, 2),
             TextTable::fmt(row.exchange_us_per_pass, 2),
             TextTable::fmt(row.opt_exchange_us_per_core, 4)});
  }
  std::cout << tb << "Series written to fig_shard_scaling.csv\n";

  int sublinear_violations = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].opt_exchange_us_per_core >=
        rows[i - 1].opt_exchange_us_per_core) {
      ++sublinear_violations;
      std::cout << "VIOLATION: us/core did not decrease from "
                << rows[i - 1].cores << "c to " << rows[i].cores << "c\n";
    }
  }

  // --- 128-core advantage: how much of the unsharded gain survives --------
  const TimeNs adv_window = opt.quick ? milliseconds(240) : milliseconds(360);
  const double vanilla = measure_vanilla(128, adv_window, opt.seed);
  const auto unsharded = measure(128, 0, adv_window, opt.seed);
  const auto sharded = measure(128, 4, adv_window, opt.seed);
  const double adv_unsharded = unsharded.mips_per_watt / vanilla - 1.0;
  const double adv_sharded = sharded.mips_per_watt / vanilla - 1.0;
  const double advantage_lost_pct =
      adv_unsharded > 0
          ? std::max(0.0, 100.0 * (1.0 - adv_sharded / adv_unsharded))
          : 0.0;
  std::cout << "128c advantage over vanilla: unsharded "
            << TextTable::fmt(100 * adv_unsharded, 2) << "%, sharded "
            << TextTable::fmt(100 * adv_sharded, 2) << "% ("
            << TextTable::fmt(advantage_lost_pct, 2)
            << "% of the advantage lost; budget 5%)\n";

  // --- BENCH_shard.json ---------------------------------------------------
  bench::Json j;
  j.begin_object()
      .field("bench", "BENCH_shard")
      .field("description",
             "Sharded balancing scaling sweep: optimize+exchange CPU per "
             "core per pass at 128/512/1024 cores (2 threads/core), plus "
             "the 128-core sharded-vs-unsharded advantage retention")
      .field("build", "-O2 -DNDEBUG");
  for (const auto& row : rows) {
    // Per-scale CPU cost is machine-dependent and sampled from only a few
    // passes; the binding gates are the exact sublinear_violations count
    // and the absolute advantage ceiling below, so the per-scale ratio
    // check gets a wider 50% budget instead of the CLI default.
    j.begin_object("scale_" + std::to_string(row.cores))
        .field("cores", row.cores)
        .field("threads", row.threads)
        .field("shards", row.shards)
        .field("balance_passes", row.balance_passes)
        .field("shard_passes", row.shard_passes)
        .field("exchange_moves", row.exchange_moves)
        .field("sa_cpu_us_per_pass", row.sa_cpu_us_per_pass)
        .field("exchange_us_per_pass", row.exchange_us_per_pass)
        .field("opt_exchange_us_per_core", row.opt_exchange_us_per_core)
        .field("avg_optimize_wall_us", row.avg_optimize_wall_us)
        .field("max_regress", 0.5)
        .end_object();
  }
  j.begin_object("advantage_128")
      .field("vanilla_mips_w", vanilla)
      .field("unsharded_mips_w", unsharded.mips_per_watt)
      .field("sharded_mips_w", sharded.mips_per_watt)
      .field("unsharded_advantage_pct", 100 * adv_unsharded)
      .field("sharded_advantage_pct", 100 * adv_sharded)
      .field("advantage_lost_pct", advantage_lost_pct);
  j.begin_object("max_allowed")
      .field("advantage_lost_pct", 5.0)
      .end_object();
  j.end_object();
  j.begin_object("summary")
      .field("sublinear_violations", sublinear_violations)
      .end_object();
  j.end_object();
  j.write("BENCH_shard.json");
  return sublinear_violations == 0 ? 0 : 1;
}
