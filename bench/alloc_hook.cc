#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

namespace sb::bench {
std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace sb::bench

// Replace the global allocation functions for any binary linking this file.
// The relaxed atomic increment is cheap enough not to perturb timing and the
// harness only ever diffs counts, never rates.
void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(sz ? sz : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
