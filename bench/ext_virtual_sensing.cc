// Extension experiment: sparse virtual sensing (paper §6.4).
//
// "One limitation of the SmartBalance approach may be argued to be the
// dependence on additional counters and sensors … a sparse virtual sensing
// mechanism guaranteeing a minimal number of counters and sensors can be
// used to overcome this perceived limitation."
//
// This harness strips physical power sensors off the platform one core at
// a time; unsensed cores use the Eq. 9 model as a virtual power sensor.
// Expected shape: energy efficiency degrades only marginally down to a
// single physical sensor, validating the paper's §6.4 argument.
#include <iostream>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension: sparse virtual power sensing (quad-core HMP)",
                "paper §6.4: virtual sensing can replace most physical "
                "sensors");

  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  const auto workload = [](sim::Simulation& s) {
    s.add_benchmark("canneal", 2);
    s.add_benchmark("swaptions", 2);
    s.add_benchmark("x264_H_crew", 2);
    s.add_benchmark("IMB_MTMI", 2);
  };

  TextTable t({"physical sensors", "MIPS/W", "vs fully sensed %"});
  double base = 0;
  for (int sensors = 4; sensors >= 0; --sensors) {
    core::SmartBalanceConfig sb_cfg;
    sb_cfg.power_sensor_cores.reset();
    for (int c = 0; c < sensors; ++c) {
      sb_cfg.power_sensor_cores.set(static_cast<std::size_t>(c));
    }
    sim::Simulation s(platform, cfg);
    s.set_balancer(sim::smartbalance_factory(sb_cfg)(s));
    workload(s);
    const double mips_w = s.run().ips_per_watt / 1e6;
    if (sensors == 4) base = mips_w;
    t.add_row({std::to_string(sensors) + (sensors == 4 ? " (all cores)" : ""),
               TextTable::fmt(mips_w, 1),
               TextTable::fmt(100.0 * (mips_w / base - 1.0), 2)});
  }
  std::cout << t
            << "\n(unsensed cores use the Eq. 9 virtual sensor "
               "p = a1*ipc + a0)\n";
  return 0;
}
