// Fig. 4(a) — SmartBalance vs vanilla Linux on the 4-type HMP with the
// nine interactive microbenchmarks (IMB) at 2/4/8 threads.
//
// Paper claim: "the SmartBalance kernel performs 50.02% on average better
// with the interactive benchmarks". Expected shape here: very large gains
// when threads ≤ cores (the Huge/Big cores can sleep), moderate gains at
// 8 threads, average in the tens of percent.
#include <fstream>
#include <iostream>
#include <vector>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/benchmarks.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header(
      "Fig. 4(a): energy efficiency vs vanilla Linux, interactive "
      "microbenchmarks (quad-core 4-type HMP)",
      "average improvement 50.02% across IMB configs x {2,4,8} threads");

  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  opt.apply_obs(cfg);

  const std::vector<int> thread_counts =
      opt.quick ? std::vector<int>{2, 8} : std::vector<int>{2, 4, 8};

  TextTable t({"IMB config", "threads", "vanilla MIPS/W", "SB(Eq.11)",
               "SB(global)", "gain(Eq.11) %", "gain(global) %"});
  CsvWriter csv("fig4a_imb.csv",
                {"benchmark", "threads", "vanilla_mips_w", "sb_eq11_mips_w",
                 "sb_global_mips_w", "gain_eq11_pct", "gain_global_pct"});
  RunningStats gains, gains_eq11;
  // Queue the whole sweep, execute it through the parallel runner, then
  // emit rows in submission order (the output is identical to the old
  // sequential loop — the runner guarantees bit-identical results).
  bench::GainSweep sweep(platform, cfg, opt.smart_config());
  std::vector<int> row_threads;
  for (const auto& name : workload::BenchmarkLibrary::imb_names()) {
    for (int nt : thread_counts) {
      sweep.add(name, [name, nt](sim::Simulation& s) {
        s.add_benchmark(name, nt);
      }, sim::vanilla_factory());
      row_threads.push_back(nt);
    }
  }
  const auto rows = sweep.run(opt.runner());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto nt = std::to_string(row_threads[i]);
    t.add_row({row.label, nt, TextTable::fmt(row.baseline_mips_w, 1),
               TextTable::fmt(row.smart_eq11_mips_w, 1),
               TextTable::fmt(row.smart_mips_w, 1),
               TextTable::fmt(row.gain_eq11_pct, 1),
               TextTable::fmt(row.gain_pct, 1)});
    csv.row({row.label, nt, TextTable::fmt(row.baseline_mips_w, 3),
             TextTable::fmt(row.smart_eq11_mips_w, 3),
             TextTable::fmt(row.smart_mips_w, 3),
             TextTable::fmt(row.gain_eq11_pct, 3),
             TextTable::fmt(row.gain_pct, 3)});
    gains.add(row.gain_pct);
    gains_eq11.add(row.gain_eq11_pct);
  }
  bench::print_batch_summary(sweep.summary());
  std::cout << t << "\nAverage gain over vanilla (paper: 50.02 %):\n"
            << "  Eq. 11 objective (paper-faithful): "
            << TextTable::fmt(gains_eq11.mean(), 1) << " %\n"
            << "  global IPS/W objective (default):  "
            << TextTable::fmt(gains.mean(), 1) << " %  [min "
            << TextTable::fmt(gains.min(), 1) << " %, max "
            << TextTable::fmt(gains.max(), 1) << " %]\n"
            << "Series written to fig4a_imb.csv\n";
  if (!opt.trace.empty() && sweep.write_trace(opt.trace)) {
    std::cout << "trace written to " << opt.trace << "\n";
  }
  if (!opt.audit.empty() && sweep.write_audit(opt.audit)) {
    std::cout << "audit export written to " << opt.audit << "\n";
  }
  if (!opt.metrics_json.empty()) {
    std::ofstream ms(opt.metrics_json);
    sweep.merged_metrics().write_json(ms);
    ms << "\n";
    std::cout << "metrics written to " << opt.metrics_json << "\n";
  } else if (opt.metrics) {
    std::cout << "metrics: ";
    sweep.merged_metrics().write_json(std::cout);
    std::cout << "\n";
  }
  return 0;
}
