// Fig. 6 — Average error in performance and power prediction across the
// benchmark suite, using the leave-one-benchmark-out methodology: the
// predictor is trained without the benchmark under test, then its IPC and
// power predictions for every ordered core-type pair are compared against
// ground truth.
//
// Paper claim: "runtime prediction of performance and power incurs an
// average error of 4.2% and 5% respectively".
#include <iostream>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/trainer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Fig. 6: performance & power prediction error (per "
                "benchmark, leave-one-out)",
                "average error 4.2% (performance) / 5% (power)");

  const auto platform = arch::Platform::quad_heterogeneous();
  const perf::PerfModel perf(platform);
  const power::PowerModel power(platform, perf);
  core::PredictorTrainer::Config tcfg;
  tcfg.seed = opt.seed;
  if (opt.quick) tcfg.replicas = 4;
  const core::PredictorTrainer trainer(perf, power, tcfg);

  auto grouped = core::PredictorTrainer::profiles_by_benchmark();
  const auto report = trainer.leave_one_out(grouped);

  TextTable t({"benchmark", "perf error %", "power error %"});
  CsvWriter csv("fig6_prediction_error.csv",
                {"benchmark", "perf_err_pct", "power_err_pct"});
  for (const auto& pe : report.per_profile) {
    t.add_row({pe.name, TextTable::fmt(pe.perf_err_pct, 2),
               TextTable::fmt(pe.power_err_pct, 2)});
    csv.row({pe.name, TextTable::fmt(pe.perf_err_pct, 4),
             TextTable::fmt(pe.power_err_pct, 4)});
  }
  std::cout << t << "\nAverage: perf "
            << TextTable::fmt(report.avg_perf_err_pct, 2) << " % (paper 4.2 %), power "
            << TextTable::fmt(report.avg_power_err_pct, 2)
            << " % (paper 5 %)\n";

  // Also report the in-sample (trained on everything) error, a lower bound.
  const auto all = core::PredictorTrainer::default_training_profiles();
  const auto model = trainer.train(all);
  const auto in_sample = trainer.evaluate(model, all);
  std::cout << "In-sample reference: perf "
            << TextTable::fmt(in_sample.avg_perf_err_pct, 2) << " %, power "
            << TextTable::fmt(in_sample.avg_power_err_pct, 2) << " %\n"
            << "Series written to fig6_prediction_error.csv\n";
  return 0;
}
