// Extension experiment: thermal behaviour across policies.
//
// §6.4 of the paper situates SmartBalance in a sensing ecosystem that
// includes run-time thermal estimation & tracking (Sarma et al., DATE'14).
// With the RC thermal substrate enabled, this harness measures each
// policy's hot-spot temperature alongside its energy efficiency: spreading
// work onto the efficient cores doesn't just save joules, it flattens the
// thermal profile (the Huge core is both the watt hog and the hot spot).
#include <iostream>
#include <memory>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/table.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension: thermal profile by policy (quad-core HMP)",
                "RC thermal model per core; hot spot follows the Huge "
                "core's load");

  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  cfg.thermal_enabled = true;

  const auto workload = [](sim::Simulation& s) {
    s.add_benchmark("bodytrack", 4);
    s.add_benchmark("x264_H_crew", 4);
  };

  const auto runs = sim::compare_policies(
      platform, cfg, workload,
      {{"none",
        [](const sim::Simulation&) { return std::make_unique<os::NullBalancer>(); }},
       {"vanilla", sim::vanilla_factory()},
       {"smartbalance", sim::smartbalance_factory()}});

  TextTable t({"policy", "MIPS/W", "peak temp C", "final temps C "
               "(Huge/Big/Medium/Small)"});
  for (const auto& run : runs) {
    std::string temps;
    for (std::size_t i = 0; i < run.result.final_temp_c.size(); ++i) {
      if (i) temps += " / ";
      temps += TextTable::fmt(run.result.final_temp_c[i], 1);
    }
    t.add_row({run.policy, TextTable::fmt(run.result.ips_per_watt / 1e6, 1),
               TextTable::fmt(run.result.max_temp_c, 1), temps});
  }
  std::cout << t;
  return 0;
}
