// fig_fleet — fleet-scale dispatch policy comparison on heterogeneous racks.
//
// Tentpole claim: an energy-aware dispatcher that places each job by its
// predicted marginal energy (the node predictor's IPC/power model evaluated
// per core type, best instructions-per-joule wins) beats round-robin on
// fleet-wide instructions per joule WITHOUT giving up tail latency — p99
// arrival-to-first-run must stay equal or better — on every gated fleet
// shape. The shapes mix node platforms (quad-HMP next to big.LITTLE and
// scaled-HMP nodes) so placement has real energy leverage: the same job
// class costs measurably different joules depending on which rack slot
// takes it.
//
// Determinism: the arrival stream is a pure function of (seed, rate, shape
// of the arrival process) and the per-node simulations are bit-exact for
// any worker count, so fig_fleet.csv and BENCH_fleet.json are byte-identical
// for --jobs=1 vs --jobs=N and for any policy execution order
// (--reverse-policies runs the sweep backwards; rows are emitted in
// canonical order either way). That is what lets the BENCH gates below pin
// zero-tolerance ceilings instead of noise budgets.
//
// Writes BENCH_fleet.json: one section per fleet shape carrying the
// round-robin / least-loaded / energy-aware metrics and two gated
// quality metrics with absolute ceilings of 0:
//   je_deficit_pct  — max(0, how far energy-aware falls short of
//                     round-robin on fleet-wide inst/J, in %)
//   p99_excess_pct  — max(0, how much worse its p99 arrival-to-run is, %)
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "bench_json.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using sb::fleet::DispatchPolicy;

struct Shape {
  std::string name;
  std::vector<sb::arch::Platform> nodes;
  double rate_hz = 300.0;
  double load_cap = 1.5;
  /// Idle-node surcharge. Zero here: rack nodes burn static power for the
  /// whole window whether or not they host work, so consolidating onto
  /// awake nodes saves nothing and only lengthens runqueues — the bias
  /// exists for fleets that can power-gate drained nodes.
  double consolidation_bias = 0.0;
};

/// The two gated rack shapes. Node mixes are deliberately heterogeneous:
/// energy-aware placement only has leverage when the same job class costs
/// different joules on different rack slots.
std::vector<Shape> make_shapes() {
  using sb::arch::Platform;
  std::vector<Shape> shapes;
  {
    // Six nodes: three 4-core quad-HMP boards next to three 8-core
    // big.LITTLE boards. The big.LITTLE nodes hold the efficient cores.
    Shape s;
    s.name = "mixed_rack";
    for (int i = 0; i < 3; ++i) s.nodes.push_back(Platform::quad_heterogeneous());
    for (int i = 0; i < 3; ++i) s.nodes.push_back(Platform::octa_big_little());
    s.rate_hz = 380.0;
    shapes.push_back(std::move(s));
  }
  {
    // Eight nodes at a different mix and scale: two double-size scaled-HMP
    // boards (8 cores spanning all four paper core types), two quad-HMP
    // boards, and four big.LITTLE boards.
    Shape s;
    s.name = "asym_rack";
    for (int i = 0; i < 2; ++i)
      s.nodes.push_back(Platform::scaled_heterogeneous(2));
    for (int i = 0; i < 2; ++i) s.nodes.push_back(Platform::quad_heterogeneous());
    for (int i = 0; i < 4; ++i) s.nodes.push_back(Platform::octa_big_little());
    s.rate_hz = 340.0;
    shapes.push_back(std::move(s));
  }
  return shapes;
}

struct PolicyRow {
  DispatchPolicy policy = DispatchPolicy::kRoundRobin;
  sb::fleet::FleetResult r;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sb;

  // --reverse-policies is fig_fleet-specific (the policy-permutation arm of
  // the determinism matrix); strip it before the shared option parser.
  bool reverse_policies = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reverse-policies") == 0) {
      reverse_policies = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto opt =
      bench::Options::parse(static_cast<int>(args.size()), args.data());
  bench::header("Fleet dispatch: energy-aware vs round-robin racks",
                "sensing-driven placement extends the per-node energy story "
                "fleet-wide: better inst/J at equal-or-better p99 latency");

  const auto shapes = make_shapes();
  std::vector<DispatchPolicy> policies = {DispatchPolicy::kRoundRobin,
                                          DispatchPolicy::kLeastLoaded,
                                          DispatchPolicy::kEnergyAware};
  if (reverse_policies) std::reverse(policies.begin(), policies.end());

  TextTable tb({"shape", "policy", "arrived", "done", "deferred", "Minst/J",
                "p99 a2r ms", "p99 sojourn ms"});
  CsvWriter csv("fig_fleet.csv",
                {"shape", "policy", "nodes", "jobs_arrived", "jobs_dispatched",
                 "jobs_completed", "jobs_deferred", "instructions",
                 "je_minst_per_joule", "p99_arrival_to_run_ms",
                 "p99_sojourn_ms"});

  // Collected observability (only when --trace/--metrics asked): run ids are
  // restamped per fleet run so the merged export keeps one lane per run.
  std::vector<std::shared_ptr<obs::RunObs>> all_obs;
  int obs_run_base = 0;

  bench::Json j;
  j.begin_object()
      .field("bench", "BENCH_fleet")
      .field("description",
             "Fleet dispatch policy comparison on heterogeneous racks: "
             "fleet-wide inst/J and p99 arrival-to-run of the energy-aware "
             "dispatcher vs round-robin and least-loaded; both quality "
             "gates (je_deficit_pct, p99_excess_pct) carry absolute "
             "ceilings of 0 — the simulation is deterministic, so any "
             "nonzero value is a real quality regression, not noise")
      .field("build", "-O2 -DNDEBUG");

  int gate_violations = 0;
  for (const auto& shape : shapes) {
    std::vector<PolicyRow> rows;
    for (const auto policy : policies) {
      fleet::FleetConfig cfg;
      cfg.nodes = static_cast<int>(shape.nodes.size());
      cfg.policy = policy;
      cfg.rate_hz = shape.rate_hz;
      cfg.duration = opt.duration;
      cfg.seed = opt.seed;
      cfg.step_jobs = opt.jobs;
      cfg.load_cap = shape.load_cap;
      cfg.consolidation_bias = shape.consolidation_bias;
      cfg.trace = !opt.trace.empty();
      cfg.metrics = opt.metrics;
      cfg.node_obs = opt.metrics || !opt.trace.empty();
      fleet::FleetSimulation f(cfg, shape.nodes);
      PolicyRow row;
      row.policy = policy;
      row.r = f.run();
      if (row.r.obs || !row.r.node_obs.empty()) {
        if (row.r.obs) row.r.obs->run += obs_run_base;
        for (const auto& o : row.r.node_obs) o->run += obs_run_base;
        if (row.r.obs) all_obs.push_back(row.r.obs);
        for (const auto& o : row.r.node_obs) all_obs.push_back(o);
        obs_run_base += cfg.nodes + 1;
      }
      rows.push_back(std::move(row));
    }
    // Canonical row order regardless of execution order.
    std::sort(rows.begin(), rows.end(),
              [](const PolicyRow& a, const PolicyRow& b) {
                return static_cast<int>(a.policy) < static_cast<int>(b.policy);
              });

    const fleet::FleetResult* rr = nullptr;
    const fleet::FleetResult* energy = nullptr;
    for (const auto& row : rows) {
      const auto& r = row.r;
      if (row.policy == DispatchPolicy::kRoundRobin) rr = &r;
      if (row.policy == DispatchPolicy::kEnergyAware) energy = &r;
      const double je_m = r.je_inst_per_joule / 1e6;
      const double p99_a2r_ms =
          static_cast<double>(r.p99_dispatch_to_run_ns) / 1e6;
      const double p99_soj_ms = static_cast<double>(r.sojourn.p99_ns) / 1e6;
      tb.add_row({shape.name, r.dispatch_policy,
                  std::to_string(r.jobs_arrived),
                  std::to_string(r.jobs_completed),
                  std::to_string(r.jobs_deferred), TextTable::fmt(je_m, 1),
                  TextTable::fmt(p99_a2r_ms, 3),
                  TextTable::fmt(p99_soj_ms, 3)});
      csv.row({shape.name, r.dispatch_policy, std::to_string(r.nodes),
               std::to_string(r.jobs_arrived),
               std::to_string(r.jobs_dispatched),
               std::to_string(r.jobs_completed),
               std::to_string(r.jobs_deferred), std::to_string(r.instructions),
               TextTable::fmt(je_m, 4), TextTable::fmt(p99_a2r_ms, 4),
               TextTable::fmt(p99_soj_ms, 4)});
    }

    // --- the gated comparison: energy-aware vs round-robin ----------------
    const double je_rr = rr->je_inst_per_joule;
    const double je_en = energy->je_inst_per_joule;
    const double p99_rr = static_cast<double>(rr->p99_dispatch_to_run_ns);
    const double p99_en = static_cast<double>(energy->p99_dispatch_to_run_ns);
    const double je_deficit_pct =
        std::max(0.0, 100.0 * (1.0 - je_en / je_rr));
    const double p99_excess_pct =
        p99_rr > 0 ? std::max(0.0, 100.0 * (p99_en / p99_rr - 1.0)) : 0.0;
    const double je_gain_pct = 100.0 * (je_en / je_rr - 1.0);
    if (je_deficit_pct > 0 || p99_excess_pct > 0) ++gate_violations;
    std::cout << shape.name << ": energy-aware vs rr: inst/J "
              << TextTable::fmt(je_gain_pct, 2) << "%, p99 a2r "
              << TextTable::fmt(p99_en / 1e6, 3) << " ms vs "
              << TextTable::fmt(p99_rr / 1e6, 3) << " ms"
              << (je_deficit_pct > 0 || p99_excess_pct > 0 ? "  GATE VIOLATED"
                                                           : "")
              << "\n";

    j.begin_object("shape_" + shape.name)
        .field("nodes", static_cast<int>(shape.nodes.size()))
        .field("rate_hz", shape.rate_hz)
        .field("jobs_arrived", rr->jobs_arrived)
        .field("je_rr_minst_per_joule", je_rr / 1e6)
        .field("je_energy_minst_per_joule", je_en / 1e6)
        .field("je_gain_pct", je_gain_pct)
        .field("p99_rr_ms", p99_rr / 1e6)
        .field("p99_energy_ms", p99_en / 1e6)
        .field("je_deficit_pct", je_deficit_pct)
        .field("p99_excess_pct", p99_excess_pct);
    j.begin_object("max_allowed")
        .field("je_deficit_pct", 0.0)
        .field("p99_excess_pct", 0.0)
        .end_object();
    j.end_object();
  }
  std::cout << tb << "Series written to fig_fleet.csv\n";

  j.begin_object("summary")
      .field("shapes", static_cast<int>(shapes.size()))
      .field("gate_violations", gate_violations)
      .end_object();
  j.end_object();
  j.write("BENCH_fleet.json");

  if (!opt.trace.empty()) {
    std::vector<const obs::RunObs*> traced;
    for (const auto& o : all_obs) {
      if (o && o->trace_enabled) traced.push_back(o.get());
    }
    if (!traced.empty()) {
      obs::write_chrome_trace_file(opt.trace, traced);
      std::cout << "Trace written to " << opt.trace << "\n";
    }
  }
  if (!opt.metrics_json.empty()) {
    std::vector<const obs::RunObs*> runs;
    for (const auto& o : all_obs) {
      if (o) runs.push_back(o.get());
    }
    std::ofstream ms(opt.metrics_json);
    if (!ms) {
      std::cerr << "cannot write " << opt.metrics_json << "\n";
      return 1;
    }
    obs::merge_metrics(runs).write_json(ms);
    std::cout << "Metrics written to " << opt.metrics_json << "\n";
  }
  return gate_violations == 0 ? 0 : 1;
}
