// Extension experiment: the full Table 1 policy ladder on big.LITTLE.
//
// The paper's Table 1 positions SmartBalance against vanilla Linux,
// Linaro IKS (cluster-pair switching), ARM GTS (per-task binary
// up/down-migration) and Kim2014 (per-core utilization-aware balancing).
// This harness runs all five on the octa-core big.LITTLE with workloads of
// increasing heterogeneity, reproducing the progression the related-work
// section describes: each added level of awareness (cluster → task →
// utilization → per-thread IPC+power) buys energy efficiency.
#include <iostream>
#include <memory>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "os/iks_balancer.h"
#include "os/utilaware_balancer.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension: Table 1 policy ladder (octa-core big.LITTLE)",
                "cluster-switch (IKS) < util-aware (Kim2014) ~ GTS < "
                "per-thread IPC+power (SmartBalance)");

  const auto platform = arch::Platform::octa_big_little();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;

  const std::vector<std::pair<std::string, sim::WorkloadBuilder>> workloads = {
      {"uniform compute (swaptions x8)",
       [](sim::Simulation& s) { s.add_benchmark("swaptions", 8); }},
      {"mixed compute+memory",
       [](sim::Simulation& s) {
         s.add_benchmark("swaptions", 4);
         s.add_benchmark("canneal", 4);
       }},
      {"mixed + interactive",
       [](sim::Simulation& s) {
         s.add_benchmark("swaptions", 2);
         s.add_benchmark("canneal", 2);
         s.add_benchmark("IMB_HTHI", 2);
         s.add_benchmark("IMB_LTHI", 2);
       }},
  };

  const std::vector<std::pair<std::string, sim::BalancerFactory>> policies = {
      {"vanilla", sim::vanilla_factory()},
      {"iks",
       [](const sim::Simulation&) { return std::make_unique<os::IksBalancer>(); }},
      {"utilaware",
       [](const sim::Simulation&) {
         return std::make_unique<os::UtilAwareBalancer>();
       }},
      {"gts", sim::gts_factory(0)},
      {"smartbalance", sim::smartbalance_factory()},
  };

  CsvWriter csv("ext_baselines.csv", {"workload", "policy", "mips_w"});
  // The full (workload × policy) ladder is one parallel batch; run_sweep
  // orders results workload-major with policies in declaration order, so
  // runs[w * policies + p] is workload w under policy p.
  const auto batch =
      sim::run_sweep(platform, cfg, workloads, policies, /*replicas=*/1,
                     opt.runner());
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    TextTable t({"policy", "MIPS/W", "vs vanilla %", "migrations"});
    const auto* runs = &batch.runs[w * policies.size()];
    const double base = runs[0].result.ips_per_watt;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto& run = runs[p];
      if (!run.ok()) {
        std::cerr << "run '" << run.label << "' failed: " << run.error << "\n";
        return 1;
      }
      t.add_row({run.result.policy,
                 TextTable::fmt(run.result.ips_per_watt / 1e6, 1),
                 TextTable::fmt(100.0 * (run.result.ips_per_watt / base - 1.0),
                                1),
                 std::to_string(run.result.migrations)});
      csv.row({workloads[w].first, run.result.policy,
               TextTable::fmt(run.result.ips_per_watt / 1e6, 3)});
    }
    std::cout << workloads[w].first << ":\n" << t << "\n";
  }
  bench::print_batch_summary(batch.summary);
  std::cout << "Series written to ext_baselines.csv\n";
  return 0;
}
