// Extension experiment: fixed-work (run-to-completion) comparison.
//
// The paper's figures measure steady-state throughput/Watt over a window;
// an equally important operational view is energy-to-solution: give every
// policy the *same finite job set* and compare the joules and wall-clock
// it takes to finish. Energy efficiency gains must show up as real joule
// savings here — and the throughput objective's makespan cost becomes
// visible.
#include <iostream>
#include <memory>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/objective.h"
#include "core/smart_balance.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace {

using namespace sb;

struct Outcome {
  double joules = 0;
  double makespan_ms = 0;
  bool finished = false;
};

Outcome run_jobs(const bench::Options& opt, const sim::BalancerFactory& f) {
  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = seconds(10);  // generous cap; run_to_completion stops early
  cfg.run_to_completion = true;
  cfg.seed = opt.seed;
  sim::Simulation s(platform, cfg);
  s.set_balancer(f(s));
  // A fixed job set: every thread retires exactly this many instructions.
  Rng rng(opt.seed);
  for (const char* name : {"canneal", "swaptions", "bodytrack", "x264_H_crew"}) {
    for (auto& tb : workload::BenchmarkLibrary::get(name).spawn(2, rng)) {
      tb.total_instructions = 150'000'000;
      s.add_thread(std::move(tb));
    }
  }
  const auto r = s.run();
  Outcome o;
  o.joules = r.energy_j;
  o.makespan_ms = to_millis(r.simulated);
  o.finished = true;
  for (const auto& t : r.threads) o.finished = o.finished && t.completed;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::header("Extension: fixed-work energy-to-solution (quad-core HMP)",
                "8 jobs x 150M instructions; lower joules = real savings, "
                "makespan exposes the efficiency/performance trade");

  TextTable t({"policy", "energy (J)", "makespan (ms)", "finished",
               "J vs vanilla %"});
  const auto policies = std::vector<std::pair<std::string, sim::BalancerFactory>>{
      {"vanilla", sim::vanilla_factory()},
      {"smartbalance (global IPS/W)", sim::smartbalance_factory()},
      {"smartbalance (Eq. 11)",
       sim::smartbalance_factory(core::SmartBalanceConfig(), true)},
  };
  double base = 0;
  for (const auto& [name, factory] : policies) {
    const auto o = run_jobs(opt, factory);
    if (base == 0) base = o.joules;
    t.add_row({name, TextTable::fmt(o.joules, 3),
               TextTable::fmt(o.makespan_ms, 0), o.finished ? "yes" : "NO",
               TextTable::fmt(100.0 * (o.joules / base - 1.0), 1)});
  }
  std::cout << t
            << "\n(negative J%: the policy finished the same work on fewer "
               "joules)\n";
  return 0;
}
