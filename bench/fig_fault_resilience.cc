// Fault-resilience sweep — energy-efficiency retention under sensor faults.
//
// The paper's closed loop is sensing-driven (§4.1): every migration decision
// rests on hardware counters and power rails that real MPSoCs deliver
// imperfectly. This sweep injects a uniform per-epoch fault mix (counter
// wrap/saturation, dropped/duplicated samples, stuck/noisy power rails,
// rejected/delayed migrations, core sensor blackouts; see fault/fault_plan.h)
// at increasing rates and measures how much of SmartBalance's zero-fault
// efficiency advantage over vanilla CFS survives:
//   - defended:   plausibility screens + outlier rejection + stale fallback
//                 + degraded-mode delegation (the default under faults)
//   - undefended: the same faults with every defense forced off (ablation)
// Retention = (defended gain at rate r) / (zero-fault gain). The defense
// target: >= 80% retention at a 5% per-epoch fault rate, with the
// undefended arm measurably worse.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/platform.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/table.h"
#include "fault/fault_plan.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace sb;
  const auto opt = bench::Options::parse(argc, argv);
  bench::header(
      "Fault resilience: SmartBalance efficiency retention under sensor "
      "faults (octa-core big.LITTLE, 4xA15 + 4xA7)",
      "sensing-driven balancing must tolerate imperfect telemetry (§4.1)");

  const auto platform = arch::Platform::octa_big_little();
  sim::SimulationConfig cfg;
  cfg.duration = opt.duration;
  cfg.seed = opt.seed;
  opt.apply_obs(cfg);

  const std::vector<std::pair<std::string, int>> workloads = {
      {"bodytrack", 8}, {"x264_H_crew", 8}, {"canneal", 8}, {"IMB_MTMI", 8}};
  const std::vector<double> rates =
      opt.quick ? std::vector<double>{0.0, 0.05}
                : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10};

  // Train the predictor once and share the model across every arm (training
  // is deterministic per platform shape; per-arm factories would repeat it).
  const auto model = [&] {
    sim::Simulation probe(platform, cfg);
    return sim::train_default_model(probe.perf_model(), probe.power_model());
  }();

  auto sb_factory = [&](double rate, bool defended) {
    core::SmartBalanceConfig sc;
    sc.fault_plan = fault::FaultPlan::uniform(rate, opt.fault_seed);
    sc.defenses = defended ? core::SmartBalanceConfig::Defenses::kAuto
                           : core::SmartBalanceConfig::Defenses::kOff;
    return sim::smartbalance_factory_with_model(model, sc);
  };

  // Queue every simulation of the sweep up front: per workload one vanilla
  // run plus, per rate, a defended and an undefended SmartBalance arm
  // (at rate 0 the two arms coincide with the clean golden path).
  std::vector<sim::ExperimentSpec> specs;
  auto push = [&](const std::string& label, const sim::BalancerFactory& f,
                  const std::string& wname, int nthreads) {
    sim::ExperimentSpec spec;
    spec.platform = platform;
    spec.cfg = cfg;
    spec.workload = [wname, nthreads](sim::Simulation& s) {
      s.add_benchmark(wname, nthreads);
    };
    spec.policy = f;
    spec.label = label;
    specs.push_back(std::move(spec));
  };
  for (const auto& [name, nt] : workloads) {
    push(name + "/vanilla", sim::vanilla_factory(), name, nt);
    for (double r : rates) {
      push(name + "/def", sb_factory(r, true), name, nt);
      push(name + "/undef", sb_factory(r, false), name, nt);
    }
  }

  const auto batch = opt.runner().run(specs);
  for (const auto& r : batch.runs) {
    if (!r.ok()) {
      std::cerr << "run '" << r.label << "' failed: " << r.error << "\n";
      return 1;
    }
  }
  bench::print_batch_summary(batch.summary);

  // Unpack in submission order: stride = 1 vanilla + 2 per rate.
  const std::size_t stride = 1 + 2 * rates.size();
  TextTable t({"rate", "vanilla MIPS/W", "SB def", "SB undef", "def gain %",
               "undef gain %", "retention %", "detected", "degraded"});
  CsvWriter csv("fig_fault_resilience.csv",
                {"rate", "workload", "vanilla_mips_w", "sb_defended_mips_w",
                 "sb_undefended_mips_w", "defended_gain_pct",
                 "undefended_gain_pct", "retention_pct", "faults_injected",
                 "faults_detected", "faults_absorbed", "degraded_passes"});

  double retention_at_5pct = -1.0, undef_gain_at_5pct = 0.0, def_gain_0 = 0.0;
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    double van_sum = 0, def_sum = 0, undef_sum = 0;
    std::uint64_t detected = 0, degraded = 0;
    // Zero-fault gain baseline for retention (per-rate aggregate of means).
    double van0_sum = 0, def0_sum = 0;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const auto& vanilla = batch.runs[wi * stride].result;
      const auto& def = batch.runs[wi * stride + 1 + 2 * ri].result;
      const auto& undef = batch.runs[wi * stride + 2 + 2 * ri].result;
      const auto& def0 = batch.runs[wi * stride + 1].result;
      van_sum += vanilla.ips_per_watt;
      def_sum += def.ips_per_watt;
      undef_sum += undef.ips_per_watt;
      van0_sum += vanilla.ips_per_watt;
      def0_sum += def0.ips_per_watt;
      detected += def.faults_detected;
      degraded += def.degraded_passes;

      const double g0 = def0.ips_per_watt / vanilla.ips_per_watt - 1.0;
      const double gd = def.ips_per_watt / vanilla.ips_per_watt - 1.0;
      const double gu = undef.ips_per_watt / vanilla.ips_per_watt - 1.0;
      csv.row({TextTable::fmt(rates[ri], 2), workloads[wi].first,
               TextTable::fmt(vanilla.ips_per_watt / 1e6, 3),
               TextTable::fmt(def.ips_per_watt / 1e6, 3),
               TextTable::fmt(undef.ips_per_watt / 1e6, 3),
               TextTable::fmt(100.0 * gd, 3), TextTable::fmt(100.0 * gu, 3),
               TextTable::fmt(g0 > 0 ? 100.0 * gd / g0 : 0.0, 3),
               std::to_string(def.faults_injected),
               std::to_string(def.faults_detected),
               std::to_string(def.faults_absorbed),
               std::to_string(def.degraded_passes)});
    }
    const double g0 = def0_sum / van0_sum - 1.0;
    const double gd = def_sum / van_sum - 1.0;
    const double gu = undef_sum / van_sum - 1.0;
    const double retention = g0 > 0 ? 100.0 * gd / g0 : 0.0;
    if (ri == 0) def_gain_0 = 100.0 * g0;
    if (rates[ri] == 0.05) {
      retention_at_5pct = retention;
      undef_gain_at_5pct = 100.0 * gu;
    }
    t.add_row({TextTable::fmt(rates[ri], 2),
               TextTable::fmt(van_sum / workloads.size() / 1e6, 1),
               TextTable::fmt(def_sum / workloads.size() / 1e6, 1),
               TextTable::fmt(undef_sum / workloads.size() / 1e6, 1),
               TextTable::fmt(100.0 * gd, 1), TextTable::fmt(100.0 * gu, 1),
               TextTable::fmt(retention, 1), std::to_string(detected),
               std::to_string(degraded)});
    csv.row({TextTable::fmt(rates[ri], 2), "MEAN",
             TextTable::fmt(van_sum / workloads.size() / 1e6, 3),
             TextTable::fmt(def_sum / workloads.size() / 1e6, 3),
             TextTable::fmt(undef_sum / workloads.size() / 1e6, 3),
             TextTable::fmt(100.0 * gd, 3), TextTable::fmt(100.0 * gu, 3),
             TextTable::fmt(retention, 3), std::to_string(detected), "",
             "", std::to_string(degraded)});
  }

  std::cout << t << "\nZero-fault SB advantage over vanilla: "
            << TextTable::fmt(def_gain_0, 1) << " %\n";
  if (retention_at_5pct >= 0) {
    std::cout << "Retention at 5% fault rate (defended, target >= 80%): "
              << TextTable::fmt(retention_at_5pct, 1) << " %\n"
              << "Undefended gain at 5% fault rate: "
              << TextTable::fmt(undef_gain_at_5pct, 1) << " %\n";
  }
  std::cout << "Series written to fig_fault_resilience.csv\n";

  // This sweep drives the runner with raw specs (no GainSweep), so collect
  // the per-run observability snapshots by hand. Runs are stamped with
  // their submission index by the runner — merges are --jobs-invariant.
  std::vector<const obs::RunObs*> traced, audited, metered;
  for (const auto& r : batch.runs) {
    if (!r.result.obs) continue;
    if (r.result.obs->trace_enabled) traced.push_back(r.result.obs.get());
    if (r.result.obs->audit_enabled) audited.push_back(r.result.obs.get());
    metered.push_back(r.result.obs.get());
  }
  if (!opt.trace.empty() && !traced.empty()) {
    obs::write_chrome_trace_file(opt.trace, traced);
    std::cout << "trace written to " << opt.trace << "\n";
  }
  if (!opt.audit.empty() && !audited.empty()) {
    obs::write_audit_file(opt.audit, audited);
    std::cout << "audit export written to " << opt.audit << "\n";
  }
  if (!opt.metrics_json.empty()) {
    std::ofstream ms(opt.metrics_json);
    obs::merge_metrics(metered).write_json(ms);
    ms << "\n";
    std::cout << "metrics written to " << opt.metrics_json << "\n";
  } else if (opt.metrics) {
    std::cout << "metrics: ";
    obs::merge_metrics(metered).write_json(std::cout);
    std::cout << "\n";
  }
  return 0;
}
