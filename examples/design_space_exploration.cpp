// Example: design-space exploration with the simulator.
//
// A chip architect's question the library answers directly: given a fixed
// area budget and a target workload, how should the die be split between
// Big and Small cores? This sweeps Big/Small core-count mixes under a
// SmartBalance-managed OS and reports throughput, efficiency, and area for
// each design point — the classic heterogeneous-ISA DSE loop (Kumar et
// al.) with a *realistic OS in the loop* instead of an oracle scheduler.
//
//   ./build/examples/design_space_exploration
#include <iomanip>
#include <iostream>

#include "arch/platform.h"
#include "common/table.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main() {
  using namespace sb;

  // Candidate designs: trade one Big core (5.08 mm²) for ~2 Small cores
  // (2.27 mm² each) at roughly constant area.
  struct Design {
    int bigs;
    int smalls;
  };
  const Design designs[] = {{3, 0}, {2, 2}, {1, 4}, {0, 7}};

  const auto workload = [](sim::Simulation& s) {
    s.add_benchmark("ferret", 3);
    s.add_benchmark("canneal", 2);
    s.add_benchmark("IMB_MTMI", 3);
  };

  TextTable t({"design", "area mm2", "GIPS", "W", "MIPS/W", "migr"});
  for (const auto& d : designs) {
    arch::Platform p;
    if (d.bigs > 0) p.add_cores(arch::big_core(), d.bigs);
    if (d.smalls > 0) p.add_cores(arch::small_core(), d.smalls);
    p.validate();

    sim::SimulationConfig cfg;
    cfg.duration = milliseconds(600);
    sim::Simulation s(p, cfg);
    s.set_balancer(sim::smartbalance_factory()(s));
    workload(s);
    const auto r = s.run();

    std::ostringstream name;
    name << d.bigs << "xBig + " << d.smalls << "xSmall";
    t.add_row({name.str(), TextTable::fmt(p.total_area_mm2(), 1),
               TextTable::fmt(r.ips / 1e9, 2), TextTable::fmt(r.watts, 2),
               TextTable::fmt(r.ips_per_watt / 1e6, 0),
               std::to_string(r.migrations)});
  }
  std::cout << "Fixed-ish area budget, SmartBalance-managed OS:\n"
            << t
            << "\nRead: more Small cores buy efficiency until the workload's "
               "serial/compute demand\nneeds a Big core to serve it — the "
               "OS-in-the-loop version of the classic DSE curve.\n";
  return 0;
}
