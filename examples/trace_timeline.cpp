// Example: record and render a per-core power/thermal timeline.
//
// Runs a phase-changing workload under SmartBalance with the thermal model
// and the CSV tracer enabled, then prints a coarse ASCII timeline showing
// how power migrates from the Huge core to the efficient cores as the
// balancer learns the threads' characteristics.
//
//   ./build/examples/trace_timeline [output.csv]
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "arch/platform.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main(int argc, char** argv) {
  using namespace sb;
  const std::string csv_path = argc > 1 ? argv[1] : "trace_timeline.csv";

  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.thermal_enabled = true;
  cfg.trace_path = csv_path;
  cfg.label = "trace";

  sim::Simulation s(platform, cfg);
  s.set_balancer(sim::smartbalance_factory()(s));
  s.add_benchmark("canneal", 2);
  s.add_benchmark("swaptions", 2);
  s.add_benchmark_at(milliseconds(250), "x264_H_crew", 2);  // mid-run arrival
  const auto result = s.run();

  // Re-read the CSV and bucket per-core power into 60 ms epochs.
  std::ifstream in(csv_path);
  std::string line;
  std::getline(in, line);  // header
  std::map<int, std::vector<double>> sums;  // epoch -> per-core accumulated W
  std::map<int, int> counts;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string cell;
    std::vector<double> v;
    while (std::getline(ls, cell, ',')) v.push_back(std::stod(cell));
    const int epoch = static_cast<int>(v[0] / 60.0);
    const auto core = static_cast<std::size_t>(v[1]);
    auto& row = sums[epoch];
    row.resize(static_cast<std::size_t>(platform.num_cores()), 0.0);
    row[core] += v[2];
    if (core == 0) counts[epoch]++;
  }

  std::cout << "Per-core average power by 60 ms epoch (W); '#' bars ~ watts\n";
  std::cout << std::left << std::setw(7) << "epoch";
  for (CoreId c = 0; c < platform.num_cores(); ++c) {
    std::cout << std::setw(18) << platform.params_of(c).name;
  }
  std::cout << '\n';
  for (const auto& [epoch, row] : sums) {
    const int n = counts[epoch];
    if (n == 0) continue;
    std::cout << std::setw(7) << epoch;
    for (double w : row) {
      const double avg = w / n;
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(2) << avg << " "
           << std::string(static_cast<std::size_t>(avg * 4), '#');
      std::cout << std::setw(18) << cell.str();
    }
    std::cout << '\n';
  }

  std::cout << "\nrun: " << result.ips_per_watt / 1e6 << " MIPS/W, peak "
            << result.max_temp_c << " C; full series in " << csv_path << "\n";
  return 0;
}
