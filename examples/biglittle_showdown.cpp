// Example: octa-core big.LITTLE (4×A15 + 4×A7) running a mixed interactive
// + compute workload under vanilla, ARM GTS, and SmartBalance — the Fig. 5
// scenario as a narrative walkthrough, including per-thread placements.
//
//   ./build/examples/biglittle_showdown
#include <iomanip>
#include <iostream>

#include "arch/platform.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main() {
  using namespace sb;
  const auto platform = arch::Platform::octa_big_little();
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.label = "big.LITTLE showdown";

  const auto workload = [](sim::Simulation& s) {
    s.add_benchmark("swaptions", 2);     // compute hogs
    s.add_benchmark("canneal", 2);       // memory-bound hogs
    s.add_benchmark("IMB_HTHI", 2);      // heavy interactive
    s.add_benchmark("IMB_LTHI", 2);      // light interactive
  };

  const auto runs = sim::compare_policies(
      platform, cfg, workload,
      {{"vanilla", sim::vanilla_factory()},
       {"gts", sim::gts_factory(/*big_type=*/0)},
       {"smartbalance", sim::smartbalance_factory()}});

  for (const auto& run : runs) {
    std::cout << "--- " << run.policy << " ---\n";
    sim::print_result(std::cout, run.result, /*per_core=*/false);
    std::cout << "final placements:";
    for (const auto& t : run.result.threads) {
      std::cout << "  " << t.name << " (" << t.migrations << " migr)";
    }
    std::cout << "\n\n";
  }

  const auto& vanilla = runs[0].result;
  const auto& gts = runs[1].result;
  const auto& smart = runs[2].result;
  std::cout << std::fixed << std::setprecision(1)
            << "SmartBalance vs vanilla: "
            << 100.0 * (sim::efficiency_ratio(smart, vanilla) - 1.0)
            << " %\nSmartBalance vs GTS:     "
            << 100.0 * (sim::efficiency_ratio(smart, gts) - 1.0)
            << " %  (paper Fig. 5: ~20 %)\n";
  return 0;
}
