// Example: study a Table 3 benchmark mix on the 4-type HMP under three
// policies (no balancing, vanilla CFS balancing, SmartBalance) and print
// the per-core energy/throughput breakdown for each.
//
//   ./build/examples/parsec_mix_study [mix-id 1..6] [threads-per-member]
#include <cstdlib>
#include <iostream>

#include "arch/platform.h"
#include "sim/experiment.h"
#include "sim/runner.h"
#include "sim/simulation.h"
#include "workload/mixes.h"

int main(int argc, char** argv) {
  using namespace sb;
  const int mix_id = argc > 1 ? std::atoi(argv[1]) : 6;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 2;
  if (mix_id < 1 || mix_id > workload::num_mixes() || threads < 1) {
    std::cerr << "usage: parsec_mix_study [mix 1..6] [threads-per-member]\n";
    return 2;
  }

  std::cout << "Mix" << mix_id << " members:";
  for (const auto& m : workload::mix_members(mix_id)) std::cout << ' ' << m;
  std::cout << ", " << threads << " threads each\n\n";

  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.label = "Mix" + std::to_string(mix_id);

  // All three policies run concurrently through the experiment runner
  // (worker count: SB_JOBS env var, else hardware concurrency); results are
  // deterministic and come back in submission order.
  const auto batch = sim::run_sweep(
      platform, cfg,
      {{"Mix" + std::to_string(mix_id),
        [&](sim::Simulation& s) { s.add_mix(mix_id, threads); }}},
      {{"none", [](const sim::Simulation&) {
          return std::make_unique<os::NullBalancer>();
        }},
       {"vanilla", sim::vanilla_factory()},
       {"smartbalance", sim::smartbalance_factory()}});
  const auto& runs = batch.runs;

  for (const auto& run : runs) {
    if (!run.ok()) {
      std::cerr << "run '" << run.label << "' failed: " << run.error << "\n";
      return 1;
    }
    sim::print_result(std::cout, run.result);
    std::cout << '\n';
  }

  std::cout << "SmartBalance vs vanilla: "
            << 100.0 * (sim::efficiency_ratio(runs[2].result, runs[1].result) -
                        1.0)
            << " % better IPS/W  (batch: " << batch.summary.threads
            << " worker thread(s), " << static_cast<long>(batch.summary.wall_ms)
            << " ms wall)\n";
  return 0;
}
