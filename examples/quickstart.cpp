// Quickstart: simulate a 4-type heterogeneous MPSoC running two PARSEC
// benchmarks under the vanilla Linux balancer and under SmartBalance, and
// compare energy efficiency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "arch/platform.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

int main() {
  using namespace sb;

  // 1. A platform: one Huge, Big, Medium and Small core (paper Table 2).
  const arch::Platform platform = arch::Platform::quad_heterogeneous();

  // 2. A workload: 4 threads of bodytrack + 4 threads of x264 (crew input,
  //    high rate), throughput mode over a 600 ms window.
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.label = "quickstart";
  const auto workload = [](sim::Simulation& s) {
    s.add_benchmark("bodytrack", 4);
    s.add_benchmark("x264_H_crew", 4);
  };

  // 3. Run the same workload under both policies.
  const auto runs = sim::compare_policies(
      platform, cfg, workload,
      {{"vanilla", sim::vanilla_factory()},
       {"smartbalance", sim::smartbalance_factory()}});

  for (const auto& run : runs) {
    sim::print_result(std::cout, run.result);
    std::cout << '\n';
  }

  const double gain =
      sim::efficiency_ratio(runs[1].result, runs[0].result) - 1.0;
  std::cout << "SmartBalance energy-efficiency gain over vanilla: "
            << 100.0 * gain << " %\n";
  return 0;
}
