// Example: plugging a user-defined balancing objective into SmartBalance.
//
// The paper notes that "an objective or a cost function for the allocation
// problem can be defined in several ways according to the desired
// optimization goals" (§4.3). This example defines a thermally motivated
// goal — maximize efficiency while penalizing power concentration on any
// single core (a soft per-core power cap) — and compares it against the
// stock energy-efficiency objective.
//
//   ./build/examples/custom_objective
#include <algorithm>
#include <iostream>
#include <memory>

#include "arch/platform.h"
#include "core/objective.h"
#include "core/smart_balance.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace {

using namespace sb;

/// Efficiency with a soft power cap: each core contributes its IPS/W,
/// but predicted power above `cap_w` is charged quadratically — the
/// optimizer spreads hot threads instead of stacking them.
class CappedPowerObjective final : public core::BalanceObjective {
 public:
  explicit CappedPowerObjective(double cap_w) : cap_w_(cap_w) {}

  double core_term(const core::CoreSums& s, CoreId /*core*/) const override {
    if (s.nthreads == 0 || s.watts <= 0) return 0.0;
    const double overshoot = std::max(0.0, s.watts - cap_w_);
    return s.gips / s.watts - 4.0 * overshoot * overshoot;
  }

  std::string name() const override { return "capped_power"; }

 private:
  double cap_w_;
};

}  // namespace

int main() {
  const auto platform = arch::Platform::quad_heterogeneous();
  sim::SimulationConfig cfg;
  cfg.duration = milliseconds(600);
  cfg.label = "custom objective";

  const auto workload = [](sim::Simulation& s) {
    s.add_benchmark("swaptions", 3);
    s.add_benchmark("x264_H_crew", 3);
  };

  // Build SmartBalance manually (instead of via sim::smartbalance_factory)
  // to show the full public wiring: train a predictor, choose an objective,
  // install the policy.
  auto run_with = [&](std::unique_ptr<core::BalanceObjective> objective,
                      const std::string& label) {
    sim::Simulation s(platform, cfg);
    auto model = sim::train_default_model(s.perf_model(), s.power_model());
    s.set_balancer(std::make_unique<core::SmartBalancePolicy>(
        s.platform(), std::move(model), core::SmartBalanceConfig(),
        std::move(objective)));
    workload(s);
    auto r = s.run();
    std::cout << "--- objective: " << label << " ---\n";
    sim::print_result(std::cout, r);
    double max_core_w = 0;
    for (const auto& c : r.cores) max_core_w = std::max(max_core_w, c.avg_power_w);
    std::cout << "hottest core average power: " << max_core_w << " W\n\n";
    return r;
  };

  const auto stock = run_with(
      std::make_unique<core::EnergyEfficiencyObjective>(), "Eq. 11 IPS/W");
  const auto capped =
      run_with(std::make_unique<CappedPowerObjective>(1.0), "capped-power");

  const double delta =
      100.0 * (sim::efficiency_ratio(capped, stock) - 1.0);
  std::cout << "capped-power vs Eq. 11 objective: " << delta
            << " % efficiency difference with a bounded per-core power "
               "envelope\n";
  return 0;
}
