// CPU hotplug tests: evacuation on offline, placement/wake/migration
// refusal, balancer awareness, and accounting integrity across transitions.
#include <gtest/gtest.h>

#include <memory>

#include "arch/platform.h"
#include "os/kernel.h"
#include "os/vanilla_balancer.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "sim/experiment.h"
#include "sim/simulation.h"

namespace sb::os {
namespace {

workload::ThreadBehavior cpu_bound(const std::string& name) {
  workload::ThreadBehavior tb;
  tb.name = name;
  workload::WorkloadProfile p;
  tb.phases.push_back({p, 50'000'000});
  return tb;
}

workload::ThreadBehavior sleepy(const std::string& name) {
  auto tb = cpu_bound(name);
  tb.burst_instructions = 500'000;
  tb.sleep_mean_ns = milliseconds(8);
  return tb;
}

class HotplugTest : public ::testing::Test {
 protected:
  HotplugTest()
      : platform_(arch::Platform::quad_heterogeneous()),
        perf_(platform_),
        power_(platform_, perf_) {}

  Kernel make_kernel() { return Kernel(platform_, perf_, power_); }

  arch::Platform platform_;
  perf::PerfModel perf_;
  power::PowerModel power_;
};

TEST_F(HotplugTest, OfflineEvacuatesRunningAndQueuedTasks) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(cpu_bound("a"), 0);
  const ThreadId b = k.fork_on(cpu_bound("b"), 0);
  k.run_for(milliseconds(10));
  k.set_core_online(0, false);
  EXPECT_FALSE(k.core_online(0));
  EXPECT_EQ(k.num_online_cores(), 3);
  EXPECT_NE(k.task(a).cpu, 0);
  EXPECT_NE(k.task(b).cpu, 0);
  EXPECT_EQ(k.core_nr_running(0), 0);
  // The evacuated tasks keep making progress elsewhere.
  const auto before = k.total_instructions();
  k.run_for(milliseconds(20));
  EXPECT_GT(k.total_instructions(), before);
  EXPECT_EQ(k.core_instructions(0), k.core_instructions(0));
}

TEST_F(HotplugTest, OfflineCoreOnlySleeps) {
  Kernel k = make_kernel();
  k.fork_on(cpu_bound("a"), 1);
  k.run_for(milliseconds(10));
  k.set_core_online(0, false);
  const auto sleep_before = k.energy().sleep_time(0);
  const auto busy_before = k.energy().busy_time(0);
  k.run_for(milliseconds(50));
  EXPECT_EQ(k.energy().busy_time(0), busy_before);
  EXPECT_EQ(k.energy().sleep_time(0) - sleep_before, milliseconds(50));
}

TEST_F(HotplugTest, PlacementRefusesOfflineCore) {
  Kernel k = make_kernel();
  k.set_core_online(2, false);
  EXPECT_THROW(k.fork_on(cpu_bound("x"), 2), std::logic_error);
  const ThreadId a = k.fork(cpu_bound("a"));
  EXPECT_NE(k.task(a).cpu, 2);
  EXPECT_THROW(k.migrate(a, 2), std::invalid_argument);
}

TEST_F(HotplugTest, SleepingTaskRetargetedAndWakesElsewhere) {
  Kernel k = make_kernel();
  const ThreadId a = k.fork_on(sleepy("nap"), 3);
  k.run_for(milliseconds(4));
  ASSERT_EQ(k.task(a).state, TaskState::Sleeping);
  k.set_core_online(3, false);
  EXPECT_NE(k.task(a).cpu, 3);
  k.run_for(milliseconds(30));
  EXPECT_GT(k.task(a).lifetime_insts, 500'000u);
  EXPECT_EQ(k.core_instructions(3), k.core_instructions(3));
}

TEST_F(HotplugTest, CannotOfflineLastCoreOrStrandPinnedTask) {
  Kernel k = make_kernel();
  for (CoreId c = 1; c < 4; ++c) k.set_core_online(c, false);
  EXPECT_THROW(k.set_core_online(0, false), std::logic_error);

  Kernel k2 = make_kernel();
  const ThreadId pinned = k2.fork_on(cpu_bound("p"), 1);
  std::bitset<kMaxCores> only1;
  only1.set(1);
  k2.set_cpus_allowed(pinned, only1);
  EXPECT_THROW(k2.set_core_online(1, false), std::logic_error);
  EXPECT_TRUE(k2.core_online(1)) << "failed offline must not half-apply";
}

TEST_F(HotplugTest, OnlineBringsCoreBackIntoService) {
  Kernel k = make_kernel();
  k.set_balancer(std::make_unique<VanillaBalancer>());
  for (int i = 0; i < 8; ++i) k.fork(cpu_bound("t" + std::to_string(i)));
  k.run_for(milliseconds(20));
  k.set_core_online(0, false);
  k.run_for(milliseconds(50));
  EXPECT_EQ(k.core_nr_running(0), 0);
  const auto insts_before = k.core_instructions(0);
  k.set_core_online(0, true);
  k.run_for(milliseconds(100));
  EXPECT_GT(k.core_instructions(0), insts_before)
      << "the balancer must repopulate the re-onlined core";
}

TEST_F(HotplugTest, SmartBalanceRespectsOfflineCores) {
  auto cfg = sim::SimulationConfig{};
  cfg.duration = milliseconds(400);
  sim::Simulation s(platform_, cfg);
  s.set_balancer(sim::smartbalance_factory()(s));
  s.add_benchmark("canneal", 2);
  s.add_benchmark("swaptions", 2);
  s.kernel().set_core_online(3, false);  // the efficient Small core is gone
  const auto r = s.run();
  EXPECT_EQ(r.cores[3].instructions, 0u);
  for (ThreadId tid : s.kernel().alive_threads()) {
    EXPECT_NE(s.kernel().task(tid).cpu, 3);
  }
  EXPECT_GT(r.instructions, 0u);
}

TEST_F(HotplugTest, TimeAccountingStaysExactAcrossTransitions) {
  Kernel k = make_kernel();
  k.fork(cpu_bound("a"));
  k.fork(cpu_bound("b"));
  k.run_for(milliseconds(30));
  k.set_core_online(1, false);
  k.run_for(milliseconds(30));
  k.set_core_online(1, true);
  k.run_for(milliseconds(30));
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_EQ(k.energy().busy_time(c) + k.energy().idle_time(c) +
                  k.energy().sleep_time(c),
              milliseconds(90))
        << "core " << c;
  }
}

}  // namespace
}  // namespace sb::os
